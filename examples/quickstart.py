"""Quickstart: the three-phase DPM assessment on a 40-line model.

A power-manageable sensor node: it samples, transmits, and a DPM may send
it to sleep between samples.  We write the architecture in the textual
ADL, then run the paper's methodology end to end:

1. functional phase  — is the DPM transparent to the data consumer?
2. Markovian phase   — analytic energy/throughput with and without DPM;
3. general phase     — validate the simulator, then use realistic
                       (deterministic) timings.

Run with:  python examples/quickstart.py
"""

from repro.aemilia import parse_architecture
from repro.core import check_noninterference, cross_validate
from repro.core.methodology import solve_markovian_architecture
from repro.aemilia import generate_lts
from repro.ctmc import parse_measures
from repro.sim import make_generator, replicate

SENSOR_SPEC = """
ARCHI_TYPE Sensor_Node(const real sample_time := 10.0,
                       const real transmit_time := 1.0,
                       const real wake_time := 0.5,
                       const real shutdown_timeout := 4.0,
                       const real wakeup_period := 4.0)

ARCHI_ELEM_TYPES

ELEM_TYPE Sensor_Type(void)
  BEHAVIOR
    Idle_Sensor(void; void) =
      choice {
        <sample, exp(1 / sample_time)> . Transmitting_Sensor(),
        <receive_shutdown, _> . Sleeping_Sensor(),
        <monitor_idle, exp(1)> . Idle_Sensor()
      };
    Transmitting_Sensor(void; void) =
      choice {
        <transmit, exp(1 / transmit_time)> . <notify_idle, inf(1, 1)> . Idle_Sensor(),
        <monitor_active, exp(1)> . Transmitting_Sensor()
      };
    Sleeping_Sensor(void; void) =
      <receive_wakeup, _> . Waking_Sensor();
    Waking_Sensor(void; void) =
      choice {
        <wake, exp(1 / wake_time)> . <notify_idle, inf(1, 1)> . Idle_Sensor(),
        <monitor_active, exp(1)> . Waking_Sensor()
      }
  INPUT_INTERACTIONS UNI receive_shutdown; receive_wakeup
  OUTPUT_INTERACTIONS UNI transmit; notify_idle

ELEM_TYPE Consumer_Type(void)
  BEHAVIOR
    Consumer(void; void) =
      <receive_data, _> . <consume, inf(1, 1)> . Consumer()
  INPUT_INTERACTIONS UNI receive_data
  OUTPUT_INTERACTIONS void

ELEM_TYPE DPM_Type(void)
  BEHAVIOR
    Armed_DPM(void; void) =
      choice {
        <send_shutdown, exp(1 / shutdown_timeout)> . Parked_DPM(),
        <receive_idle_notice, _> . Armed_DPM()
      };
    Parked_DPM(void; void) =
      choice {
        <send_wakeup, exp(1 / wakeup_period)> . Waiting_DPM(),
        <receive_idle_notice, _> . Parked_DPM()
      };
    Waiting_DPM(void; void) =
      <receive_idle_notice, _> . Armed_DPM()
  INPUT_INTERACTIONS UNI receive_idle_notice
  OUTPUT_INTERACTIONS UNI send_shutdown; send_wakeup

ARCHI_TOPOLOGY
  ARCHI_ELEM_INSTANCES
    SENSOR : Sensor_Type();
    SINK : Consumer_Type();
    DPM : DPM_Type()
  ARCHI_ATTACHMENTS
    FROM SENSOR.transmit TO SINK.receive_data;
    FROM DPM.send_shutdown TO SENSOR.receive_shutdown;
    FROM DPM.send_wakeup TO SENSOR.receive_wakeup;
    FROM SENSOR.notify_idle TO DPM.receive_idle_notice
END
"""

MEASURES = parse_measures("""
MEASURE throughput IS
  ENABLED(SINK.consume) -> TRANS_REWARD(1);
MEASURE power IS
  ENABLED(SENSOR.monitor_idle)   -> STATE_REWARD(1.0)
  ENABLED(SENSOR.monitor_active) -> STATE_REWARD(2.5);
""")

HIGH = ["DPM.send_shutdown", "DPM.send_wakeup"]
LOW = ["SINK.consume"]


def main():
    archi = parse_architecture(SENSOR_SPEC)
    print(archi.describe())
    print()

    # Phase 1: functionality -------------------------------------------------
    verdict = check_noninterference(archi, HIGH, LOW)
    print("phase 1 (noninterference):")
    print(verdict.diagnostic())
    print()

    # Phase 2: Markovian comparison ------------------------------------------
    print("phase 2 (Markovian analysis):")
    with_dpm = solve_markovian_architecture(archi, MEASURES)
    # 'Removing' the DPM here = a timeout so long it never fires.
    without_dpm = solve_markovian_architecture(
        archi, MEASURES, {"shutdown_timeout": 1e9}
    )
    for name in ("throughput", "power"):
        print(
            f"  {name:>10}: DPM={with_dpm[name]:.4f}  "
            f"NO-DPM={without_dpm[name]:.4f}"
        )
    saving = 1 - with_dpm["power"] / without_dpm["power"]
    cost = 1 - with_dpm["throughput"] / without_dpm["throughput"]
    print(f"  -> energy saving {saving:.0%} at throughput cost {cost:.0%}")
    print()

    # Phase 3: validation + simulation ---------------------------------------
    print("phase 3 (simulation, validated against the analytic solution):")
    lts = generate_lts(archi)
    report = cross_validate(lts, MEASURES, run_length=5_000.0, runs=8)
    print(report)
    replication = replicate(lts, MEASURES, run_length=5_000.0, runs=8)
    for name in ("throughput", "power"):
        print(f"  simulated {name}: {replication[name]}")


if __name__ == "__main__":
    main()

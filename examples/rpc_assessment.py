"""Full walkthrough of the rpc case study (the paper's running example).

Reproduces, in order:

* Sect. 3.1 — the *simplified* model fails noninterference and the checker
  emits the paper's modal-logic diagnostic; the *revised* model passes;
* Sect. 4.1 / Fig. 3 left — analytic DPM vs NO-DPM comparison while
  sweeping the shutdown timeout;
* Sect. 5.1 / Fig. 5 — validation of the general model (exponential
  plug-in vs analytic);
* Sect. 5.2 / Fig. 3 right — simulation of the deterministic/Gaussian
  model, exposing the bimodal knee at the 11.3 ms mean idle period;
* Fig. 7 — the energy/waiting trade-off with its dominated points.

Run with:  python examples/rpc_assessment.py  [--full]
"""

import sys

from repro.casestudies import rpc
from repro.core import IncrementalMethodology
from repro.experiments import rpc_figures


def main(full: bool = False):
    methodology = IncrementalMethodology(rpc.family())

    print("#" * 72)
    print("# Phase 1 - functional transparency (Sect. 3.1)")
    print("#" * 72)
    verdict = rpc_figures.sec3_noninterference()
    print(verdict.report())
    print()

    print("#" * 72)
    print("# Phase 2 - Markovian comparison (Fig. 3 left)")
    print("#" * 72)
    timeouts = None if full else rpc_figures.QUICK_TIMEOUTS
    markov = rpc_figures.fig3_markov(timeouts, methodology=methodology)
    print(markov.report(charts=full))
    print()

    print("#" * 72)
    print("# Phase 3a - validation (Fig. 5)")
    print("#" * 72)
    validation = rpc_figures.fig5_validation(
        None if full else [5.0, 15.0],
        methodology=methodology,
        runs=30 if full else 8,
        run_length=20_000.0 if full else 8_000.0,
        warmup=300.0,
    )
    print(validation.report())
    print()

    print("#" * 72)
    print("# Phase 3b - general model (Fig. 3 right)")
    print("#" * 72)
    general = rpc_figures.fig3_general(
        timeouts,
        methodology=methodology,
        runs=8 if full else 4,
        run_length=20_000.0 if full else 8_000.0,
        warmup=300.0,
    )
    print(general.report(charts=full))
    print()

    print("#" * 72)
    print("# Trade-off (Fig. 7)")
    print("#" * 72)
    tradeoff = rpc_figures.fig7_tradeoff(markov, general)
    print(tradeoff.report())
    knee = tradeoff.general.knee_point()
    print()
    print(
        f"recommended DPM shutdown timeout (knee of the general curve): "
        f"{knee.parameter:g} ms"
    )
    print(
        f"(the server's mean idle period is "
        f"{rpc.DEFAULT_PARAMETERS.mean_idle_period:.1f} ms; timeouts near "
        f"it are counterproductive)"
    )


if __name__ == "__main__":
    main(full="--full" in sys.argv)

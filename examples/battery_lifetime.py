"""Beyond the paper: from energy rates to battery lifetimes.

The paper's evaluation reports steady-state *energy rates*.  This example
turns them into the quantity a product designer quotes — hours of battery —
using the first-passage and transient machinery on the battery-extended
rpc model:

* expected lifetime for several DPM timeouts (vs NO-DPM),
* survival curves P(battery alive at t),
* the accumulated energy drawn in a finite window.

Run with:  python examples/battery_lifetime.py
"""

import numpy as np

from repro.aemilia import generate_lts
from repro.casestudies.rpc import battery
from repro.ctmc import (
    accumulated_state_reward,
    build_ctmc,
    parse_measures,
    state_reward_vector,
)
from repro.experiments.extensions import battery_lifetime, battery_survival

POWER_MEASURE = parse_measures("""
MEASURE power IS
  ENABLED(S.monitor_idle_server)    -> STATE_REWARD(2)
  ENABLED(S.monitor_busy_server)    -> STATE_REWARD(3)
  ENABLED(S.monitor_awaking_server) -> STATE_REWARD(2);
""")[0]


def accumulated_energy(archi, overrides, horizon):
    """Expected energy (power-units x ms) drawn in [0, horizon]."""
    lts = generate_lts(archi, overrides)
    ctmc = build_ctmc(lts)
    rewards = state_reward_vector(ctmc, POWER_MEASURE)
    return accumulated_state_reward(ctmc, horizon, rewards)


def main():
    print("=" * 72)
    print("expected battery lifetime (first-passage analysis)")
    print("=" * 72)
    lifetime = battery_lifetime(timeouts=(1.0, 5.0, 15.0), capacity=20)
    print(lifetime.report())
    print()

    print("=" * 72)
    print("survival curves (transient analysis)")
    print("=" * 72)
    survival = battery_survival(
        times=(50.0, 100.0, 200.0, 300.0, 450.0, 600.0), capacity=12
    )
    print(survival.report())
    print()

    print("=" * 72)
    print("energy drawn in the first 200 ms (accumulated rewards)")
    print("=" * 72)
    horizon = 200.0
    dpm_energy = accumulated_energy(
        battery.dpm_architecture(),
        {"shutdown_timeout": 2.0, "battery_capacity": 20},
        horizon,
    )
    nodpm_energy = accumulated_energy(
        battery.nodpm_architecture(), {"battery_capacity": 20}, horizon
    )
    print(f"  DPM    : {dpm_energy:8.1f} power-units x ms")
    print(f"  NO-DPM : {nodpm_energy:8.1f} power-units x ms")
    print(f"  saving : {1 - dpm_energy / nodpm_energy:.0%}")


if __name__ == "__main__":
    main()

"""Beyond the paper: using the methodology for DPM *policy design*.

The paper assesses a given DPM.  This example turns the workflow around
and uses it to *choose* one.  Three candidate policies for the rpc server:

* ``trivial``      — the Sect. 2.3 policy: shut down whenever the timer
                     fires, regardless of the server state;
* ``state-aware``  — the Sect. 3.1 policy: only shut down an idle server
                     (timer re-armed on each idle notice);
* ``eager``        — state-aware with an (almost) zero timeout: shut down
                     as soon as the server goes idle.

Phase 1 rejects ``trivial`` outright (it can strand the client forever —
the checker prints the witness formula).  The survivors are compared in
phase 2/3, and the general-model trade-off curve picks the operating
point.

Run with:  python examples/custom_policy_design.py
"""

from repro.casestudies import rpc
from repro.core import IncrementalMethodology, check_noninterference
from repro.core.reporting import format_table
from repro.core.tradeoff import TradeoffCurve
from repro.experiments import rpc_figures


def phase1_screening():
    print("=" * 72)
    print("phase 1: functional screening of the candidate policies")
    print("=" * 72)
    candidates = {
        "trivial (Sect. 2.3)": rpc.functional.simplified_architecture(),
        "state-aware (Sect. 3.1)": rpc.functional.revised_architecture(),
    }
    survivors = []
    for name, archi in candidates.items():
        verdict = check_noninterference(
            archi, rpc.functional.HIGH_PATTERNS, rpc.functional.LOW_PATTERNS
        )
        status = "PASS" if verdict.holds else "REJECTED"
        print(f"  {name:<28} {status}")
        if verdict.holds:
            survivors.append(name)
        else:
            print("    witness (client may wait forever):")
            for line in verdict.formula.render(indent=6).splitlines()[:4]:
                print(line)
            print("      ...")
    print()
    return survivors


def phase23_tuning():
    print("=" * 72)
    print("phase 2+3: tuning the state-aware policy's timeout")
    print("=" * 72)
    methodology = IncrementalMethodology(rpc.family())
    nodpm = methodology.solve_markovian("nodpm")

    # 'eager' = state-aware with a near-zero timeout; plus moderate ones.
    timeouts = [0.1, 1.0, 3.0, 6.0, 9.0, 12.0]
    rows = []
    for timeout in timeouts:
        results = methodology.solve_markovian(
            "dpm", {"shutdown_timeout": timeout}
        )
        rows.append(
            [
                timeout,
                results["throughput"],
                results["energy"] / results["throughput"],
                1.0 - results["throughput"] / nodpm["throughput"],
            ]
        )
    print(
        format_table(
            ["timeout [ms]", "throughput", "energy/req", "thr. penalty"],
            rows,
            "Markovian screening (exponential timing)",
        )
    )
    print()

    # The general model decides: deterministic timings move the optimum.
    sim = dict(run_length=8_000.0, runs=4, warmup=300.0)
    performance, energy = [], []
    for timeout in timeouts:
        rep = methodology.simulate_general(
            "dpm", {"shutdown_timeout": timeout}, **sim
        )
        performance.append(rep["waiting_time"].mean / rep["throughput"].mean)
        energy.append(rep["energy"].mean / rep["throughput"].mean)
    curve = TradeoffCurve.from_sweep(
        "general timeout sweep", timeouts, performance, energy
    )
    print(curve.describe())
    knee = curve.knee_point()
    print()
    print(
        f"=> deploy the state-aware policy with a ~{knee.parameter:g} ms "
        f"timeout (knee of the measured trade-off);"
    )
    print(
        f"   avoid timeouts near the {rpc.DEFAULT_PARAMETERS.mean_idle_period:.1f} ms "
        f"idle period — they are Pareto-dominated."
    )


def main():
    survivors = phase1_screening()
    assert "state-aware (Sect. 3.1)" in survivors
    phase23_tuning()


if __name__ == "__main__":
    main()

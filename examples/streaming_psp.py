"""The streaming case study: a PSP-managed 802.11b NIC (paper Sect. 2.2).

Reproduces the streaming half of the paper:

* Sect. 3.2 — the MAC-level DPM satisfies noninterference;
* Sect. 4.2 / Fig. 4 — Markovian energy/loss/miss/quality vs awake period;
* Sect. 5.3 / Fig. 6 — the realistic CBR model by simulation, including
  the CISCO Aironet 350 comparison (100 ms vs 200 ms listen intervals);
* Fig. 8 — the energy/miss trade-off.

Also prints a short event-trace excerpt so the PSP doze/wake cycle is
visible.

Run with:  python examples/streaming_psp.py  [--full]
"""

import sys

from repro.casestudies import streaming
from repro.core import IncrementalMethodology
from repro.experiments import streaming_figures
from repro.sim import EventTraceRecorder, make_generator


def show_trace(methodology):
    print("event-trace excerpt (awake period 100 ms):")
    lts = methodology.build_lts("general", "dpm", {"awake_period": 100.0})
    recorder = EventTraceRecorder(lts, capacity=25)
    recorder.run(2_000.0, make_generator(7), warmup=0.0)
    interesting = [
        entry
        for entry in recorder.entries
        if any(
            key in entry.label
            for key in ("shutdown", "wakeup", "get_", "store", "lose")
        )
    ]
    for entry in interesting[:12]:
        print(f"  t={entry.time:8.2f}  {entry.label}")
    print()


def aironet_comparison(methodology, sim_kwargs):
    print("CISCO Aironet 350 setting comparison (Sect. 5.3):")
    nodpm = methodology.simulate_general("nodpm", **sim_kwargs)
    nodpm_raw = {n: nodpm[n].mean for n in nodpm.estimates}
    base = streaming_figures.derive_streaming(
        {k: [v] for k, v in nodpm_raw.items()}
    )
    print(
        f"  always-on : energy/frame "
        f"{base['energy_per_frame'][0]:7.1f} mJ, quality "
        f"{base['quality'][0]:.3f}"
    )
    for period in streaming.AIRONET_AWAKE_PERIODS:
        rep = methodology.simulate_general(
            "dpm", {"awake_period": period}, **sim_kwargs
        )
        raw = {n: rep[n].mean for n in rep.estimates}
        derived = streaming_figures.derive_streaming(
            {k: [v] for k, v in raw.items()}
        )
        saving = (
            1.0
            - derived["energy_per_frame"][0] / base["energy_per_frame"][0]
        )
        print(
            f"  PSP {period:3.0f} ms: energy/frame "
            f"{derived['energy_per_frame'][0]:7.1f} mJ "
            f"(saves {saving:4.0%}), quality {derived['quality'][0]:.3f}, "
            f"loss {derived['loss'][0]:.4f}"
        )
    print()


def main(full: bool = False):
    methodology = IncrementalMethodology(streaming.family())
    sim_kwargs = dict(
        run_length=60_000.0 if full else 20_000.0,
        runs=6 if full else 3,
        warmup=2_000.0 if full else 1_000.0,
    )

    print("#" * 72)
    print("# Phase 1 - noninterference of the MAC-level DPM (Sect. 3.2)")
    print("#" * 72)
    verdict = streaming_figures.sec3_noninterference()
    print(verdict.report())
    print()

    print("#" * 72)
    print("# Phase 2 - Markovian model (Fig. 4)")
    print("#" * 72)
    periods = None if full else streaming_figures.QUICK_AWAKE_PERIODS
    markov = streaming_figures.fig4_markov(periods, methodology=methodology)
    print(markov.report(charts=full))
    print()

    print("#" * 72)
    print("# Phase 3 - general model (Fig. 6) + Aironet 350 settings")
    print("#" * 72)
    show_trace(methodology)
    aironet_comparison(methodology, sim_kwargs)
    general = streaming_figures.fig6_general(
        periods, methodology=methodology, **sim_kwargs
    )
    print(general.report(charts=full))
    print()

    print("#" * 72)
    print("# Trade-off (Fig. 8)")
    print("#" * 72)
    tradeoff = streaming_figures.fig8_tradeoff(markov, general)
    print(tradeoff.report())


if __name__ == "__main__":
    main(full="--full" in sys.argv)

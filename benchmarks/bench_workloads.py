"""Workload subsystem benchmarks: replay overhead and fit scaling.

Measures the two costs the workload layer adds to the general phase and
writes ``BENCH_workloads.json`` next to the repo root:

* **replay** — samples/second drawn from :class:`TraceReplay` (bootstrap
  and cycle modes) vs the closed-form :class:`Exponential` and
  :class:`Pareto` distributions they stand in for.  Replay is a table
  lookup, so it must stay within a small factor of closed-form sampling
  — the number that says trace-driven sweeps cost about the same as
  spec-driven ones.
* **fit** — :func:`fit_trace` wall-clock vs trace length.  The KS scan
  is O(n log n) per family; the report pins the measured growth so a
  regression to quadratic behaviour shows up as a superlinear ratio.

Runs as a benchmark module (``pytest benchmarks/bench_workloads.py``) or
as a plain script (``python benchmarks/bench_workloads.py``).
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path

from repro.distributions import Exponential, Pareto
from repro.sim.random import make_generator
from repro.workload import MMPPGenerator, TraceReplay, fit_trace

OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_workloads.json"

#: Draws per sampling measurement.
SAMPLES = 200_000

#: Trace lengths for the fit-scaling measurement.
FIT_LENGTHS = (500, 2_000, 8_000)

TRACE_EVENTS = 4_000


def _trace(events=TRACE_EVENTS):
    return MMPPGenerator(2.0, 0.05, 5.0, 50.0).generate(events, seed=7)


def _sampling_rate(distribution, samples=SAMPLES):
    """Samples per second for one distribution (single rng, tight loop)."""
    rng = make_generator(11)
    sample = distribution.sample
    started = time.perf_counter()
    for _ in range(samples):
        sample(rng)
    elapsed = time.perf_counter() - started
    return samples / max(elapsed, 1e-9)


def _replay_case():
    trace = _trace()
    rates = {
        "exponential": _sampling_rate(Exponential(1.0 / 9.7)),
        "pareto": _sampling_rate(Pareto(1.5, 3.0)),
        "replay_bootstrap": _sampling_rate(TraceReplay(trace)),
        "replay_cycle": _sampling_rate(TraceReplay(trace, "cycle")),
    }
    closed_form = min(rates["exponential"], rates["pareto"])
    return {
        "samples": SAMPLES,
        "trace_events": len(trace),
        "samples_per_second": {
            name: round(rate) for name, rate in rates.items()
        },
        "bootstrap_vs_closed_form": round(
            rates["replay_bootstrap"] / closed_form, 3
        ),
        "cycle_vs_closed_form": round(
            rates["replay_cycle"] / closed_form, 3
        ),
    }


def _fit_case():
    points = []
    for events in FIT_LENGTHS:
        trace = _trace(events)
        started = time.perf_counter()
        report = fit_trace(trace)
        elapsed = time.perf_counter() - started
        points.append(
            {
                "events": events,
                "seconds": round(elapsed, 4),
                "families": len(report.candidates),
                "best": report.best.family,
            }
        )
    first, last = points[0], points[-1]
    length_ratio = last["events"] / first["events"]
    time_ratio = last["seconds"] / max(first["seconds"], 1e-9)
    return {
        "points": points,
        "length_ratio": round(length_ratio, 2),
        "time_ratio": round(time_ratio, 2),
        # O(n log n) keeps time_ratio near length_ratio; quadratic
        # behaviour would push it toward length_ratio squared.
        "scaling_exponent": round(
            math.log(time_ratio) / math.log(length_ratio), 3
        ),
    }


def collect() -> dict:
    return {"replay": _replay_case(), "fit": _fit_case()}


def write_report(report: dict, path: Path = OUTPUT_PATH) -> Path:
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def test_workload_benchmarks(benchmark):
    report = benchmark.pedantic(collect, rounds=1, iterations=1)
    write_report(report)
    replay = report["replay"]
    fit = report["fit"]
    # Replay must stay in the same ballpark as closed-form sampling
    # (measured ~0.1-0.3x; generous floor so CI noise cannot trip it).
    assert replay["bootstrap_vs_closed_form"] > 0.02
    assert replay["cycle_vs_closed_form"] > 0.02
    # Fit time grows sub-quadratically with trace length.
    assert fit["scaling_exponent"] < 2.0
    print(
        f"\n  replay: bootstrap {replay['bootstrap_vs_closed_form']}x, "
        f"cycle {replay['cycle_vs_closed_form']}x of closed-form sampling"
    )
    print(
        f"  fit: {fit['points'][-1]['events']} events in "
        f"{fit['points'][-1]['seconds']}s "
        f"(scaling exponent {fit['scaling_exponent']})"
    )
    print(f"  report written to {OUTPUT_PATH}")


if __name__ == "__main__":
    destination = write_report(collect())
    print(f"wrote {destination}")

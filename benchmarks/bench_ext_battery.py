"""Extension bench: battery lifetime by first-passage analysis.

Not a paper figure — the repository's extension of the paper's
steady-state energy rates into the quantity they stand for (expected
battery lifetime), exercising the absorption-time machinery on the
battery-extended rpc model.
"""

from conftest import run_once

from repro.experiments.extensions import battery_lifetime, sensitivity


def test_ext_battery(benchmark):
    result = run_once(
        benchmark,
        lambda: battery_lifetime(timeouts=(1.0, 5.0, 15.0), capacity=20),
    )
    print()
    print(result.report())
    # DPM extends the lifetime; the shorter the timeout, the longer.
    assert result.extension_factor(1.0) > result.extension_factor(5.0)
    assert result.extension_factor(5.0) > result.extension_factor(15.0)
    assert result.extension_factor(15.0) > 1.0


def test_ext_sensitivity(benchmark):
    result = run_once(
        benchmark,
        lambda: sensitivity("proc_time", values=(3.0, 9.7, 40.0)),
    )
    print()
    print(result.report())
    savings = [result.savings[v] for v in result.values]
    assert savings == sorted(savings)

"""Fig. 8: streaming energy-per-frame vs miss-rate trade-off curves.

Regenerates the Markovian and general curves.  Paper claims checked: the
two curves share their qualitative behaviour (energy falls as the awake
period — and hence the miss rate — grows), and the general model offers
sizeable energy savings at zero miss cost, making the DPM completely
transparent for small awake periods.
"""

from conftest import run_once

from repro.experiments import streaming_figures

PERIODS = [25.0, 50.0, 100.0, 200.0, 400.0, 800.0]


def test_fig8_tradeoff(benchmark, streaming_methodology):
    markov = streaming_figures.fig4_markov(
        PERIODS, methodology=streaming_methodology
    )
    general = streaming_figures.fig6_general(
        PERIODS,
        methodology=streaming_methodology,
        run_length=30_000.0,
        runs=3,
        warmup=1_500.0,
    )
    figure = run_once(
        benchmark,
        lambda: streaming_figures.fig8_tradeoff(markov, general),
    )
    print()
    print(figure.report())

    # Both curves show decreasing energy as miss increases (same shape).
    for curve in (figure.markov, figure.general):
        front = curve.pareto_front()
        assert len(front) >= 3
    # General model: a point with sizeable savings at ~zero miss.
    nodpm_energy = general.nodpm_series["energy_per_frame"][0]
    transparent = [
        point
        for point in figure.general.points
        if point.performance < 0.03  # miss below 3%
        and point.energy < 0.4 * nodpm_energy
    ]
    assert transparent, "expected a transparent high-saving operating point"

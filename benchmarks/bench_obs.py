"""Tracing-overhead benchmark: the fig3 sweep traced vs untraced.

Measures the hierarchical tracer of ``repro.obs.tracing`` on the fig3
Markovian sweep (the same workload ``BENCH_runtime.json`` pins): one
run with no tracer installed, one with a tracer streaming to a JSONL
file, in the same process.  Produces ``BENCH_obs.json``:

* ``wall_off`` / ``wall_on`` / ``overhead_ratio`` — the committed
  ratio documents the ≤ 5% overhead contract; wall-clock itself is
  machine-dependent and never gated across runs.
* ``spans`` — total span count and the per-name breakdown.  These are
  deterministic for the fixed sweep (one ``point`` / ``execute`` /
  ``solve`` chain per sweep point under one phase span), so the
  regression gate compares them exactly.
* ``bit_identical`` — the traced sweep must reproduce the untraced
  series byte for byte (the design invariant of docs/OBSERVABILITY.md).

Run as a script (``python benchmarks/bench_obs.py [--out PATH]``) to
refresh the baseline, or through the regression gate
(``benchmarks/bench_regression.py``).
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from collections import Counter
from pathlib import Path
from typing import Dict, List, Optional

from repro.casestudies import rpc
from repro.core.methodology import IncrementalMethodology
from repro.obs import tracing

ROOT = Path(__file__).resolve().parent.parent

PARAMETER = "shutdown_timeout"

#: Paired timing: each repetition measures an untraced run and a traced
#: run back to back and the committed overhead is the **median** of the
#: per-pair ratios — adjacent pairs see the same machine state, so load
#: drift cancels, and the median discards the pairs a scheduler burst
#: hit anyway.  (A ratio of two global minima is *not* robust here:
#: quiet windows do not land symmetrically on both sides.)
REPEATS = 15

#: Sweeps per timed repetition — lengthens each measurement well past
#: scheduler-jitter scale without changing the per-sweep span counts.
SWEEPS_PER_REPEAT = 3


def _run_sweeps() -> tuple:
    values = list(rpc.SHUTDOWN_TIMEOUT_SWEEP)
    series = None
    started = time.perf_counter()
    for _ in range(SWEEPS_PER_REPEAT):
        methodology = IncrementalMethodology(rpc.family())
        series = methodology.sweep_markovian(PARAMETER, values)
    return time.perf_counter() - started, series


def collect() -> dict:
    """Measure traced vs untraced fig3 sweeps; return the report dict."""
    values = list(rpc.SHUTDOWN_TIMEOUT_SWEEP)

    # Warm-up: imports, first-touch allocations, code caches.
    _run_sweeps()

    wall_off = float("inf")
    wall_on = float("inf")
    series_off = None
    series_on = None
    span_names: Counter = Counter()
    spans_total = 0
    ratios: List[float] = []
    with tempfile.TemporaryDirectory() as scratch:
        for repeat in range(REPEATS):
            off_wall, series_off = _run_sweeps()
            wall_off = min(wall_off, off_wall)

            tracer = tracing.Tracer(str(Path(scratch) / f"t{repeat}.jsonl"))
            previous = tracing.set_tracer(tracer)
            try:
                on_wall, series_on = _run_sweeps()
            finally:
                tracing.set_tracer(previous)
                tracer.close()
            wall_on = min(wall_on, on_wall)
            ratios.append(on_wall / off_wall)
            records = tracer.records()
            # One sweep's worth of spans: every repetition repeats the
            # same deterministic tree SWEEPS_PER_REPEAT times.
            span_names = Counter(
                record["name"] for record in records
            )
            spans_total = len(records)
    ratios.sort()
    overhead_ratio = ratios[len(ratios) // 2]
    assert spans_total % SWEEPS_PER_REPEAT == 0
    spans_total //= SWEEPS_PER_REPEAT
    span_names = Counter(
        {
            name: count // SWEEPS_PER_REPEAT
            for name, count in span_names.items()
        }
    )

    bit_identical = series_on == series_off
    return {
        "fig3_sweep": {
            "parameter": PARAMETER,
            "points": len(values),
            "repeats": REPEATS,
            "wall_off": round(wall_off, 4),
            "wall_on": round(wall_on, 4),
            "overhead_ratio": round(overhead_ratio, 4),
            "spans": {
                "total": spans_total,
                "by_name": dict(sorted(span_names.items())),
            },
            "bit_identical": bit_identical,
        }
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="measure tracing overhead on the fig3 sweep"
    )
    parser.add_argument(
        "--out",
        default=str(ROOT / "BENCH_obs.json"),
        metavar="PATH",
        help="baseline file to write (default: BENCH_obs.json)",
    )
    args = parser.parse_args(argv)
    report = collect()
    sweep = report["fig3_sweep"]
    print(
        f"fig3 sweep ({sweep['points']} points): "
        f"untraced {sweep['wall_off']}s, traced {sweep['wall_on']}s "
        f"(ratio {sweep['overhead_ratio']}), "
        f"{sweep['spans']['total']} spans, "
        f"bit_identical={sweep['bit_identical']}"
    )
    if not sweep["bit_identical"]:
        print("FAIL: traced series differ from untraced", file=sys.stderr)
        return 1
    Path(args.out).write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n"
    )
    print(f"baseline written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

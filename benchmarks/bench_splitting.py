"""Rare-event splitting benchmark (docs/SIMULATION.md, docs/RELIABILITY.md).

Quantifies the two promises of the RESTART splitting layer on a
fig3-style rare-timeout cascade — a birth-death chain counting
consecutive client timeouts, where the "abort" event (the QoS failure
the paper's fig3 timeout sweep probes) only fires after ``DEPTH``
uninterrupted timeouts, putting its rate around 1e-6:

* **variance reduction at equal event budget** — the splitting
  estimator's work-normalised variance must beat naive replication by
  at least 100x.  The naive side is scored at its *analytic* floor
  (Poisson counting variance ``mu/T`` at the exact event rate of the
  chain), which is generous to naive replication — the empirical naive
  run at the same event budget typically observes **zero** events and
  has no variance estimate at all, which the report also records
  together with its Wilson upper bound (the satellite near-zero
  interval fix);
* **correctness at depth** — the splitting estimate's log-scale
  confidence interval must cover the analytic probability obtained by
  solving the chain's CTMC directly.

Writes ``BENCH_splitting.json`` next to the repo root.  Runs as a
benchmark module (``pytest benchmarks/bench_splitting.py``) or as a
plain script (``python benchmarks/bench_splitting.py [--smoke]``);
``--smoke`` runs the reduced-budget moderate-rarity configuration only
(the CI rare-event job's mode, seconds instead of minutes).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import List, Optional

import numpy as np

from repro.aemilia.rates import GeneralRate
from repro.ctmc import measure, trans_clause
from repro.distributions import Exponential
from repro.lts import LTS
from repro.sim import replicate, split_replicate, summarize_rare

OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_splitting.json"

#: Acceptance gate (ROADMAP / ISSUE): work-normalised variance
#: reduction of splitting over the naive-replication floor.
EFFICIENCY_GATE = 100.0

#: Timeout-cascade rates: timeouts accumulate at ``UP`` while results
#: clear the count at ``DOWN``; a full cascade aborts at ``OUT``.
UP, DOWN, OUT = 0.5, 4.0, 4.0

#: Full-benchmark geometry — rare regime (abort rate ~8e-7).
DEPTH = 8
SPLITS = 12
SEGMENTS = 1_000
RUN_LENGTH = 200.0
RUNS = 30
SEED = 11

#: Smoke geometry — moderate rarity (abort rate ~7e-2), seconds to run.
SMOKE_DEPTH = 3
SMOKE_SPLITS = 4
SMOKE_SEGMENTS = 200
SMOKE_RUN_LENGTH = 100.0
SMOKE_RUNS = 12


def cascade_lts(depth: int) -> LTS:
    """Timeout-cascade chain: states count consecutive timeouts."""
    lts = LTS(0)
    for _ in range(depth + 1):
        lts.add_state()
    for count in range(depth):
        lts.add_transition(
            count, "C.expire_timeout", count + 1,
            GeneralRate(Exponential(UP)), "C.expire_timeout",
        )
        if count > 0:
            lts.add_transition(
                count, "C.receive_result", 0,
                GeneralRate(Exponential(DOWN)), "C.receive_result",
            )
    lts.add_transition(
        depth, "C.abort", 0, GeneralRate(Exponential(OUT)), "C.abort"
    )
    return lts


def analytic_abort(depth: int) -> tuple:
    """(abort rate, total event rate) from the chain's exact CTMC."""
    states = depth + 1
    generator = np.zeros((states, states))
    for count in range(depth):
        generator[count, count + 1] += UP
        generator[count, count] -= UP
        if count > 0:
            generator[count, 0] += DOWN
            generator[count, count] -= DOWN
    generator[depth, 0] += OUT
    generator[depth, depth] -= OUT
    system = np.vstack([generator.T, np.ones(states)])
    rhs = np.zeros(states + 1)
    rhs[-1] = 1.0
    pi = np.linalg.lstsq(system, rhs, rcond=None)[0]
    event_rate = sum(
        pi[count] * (UP + (DOWN if count > 0 else 0.0))
        for count in range(depth)
    ) + pi[depth] * OUT
    return float(pi[depth] * OUT), float(event_rate)


def _splitting_report(
    depth: int,
    splits: int,
    segments: int,
    run_length: float,
    runs: int,
    workers: int,
) -> dict:
    """Splitting vs the naive floor (and an empirical naive run) on one
    cascade geometry."""
    mu, event_rate = analytic_abort(depth)
    lts = cascade_lts(depth)
    abort = measure("abort_rate", trans_clause("C.abort", 1.0))

    started = time.perf_counter()
    result = split_replicate(
        lts, [abort], run_length, levels=depth, splits=splits,
        segments=segments, runs=runs, seed=SEED, engine="fast",
        workers=workers,
    )
    split_seconds = time.perf_counter() - started
    samples = np.asarray(result.samples["abort_rate"], float)
    split_variance = float(samples.var(ddof=1))
    events_per_tree = result.events / runs
    rare = result.rare["abort_rate"]

    # Naive floor: a naive rate estimator over horizon T has at best
    # Poisson counting variance mu/T per run; its event budget per run
    # is the chain's exact total event rate times T.
    naive_variance_floor = mu / run_length
    naive_events = event_rate * run_length
    efficiency = (naive_variance_floor * naive_events) / (
        split_variance * events_per_tree
    )

    # Empirical naive run at the same total event budget, to anchor
    # the floor: at rare depths it observes zero abort events and the
    # only honest statement left is the Wilson upper bound.
    naive_horizon = (events_per_tree * runs) / event_rate / runs
    naive = replicate(
        lts, [abort], naive_horizon, runs=runs, seed=SEED, engine="fast"
    )
    naive_samples = naive.samples["abort_rate"]
    observed = sum(
        round(sample * naive_horizon) for sample in naive_samples
    )
    naive_rare = summarize_rare(naive_samples, 0.95)

    return {
        "depth": depth,
        "levels": depth,
        "splits": splits,
        "segments": segments,
        "run_length": run_length,
        "runs": runs,
        "seed": SEED,
        "analytic_probability": mu,
        "analytic_event_rate": round(event_rate, 6),
        "estimate": rare.mean,
        "interval_low": rare.low,
        "interval_high": rare.high,
        "interval_method": rare.method,
        "covers_analytic": rare.overlaps(mu),
        "split_variance": split_variance,
        "events_per_tree": round(events_per_tree, 1),
        "naive_variance_floor": naive_variance_floor,
        "naive_events_per_run": round(naive_events, 1),
        "efficiency": round(efficiency, 1),
        "naive_observed_events": int(observed),
        "naive_upper_bound": naive_rare.high,
        "naive_interval_method": naive_rare.method,
        "clones": result.clones,
        "merges": result.merges,
        "peak_trajectories": result.peak_trajectories,
        "seconds": round(split_seconds, 3),
    }


def collect(smoke: bool = False, workers: int = 4) -> dict:
    report = {
        "generated_by": "benchmarks/bench_splitting.py",
        "smoke": _splitting_report(
            SMOKE_DEPTH, SMOKE_SPLITS, SMOKE_SEGMENTS,
            SMOKE_RUN_LENGTH, SMOKE_RUNS, workers,
        ),
    }
    if not smoke:
        report["rare"] = _splitting_report(
            DEPTH, SPLITS, SEGMENTS, RUN_LENGTH, RUNS, workers
        )
    return report


def write_report(report: dict) -> Path:
    OUTPUT_PATH.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n"
    )
    return OUTPUT_PATH


def _gate(report: dict, failures: List[str], smoke: bool) -> None:
    smoke_report = report["smoke"]
    if not smoke_report["covers_analytic"]:
        failures.append(
            f"smoke: interval [{smoke_report['interval_low']:.3g}, "
            f"{smoke_report['interval_high']:.3g}] misses the analytic "
            f"probability {smoke_report['analytic_probability']:.3g}"
        )
    if smoke:
        return
    rare = report["rare"]
    if not rare["covers_analytic"]:
        failures.append(
            f"rare: interval [{rare['interval_low']:.3g}, "
            f"{rare['interval_high']:.3g}] misses the analytic "
            f"probability {rare['analytic_probability']:.3g}"
        )
    if rare["efficiency"] < EFFICIENCY_GATE:
        failures.append(
            f"rare: efficiency {rare['efficiency']}x below the "
            f"{EFFICIENCY_GATE}x gate"
        )


def test_bench_splitting():
    report = collect()
    write_report(report)
    failures: List[str] = []
    _gate(report, failures, smoke=False)
    assert not failures, "\n".join(failures)
    rare = report["rare"]
    print(
        f"\n  rare (depth {rare['depth']}): estimate "
        f"{rare['estimate']:.3g} in [{rare['interval_low']:.3g}, "
        f"{rare['interval_high']:.3g}] vs analytic "
        f"{rare['analytic_probability']:.3g}; efficiency "
        f"{rare['efficiency']}x (gate {EFFICIENCY_GATE}x); naive at "
        f"equal budget saw {rare['naive_observed_events']} events"
    )
    print(f"  report written to {OUTPUT_PATH}")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="rare-event splitting benchmark"
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="moderate-rarity reduced budget only (CI mode); does not "
        "overwrite the committed baseline",
    )
    parser.add_argument(
        "--workers", type=int, default=4,
        help="executor workers (results are worker-count invariant)",
    )
    args = parser.parse_args(argv)
    report = collect(smoke=args.smoke, workers=args.workers)
    failures: List[str] = []
    _gate(report, failures, smoke=args.smoke)
    for name in ("smoke", "rare"):
        if name not in report:
            continue
        entry = report[name]
        print(
            f"  {name} (depth {entry['depth']}): estimate "
            f"{entry['estimate']:.3g} "
            f"[{entry['interval_low']:.3g}, {entry['interval_high']:.3g}] "
            f"vs analytic {entry['analytic_probability']:.3g}, "
            f"efficiency {entry['efficiency']}x, "
            f"{entry['seconds']}s"
        )
    if not args.smoke:
        write_report(report)
        print(f"wrote {OUTPUT_PATH}")
    if failures:
        print("FAILURES:\n" + "\n".join(failures))
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Fig. 5: validation of the general rpc model against the Markovian one.

The paper's protocol: give the general model exponential distributions
consistent with the Markovian rates, simulate (30 runs, 90% confidence
intervals), and compare with the analytic solution.  The benchmark runs a
reduced-effort version and asserts every measure validates at every
swept shutdown timeout.
"""

from conftest import run_once

from repro.experiments import rpc_figures


def test_fig5_validation(benchmark, rpc_methodology):
    figure = run_once(
        benchmark,
        lambda: rpc_figures.fig5_validation(
            [5.0, 15.0, 25.0],
            methodology=rpc_methodology,
            run_length=10_000.0,
            runs=10,
            warmup=300.0,
        ),
    )
    print()
    print(figure.report())
    assert figure.passed
    for report in figure.reports.values():
        for validation in report.measures.values():
            assert validation.relative_error < 0.10

"""Regression gate against the committed benchmark baselines.

Re-measures the cheap, deterministic core of the two committed baseline
files and fails when the numbers drift outside tolerance bands:

* ``BENCH_solvers.json`` — every steady-state backend on every case
  chain: iteration counts must stay within a 2x band of the baseline
  (the direct solve exactly 1), residuals must stay small, probability
  mass must stay normalised.
* ``BENCH_runtime.json`` — the fig3 Markovian sweep must still hit the
  structural cache exactly as recorded (one skeleton miss, every
  further point a relabel) over the same number of points.

Wall-clock is reported but never gated — CI machines are too noisy for
timing assertions, and the committed ``seconds`` fields are documentation,
not contracts.  Run as a script (``python benchmarks/bench_regression.py
[--out report.json]``, exit 0/1) or through pytest
(``pytest benchmarks/bench_regression.py``).  See docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.casestudies import rpc
from repro.core.methodology import IncrementalMethodology
from repro.ctmc.steady_state import steady_state_solution

from bench_solvers import CASES, _build_ctmc

ROOT = Path(__file__).resolve().parent.parent
SOLVERS_BASELINE = ROOT / "BENCH_solvers.json"
RUNTIME_BASELINE = ROOT / "BENCH_runtime.json"

#: Iteration counts may drift with library versions (ILU fill, GMRES
#: restarts) but an honest reimplementation stays within a 2x band.
ITERATION_RATIO_BAND = (0.5, 2.0)

#: A residual is acceptable when it is small in absolute terms or no
#: more than 10x the committed baseline (whichever is looser).
RESIDUAL_ABS_FLOOR = 1e-9
RESIDUAL_RATIO = 10.0

MASS_DEFECT_LIMIT = 1e-8


def _check(failures: List[str], condition: bool, message: str) -> None:
    if not condition:
        failures.append(message)


def _solver_regressions(baseline: dict, failures: List[str]) -> dict:
    """Fresh per-backend solves compared against ``BENCH_solvers.json``."""
    report: Dict[str, dict] = {}
    for name, family_fn, overrides in CASES:
        base_case = baseline["cases"].get(name)
        if base_case is None:
            failures.append(f"{name}: case missing from baseline file")
            continue
        ctmc = _build_ctmc(family_fn, overrides)
        _check(
            failures,
            ctmc.num_states == base_case["states"],
            f"{name}: state space changed "
            f"({ctmc.num_states} vs baseline {base_case['states']})",
        )
        backends: Dict[str, dict] = {}
        for method, base in sorted(base_case["backends"].items()):
            started = time.perf_counter()
            solution = steady_state_solution(ctmc, method=method)
            seconds = time.perf_counter() - started
            measured = solution.report
            backends[method] = {
                "iterations": measured.iterations,
                "baseline_iterations": base["iterations"],
                "residual": measured.residual,
                "baseline_residual": base["residual"],
                "mass_defect": measured.mass_defect,
                "seconds": round(seconds, 5),
                "baseline_seconds": base["seconds"],
            }
            if method == "direct":
                _check(
                    failures,
                    measured.iterations == 1,
                    f"{name}/direct: expected exactly 1 iteration, "
                    f"got {measured.iterations}",
                )
            else:
                low, high = ITERATION_RATIO_BAND
                ratio = measured.iterations / max(base["iterations"], 1)
                _check(
                    failures,
                    low <= ratio <= high,
                    f"{name}/{method}: iterations {measured.iterations} "
                    f"outside [{low}, {high}]x of baseline "
                    f"{base['iterations']}",
                )
            residual_limit = max(
                RESIDUAL_RATIO * base["residual"], RESIDUAL_ABS_FLOOR
            )
            _check(
                failures,
                measured.residual <= residual_limit,
                f"{name}/{method}: residual {measured.residual:.3e} "
                f"exceeds {residual_limit:.3e}",
            )
            _check(
                failures,
                abs(measured.mass_defect) <= MASS_DEFECT_LIMIT,
                f"{name}/{method}: mass defect "
                f"{measured.mass_defect:.3e} exceeds "
                f"{MASS_DEFECT_LIMIT:.0e}",
            )
        report[name] = {"states": ctmc.num_states, "backends": backends}
    return report


def _runtime_regressions(baseline: dict, failures: List[str]) -> dict:
    """A fresh fig3 Markovian sweep compared against the committed cache
    counters of ``BENCH_runtime.json`` — the structural-cache contract
    (one miss, then relabels only) must not silently degrade."""
    base = baseline["sweeps"]["fig3-markov"]
    values = list(rpc.SHUTDOWN_TIMEOUT_SWEEP)
    methodology = IncrementalMethodology(rpc.family())
    started = time.perf_counter()
    methodology.sweep_markovian(base["parameter"], values)
    seconds = time.perf_counter() - started
    cache = methodology.cache.stats.as_dict()
    measured = {
        "points": len(values),
        "cache": cache,
        "seconds": round(seconds, 4),
        "baseline_cache": base["cache"],
        "baseline_points": base["points"],
    }
    _check(
        failures,
        len(values) == base["points"],
        f"fig3-markov: sweep has {len(values)} points, "
        f"baseline recorded {base['points']}",
    )
    for counter in ("hits", "misses", "relabels"):
        _check(
            failures,
            cache[counter] == base["cache"][counter],
            f"fig3-markov: cache {counter}={cache[counter]} differs "
            f"from baseline {base['cache'][counter]}",
        )
    return measured


def collect() -> dict:
    """Run every regression check; the report carries the failures."""
    failures: List[str] = []
    if not SOLVERS_BASELINE.exists() or not RUNTIME_BASELINE.exists():
        raise FileNotFoundError(
            "committed baselines BENCH_solvers.json / BENCH_runtime.json "
            "not found next to the repo root"
        )
    solvers_baseline = json.loads(SOLVERS_BASELINE.read_text())
    runtime_baseline = json.loads(RUNTIME_BASELINE.read_text())
    return {
        "solvers": _solver_regressions(solvers_baseline, failures),
        "runtime": {
            "fig3-markov": _runtime_regressions(runtime_baseline, failures)
        },
        "failures": failures,
        "passed": not failures,
    }


def test_bench_regression():
    report = collect()
    assert report["passed"], "\n".join(report["failures"])


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="regression gate vs committed benchmark baselines"
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="also write the full report JSON to PATH",
    )
    args = parser.parse_args(argv)
    report = collect()
    if args.out:
        Path(args.out).write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n"
        )
        print(f"report written to {args.out}")
    for name, case in report["solvers"].items():
        times = ", ".join(
            f"{method} {record['iterations']} it "
            f"(baseline {record['baseline_iterations']})"
            for method, record in sorted(case["backends"].items())
        )
        print(f"  {name} ({case['states']} states): {times}")
    fig3 = report["runtime"]["fig3-markov"]
    print(
        f"  fig3-markov: {fig3['points']} points, cache {fig3['cache']} "
        f"in {fig3['seconds']}s"
    )
    if report["failures"]:
        for failure in report["failures"]:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        return 1
    print("bench-regression: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

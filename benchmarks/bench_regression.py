"""Regression gate against the committed benchmark baselines.

Re-measures the cheap, deterministic core of the committed baseline
files and fails when the numbers drift outside tolerance bands:

* ``BENCH_solvers.json`` — every steady-state backend on every case
  chain: iteration counts must stay within a 2x band of the baseline
  (the direct solve exactly 1), residuals must stay small, probability
  mass must stay normalised.
* ``BENCH_runtime.json`` — the fig3 Markovian sweep must still hit the
  structural cache exactly as recorded (one skeleton miss, every
  further point a relabel) over the same number of points.
* ``BENCH_parametric.json`` — the streaming chain's parametric
  elimination must keep its recorded structure (recurrent class,
  parametric transition count), its validated fit error must not blow
  up, and per-point evaluation must agree with — and stay >= 100x
  faster than — per-point direct solves (a same-run ratio, so it is
  robust to machine speed).
* ``BENCH_sim.json`` — the committed numbers must still honour the
  fast engine's acceptance gates (>= 5x throughput, >= 2x CRN interval
  narrowing), and a reduced-budget re-measure must reproduce both
  effects within generous bands (same-run ratios again, so machine
  speed cancels).
* ``BENCH_splitting.json`` — the committed rare-event numbers must
  still honour the splitting gates (>= 100x work-normalised variance
  reduction, interval covering the analytic probability), and the
  moderate-rarity smoke configuration is re-measured: its pinned-seed
  estimate must stay inside a generous band of the committed value and
  its interval must still cover the analytic probability.
* ``BENCH_obs.json`` — the committed tracing-overhead ratio must
  honour the <= 5% contract, and a fresh traced fig3 sweep must emit
  exactly the committed span counts while staying bit-identical to an
  untraced one (walls report-only).
* ``BENCH_fleet.json`` — the committed fleet numbers must honour the
  scale gate (>= 10^6 product states solved matrix-free through the
  lumped operator) and the 1e-9 flat-oracle agreement; a fresh scale
  solve must keep the recorded state-space structure within the
  iteration band, and a fresh N=3 differential must still agree with
  the flat oracle.

Wall-clock is reported but never gated — CI machines are too noisy for
timing assertions, and the committed ``seconds`` fields are documentation,
not contracts.  Run as a script (``python benchmarks/bench_regression.py
[--out report.json]``, exit 0/1) or through pytest
(``pytest benchmarks/bench_regression.py``).  See docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.casestudies import rpc, streaming
from repro.casestudies.fleet import build_model as build_fleet_model
from repro.core.methodology import IncrementalMethodology
from repro.ctmc.steady_state import steady_state_solution
from repro.fleet import solve_fleet

from bench_fleet import AGREEMENT_TOLERANCE as FLEET_AGREEMENT
from bench_fleet import SCALE_STATES_GATE as FLEET_SCALE_GATE
from bench_fleet import _flat_measures, _worst_gap
from bench_solvers import CASES, _build_ctmc
from bench_splitting import EFFICIENCY_GATE as SPLITTING_EFFICIENCY_GATE
from bench_splitting import collect as collect_splitting

ROOT = Path(__file__).resolve().parent.parent
SOLVERS_BASELINE = ROOT / "BENCH_solvers.json"
RUNTIME_BASELINE = ROOT / "BENCH_runtime.json"
PARAMETRIC_BASELINE = ROOT / "BENCH_parametric.json"
SIM_BASELINE = ROOT / "BENCH_sim.json"
SPLITTING_BASELINE = ROOT / "BENCH_splitting.json"
OBS_BASELINE = ROOT / "BENCH_obs.json"
FLEET_BASELINE = ROOT / "BENCH_fleet.json"

#: The committed tracing-overhead ratio (median of paired traced vs
#: untraced fig3 sweeps, ``benchmarks/bench_obs.py``) must honour the
#: ≤ 5% contract; fresh wall-clock is report-only, span counts exact.
OBS_OVERHEAD_GATE = 1.05

#: Iteration counts may drift with library versions (ILU fill, GMRES
#: restarts) but an honest reimplementation stays within a 2x band.
ITERATION_RATIO_BAND = (0.5, 2.0)

#: A residual is acceptable when it is small in absolute terms or no
#: more than 10x the committed baseline (whichever is looser).
RESIDUAL_ABS_FLOOR = 1e-9
RESIDUAL_RATIO = 10.0

MASS_DEFECT_LIMIT = 1e-8

#: Parametric gates: the validated fit error may drift 10x (or to the
#: absolute floor, whichever is looser), agreement with direct solves
#: is the acceptance tolerance of the parametric work, and the
#: per-point speedup is a same-run ratio so machine speed cancels out.
FIT_ERROR_RATIO = 10.0
FIT_ERROR_ABS_FLOOR = 1e-10
PARAMETRIC_AGREEMENT = 1e-9
PARAMETRIC_SPEEDUP_GATE = 100.0
PARAMETRIC_PROBE_POINTS = [25.0, 100.0, 400.0]
PARAMETRIC_EVAL_REPEATS = 50

#: Committed BENCH_sim.json contract (the acceptance gates of the fast
#: engine work) plus the generous bands for the cheap re-measure: the
#: reduced batch amortises less, and 10 paired runs estimate interval
#: widths noisily, so the re-measure gates sit far below the committed
#: numbers while still catching an engine that lost its edge.
SIM_BASELINE_SPEEDUP_GATE = 5.0
SIM_BASELINE_CRN_GATE = 2.0
SIM_RECHECK_SPEEDUP_GATE = 1.5
SIM_RECHECK_CRN_GATE = 1.5
SIM_RECHECK_RUN_LENGTH = 1_000.0
SIM_RECHECK_WARMUP = 100.0
SIM_RECHECK_FAST_RUNS = 64
SIM_RECHECK_REFERENCE_RUNS = 6
SIM_RECHECK_CRN_RUNS = 10

#: The smoke re-measure is deterministic (pinned seed, worker-count
#: invariant streams), so the band only absorbs cross-platform float
#: noise — it is tight by design.
SPLITTING_SMOKE_BAND = (0.5, 2.0)


def _check(failures: List[str], condition: bool, message: str) -> None:
    if not condition:
        failures.append(message)


def _solver_regressions(baseline: dict, failures: List[str]) -> dict:
    """Fresh per-backend solves compared against ``BENCH_solvers.json``."""
    report: Dict[str, dict] = {}
    for name, family_fn, overrides in CASES:
        base_case = baseline["cases"].get(name)
        if base_case is None:
            failures.append(f"{name}: case missing from baseline file")
            continue
        ctmc = _build_ctmc(family_fn, overrides)
        _check(
            failures,
            ctmc.num_states == base_case["states"],
            f"{name}: state space changed "
            f"({ctmc.num_states} vs baseline {base_case['states']})",
        )
        backends: Dict[str, dict] = {}
        for method, base in sorted(base_case["backends"].items()):
            started = time.perf_counter()
            solution = steady_state_solution(ctmc, method=method)
            seconds = time.perf_counter() - started
            measured = solution.report
            backends[method] = {
                "iterations": measured.iterations,
                "baseline_iterations": base["iterations"],
                "residual": measured.residual,
                "baseline_residual": base["residual"],
                "mass_defect": measured.mass_defect,
                "seconds": round(seconds, 5),
                "baseline_seconds": base["seconds"],
            }
            if method == "direct":
                _check(
                    failures,
                    measured.iterations == 1,
                    f"{name}/direct: expected exactly 1 iteration, "
                    f"got {measured.iterations}",
                )
            else:
                low, high = ITERATION_RATIO_BAND
                ratio = measured.iterations / max(base["iterations"], 1)
                _check(
                    failures,
                    low <= ratio <= high,
                    f"{name}/{method}: iterations {measured.iterations} "
                    f"outside [{low}, {high}]x of baseline "
                    f"{base['iterations']}",
                )
            residual_limit = max(
                RESIDUAL_RATIO * base["residual"], RESIDUAL_ABS_FLOOR
            )
            _check(
                failures,
                measured.residual <= residual_limit,
                f"{name}/{method}: residual {measured.residual:.3e} "
                f"exceeds {residual_limit:.3e}",
            )
            _check(
                failures,
                abs(measured.mass_defect) <= MASS_DEFECT_LIMIT,
                f"{name}/{method}: mass defect "
                f"{measured.mass_defect:.3e} exceeds "
                f"{MASS_DEFECT_LIMIT:.0e}",
            )
        report[name] = {"states": ctmc.num_states, "backends": backends}
    return report


def _runtime_regressions(baseline: dict, failures: List[str]) -> dict:
    """A fresh fig3 Markovian sweep compared against the committed cache
    counters of ``BENCH_runtime.json`` — the structural-cache contract
    (one miss, then relabels only) must not silently degrade."""
    base = baseline["sweeps"]["fig3-markov"]
    values = list(rpc.SHUTDOWN_TIMEOUT_SWEEP)
    methodology = IncrementalMethodology(rpc.family())
    started = time.perf_counter()
    methodology.sweep_markovian(base["parameter"], values)
    seconds = time.perf_counter() - started
    cache = methodology.cache.stats.as_dict()
    measured = {
        "points": len(values),
        "cache": cache,
        "seconds": round(seconds, 4),
        "baseline_cache": base["cache"],
        "baseline_points": base["points"],
    }
    _check(
        failures,
        len(values) == base["points"],
        f"fig3-markov: sweep has {len(values)} points, "
        f"baseline recorded {base['points']}",
    )
    for counter in ("hits", "misses", "relabels"):
        _check(
            failures,
            cache[counter] == base["cache"][counter],
            f"fig3-markov: cache {counter}={cache[counter]} differs "
            f"from baseline {base['cache'][counter]}",
        )
    return measured


def _parametric_regressions(baseline: dict, failures: List[str]) -> dict:
    """A fresh streaming elimination compared against
    ``BENCH_parametric.json`` — the structure counters must match, the
    validated fit error must stay small, and per-point evaluation must
    agree with (and stay far faster than) per-point direct solves."""
    base = baseline["fig4"]
    family = streaming.family()
    methodology = IncrementalMethodology(family)
    points = list(streaming.AWAKE_PERIOD_SWEEP)
    started = time.perf_counter()
    solution = methodology.cache.parametric_solution(
        family.markovian_dpm,
        "awake_period",
        family.measures,
        (min(points), max(points)),
    )
    build_seconds = time.perf_counter() - started
    _check(
        failures,
        solution.size == base["recurrent"],
        f"parametric/fig4: recurrent class changed "
        f"({solution.size} vs baseline {base['recurrent']})",
    )
    _check(
        failures,
        solution.diagnostics["parametric_transitions"]
        == base["parametric_transitions"],
        f"parametric/fig4: parametric transition count changed "
        f"({solution.diagnostics['parametric_transitions']} vs "
        f"baseline {base['parametric_transitions']})",
    )
    fit_limit = max(
        FIT_ERROR_RATIO * base["max_fit_error"], FIT_ERROR_ABS_FLOOR
    )
    _check(
        failures,
        solution.max_fit_error <= fit_limit,
        f"parametric/fig4: fit error {solution.max_fit_error:.3e} "
        f"exceeds {fit_limit:.3e}",
    )
    probe = list(PARAMETRIC_PROBE_POINTS)
    started = time.perf_counter()
    direct = methodology.sweep_markovian(
        "awake_period", probe, method="direct"
    )
    direct_seconds = time.perf_counter() - started
    started = time.perf_counter()
    for _ in range(PARAMETRIC_EVAL_REPEATS):
        evaluated = [solution.evaluate(value) for value in probe]
    eval_seconds = (
        time.perf_counter() - started
    ) / PARAMETRIC_EVAL_REPEATS
    worst = 0.0
    for position, value in enumerate(probe):
        for name, series in direct.items():
            reference = series[position]
            scale = max(1.0, abs(reference))
            worst = max(
                worst,
                abs(evaluated[position][name] - reference) / scale,
            )
    _check(
        failures,
        worst <= PARAMETRIC_AGREEMENT,
        f"parametric/fig4: drifts {worst:.3e} from direct solves "
        f"(limit {PARAMETRIC_AGREEMENT:.0e})",
    )
    speedup = (direct_seconds / len(probe)) / (eval_seconds / len(probe))
    _check(
        failures,
        speedup >= PARAMETRIC_SPEEDUP_GATE,
        f"parametric/fig4: per-point evaluation only {speedup:.1f}x "
        f"faster than direct (gate {PARAMETRIC_SPEEDUP_GATE:.0f}x)",
    )
    return {
        "recurrent": solution.size,
        "parametric_transitions": solution.diagnostics[
            "parametric_transitions"
        ],
        "max_fit_error": solution.max_fit_error,
        "baseline_max_fit_error": base["max_fit_error"],
        "max_relative_error": worst,
        "speedup": round(speedup, 1),
        "build_seconds": round(build_seconds, 5),
        "baseline_build_seconds": base["build_seconds"],
    }


def _sim_regressions(baseline: dict, failures: List[str]) -> dict:
    """The fast engine's edge re-measured against ``BENCH_sim.json``.

    The committed file must honour the acceptance gates it was written
    under; the fresh reduced-budget run reproduces both effects — the
    vectorized speedup and the CRN interval narrowing — as same-run
    ratios, inside bands generous enough for CI noise.
    """
    from repro.aemilia.semantics import generate_lts
    from repro.sim import (
        FastSimulator,
        Simulator,
        replicate_paired,
        spawn_generators,
    )

    _check(
        failures,
        baseline["throughput"]["speedup"] >= SIM_BASELINE_SPEEDUP_GATE,
        f"sim: committed speedup {baseline['throughput']['speedup']}x "
        f"below the {SIM_BASELINE_SPEEDUP_GATE:.0f}x acceptance gate",
    )
    _check(
        failures,
        baseline["crn"]["min_narrowing"] >= SIM_BASELINE_CRN_GATE,
        f"sim: committed CRN narrowing "
        f"{baseline['crn']['min_narrowing']}x below the "
        f"{SIM_BASELINE_CRN_GATE:.0f}x acceptance gate",
    )

    family = rpc.family()
    lts = generate_lts(family.general_dpm, None, 200_000)
    reference = Simulator(lts, family.measures)
    started = time.perf_counter()
    reference_events = sum(
        reference.run(
            SIM_RECHECK_RUN_LENGTH, rng, warmup=SIM_RECHECK_WARMUP
        ).events_fired
        for rng in spawn_generators(20040628, SIM_RECHECK_REFERENCE_RUNS)
    )
    reference_rate = reference_events / max(
        time.perf_counter() - started, 1e-9
    )
    fast = FastSimulator(lts, family.measures)
    started = time.perf_counter()
    fast_events = sum(
        result.events_fired
        for result in fast.run_many(
            SIM_RECHECK_RUN_LENGTH,
            seed=20040628,
            runs=SIM_RECHECK_FAST_RUNS,
            warmup=SIM_RECHECK_WARMUP,
        )
    )
    fast_rate = fast_events / max(time.perf_counter() - started, 1e-9)
    speedup = fast_rate / reference_rate
    _check(
        failures,
        speedup >= SIM_RECHECK_SPEEDUP_GATE,
        f"sim: re-measured speedup {speedup:.2f}x below the "
        f"{SIM_RECHECK_SPEEDUP_GATE}x re-check gate",
    )

    lts_dpm = generate_lts(
        family.general_dpm, {"shutdown_timeout": 15.0}, 200_000
    )
    lts_nodpm = generate_lts(family.general_nodpm, None, 200_000)
    crn_settings = dict(
        runs=SIM_RECHECK_CRN_RUNS,
        warmup=SIM_RECHECK_WARMUP,
        seed=20040628,
    )
    paired = replicate_paired(
        lts_dpm, lts_nodpm, family.measures, SIM_RECHECK_RUN_LENGTH,
        crn=True, **crn_settings,
    )
    independent = replicate_paired(
        lts_dpm, lts_nodpm, family.measures, SIM_RECHECK_RUN_LENGTH,
        crn=False, **crn_settings,
    )
    narrowing = min(
        min(
            independent.delta[name].half_width
            / max(paired.delta[name].half_width, 1e-300),
            1000.0,
        )
        for name in family.measure_names()
    )
    _check(
        failures,
        narrowing >= SIM_RECHECK_CRN_GATE,
        f"sim: re-measured CRN narrowing {narrowing:.2f}x below the "
        f"{SIM_RECHECK_CRN_GATE}x re-check gate",
    )
    return {
        "speedup": round(speedup, 2),
        "baseline_speedup": baseline["throughput"]["speedup"],
        "crn_narrowing": round(narrowing, 2),
        "baseline_crn_narrowing": baseline["crn"]["min_narrowing"],
        "fast_events_per_second": round(fast_rate),
        "reference_events_per_second": round(reference_rate),
    }


def _splitting_regressions(baseline: dict, failures: List[str]) -> dict:
    """Committed splitting gates + a deterministic smoke re-measure."""
    rare = baseline["rare"]
    _check(
        failures,
        rare["efficiency"] >= SPLITTING_EFFICIENCY_GATE,
        f"splitting: committed efficiency {rare['efficiency']}x below "
        f"the {SPLITTING_EFFICIENCY_GATE}x gate",
    )
    _check(
        failures,
        rare["covers_analytic"],
        "splitting: committed rare interval does not cover the "
        "analytic probability",
    )
    smoke = collect_splitting(smoke=True, workers=1)["smoke"]
    _check(
        failures,
        smoke["covers_analytic"],
        f"splitting: re-measured smoke interval "
        f"[{smoke['interval_low']:.3g}, {smoke['interval_high']:.3g}] "
        f"misses the analytic probability "
        f"{smoke['analytic_probability']:.3g}",
    )
    committed = baseline["smoke"]["estimate"]
    ratio = smoke["estimate"] / committed if committed else 0.0
    low, high = SPLITTING_SMOKE_BAND
    _check(
        failures,
        low <= ratio <= high,
        f"splitting: re-measured smoke estimate {smoke['estimate']:.3g} "
        f"drifted {ratio:.2f}x from committed {committed:.3g} — the "
        f"pinned-seed run is supposed to be deterministic",
    )
    return {
        "baseline_efficiency": rare["efficiency"],
        "smoke_estimate": smoke["estimate"],
        "baseline_smoke_estimate": committed,
        "smoke_covers_analytic": smoke["covers_analytic"],
        "seconds": smoke["seconds"],
    }


def _obs_regressions(baseline: dict, failures: List[str]) -> dict:
    """One fresh traced fig3 sweep compared against ``BENCH_obs.json``.

    The committed file carries the tracing-overhead contract (median
    paired-run ratio ≤ 5%); a fresh wall-clock ratio is far too noisy
    to gate in CI, so the re-measure only gates what is deterministic:
    the per-name span counts of the sweep's trace, and bit-identity of
    the traced vs untraced series.  Fresh walls are report-only.
    """
    from collections import Counter

    from repro.obs import tracing

    base = baseline["fig3_sweep"]
    _check(
        failures,
        base["overhead_ratio"] <= OBS_OVERHEAD_GATE,
        f"obs: committed tracing overhead ratio "
        f"{base['overhead_ratio']} exceeds the "
        f"{OBS_OVERHEAD_GATE} contract",
    )
    _check(
        failures,
        base["bit_identical"] is True,
        "obs: committed baseline was not bit-identical traced vs untraced",
    )
    values = list(rpc.SHUTDOWN_TIMEOUT_SWEEP)
    started = time.perf_counter()
    series_off = IncrementalMethodology(rpc.family()).sweep_markovian(
        base["parameter"], values
    )
    wall_off = time.perf_counter() - started
    tracer = tracing.Tracer()
    previous = tracing.set_tracer(tracer)
    try:
        started = time.perf_counter()
        series_on = IncrementalMethodology(rpc.family()).sweep_markovian(
            base["parameter"], values
        )
        wall_on = time.perf_counter() - started
    finally:
        tracing.set_tracer(previous)
        tracer.close()
    by_name = dict(
        sorted(Counter(r["name"] for r in tracer.records()).items())
    )
    _check(
        failures,
        series_on == series_off,
        "obs: traced sweep series differ from untraced",
    )
    _check(
        failures,
        by_name == base["spans"]["by_name"],
        f"obs: span counts {by_name} differ from committed "
        f"{base['spans']['by_name']}",
    )
    return {
        "points": len(values),
        "spans": {"total": len(tracer.records()), "by_name": by_name},
        "baseline_overhead_ratio": base["overhead_ratio"],
        "wall_off": round(wall_off, 4),
        "wall_on": round(wall_on, 4),
    }


def _fleet_regressions(baseline: dict, failures: List[str]) -> dict:
    """Committed fleet gates + a fresh scale solve and N=3 differential.

    The committed ``BENCH_fleet.json`` must honour its acceptance gates
    (a >= 10^6-state product space solved matrix-free, <= 1e-9 flat
    agreement); a fresh lumped solve of the scale fleet must keep the
    recorded state-space structure, stay within the iteration band and
    residual bounds, and a fresh N=3 lumped-vs-flat differential must
    still agree with the independent flat oracle.
    """
    scale = baseline["scale"]
    _check(
        failures,
        scale["product_states"] >= FLEET_SCALE_GATE,
        f"fleet: committed scale fleet spans only "
        f"{scale['product_states']} product states "
        f"(gate {FLEET_SCALE_GATE})",
    )
    for entry in baseline["agreement"]:
        for key in ("lumped_vs_flat", "product_vs_flat"):
            if key in entry:
                _check(
                    failures,
                    entry[key] <= FLEET_AGREEMENT,
                    f"fleet: committed N={entry['fleet_size']} {key} "
                    f"gap {entry[key]:.3e} exceeds {FLEET_AGREEMENT:.0e}",
                )

    model = build_fleet_model(scale["fleet_size"], scale["policy"])
    _check(
        failures,
        model.topology.product_states == scale["product_states"],
        f"fleet: scale product space changed "
        f"({model.topology.product_states} vs baseline "
        f"{scale['product_states']})",
    )
    _check(
        failures,
        model.topology.lumped_states == scale["lumped_states"],
        f"fleet: scale lumped space changed "
        f"({model.topology.lumped_states} vs baseline "
        f"{scale['lumped_states']})",
    )
    started = time.perf_counter()
    solution = solve_fleet(model.topology, model.measures)
    seconds = time.perf_counter() - started
    _check(
        failures,
        solution.report.method in ("gmres", "power"),
        f"fleet: scale solve used non-matrix-free backend "
        f"{solution.report.method!r}",
    )
    low, high = ITERATION_RATIO_BAND
    matvec_ratio = solution.matvecs / max(scale["solver"]["matvecs"], 1)
    _check(
        failures,
        low <= matvec_ratio <= high,
        f"fleet: scale solve took {solution.matvecs} matvecs, outside "
        f"[{low}, {high}]x of baseline {scale['solver']['matvecs']}",
    )
    residual_limit = max(
        RESIDUAL_RATIO * scale["solver"]["residual"], RESIDUAL_ABS_FLOOR
    )
    _check(
        failures,
        solution.report.residual <= residual_limit,
        f"fleet: scale solve residual {solution.report.residual:.3e} "
        f"exceeds {residual_limit:.3e}",
    )

    small = build_fleet_model(3, "balanced")
    gap = _worst_gap(
        solve_fleet(small.topology, small.measures).measures,
        _flat_measures(small),
    )
    _check(
        failures,
        gap <= FLEET_AGREEMENT,
        f"fleet: fresh N=3 lumped-vs-flat gap {gap:.3e} exceeds "
        f"{FLEET_AGREEMENT:.0e}",
    )
    return {
        "scale_states": scale["product_states"],
        "scale_lumped_states": scale["lumped_states"],
        "matvecs": solution.matvecs,
        "baseline_matvecs": scale["solver"]["matvecs"],
        "residual": solution.report.residual,
        "baseline_residual": scale["solver"]["residual"],
        "n3_gap": gap,
        "seconds": round(seconds, 4),
        "baseline_seconds": scale["solver"]["seconds"],
    }


def collect() -> dict:
    """Run every regression check; the report carries the failures."""
    failures: List[str] = []
    baselines = {
        "BENCH_solvers.json": SOLVERS_BASELINE,
        "BENCH_runtime.json": RUNTIME_BASELINE,
        "BENCH_parametric.json": PARAMETRIC_BASELINE,
        "BENCH_sim.json": SIM_BASELINE,
        "BENCH_splitting.json": SPLITTING_BASELINE,
        "BENCH_obs.json": OBS_BASELINE,
        "BENCH_fleet.json": FLEET_BASELINE,
    }
    missing = [name for name, path in baselines.items() if not path.exists()]
    if missing:
        raise FileNotFoundError(
            f"committed baselines {', '.join(missing)} not found next "
            f"to the repo root"
        )
    solvers_baseline = json.loads(SOLVERS_BASELINE.read_text())
    runtime_baseline = json.loads(RUNTIME_BASELINE.read_text())
    parametric_baseline = json.loads(PARAMETRIC_BASELINE.read_text())
    sim_baseline = json.loads(SIM_BASELINE.read_text())
    splitting_baseline = json.loads(SPLITTING_BASELINE.read_text())
    obs_baseline = json.loads(OBS_BASELINE.read_text())
    fleet_baseline = json.loads(FLEET_BASELINE.read_text())
    return {
        "solvers": _solver_regressions(solvers_baseline, failures),
        "runtime": {
            "fig3-markov": _runtime_regressions(runtime_baseline, failures)
        },
        "parametric": _parametric_regressions(
            parametric_baseline, failures
        ),
        "sim": _sim_regressions(sim_baseline, failures),
        "splitting": _splitting_regressions(
            splitting_baseline, failures
        ),
        "obs": _obs_regressions(obs_baseline, failures),
        "fleet": _fleet_regressions(fleet_baseline, failures),
        "failures": failures,
        "passed": not failures,
    }


def test_bench_regression():
    report = collect()
    assert report["passed"], "\n".join(report["failures"])


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="regression gate vs committed benchmark baselines"
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="also write the full report JSON to PATH",
    )
    args = parser.parse_args(argv)
    report = collect()
    if args.out:
        Path(args.out).write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n"
        )
        print(f"report written to {args.out}")
    for name, case in report["solvers"].items():
        times = ", ".join(
            f"{method} {record['iterations']} it "
            f"(baseline {record['baseline_iterations']})"
            for method, record in sorted(case["backends"].items())
        )
        print(f"  {name} ({case['states']} states): {times}")
    fig3 = report["runtime"]["fig3-markov"]
    print(
        f"  fig3-markov: {fig3['points']} points, cache {fig3['cache']} "
        f"in {fig3['seconds']}s"
    )
    parametric = report["parametric"]
    print(
        f"  parametric: {parametric['recurrent']} recurrent states "
        f"eliminated in {parametric['build_seconds']}s, "
        f"{parametric['speedup']}x per point vs direct "
        f"(max rel err {parametric['max_relative_error']:.2e})"
    )
    sim = report["sim"]
    print(
        f"  sim: fast {sim['fast_events_per_second']:,} ev/s vs "
        f"reference {sim['reference_events_per_second']:,} ev/s "
        f"({sim['speedup']}x, committed {sim['baseline_speedup']}x), "
        f"CRN narrowing {sim['crn_narrowing']}x "
        f"(committed {sim['baseline_crn_narrowing']}x)"
    )
    splitting = report["splitting"]
    print(
        f"  splitting: committed efficiency "
        f"{splitting['baseline_efficiency']}x, smoke estimate "
        f"{splitting['smoke_estimate']:.3g} (committed "
        f"{splitting['baseline_smoke_estimate']:.3g}) in "
        f"{splitting['seconds']}s"
    )
    obs = report["obs"]
    print(
        f"  obs: {obs['spans']['total']} spans over {obs['points']} "
        f"points, committed overhead ratio "
        f"{obs['baseline_overhead_ratio']} (fresh walls "
        f"{obs['wall_off']}s untraced / {obs['wall_on']}s traced, "
        f"report-only)"
    )
    fleet = report["fleet"]
    print(
        f"  fleet: {fleet['scale_states']:,} product states -> "
        f"{fleet['scale_lumped_states']:,} lumped solved in "
        f"{fleet['seconds']}s ({fleet['matvecs']} matvecs, committed "
        f"{fleet['baseline_matvecs']}), fresh N=3 flat gap "
        f"{fleet['n3_gap']:.2e}"
    )
    if report["failures"]:
        for failure in report["failures"]:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        return 1
    print("bench-regression: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Ablation: state-space machinery costs.

Benchmarks (a) exhaustive state-space generation of the streaming
Markovian model, (b) CTMC construction with vanishing-state elimination,
and (c) the tau-SCC condensation that makes the weak-bisimulation check of
Sect. 3 tractable (212 s -> ~1 s on the streaming functional model when it
was introduced).
"""

import pytest

from repro.aemilia import generate_lts
from repro.casestudies.streaming import functional, markovian
from repro.ctmc import build_ctmc
from repro.lts import hide, matches_any
from repro.lts.weak import WeakStructure, tau_condensation


@pytest.fixture(scope="module")
def streaming_archi():
    return markovian.dpm_architecture()


def test_statespace_generation(benchmark, streaming_archi):
    lts = benchmark.pedantic(
        lambda: generate_lts(streaming_archi, {"awake_period": 100.0}),
        rounds=1,
        iterations=1,
    )
    print(f"\n  streaming Markovian state space: {lts}")
    assert lts.num_states > 1_000


def test_ctmc_construction(benchmark, streaming_archi):
    lts = generate_lts(streaming_archi, {"awake_period": 100.0})
    ctmc = benchmark.pedantic(
        lambda: build_ctmc(lts), rounds=1, iterations=1
    )
    print(f"\n  tangible chain: {ctmc}")
    assert ctmc.num_states < lts.num_states


def test_tau_condensation_reduction(benchmark):
    archi = functional.functional_architecture()
    lts = generate_lts(archi, functional.FUNCTIONAL_CAPACITIES)
    low = functional.LOW_PATTERNS
    hidden = hide(lts, lambda label: not matches_any(low, label))

    quotient, _ = benchmark.pedantic(
        lambda: tau_condensation(hidden), rounds=1, iterations=1
    )
    reduction = lts.num_states / max(quotient.num_states, 1)
    print(
        f"\n  functional model: {lts.num_states} states -> "
        f"{quotient.num_states} tau-SCC classes ({reduction:.1f}x)"
    )
    assert quotient.num_states < lts.num_states
    # The quotient must still be cheap to saturate.
    WeakStructure(quotient)

"""Ablation: state-space machinery costs.

Benchmarks (a) exhaustive state-space generation of the streaming
Markovian model, (b) CTMC construction with vanishing-state elimination,
(c) the tau-SCC condensation that makes the weak-bisimulation check of
Sect. 3 tractable (212 s -> ~1 s on the streaming functional model when it
was introduced), and (d) the guard-evaluation memo used during
generation.
"""

import time

import pytest

from repro.aemilia import generate_lts
from repro.aemilia.expressions import EvaluationCache, GUARD_CACHE, binop, lit, var
from repro.casestudies.streaming import functional, markovian
from repro.ctmc import build_ctmc
from repro.lts import hide, matches_any
from repro.lts.weak import WeakStructure, tau_condensation


@pytest.fixture(scope="module")
def streaming_archi():
    return markovian.dpm_architecture()


def test_statespace_generation(benchmark, streaming_archi):
    lts = benchmark.pedantic(
        lambda: generate_lts(streaming_archi, {"awake_period": 100.0}),
        rounds=1,
        iterations=1,
    )
    print(f"\n  streaming Markovian state space: {lts}")
    assert lts.num_states > 1_000


def test_ctmc_construction(benchmark, streaming_archi):
    lts = generate_lts(streaming_archi, {"awake_period": 100.0})
    ctmc = benchmark.pedantic(
        lambda: build_ctmc(lts), rounds=1, iterations=1
    )
    print(f"\n  tangible chain: {ctmc}")
    assert ctmc.num_states < lts.num_states


def test_tau_condensation_reduction(benchmark):
    archi = functional.functional_architecture()
    lts = generate_lts(archi, functional.FUNCTIONAL_CAPACITIES)
    low = functional.LOW_PATTERNS
    hidden = hide(lts, lambda label: not matches_any(low, label))

    quotient, _ = benchmark.pedantic(
        lambda: tau_condensation(hidden), rounds=1, iterations=1
    )
    reduction = lts.num_states / max(quotient.num_states, 1)
    print(
        f"\n  functional model: {lts.num_states} states -> "
        f"{quotient.num_states} tau-SCC classes ({reduction:.1f}x)"
    )
    assert quotient.num_states < lts.num_states
    # The quotient must still be cheap to saturate.
    WeakStructure(quotient)


def test_guard_memoization_microbenchmark(benchmark):
    """The guard memo must answer repeated (expr, env) lookups faster
    than re-walking the expression tree, without changing any value.

    Generation evaluates the same handful of guards under the same
    handful of local environments thousands of times — exactly the access
    pattern the memo is keyed for.
    """
    occupancy = binop(
        "-", binop("+", var("queue"), var("produced")), var("consumed")
    )
    guard = binop(
        "and",
        binop(
            "and",
            binop("<", occupancy, var("capacity")),
            binop(">=", binop("+", var("queue"), lit(1)), lit(1)),
        ),
        binop(
            "<=",
            binop("+", binop("*", lit(2), var("queue")), lit(1)),
            binop("*", lit(3), var("capacity")),
        ),
    )
    envs = [
        {"queue": q, "produced": q + 1, "consumed": 1, "capacity": 10}
        for q in range(8)
    ]
    repeats = 2_000

    expected = [guard.evaluate(env) for env in envs]

    started = time.perf_counter()
    for _ in range(repeats):
        for env in envs:
            guard.evaluate(env)
    raw_seconds = time.perf_counter() - started

    cache = EvaluationCache()

    def memoized():
        for _ in range(repeats):
            for env in envs:
                cache.evaluate(guard, env)

    benchmark.pedantic(memoized, rounds=1, iterations=1)
    memo_seconds = benchmark.stats.stats.total

    assert [cache.evaluate(guard, env) for env in envs] == expected
    assert cache.misses == len(envs)
    assert cache.hits >= repeats * len(envs)
    print(
        f"\n  guard evaluation: raw {raw_seconds * 1e3:.1f} ms, memoized "
        f"{memo_seconds * 1e3:.1f} ms "
        f"({raw_seconds / max(memo_seconds, 1e-9):.1f}x), "
        f"hit rate {cache.hits / (cache.hits + cache.misses):.1%}"
    )


def test_guard_memo_used_by_generation(streaming_archi):
    """State-space generation actually routes guards through the memo."""
    GUARD_CACHE.clear()
    generate_lts(streaming_archi, {"awake_period": 100.0})
    total = GUARD_CACHE.hits + GUARD_CACHE.misses
    assert total > 0, "generation never consulted the guard memo"
    print(
        f"\n  generation guard lookups: {total}, "
        f"hit rate {GUARD_CACHE.hits / total:.1%}"
    )

"""Steady-state solver backend benchmark (docs/SOLVERS.md).

Compares every registered backend on the case-study chains (the rpc
model and scaled-up variants of the streaming model) and quantifies the
speedup of the vectorized Gauss-Seidel sweeps over the historical
pure-Python per-row loop on a ~5k-state synthetic chain.  Writes
``BENCH_solvers.json`` next to the repo root.

Runs as a benchmark module (``pytest benchmarks/bench_solvers.py``) or
as a plain script (``python benchmarks/bench_solvers.py``).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
from scipy import sparse

from repro.casestudies import rpc, streaming
from repro.core.methodology import IncrementalMethodology
from repro.ctmc import build_ctmc
from repro.ctmc.solvers import (
    available_solvers,
    gauss_seidel_reference,
    solve_steady_state,
)
from repro.ctmc.steady_state import _submatrix, steady_state_solution
from repro.errors import SolverError

OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_solvers.json"

#: The chains every backend is compared on: the rpc model and the
#: streaming model at its default and enlarged buffer capacities (the
#: structural knobs that scale its state space).
CASES = [
    ("rpc", rpc.family, {}),
    ("streaming", streaming.family, {"awake_period": 100.0}),
    (
        "streaming-large",
        streaming.family,
        {"awake_period": 100.0, "ap_capacity": 20, "b_capacity": 20},
    ),
]

#: Size of the synthetic chain for the Gauss-Seidel speedup measurement.
SYNTHETIC_SIZE = 5_000

#: Sweep counts for the per-sweep timing (the reference loop is slow, so
#: it gets fewer; the vectorized backend amortises its factorisation).
REFERENCE_SWEEPS = 3
VECTORIZED_SWEEPS = 50


def _build_ctmc(family_fn, overrides):
    methodology = IncrementalMethodology(family_fn())
    return build_ctmc(
        methodology.build_lts("markovian", "dpm", overrides or None)
    )


def _case_report(name, family_fn, overrides):
    """Wall-clock, iterations and residual of every backend on one chain."""
    ctmc = _build_ctmc(family_fn, overrides)
    backends = {}
    reference = None
    for method in available_solvers():
        started = time.perf_counter()
        solution = steady_state_solution(ctmc, method=method)
        seconds = time.perf_counter() - started
        if reference is None:
            reference = solution.pi
        backends[method] = {
            "seconds": round(seconds, 5),
            "iterations": solution.report.iterations,
            "residual": solution.report.residual,
            "mass_defect": solution.report.mass_defect,
            "max_diff_vs_first": float(
                np.abs(solution.pi - reference).max()
            ),
        }
    return {
        "states": ctmc.num_states,
        "overrides": {k: v for k, v in overrides.items()},
        "backends": backends,
    }


def synthetic_chain(size: int = SYNTHETIC_SIZE) -> sparse.csr_matrix:
    """An irreducible ~3-transitions-per-state generator submatrix.

    A ring with skip transitions: state ``i`` moves to ``i+1`` (rate 1)
    and to ``i+3`` (rate 0.2), both modulo ``size`` — deterministic,
    sparse, and structurally similar to the layered DPM chains.
    """
    rows, cols, data = [], [], []
    diagonal = np.zeros(size)
    for i in range(size):
        for target, rate in (((i + 1) % size, 1.0), ((i + 3) % size, 0.2)):
            rows.append(i)
            cols.append(target)
            data.append(rate)
            diagonal[i] -= rate
    for i in range(size):
        rows.append(i)
        cols.append(i)
        data.append(diagonal[i])
    return sparse.csr_matrix((data, (rows, cols)), shape=(size, size))


def _per_sweep_seconds_reference(q, sweeps: int) -> float:
    """Time `sweeps` pure-Python Gauss-Seidel sweeps (never converges at
    tolerance 0, so the loop runs exactly `sweeps` times)."""
    started = time.perf_counter()
    try:
        gauss_seidel_reference(q, tolerance=0.0, max_iterations=sweeps)
    except SolverError:
        pass
    return (time.perf_counter() - started) / sweeps


def _per_sweep_seconds_vectorized(q, sweeps: int) -> float:
    """Time `sweeps` vectorized sweeps, factorisation amortised in."""
    started = time.perf_counter()
    try:
        solve_steady_state(
            q, method="sor", tolerance=1e-300, max_iterations=sweeps
        )
    except SolverError:
        pass
    return (time.perf_counter() - started) / sweeps


def _gauss_seidel_speedup_report():
    q = synthetic_chain()
    reference_sweep = _per_sweep_seconds_reference(q, REFERENCE_SWEEPS)
    vectorized_sweep = _per_sweep_seconds_vectorized(q, VECTORIZED_SWEEPS)
    # Fixed-point agreement of the two implementations on this chain.
    pinned = solve_steady_state(q, method="sor")
    return {
        "states": SYNTHETIC_SIZE,
        "nnz": int(q.nnz),
        "reference_seconds_per_sweep": round(reference_sweep, 6),
        "vectorized_seconds_per_sweep": round(vectorized_sweep, 6),
        "speedup": round(reference_sweep / max(vectorized_sweep, 1e-12), 1),
        "vectorized_iterations_to_converge": pinned.report.iterations,
        "vectorized_residual": pinned.report.residual,
    }


def collect() -> dict:
    """Run every measurement and return the report dict."""
    return {
        "cases": {
            name: _case_report(name, family_fn, overrides)
            for name, family_fn, overrides in CASES
        },
        "gauss_seidel_vectorization": _gauss_seidel_speedup_report(),
    }


def write_report(report: dict, path: Path = OUTPUT_PATH) -> Path:
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def test_solver_backends(benchmark):
    report = benchmark.pedantic(collect, rounds=1, iterations=1)
    write_report(report)
    for name, case in report["cases"].items():
        for method, record in case["backends"].items():
            # Acceptance gates: every backend agrees on every chain and
            # reports a small residual for every solve.
            assert record["max_diff_vs_first"] < 1e-9, (
                f"{method} disagrees on {name}"
            )
            assert record["residual"] < 1e-8
    vectorization = report["gauss_seidel_vectorization"]
    assert vectorization["speedup"] >= 10.0, (
        f"vectorized Gauss-Seidel only "
        f"{vectorization['speedup']}x faster than the pure-Python loop"
    )
    for name, case in report["cases"].items():
        times = ", ".join(
            f"{method} {record['seconds']}s"
            f" ({record['iterations']} it)"
            for method, record in sorted(case["backends"].items())
        )
        print(f"\n  {name} ({case['states']} states): {times}")
    print(
        f"  gauss-seidel vectorization: "
        f"{vectorization['speedup']}x per sweep on "
        f"{vectorization['states']} states"
    )
    print(f"  report written to {OUTPUT_PATH}")


if __name__ == "__main__":
    destination = write_report(collect())
    print(f"wrote {destination}")

"""Fig. 4: streaming Markovian comparison (energy/loss/miss/quality).

Regenerates the four indices as functions of the PSP awake period and
checks the paper's shapes: energy per frame falls steeply then flattens,
miss grows / quality falls, and around 50-100 ms the DPM saves most of the
NIC energy at moderate quality cost.
"""

from conftest import run_once

from repro.experiments import streaming_figures

PERIODS = [10.0, 50.0, 100.0, 200.0, 400.0, 800.0]


def test_fig4_markov(benchmark, streaming_methodology):
    figure = run_once(
        benchmark,
        lambda: streaming_figures.fig4_markov(
            PERIODS, methodology=streaming_methodology
        ),
    )
    print()
    print(figure.report())

    energy = figure.dpm_series["energy_per_frame"]
    miss = figure.dpm_series["miss"]
    quality = figure.dpm_series["quality"]
    nodpm_energy = figure.nodpm_series["energy_per_frame"][0]

    # Energy per frame falls steeply over the short-period regime...
    assert all(a > b for a, b in zip(energy[:4], energy[1:4]))
    # ... then flattens (paper: marginal savings become negligible above
    # ~100 ms; at the very long end the per-frame cost may tick up again
    # as AP overflow cuts into the delivered-frame count).
    drop_early = energy[0] - energy[2]            # 10 -> 100 ms
    drop_late = abs(energy[3] - energy[5])        # 200 -> 800 ms
    assert drop_early > 3 * drop_late
    # Miss grows, quality falls.
    assert miss[-1] > miss[0]
    assert quality[-1] < quality[0]
    # ~70% saving at 100 ms (paper's Sect. 4.2 conclusion at 50-100 ms).
    saving_100 = 1.0 - energy[2] / nodpm_energy
    assert saving_100 > 0.6

"""Sect. 3 artifact: the noninterference checks and diagnostic formula.

Regenerates: the negative verdict + modal-logic formula for the simplified
rpc model, the positive verdict for the revised rpc model (Sect. 3.1), and
the positive verdict for the streaming model (Sect. 3.2).
"""

from conftest import run_once

from repro.experiments import rpc_figures, streaming_figures


def test_sec3_rpc(benchmark):
    result = run_once(benchmark, rpc_figures.sec3_noninterference)
    print()
    print(result.report())
    assert not result.simplified.holds
    assert result.revised.holds
    formula_text = result.simplified.formula.render()
    # The paper's exact diagnostic (Sect. 3.1).
    assert "LABEL(C.send_rpc_packet#RCS.get_packet)" in formula_text
    assert "LABEL(RSC.deliver_packet#C.receive_result_packet)" in formula_text
    assert "NOT(" in formula_text


def test_sec3_streaming(benchmark):
    result = run_once(benchmark, streaming_figures.sec3_noninterference)
    print()
    print(result.report())
    assert result.result.holds

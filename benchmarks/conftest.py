"""Shared fixtures for the benchmark harness.

Every ``bench_*`` module regenerates one table/figure of the paper (see
DESIGN.md's per-experiment index), prints the regenerated rows/series, and
asserts the qualitative shape the paper reports.  Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest


@pytest.fixture(scope="session")
def rpc_methodology():
    from repro.casestudies.rpc import family
    from repro.core import IncrementalMethodology

    return IncrementalMethodology(family())


@pytest.fixture(scope="session")
def streaming_methodology():
    from repro.casestudies.streaming import family
    from repro.core import IncrementalMethodology

    return IncrementalMethodology(family())


def run_once(benchmark, fn):
    """Execute *fn* exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)

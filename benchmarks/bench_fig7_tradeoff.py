"""Fig. 7: rpc energy-per-request vs waiting-time trade-off curves.

Regenerates the Markovian and general trade-off curves and checks the
paper's observation: many points of the general curve lie beyond the
Pareto front (DPM timeouts close to the idle period are dominated), while
the Markovian curve has no dominated points.
"""

from conftest import run_once

from repro.casestudies import rpc
from repro.experiments import rpc_figures


def test_fig7_tradeoff(benchmark, rpc_methodology):
    markov = rpc_figures.fig3_markov(
        rpc_figures.QUICK_TIMEOUTS, methodology=rpc_methodology
    )
    general = rpc_figures.fig3_general(
        [1.0, 3.0, 5.0, 8.0, 9.5, 10.5, 12.0, 15.0, 25.0],
        methodology=rpc_methodology,
        run_length=10_000.0,
        runs=5,
        warmup=300.0,
    )
    figure = run_once(
        benchmark,
        lambda: rpc_figures.fig7_tradeoff(markov, general),
    )
    print()
    print(figure.report())

    # Markovian curve: smooth monotone trade-off, nothing dominated.
    assert len(figure.markov.dominated_points()) == 0
    # General curve: dominated (counterproductive) points exist, and they
    # sit near the mean idle period.
    dominated = figure.general.dominated_points()
    assert dominated
    knee = rpc.DEFAULT_PARAMETERS.mean_idle_period
    assert any(
        abs(point.parameter - knee) < 3.5 for point in dominated
    )

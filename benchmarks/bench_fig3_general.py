"""Fig. 3 (right): rpc general model with deterministic/Gaussian timing.

Regenerates the bimodal dependence on the shutdown timeout: below the mean
idle period (11.3 ms) energy grows with the timeout while throughput and
waiting time stay flat; above it the DPM has no effect; near the idle
period the DPM is counterproductive.
"""

import pytest
from conftest import run_once

from repro.casestudies import rpc
from repro.experiments import rpc_figures

TIMEOUTS = [1.0, 5.0, 9.0, 11.0, 12.5, 15.0, 25.0]


def test_fig3_general(benchmark, rpc_methodology):
    figure = run_once(
        benchmark,
        lambda: rpc_figures.fig3_general(
            TIMEOUTS,
            methodology=rpc_methodology,
            run_length=10_000.0,
            runs=5,
            warmup=300.0,
        ),
    )
    print()
    print(figure.report())

    by_timeout = dict(zip(TIMEOUTS, range(len(TIMEOUTS))))
    throughput = figure.dpm_series["throughput"]
    energy = figure.dpm_series["energy_per_request"]
    nodpm_throughput = figure.nodpm_series["throughput"][0]
    nodpm_energy = figure.nodpm_series["energy_per_request"][0]
    knee = rpc.DEFAULT_PARAMETERS.mean_idle_period

    # Below the knee: throughput flat (timeout-independent).
    low, mid = by_timeout[1.0], by_timeout[9.0]
    assert throughput[low] == pytest.approx(throughput[mid], rel=0.02)
    # ... while raw energy grows with the timeout.
    raw_energy_low = energy[low] * throughput[low]
    raw_energy_mid = energy[mid] * throughput[mid]
    assert raw_energy_mid > raw_energy_low * 1.5

    # Above the knee: indistinguishable from NO-DPM.
    high = by_timeout[25.0]
    assert throughput[high] == pytest.approx(nodpm_throughput, rel=0.02)
    assert energy[high] == pytest.approx(nodpm_energy, rel=0.03)

    # Counterproductive near the idle period, beneficial for short ones.
    assert energy[by_timeout[9.0]] > nodpm_energy
    assert energy[by_timeout[1.0]] < nodpm_energy
    assert knee == pytest.approx(11.3)

"""Parametric steady-state benchmark (docs/SOLVERS.md, docs/PERFORMANCE.md).

Quantifies the two promises of the parametric fast path:

* **fig4 per-point cost** — after the one-time elimination of the
  streaming chain, evaluating the paper's awake-period sweep points
  must be at least 100x faster than a per-point ``direct`` solve while
  agreeing to 1e-9 at every point and measure;
* **dense sweeps for free** — a 1000-point dense fig3 sweep through the
  parametric path must finish in less wall-clock than the paper's
  classic 11-point sweep pays for per-point solves.

Writes ``BENCH_parametric.json`` next to the repo root.  Runs as a
benchmark module (``pytest benchmarks/bench_parametric.py``) or as a
plain script (``python benchmarks/bench_parametric.py``).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.casestudies import rpc, streaming
from repro.core.methodology import IncrementalMethodology

OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_parametric.json"

#: Acceptance gates of the parametric work (ROADMAP / docs/SOLVERS.md).
SPEEDUP_GATE = 100.0
AGREEMENT_TOLERANCE = 1e-9

#: Dense fig3 grid size — the smooth-curve mode the coarse paper grid
#: could not afford.
DENSE_POINTS = 1_000

#: Evaluation repeats per point for a stable microsecond-scale timing.
EVAL_REPEATS = 50


def _relative_gap(parametric, direct):
    """Worst relative disagreement across all measures and points."""
    worst = 0.0
    for name, reference_series in direct.items():
        for ours, reference in zip(parametric[name], reference_series):
            scale = max(1.0, abs(reference))
            worst = max(worst, abs(ours - reference) / scale)
    return worst


def _fig4_report() -> dict:
    """Elimination cost + per-point eval vs per-point direct on fig4."""
    points = list(streaming.AWAKE_PERIOD_SWEEP)
    family = streaming.family()

    direct_methodology = IncrementalMethodology(family)
    started = time.perf_counter()
    direct = direct_methodology.sweep_markovian(
        "awake_period", points, method="direct"
    )
    direct_seconds = time.perf_counter() - started

    parametric_methodology = IncrementalMethodology(family)
    archi = family.markovian_dpm
    started = time.perf_counter()
    solution = parametric_methodology.cache.parametric_solution(
        archi,
        "awake_period",
        family.measures,
        (min(points), max(points)),
    )
    build_seconds = time.perf_counter() - started
    started = time.perf_counter()
    for _ in range(EVAL_REPEATS):
        evaluated = {name: [] for name in direct}
        for value in points:
            measures = solution.evaluate(value)
            for name in evaluated:
                evaluated[name].append(measures[name])
    eval_seconds = (time.perf_counter() - started) / EVAL_REPEATS

    per_point_direct = direct_seconds / len(points)
    per_point_eval = eval_seconds / len(points)
    return {
        "parameter": "awake_period",
        "points": len(points),
        "build_seconds": round(build_seconds, 5),
        "per_point_direct_seconds": round(per_point_direct, 7),
        "per_point_eval_seconds": round(per_point_eval, 7),
        "speedup": round(per_point_direct / per_point_eval, 1),
        "max_relative_error": _relative_gap(evaluated, direct),
        "max_fit_error": solution.max_fit_error,
        "recurrent": solution.size,
        "parametric_transitions": solution.diagnostics[
            "parametric_transitions"
        ],
        "fill_ops": solution.diagnostics["fill_ops"],
    }


def _dense_fig3_report() -> dict:
    """1000-point parametric fig3 sweep vs the classic 11-point sweep."""
    coarse = list(rpc.SHUTDOWN_TIMEOUT_SWEEP)
    low, high = min(coarse), max(coarse)
    step = (high - low) / (DENSE_POINTS - 1)
    dense = [low + index * step for index in range(DENSE_POINTS)]
    family = rpc.family()

    coarse_methodology = IncrementalMethodology(family)
    started = time.perf_counter()
    coarse_methodology.sweep_markovian("shutdown_timeout", coarse)
    coarse_seconds = time.perf_counter() - started

    # method=auto: the dense grid crosses the parametric threshold, so
    # this measures the end-to-end fast path (elimination included).
    dense_methodology = IncrementalMethodology(family)
    started = time.perf_counter()
    dense_methodology.sweep_markovian("shutdown_timeout", dense)
    dense_seconds = time.perf_counter() - started
    backends = dense_methodology.runtime_stats()["solver"]["backends"]
    return {
        "parameter": "shutdown_timeout",
        "coarse_points": len(coarse),
        "coarse_seconds": round(coarse_seconds, 5),
        "dense_points": DENSE_POINTS,
        "dense_seconds": round(dense_seconds, 5),
        "dense_backends": backends,
        "max_residual": dense_methodology.runtime_stats()["solver"][
            "max_residual"
        ],
    }


def collect() -> dict:
    return {
        "generated_by": "benchmarks/bench_parametric.py",
        "fig4": _fig4_report(),
        "dense_fig3": _dense_fig3_report(),
    }


def write_report(report: dict) -> Path:
    OUTPUT_PATH.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n"
    )
    return OUTPUT_PATH


def test_bench_parametric():
    report = collect()
    write_report(report)
    fig4 = report["fig4"]
    # Acceptance gates: per-point evaluation after the one-time
    # elimination beats per-point direct solves by >= 100x while
    # agreeing at every point, and the 1000-point dense sweep costs
    # less wall-clock than the classic 11-point sweep.
    assert fig4["max_relative_error"] <= AGREEMENT_TOLERANCE, (
        f"parametric fig4 drifts {fig4['max_relative_error']:.3e} "
        f"from direct"
    )
    assert fig4["speedup"] >= SPEEDUP_GATE, (
        f"parametric per-point evaluation only {fig4['speedup']}x "
        f"faster than direct"
    )
    dense = report["dense_fig3"]
    assert dense["dense_backends"].get("parametric") == DENSE_POINTS
    assert dense["dense_seconds"] < dense["coarse_seconds"], (
        f"dense {dense['dense_points']}-point sweep "
        f"({dense['dense_seconds']}s) slower than the coarse "
        f"{dense['coarse_points']}-point sweep "
        f"({dense['coarse_seconds']}s)"
    )
    assert dense["max_residual"] < 1e-8
    print(
        f"\n  fig4: build {fig4['build_seconds']}s, then "
        f"{fig4['per_point_eval_seconds'] * 1e6:.0f}us/point vs "
        f"{fig4['per_point_direct_seconds'] * 1e3:.2f}ms/point direct "
        f"({fig4['speedup']}x, max rel err "
        f"{fig4['max_relative_error']:.2e})"
    )
    print(
        f"  dense fig3: {dense['dense_points']} points in "
        f"{dense['dense_seconds']}s vs {dense['coarse_points']} points "
        f"in {dense['coarse_seconds']}s"
    )
    print(f"  report written to {OUTPUT_PATH}")


if __name__ == "__main__":
    test_bench_parametric()
    print(f"wrote {OUTPUT_PATH}")

"""Fig. 6: streaming general model (deterministic CBR video, PSP NIC).

Regenerates the four indices by simulation and checks the Sect. 5.3
findings: no loss and no miss at the Aironet 350's 100 ms awake period
(the DPM is transparent there) while saving well over half of the NIC
energy; degradation appears at long awake periods.
"""

import pytest
from conftest import run_once

from repro.experiments import streaming_figures

PERIODS = [25.0, 100.0, 200.0, 400.0, 800.0]


def test_fig6_general(benchmark, streaming_methodology):
    figure = run_once(
        benchmark,
        lambda: streaming_figures.fig6_general(
            PERIODS,
            methodology=streaming_methodology,
            run_length=30_000.0,
            runs=3,
            warmup=1_500.0,
        ),
    )
    print()
    print(figure.report())

    by_period = dict(zip(PERIODS, range(len(PERIODS))))
    loss = figure.dpm_series["loss"]
    miss = figure.dpm_series["miss"]
    quality = figure.dpm_series["quality"]
    energy = figure.dpm_series["energy_per_frame"]
    nodpm_energy = figure.nodpm_series["energy_per_frame"][0]

    at_100 = by_period[100.0]
    # Transparency at 100 ms: no loss, (almost) no miss.
    assert loss[at_100] == pytest.approx(0.0, abs=1e-6)
    assert miss[at_100] < 0.03
    assert quality[at_100] > 0.97
    # ... with a large energy saving.
    assert 1.0 - energy[at_100] / nodpm_energy > 0.6
    # Energy per frame still decreases with the period.
    assert all(a >= b * 0.98 for a, b in zip(energy, energy[1:]))
    # Degradation at the long end (beyond the client-buffer horizon).
    assert miss[by_period[800.0]] > miss[at_100]
    assert loss[by_period[800.0]] > 0.0

"""Ablation: solving the full chain vs its lumped quotient.

Ordinary lumping preserves every ENABLED-based measure exactly (tested in
tests/test_lumping.py); this bench quantifies what it buys on the largest
chain in the repository — the streaming Markovian model — in states and
solve time.
"""

import numpy as np
import pytest

from repro.aemilia import generate_lts
from repro.casestudies.streaming import family
from repro.core import IncrementalMethodology
from repro.ctmc import (
    build_ctmc,
    evaluate_measures,
    lump,
    steady_state,
)


@pytest.fixture(scope="module")
def streaming_setup():
    methodology = IncrementalMethodology(family())
    lts = methodology.build_lts(
        "markovian", "dpm", {"awake_period": 100.0}
    )
    ctmc = build_ctmc(lts)
    return methodology, ctmc


def test_full_chain_solve(benchmark, streaming_setup):
    _, ctmc = streaming_setup
    pi = benchmark.pedantic(
        lambda: steady_state(ctmc), rounds=1, iterations=1
    )
    assert pi.sum() == pytest.approx(1.0)


def test_lump_then_solve(benchmark, streaming_setup):
    methodology, ctmc = streaming_setup

    def run():
        quotient, block_of = lump(ctmc)
        return quotient, steady_state(quotient)

    quotient, pi_quotient = benchmark.pedantic(run, rounds=1, iterations=1)
    reduction = ctmc.num_states / quotient.num_states
    print(
        f"\n  lumping: {ctmc.num_states} -> {quotient.num_states} states "
        f"({reduction:.2f}x)"
    )
    # Measures agree exactly between full and lumped chains.
    measures = methodology.family.measures
    full = evaluate_measures(ctmc, steady_state(ctmc), measures)
    reduced = evaluate_measures(quotient, pi_quotient, measures)
    for name in full:
        assert reduced[name] == pytest.approx(full[name], rel=1e-8, abs=1e-12)

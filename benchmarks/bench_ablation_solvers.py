"""Ablation: steady-state solver choice (DESIGN.md decision #4).

Compares the direct sparse solve, Gauss-Seidel and uniformised power
iteration on the streaming Markovian chain (the largest CTMC in the
repository) for both speed and agreement.
"""

import numpy as np
import pytest

from repro.casestudies.streaming import family
from repro.core import IncrementalMethodology
from repro.ctmc import build_ctmc, steady_state


@pytest.fixture(scope="module")
def streaming_ctmc():
    methodology = IncrementalMethodology(family())
    lts = methodology.build_lts("markovian", "dpm", {"awake_period": 100.0})
    return build_ctmc(lts)


@pytest.mark.parametrize("method", ["direct", "power"])
def test_solver(benchmark, streaming_ctmc, method):
    pi = benchmark.pedantic(
        lambda: steady_state(streaming_ctmc, method=method, tolerance=1e-10),
        rounds=1,
        iterations=1,
    )
    reference = steady_state(streaming_ctmc, method="direct")
    assert np.abs(pi - reference).max() < 1e-6
    assert pi.sum() == pytest.approx(1.0)


def test_gauss_seidel_on_reduced_chain(benchmark):
    """Gauss-Seidel in pure Python is slow; benchmark it on the reduced
    (small-buffer) chain where it still finishes quickly."""
    methodology = IncrementalMethodology(family())
    lts = methodology.build_lts(
        "markovian",
        "dpm",
        {"awake_period": 100.0, "ap_capacity": 2, "b_capacity": 2},
    )
    ctmc = build_ctmc(lts)
    pi = benchmark.pedantic(
        lambda: steady_state(ctmc, method="gauss_seidel", tolerance=1e-12),
        rounds=1,
        iterations=1,
    )
    reference = steady_state(ctmc, method="direct")
    assert np.abs(pi - reference).max() < 1e-8

"""Ablation: steady-state solver choice (DESIGN.md decision #4).

Compares every registered backend (direct sparse LU, ILU-preconditioned
GMRES, vectorized Gauss-Seidel and uniformised power iteration) on the
streaming Markovian chain — the largest CTMC in the repository — for
both speed and agreement.  Since the Gauss-Seidel sweeps were vectorized
(see docs/SOLVERS.md and benchmarks/bench_solvers.py) they run on the
full chain; the historical pure-Python loop needed a reduced-buffer
variant here.
"""

import numpy as np
import pytest

from repro.casestudies.streaming import family
from repro.core import IncrementalMethodology
from repro.ctmc import build_ctmc, steady_state
from repro.ctmc.solvers import available_solvers


@pytest.fixture(scope="module")
def streaming_ctmc():
    methodology = IncrementalMethodology(family())
    lts = methodology.build_lts("markovian", "dpm", {"awake_period": 100.0})
    return build_ctmc(lts)


@pytest.mark.parametrize("method", available_solvers())
def test_solver(benchmark, streaming_ctmc, method):
    pi = benchmark.pedantic(
        lambda: steady_state(streaming_ctmc, method=method, tolerance=1e-10),
        rounds=1,
        iterations=1,
    )
    reference = steady_state(streaming_ctmc, method="direct")
    assert np.abs(pi - reference).max() < 1e-6
    assert pi.sum() == pytest.approx(1.0)

"""Fig. 3 (left): rpc Markovian comparison, DPM vs NO-DPM.

Regenerates throughput, waiting time and energy-per-request as functions of
the DPM shutdown timeout, and checks the paper's shape claims: the DPM is
never counterproductive in energy, always costs throughput/waiting, and
both regimes converge as the timeout grows.
"""

from conftest import run_once

from repro.experiments import rpc_figures


def test_fig3_markov(benchmark, rpc_methodology):
    figure = run_once(
        benchmark,
        lambda: rpc_figures.fig3_markov(
            rpc_figures.QUICK_TIMEOUTS, methodology=rpc_methodology
        ),
    )
    print()
    print(figure.report())

    timeouts = figure.parameter_values
    dpm_energy = figure.dpm_series["energy_per_request"]
    nodpm_energy = figure.nodpm_series["energy_per_request"]
    dpm_throughput = figure.dpm_series["throughput"]
    nodpm_throughput = figure.nodpm_series["throughput"]
    dpm_waiting = figure.dpm_series["waiting_time"]
    nodpm_waiting = figure.nodpm_series["waiting_time"]

    # The DPM is never counterproductive in energy per request (paper).
    assert all(d < n for d, n in zip(dpm_energy, nodpm_energy))
    # Energy savings are paid in throughput and waiting time (paper).
    assert all(d < n for d, n in zip(dpm_throughput, nodpm_throughput))
    assert all(d > n for d, n in zip(dpm_waiting, nodpm_waiting))
    # The shorter the timeout, the larger the impact: monotone series.
    assert dpm_throughput == sorted(dpm_throughput)
    assert dpm_waiting == sorted(dpm_waiting, reverse=True)
    assert dpm_energy == sorted(dpm_energy)
    # Convergence towards NO-DPM at the long-timeout end of the sweep.
    gap_short = nodpm_throughput[0] - dpm_throughput[0]
    gap_long = nodpm_throughput[-1] - dpm_throughput[-1]
    assert gap_long < gap_short / 2

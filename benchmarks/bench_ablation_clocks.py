"""Ablation: clock semantics of the simulator (DESIGN.md decision #1).

Enabling-memory clocks are what make the deterministic DPM timeout
meaningful: the shutdown countdown keeps running while other components
fire events.  Restart semantics (resampling at every state change) can
never let a deterministic timer longer than the largest inter-event gap
expire.  In the rpc general model the largest quiet gap during the idle
period is the 9.7 ms client processing, so:

* a 5 ms timeout fires under both semantics (gap 9.7 > 5),
* a 10 ms timeout fires under enabling memory (10 < 11.3 ms idle period)
  but *never* under restart semantics (10 > 9.7) — the knee of
  fig3-right is distorted.

For all-exponential models the two semantics coincide (memorylessness),
which is what makes the Sect. 5.1 validation protocol sound.
"""

import pytest

from repro.casestudies.rpc import family
from repro.core import IncrementalMethodology
from repro.sim import Simulator, make_generator


@pytest.fixture(scope="module")
def rpc_methodology():
    return IncrementalMethodology(family())


def _energy(methodology, timeout, semantics):
    lts = methodology.build_lts(
        "general", "dpm", {"shutdown_timeout": timeout}
    )
    simulator = Simulator(
        lts, methodology.family.measures, clock_semantics=semantics
    )
    result = simulator.run(10_000.0, make_generator(20040628), warmup=300.0)
    return result.measures["energy"]


def test_enabling_memory_vs_restart(benchmark, rpc_methodology):
    def run_all():
        return {
            "memory_5": _energy(rpc_methodology, 5.0, "enabling_memory"),
            "restart_5": _energy(rpc_methodology, 5.0, "restart"),
            "memory_10": _energy(rpc_methodology, 10.0, "enabling_memory"),
            "restart_10": _energy(rpc_methodology, 10.0, "restart"),
        }

    values = benchmark.pedantic(run_all, rounds=1, iterations=1)

    nodpm_lts = rpc_methodology.build_lts("general", "nodpm")
    nodpm = Simulator(nodpm_lts, rpc_methodology.family.measures).run(
        10_000.0, make_generator(20040628), warmup=300.0
    ).measures["energy"]

    print()
    for name, value in values.items():
        print(f"  {name}: {value:.4f}")
    print(f"  nodpm : {nodpm:.4f}")

    # Short timeout, enabling memory: the DPM saves energy (fig3-right).
    assert values["memory_5"] < nodpm * 0.75
    # Short timeout, restart: worse than a distorted knee — the 3 ms
    # server awaking timer is restarted by every ~2.8 ms client
    # retransmission, so the server never wakes up again: the model
    # livelocks (throughput collapses, energy pinned near idle power).
    assert abs(values["restart_5"] - values["memory_5"]) > 0.3
    # 10 ms timeout: enabling memory still saves (10 < 11.3 ms idle
    # period) ...
    assert values["memory_10"] < nodpm * 0.99
    # ... but under restart the shutdown timer can never expire
    # (10 > 9.7 ms largest quiet gap): identical to NO-DPM.
    assert values["restart_10"] == pytest.approx(nodpm, rel=0.02)
    assert values["restart_10"] - values["memory_10"] > 0.015 * nodpm

"""Fleet-scale compositional benchmark (docs/FLEET.md).

Quantifies the two promises of the fleet engine:

* **scale** — a 7-device fleet whose flat product space holds
  10,485,760 states (coordinator x 8^7, far past anything a
  materialized generator could touch) must solve to the standard
  convergence contract through the exchangeability-lumped matrix-free
  operator, which collapses the chain to 17,160 states *before* any
  operator exists;
* **agreement** — at the sizes where the flat BFS oracle is tractable
  (N in {2, 3, 4}) the lumped and Kronecker-product representations
  must agree with the independently enumerated flat chain to 1e-9 on
  every reward measure.

Writes ``BENCH_fleet.json`` next to the repo root.  Runs as a
benchmark module (``pytest benchmarks/bench_fleet.py``) or as a plain
script (``python benchmarks/bench_fleet.py``).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.casestudies.fleet import build_model
from repro.ctmc.steady_state import steady_state_solution
from repro.fleet import build_flat_topology, evaluate_flat, solve_fleet

OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_fleet.json"

#: Acceptance gates of the fleet work (ISSUE / docs/FLEET.md): the
#: scale solve's *pre-lumping* product space must top a million states,
#: and every representation must agree with the flat oracle to 1e-9.
SCALE_STATES_GATE = 1_000_000
AGREEMENT_TOLERANCE = 1e-9

#: The convergence contract every solve honours: the residual of the
#: normalised distribution, relative to the generator's diagonal scale.
RESIDUAL_TOLERANCE = 1e-10

SCALE_FLEET_SIZE = 7
SCALE_POLICY = "balanced"

#: Sizes where the flat enumeration oracle stays tractable.
AGREEMENT_SIZES = (2, 3, 4)
#: The full Kronecker product is solved alongside the lumped operator
#: up to this size (beyond it the product solve adds minutes, and the
#: product-vs-flat differential is already pinned by tests).
PRODUCT_SIZES = (2, 3)


def _flat_measures(model):
    """Measures from the independent flat-enumeration oracle.

    Solved with the SOR backend: the product-structured flat chain
    suffers catastrophic ILU/LU fill-in, and SOR is fully disjoint
    from the matrix-free gmres/power backends being benchmarked.
    """
    flat = build_flat_topology(model.topology)
    solution = steady_state_solution(flat.ctmc, method="sor")
    return evaluate_flat(model.measures, solution.pi, flat)


def _worst_gap(left, right) -> float:
    """Largest absolute disagreement across the shared measures."""
    assert set(left) == set(right)
    return max(abs(left[name] - right[name]) for name in left)


def _solution_record(solution, seconds: float) -> dict:
    return {
        "method": solution.report.method,
        "iterations": solution.report.iterations,
        "residual": solution.report.residual,
        "matvecs": solution.matvecs,
        "nnz_equivalent": solution.nnz_equivalent,
        "seconds": round(seconds, 4),
    }


def _scale_report() -> dict:
    """The million-state fleet solved matrix-free through lumping."""
    model = build_model(SCALE_FLEET_SIZE, SCALE_POLICY)
    topology = model.topology
    started = time.perf_counter()
    solution = solve_fleet(topology, model.measures)
    seconds = time.perf_counter() - started
    # The contract's scale factor: the lumped generator's largest
    # diagonal magnitude (recomputed here so the gate is explicit).
    from repro.fleet import LumpedFleet

    diagonal_scale = max(
        1.0, float(np.abs(LumpedFleet(topology).operator().diagonal()).max())
    )
    return {
        "fleet_size": SCALE_FLEET_SIZE,
        "policy": SCALE_POLICY,
        "representation": solution.representation,
        "product_states": topology.product_states,
        "lumped_states": topology.lumped_states,
        "compression": round(
            topology.product_states / topology.lumped_states, 1
        ),
        "diagonal_scale": diagonal_scale,
        "solver": _solution_record(solution, seconds),
        "measures": dict(sorted(solution.measures.items())),
    }


def _agreement_report() -> list:
    """Lumped (and product) representations vs the flat oracle."""
    entries = []
    for n in AGREEMENT_SIZES:
        model = build_model(n, "balanced")
        flat = _flat_measures(model)
        started = time.perf_counter()
        lumped = solve_fleet(model.topology, model.measures)
        lumped_seconds = time.perf_counter() - started
        entry = {
            "fleet_size": n,
            "product_states": model.topology.product_states,
            "lumped_states": model.topology.lumped_states,
            "lumped_vs_flat": _worst_gap(lumped.measures, flat),
            "lumped_solver": _solution_record(lumped, lumped_seconds),
        }
        if n in PRODUCT_SIZES:
            started = time.perf_counter()
            product = solve_fleet(
                model.topology, model.measures, representation="product"
            )
            product_seconds = time.perf_counter() - started
            entry["product_vs_flat"] = _worst_gap(product.measures, flat)
            entry["product_solver"] = _solution_record(
                product, product_seconds
            )
        entries.append(entry)
    return entries


def collect() -> dict:
    return {
        "generated_by": "benchmarks/bench_fleet.py",
        "scale": _scale_report(),
        "agreement": _agreement_report(),
    }


def write_report(report: dict) -> Path:
    OUTPUT_PATH.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n"
    )
    return OUTPUT_PATH


def test_bench_fleet():
    report = collect()
    write_report(report)
    scale = report["scale"]
    # Acceptance gates: the scale fleet's flat product space tops a
    # million states, the solve honours the convergence contract
    # matrix-free, and every representation agrees with the flat
    # oracle to 1e-9 wherever the oracle is tractable.
    assert scale["product_states"] >= SCALE_STATES_GATE, (
        f"scale fleet only spans {scale['product_states']} product "
        f"states (gate {SCALE_STATES_GATE})"
    )
    assert scale["solver"]["method"] in ("gmres", "power")
    residual_limit = RESIDUAL_TOLERANCE * scale["diagonal_scale"]
    assert scale["solver"]["residual"] <= residual_limit, (
        f"scale solve residual {scale['solver']['residual']:.3e} "
        f"exceeds the contract {residual_limit:.3e}"
    )
    for entry in report["agreement"]:
        for key in ("lumped_vs_flat", "product_vs_flat"):
            if key in entry:
                assert entry[key] <= AGREEMENT_TOLERANCE, (
                    f"N={entry['fleet_size']} {key} drifts "
                    f"{entry[key]:.3e} from the flat oracle"
                )
    print(
        f"\n  scale: N={scale['fleet_size']} "
        f"{scale['product_states']:,} product states -> "
        f"{scale['lumped_states']:,} lumped "
        f"({scale['compression']}x), solved by "
        f"{scale['solver']['method']} in {scale['solver']['seconds']}s "
        f"({scale['solver']['matvecs']} matvecs, residual "
        f"{scale['solver']['residual']:.2e})"
    )
    for entry in report["agreement"]:
        product = (
            f", product {entry['product_vs_flat']:.2e}"
            if "product_vs_flat" in entry
            else ""
        )
        print(
            f"  agreement N={entry['fleet_size']}: lumped "
            f"{entry['lumped_vs_flat']:.2e}{product} vs flat oracle"
        )
    print(f"  report written to {OUTPUT_PATH}")


if __name__ == "__main__":
    test_bench_fleet()
    print(f"wrote {OUTPUT_PATH}")

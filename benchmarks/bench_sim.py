"""Simulation kernel benchmarks: vectorized throughput and CRN payoff.

Measures the two numbers the fast engine exists for and writes
``BENCH_sim.json`` next to the repo root:

* **throughput** — events/second of the vectorized kernel
  (:class:`~repro.sim.fastengine.FastSimulator`, one batch of
  replications) against the pure-Python reference engine on the fig. 3
  general-phase workload (the rpc det+normal model).  The speedup is a
  same-run ratio, so machine speed cancels out; the acceptance gate is
  >= 5x at the committed batch size.
* **crn** — paired-delta confidence-interval width under common random
  numbers vs independent pairing, DPM-on (``shutdown_timeout=15``, a
  genuine fig. 3 sweep point where the trajectories stay aligned) vs
  DPM-off, at equal event budget.  The gate is >= 2x narrower on every
  measure.

Runs as a benchmark module (``pytest benchmarks/bench_sim.py``) or as a
plain script (``python benchmarks/bench_sim.py``).  The committed JSON
is gated by ``bench_regression.py``.  See docs/SIMULATION.md.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.aemilia.semantics import generate_lts
from repro.casestudies import rpc
from repro.sim import (
    FastSimulator,
    Simulator,
    replicate_paired,
    spawn_generators,
)

OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_sim.json"

SEED = 20040628
RUN_LENGTH = 2_000.0
WARMUP = 100.0

#: Replications per engine for the throughput measurement.  The kernel
#: amortises per-step overhead across the batch, so its batch size is
#: the one the acceptance gate is stated at; the reference engine's
#: rate is per-run and batch-size independent, so fewer runs suffice.
FAST_RUNS = 256
REFERENCE_RUNS = 24

#: CRN comparison point: shutdown_timeout=15.0 (fig. 3 sweep point).
CRN_TIMEOUT = 15.0
CRN_RUNS = 16
CRN_RUN_LENGTH = 1_500.0


def _fig3_model(shutdown_timeout=None):
    overrides = (
        None
        if shutdown_timeout is None
        else {"shutdown_timeout": shutdown_timeout}
    )
    return generate_lts(rpc.family().general_dpm, overrides, 200_000)


def _reference_rate(lts, measures, runs=REFERENCE_RUNS):
    simulator = Simulator(lts, measures)
    generators = spawn_generators(SEED, runs)
    events = 0
    started = time.perf_counter()
    for rng in generators:
        events += simulator.run(RUN_LENGTH, rng, warmup=WARMUP).events_fired
    elapsed = time.perf_counter() - started
    return events, elapsed, events / max(elapsed, 1e-9)


def _fast_rate(lts, measures, runs=FAST_RUNS):
    simulator = FastSimulator(lts, measures)
    started = time.perf_counter()
    results = simulator.run_many(
        RUN_LENGTH, seed=SEED, runs=runs, warmup=WARMUP
    )
    elapsed = time.perf_counter() - started
    events = sum(result.events_fired for result in results)
    return events, elapsed, events / max(elapsed, 1e-9)


def _throughput_case():
    family = rpc.family()
    lts = _fig3_model()
    ref_events, ref_seconds, ref_rate = _reference_rate(
        lts, family.measures
    )
    fast_events, fast_seconds, fast_rate = _fast_rate(
        lts, family.measures
    )
    return {
        "model": "rpc general_dpm (fig3 workload)",
        "run_length": RUN_LENGTH,
        "warmup": WARMUP,
        "reference": {
            "runs": REFERENCE_RUNS,
            "events": ref_events,
            "seconds": round(ref_seconds, 4),
            "events_per_second": round(ref_rate),
        },
        "fast": {
            "runs": FAST_RUNS,
            "events": fast_events,
            "seconds": round(fast_seconds, 4),
            "events_per_second": round(fast_rate),
        },
        "speedup": round(fast_rate / ref_rate, 2),
    }


def _crn_case():
    family = rpc.family()
    lts_dpm = _fig3_model(CRN_TIMEOUT)
    lts_nodpm = generate_lts(family.general_nodpm, None, 200_000)
    settings = dict(
        runs=CRN_RUNS, warmup=WARMUP, seed=SEED
    )
    paired = replicate_paired(
        lts_dpm, lts_nodpm, family.measures, CRN_RUN_LENGTH,
        crn=True, **settings,
    )
    independent = replicate_paired(
        lts_dpm, lts_nodpm, family.measures, CRN_RUN_LENGTH,
        crn=False, **settings,
    )
    measures = {}
    ratios = []
    for name in family.measure_names():
        paired_width = paired.delta[name].half_width
        independent_width = independent.delta[name].half_width
        # A zero paired width means every run's delta was bit-identical
        # (total noise cancellation); cap the ratio so the JSON stays
        # finite and the gate non-vacuous.
        ratio = min(
            independent_width / max(paired_width, 1e-300), 1000.0
        )
        ratios.append(ratio)
        measures[name] = {
            "paired_half_width": paired_width,
            "independent_half_width": independent_width,
            "narrowing": round(ratio, 2),
        }
    return {
        "model": (
            f"rpc general_dpm(shutdown_timeout={CRN_TIMEOUT:g}) "
            f"vs general_nodpm"
        ),
        "runs": CRN_RUNS,
        "run_length": CRN_RUN_LENGTH,
        "warmup": WARMUP,
        "measures": measures,
        "min_narrowing": round(min(ratios), 2),
    }


def collect() -> dict:
    return {"throughput": _throughput_case(), "crn": _crn_case()}


def write_report(report: dict, path: Path = OUTPUT_PATH) -> Path:
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def test_sim_benchmarks(benchmark):
    report = benchmark.pedantic(collect, rounds=1, iterations=1)
    write_report(report)
    throughput = report["throughput"]
    crn = report["crn"]
    # The vectorized kernel's reason to exist: >= 5x the reference
    # engine's event throughput on the fig3 general-phase workload.
    assert throughput["speedup"] >= 5.0
    # The CRN layer's reason to exist: >= 2x narrower paired-delta
    # intervals than independent pairing at equal event budget.
    assert crn["min_narrowing"] >= 2.0
    print(
        f"\n  throughput: fast "
        f"{throughput['fast']['events_per_second']:,} ev/s vs reference "
        f"{throughput['reference']['events_per_second']:,} ev/s "
        f"({throughput['speedup']}x)"
    )
    print(
        f"  crn: delta intervals {crn['min_narrowing']}x narrower "
        f"(worst measure) under common random numbers"
    )
    print(f"  report written to {OUTPUT_PATH}")


if __name__ == "__main__":
    destination = write_report(collect())
    print(f"wrote {destination}")

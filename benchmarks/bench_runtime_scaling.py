"""Runtime scaling: structural state-space caching + parallel execution.

Measures the three layers of :mod:`repro.runtime` on the paper's sweeps
and writes ``BENCH_runtime.json`` next to the repo root:

* **cache** — full Markovian sweeps with the structural cache disabled
  (every point re-explores the state space) vs enabled (one skeleton,
  per-point rate relabeling);
* **workers** — the same sweeps and a replication batch at 1 vs N worker
  processes (bit-identical results, so only wall-clock may differ);
* **phases** — per-phase wall-clock (statespace / relabel / solve /
  simulate) as recorded by the methodology's :class:`~repro.runtime.Timer`.

Runs as a benchmark module (``pytest benchmarks/bench_runtime_scaling.py``)
or as a plain script (``python benchmarks/bench_runtime_scaling.py``).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.casestudies import rpc, streaming
from repro.core.methodology import IncrementalMethodology
from repro.runtime import StructuralStateSpaceCache, resolve_workers
from repro.sim.output import replicate

OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_runtime.json"

#: Worker count exercised by the parallel measurements.
PARALLEL_WORKERS = resolve_workers(None)


def _timed(fn):
    started = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - started


def _sweep_case(family_fn, parameter, values, workers):
    """Cache off/on and serial/parallel wall-clock for one Markovian sweep."""
    uncached = IncrementalMethodology(
        family_fn(), statespace_cache=StructuralStateSpaceCache(enabled=False)
    )
    reference, uncached_seconds = _timed(
        lambda: uncached.sweep_markovian(parameter, values)
    )

    cached = IncrementalMethodology(family_fn())
    series, cached_seconds = _timed(
        lambda: cached.sweep_markovian(parameter, values)
    )
    assert series == reference, "cached sweep changed the results"

    parallel = IncrementalMethodology(family_fn(), workers=workers)
    parallel_series, parallel_seconds = _timed(
        lambda: parallel.sweep_markovian(parameter, values, workers=workers)
    )
    assert parallel_series == reference, "parallel sweep changed the results"

    return {
        "parameter": parameter,
        "points": len(values),
        "serial_uncached_seconds": round(uncached_seconds, 4),
        "serial_cached_seconds": round(cached_seconds, 4),
        "parallel_cached_seconds": round(parallel_seconds, 4),
        "cache_speedup": round(uncached_seconds / max(cached_seconds, 1e-9), 2),
        "total_speedup": round(
            uncached_seconds / max(parallel_seconds, 1e-9), 2
        ),
        "cache": cached.cache.stats.as_dict(),
        "timings": cached.timer.as_dict(),
    }


def _replication_case(workers):
    """Serial vs parallel wall-clock for one replication batch."""
    methodology = IncrementalMethodology(rpc.family())
    lts = methodology.build_lts("general", "dpm")
    measures = methodology.family.measures

    serial, serial_seconds = _timed(
        lambda: replicate(lts, measures, 5_000.0, runs=8, warmup=200.0)
    )
    parallel, parallel_seconds = _timed(
        lambda: replicate(
            lts, measures, 5_000.0, runs=8, warmup=200.0, workers=workers
        )
    )
    assert parallel.samples == serial.samples, (
        "parallel replications diverged from serial"
    )
    return {
        "runs": 8,
        "run_length": 5_000.0,
        "serial_seconds": round(serial_seconds, 4),
        "parallel_seconds": round(parallel_seconds, 4),
        "speedup": round(serial_seconds / max(parallel_seconds, 1e-9), 2),
        "bit_identical": True,
    }


def _phase_case():
    """Per-phase timings of a quick general-model figure run."""
    methodology = IncrementalMethodology(rpc.family())
    methodology.sweep_markovian(
        "shutdown_timeout", [1.0, 5.0, 11.0, 15.0, 25.0]
    )
    methodology.sweep_general(
        "shutdown_timeout", [5.0, 15.0], runs=4, run_length=2_000.0,
        warmup=100.0,
    )
    return methodology.runtime_stats()


def collect(workers: int = PARALLEL_WORKERS) -> dict:
    """Run every measurement and return the report dict."""
    return {
        "cpu_count": os.cpu_count(),
        "workers": workers,
        "sweeps": {
            "fig3-markov": _sweep_case(
                rpc.family,
                "shutdown_timeout",
                list(rpc.SHUTDOWN_TIMEOUT_SWEEP),
                workers,
            ),
            "fig4-markov": _sweep_case(
                streaming.family,
                "awake_period",
                [10.0, 50.0, 100.0, 200.0, 400.0, 800.0],
                workers,
            ),
        },
        "replications": _replication_case(workers),
        "phases": _phase_case(),
    }


def write_report(report: dict, path: Path = OUTPUT_PATH) -> Path:
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def test_runtime_scaling(benchmark):
    report = benchmark.pedantic(collect, rounds=1, iterations=1)
    write_report(report)
    fig3 = report["sweeps"]["fig3-markov"]
    fig4 = report["sweeps"]["fig4-markov"]
    # One skeleton per sweep, every further point a relabel.
    assert fig3["cache"]["misses"] == 1
    assert fig3["cache"]["relabels"] >= fig3["points"] - 1
    assert fig4["cache"]["misses"] == 1
    # The cache must actually pay for itself where generation dominates
    # (the streaming model; the rpc one is small enough to be noisy).
    assert fig4["cache_speedup"] > 1.0
    print(
        f"\n  fig3-markov: {fig3['serial_uncached_seconds']}s uncached -> "
        f"{fig3['serial_cached_seconds']}s cached -> "
        f"{fig3['parallel_cached_seconds']}s with {report['workers']} workers"
    )
    print(
        f"  fig4-markov: cache speedup {fig4['cache_speedup']}x over "
        f"{fig4['points']} points"
    )
    print(f"  report written to {OUTPUT_PATH}")


if __name__ == "__main__":
    destination = write_report(collect())
    print(f"wrote {destination}")

"""A library of DPM policies as pluggable architectural element types.

The paper classifies DPM techniques into deterministic, predictive and
stochastic schemes (Sect. 1) and evaluates two of them (the trivial and
the timeout policy).  This module generalises that into a policy library:
each factory returns a ``DPM_Type`` element type with the *standard power
-management interface* —

* inputs  ``receive_busy_notice`` / ``receive_idle_notice`` (device state
  edges),
* output ``send_shutdown``

— so any policy drops into a topology wired like the rpc case study.
:func:`splice_policy` rewrites an architecture's DPM element type in
place, and :func:`compare_policies` runs the Markovian phase for a set of
candidates.

Policies provided:

* :func:`trivial_policy` — shut down whenever a timer fires, regardless of
  the device state (the paper's Sect. 2.3 policy; fails noninterference
  for blocking clients);
* :func:`idle_timeout_policy` — arm a timer on each idle edge, cancel it
  on a busy edge (the paper's Sect. 3.1 *timeout policy*);
* :func:`n_idle_policy` — predictive flavour: shut down after the device
  has gone idle ``n`` times without the timer ever being beaten (a simple
  history-based predictor);
* :func:`probabilistic_policy` — stochastic flavour: at each idle edge,
  shut down immediately with probability ``p``;
* :func:`never_policy` — the NO-DPM baseline expressed as a policy (its
  timer never fires), useful for like-for-like state spaces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence

from ..aemilia import builder as b
from ..aemilia.architecture import ArchiType
from ..aemilia.elemtypes import ElemType
from ..aemilia.expressions import (
    DataType,
    FunctionCall,
    Literal,
    Variable,
    binop,
)
from ..ctmc.measures import Measure
from ..errors import SpecificationError
from .methodology import solve_markovian_architecture

#: The standard DPM interface expected by :func:`splice_policy`.
DPM_INPUTS = ("receive_busy_notice", "receive_idle_notice")
DPM_OUTPUT = "send_shutdown"


@dataclass(frozen=True)
class Policy:
    """A named, parameterised DPM policy."""

    name: str
    description: str
    elem_type: ElemType


def _interface(definitions) -> ElemType:
    return b.elem_type(
        "DPM_Type",
        definitions,
        inputs=list(DPM_INPUTS),
        outputs=[DPM_OUTPUT],
    )


def trivial_policy(rate: float) -> Policy:
    """Periodic shutdowns regardless of the device state (Sect. 2.3).

    State notices are consumed and ignored so the standard topology still
    type-checks; the shutdown timer never pauses.
    """
    definitions = [
        b.process(
            "Trivial_DPM",
            b.choice(
                b.prefix(DPM_OUTPUT, b.exp(rate), b.call("Trivial_DPM")),
                b.prefix(
                    "receive_busy_notice", b.passive(), b.call("Trivial_DPM")
                ),
                b.prefix(
                    "receive_idle_notice", b.passive(), b.call("Trivial_DPM")
                ),
            ),
        )
    ]
    return Policy(
        "trivial",
        f"periodic shutdown at rate {rate}/ms, state-oblivious",
        _interface(definitions),
    )


def idle_timeout_policy(rate: float) -> Policy:
    """The paper's timeout policy: armed while idle, disarmed while busy."""
    definitions = [
        b.process(
            "Enabled_DPM",
            b.choice(
                b.prefix(DPM_OUTPUT, b.exp(rate), b.call("Disabled_DPM")),
                b.prefix(
                    "receive_busy_notice", b.passive(), b.call("Disabled_DPM")
                ),
                b.prefix(
                    "receive_idle_notice", b.passive(), b.call("Enabled_DPM")
                ),
            ),
        ),
        b.process(
            "Disabled_DPM",
            b.choice(
                b.prefix(
                    "receive_idle_notice", b.passive(), b.call("Enabled_DPM")
                ),
                b.prefix(
                    "receive_busy_notice",
                    b.passive(),
                    b.call("Disabled_DPM"),
                ),
            ),
        ),
    ]
    return Policy(
        "idle-timeout",
        f"shutdown an exp({rate}) delay after each idle edge, cancelled "
        f"by busy edges (the paper's timeout policy)",
        _interface(definitions),
    )


def n_idle_policy(n: int, rate: float) -> Policy:
    """Shut down once the device has gone idle *n* times in a row.

    A crude history-based predictor: each idle edge increments a counter,
    a busy edge arriving before the timer fires resets it, and the
    shutdown timer only arms once the counter reaches ``n``.
    """
    if n < 1:
        raise SpecificationError(f"n_idle_policy needs n >= 1, got {n}")
    count = Variable("k")
    definitions = [
        b.process(
            "Counting_DPM",
            b.choice(
                b.cond(
                    binop(">=", count, n),
                    b.prefix(
                        DPM_OUTPUT, b.exp(rate), b.call("Counting_DPM", 0)
                    ),
                ),
                b.prefix(
                    "receive_idle_notice",
                    b.passive(),
                    # Saturating increment keeps the state space finite.
                    b.call(
                        "Counting_DPM",
                        FunctionCall(
                            "min",
                            (binop("+", count, 1), Literal(n)),
                        ),
                    ),
                ),
                b.prefix(
                    "receive_busy_notice",
                    b.passive(),
                    b.call("Counting_DPM", 0),
                ),
            ),
            formals=[b.formal("k", DataType.INT, 0)],
        )
    ]
    return Policy(
        f"{n}-idle",
        f"shutdown (exp({rate}) delay) after {n} consecutive idle edges",
        _interface(definitions),
    )


def probabilistic_policy(probability: float, rate: float) -> Policy:
    """At each idle edge, arm the shutdown timer with probability *p*.

    The Bernoulli choice is resolved with immediate weights, the stochastic
    control flavour of the paper's classification.
    """
    if not 0.0 < probability < 1.0:
        raise SpecificationError(
            f"probability must be in (0, 1), got {probability}"
        )
    definitions = [
        b.process(
            "Deciding_DPM",
            b.choice(
                b.prefix(
                    "receive_idle_notice", b.passive(), b.call("Tossing_DPM")
                ),
                b.prefix(
                    "receive_busy_notice",
                    b.passive(),
                    b.call("Deciding_DPM"),
                ),
            ),
        ),
        b.process(
            "Tossing_DPM",
            b.choice(
                b.prefix(
                    "arm", b.imm(1, probability), b.call("Armed_DPM")
                ),
                b.prefix(
                    "skip", b.imm(1, 1.0 - probability), b.call("Deciding_DPM")
                ),
            ),
        ),
        b.process(
            "Armed_DPM",
            b.choice(
                b.prefix(DPM_OUTPUT, b.exp(rate), b.call("Deciding_DPM")),
                b.prefix(
                    "receive_busy_notice",
                    b.passive(),
                    b.call("Deciding_DPM"),
                ),
                b.prefix(
                    "receive_idle_notice", b.passive(), b.call("Armed_DPM")
                ),
            ),
        ),
    ]
    return Policy(
        f"bernoulli-{probability:g}",
        f"arm the shutdown timer with probability {probability:g} at each "
        f"idle edge",
        _interface(definitions),
    )


def never_policy() -> Policy:
    """A policy that never shuts the device down (NO-DPM baseline)."""
    definitions = [
        b.process(
            "Inert_DPM",
            b.choice(
                b.prefix(DPM_OUTPUT, b.exp(1e-12), b.call("Inert_DPM")),
                b.prefix(
                    "receive_busy_notice", b.passive(), b.call("Inert_DPM")
                ),
                b.prefix(
                    "receive_idle_notice", b.passive(), b.call("Inert_DPM")
                ),
            ),
        )
    ]
    return Policy(
        "never",
        "no power management (vanishing shutdown rate)",
        _interface(definitions),
    )


def splice_policy(archi: ArchiType, policy: Policy) -> ArchiType:
    """Replace the architecture's ``DPM_Type`` with the policy's element.

    The architecture must declare a ``DPM_Type`` element (wired with the
    standard interface); everything else is kept as is.
    """
    if "DPM_Type" not in archi.elem_types:
        raise SpecificationError(
            f"architecture {archi.name!r} has no DPM_Type to replace"
        )
    for name in DPM_INPUTS:
        if not policy.elem_type.has_interaction(name):
            raise SpecificationError(
                f"policy {policy.name!r} misses interaction {name!r}"
            )
    elem_types = [
        policy.elem_type if et.name == "DPM_Type" else et
        for et in archi.elem_types.values()
    ]
    return ArchiType(
        archi.name,
        tuple(elem_types),
        archi.instances,
        archi.attachments,
        archi.const_params,
    )


def compare_policies(
    base_archi: ArchiType,
    policies: Sequence[Policy],
    measures: Sequence[Measure],
    const_overrides: Optional[Mapping[str, object]] = None,
    max_states: int = 200_000,
) -> Dict[str, Dict[str, float]]:
    """Run the Markovian phase for each policy; results keyed by name."""
    results: Dict[str, Dict[str, float]] = {}
    for policy in policies:
        spliced = splice_policy(base_archi, policy)
        results[policy.name] = solve_markovian_architecture(
            spliced, measures, const_overrides, max_states
        )
    return results

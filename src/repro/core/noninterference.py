"""Noninterference analysis of DPM transparency (the paper's Sect. 3).

The check casts DPM transparency as a language-based security property
(Goguen–Meseguer noninterference, in the process-algebraic formulation of
Focardi–Gorrieri): the DPM's actions are *high*, the client-observable
actions are *low*, and the DPM does not interfere with the client iff

    hide_everything_but_low(system)  ~weak~  hide_everything_but_low(
                                                 system with high prevented)

i.e. the system with the DPM *hidden* is weakly bisimilar to the system
with the DPM *removed*.  On failure, a modal-logic distinguishing formula
is produced as the diagnostic the paper's workflow relies on (Sect. 3.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence, Union

from ..aemilia.architecture import ArchiType
from ..aemilia.semantics import generate_lts
from ..errors import AnalysisError
from ..lts.distinguish import distinguishing_formula, verify_distinguishing
from ..lts.hml import Formula
from ..lts.labels import matches_any
from ..lts.lts import LTS
from ..lts.ops import hide, restrict
from ..lts.weak import WeakEquivalenceCheck, check_weak_equivalence


@dataclass
class NoninterferenceResult:
    """Outcome of a noninterference check.

    Attributes
    ----------
    holds:
        True when the DPM is transparent to the low observer.
    formula:
        On failure, a weak-HML formula satisfied by the hidden-DPM system
        and violated by the no-DPM system (or vice versa; see
        ``formula_side``).  ``None`` when the check holds.
    formula_side:
        ``"with_dpm"`` when the formula is satisfied by the system with
        the (hidden) DPM, ``"without_dpm"`` otherwise.
    hidden / restricted:
        The two compared low-observation systems.
    """

    holds: bool
    formula: Optional[Formula]
    formula_side: Optional[str]
    hidden: LTS
    restricted: LTS
    check: WeakEquivalenceCheck

    def diagnostic(self) -> str:
        """Human-readable verdict, including the formula on failure."""
        if self.holds:
            return (
                "noninterference HOLDS: hiding the high (DPM) actions is "
                "weakly bisimilar to preventing them"
            )
        lines = [
            "noninterference FAILS: the two low observations are not "
            "weakly bisimilar.",
            f"Distinguishing formula (satisfied by the system "
            f"{'WITH' if self.formula_side == 'with_dpm' else 'WITHOUT'} "
            f"the DPM):",
            self.formula.render(indent=2),
        ]
        return "\n".join(lines)


def low_observation(
    lts: LTS, low_patterns: Sequence[str]
) -> LTS:
    """Hide every label that is not low-observable."""
    patterns = list(low_patterns)
    return hide(lts, lambda label: not matches_any(patterns, label))


def check_noninterference(
    system: Union[ArchiType, LTS],
    high_patterns: Sequence[str],
    low_patterns: Sequence[str],
    const_overrides: Optional[Mapping[str, object]] = None,
    max_states: int = 200_000,
) -> NoninterferenceResult:
    """Run the hide-vs-restrict weak bisimulation check.

    Parameters
    ----------
    system:
        An architecture (its functional state space is generated here) or a
        ready-made LTS.
    high_patterns:
        Label patterns of the DPM actions (e.g. ``["DPM.*"]`` or the
        individual interactions).
    low_patterns:
        Label patterns the observer sees (client actions).
    """
    high = list(high_patterns)
    low = list(low_patterns)
    overlap = [p for p in high if p in low]
    if overlap:
        raise AnalysisError(
            f"patterns {overlap} are both high and low; the two sets must "
            f"be disjoint"
        )
    if isinstance(system, ArchiType):
        lts = generate_lts(
            system, const_overrides, max_states, apply_preemption=True
        )
    else:
        lts = system
    hidden = low_observation(lts, low)
    restricted = low_observation(restrict(lts, high), low)
    check = check_weak_equivalence(hidden, restricted)
    formula: Optional[Formula] = None
    side: Optional[str] = None
    if not check.equivalent:
        formula = distinguishing_formula(
            check.result, check.initial_first, check.initial_second
        )
        side = "with_dpm"
        if formula is None:  # pragma: no cover - defensive
            raise AnalysisError(
                "states reported non-equivalent but no formula was found"
            )
        if not verify_distinguishing(
            check.result, formula, check.initial_first, check.initial_second
        ):  # pragma: no cover - the construction guarantees this
            raise AnalysisError("distinguishing formula failed verification")
    return NoninterferenceResult(
        holds=check.equivalent,
        formula=formula,
        formula_side=side,
        hidden=hidden,
        restricted=restricted,
        check=check,
    )


def high_patterns_for_instances(instances: Sequence[str]) -> List[str]:
    """Wildcard patterns covering every action of the given instances."""
    return [f"{name}.*" for name in instances]

"""The paper's contribution: the incremental DPM assessment methodology."""

from .methodology import (
    AssessmentReport,
    IncrementalMethodology,
    ModelFamily,
    solve_markovian_architecture,
)
from .noninterference import (
    NoninterferenceResult,
    check_noninterference,
    high_patterns_for_instances,
    low_observation,
)
from .policies import (
    Policy,
    compare_policies,
    idle_timeout_policy,
    n_idle_policy,
    never_policy,
    probabilistic_policy,
    splice_policy,
    trivial_policy,
)
from .reporting import ascii_chart, format_comparison, format_number, format_table
from .tradeoff import TradeoffCurve, TradeoffPoint, compare_curves
from .validation import (
    MeasureValidation,
    ValidationReport,
    cross_validate,
    exponential_plugin,
    require_valid,
)

__all__ = [
    "AssessmentReport",
    "IncrementalMethodology",
    "ModelFamily",
    "solve_markovian_architecture",
    "NoninterferenceResult",
    "check_noninterference",
    "high_patterns_for_instances",
    "low_observation",
    "Policy",
    "compare_policies",
    "idle_timeout_policy",
    "n_idle_policy",
    "never_policy",
    "probabilistic_policy",
    "splice_policy",
    "trivial_policy",
    "ascii_chart",
    "format_comparison",
    "format_number",
    "format_table",
    "TradeoffCurve",
    "TradeoffPoint",
    "compare_curves",
    "MeasureValidation",
    "ValidationReport",
    "cross_validate",
    "exponential_plugin",
    "require_valid",
]

"""Cross-validation of general models against Markovian ones (Sect. 5.1).

The paper validates its general (simulated) models by plugging exponential
distributions — consistent with the rates of the Markovian model — into the
general description, simulating, and checking that the estimates agree with
the analytic Markovian results.  Here the plug-in is a mechanical transform
on the rate-labelled LTS: every generally distributed rate is replaced by
the exponential with the same mean.  The transformed model is then both

* solved analytically (it is now a Markovian model), and
* simulated with the discrete-event engine,

and the per-measure confidence intervals are compared against the analytic
values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from ..aemilia.rates import GeneralRate
from ..ctmc.build import build_ctmc
from ..ctmc.measures import Measure, evaluate_measure
from ..ctmc.steady_state import steady_state
from ..errors import ValidationError
from ..lts.lts import LTS
from ..sim.output import Estimate, replicate


def exponential_plugin(lts: LTS) -> LTS:
    """Replace every general rate by the exponential with the same mean."""
    result = LTS(lts.initial)
    for state in lts.states():
        result.add_state()
        result.set_state_info(state, lts.state_info(state))
    for transition in lts.transitions:
        rate = transition.rate
        if isinstance(rate, GeneralRate):
            rate = rate.exponential_equivalent()
        result.add_transition(
            transition.source,
            transition.label,
            transition.target,
            rate,
            transition.event,
            transition.weight,
        )
    return result


@dataclass
class MeasureValidation:
    """Validation verdict for one measure."""

    name: str
    analytic: float
    simulated: Estimate
    within_interval: bool
    relative_error: float

    def __str__(self) -> str:
        flag = "OK " if self.within_interval else "FAIL"
        return (
            f"[{flag}] {self.name}: analytic={self.analytic:.6g}, "
            f"simulated={self.simulated} "
            f"(rel.err {self.relative_error:.2%})"
        )


@dataclass
class ValidationReport:
    """Results of one cross-validation run."""

    measures: Dict[str, MeasureValidation]

    @property
    def passed(self) -> bool:
        """True when every measure's CI covers the analytic value."""
        return all(v.within_interval for v in self.measures.values())

    def __str__(self) -> str:
        header = (
            "cross-validation PASSED"
            if self.passed
            else "cross-validation FAILED"
        )
        lines = [header]
        lines.extend(str(v) for v in self.measures.values())
        return "\n".join(lines)


def cross_validate(
    general_lts: LTS,
    measures: Sequence[Measure],
    run_length: float,
    runs: int = 30,
    warmup: float = 0.0,
    seed: int = 20040628,
    confidence: float = 0.90,
    relative_tolerance: float = 0.10,
    workers: int = 1,
    retry=None,
    faults=None,
    tracer=None,
    engine=None,
) -> ValidationReport:
    """Validate the simulator against the analytic solution (Sect. 5.1).

    A measure validates when the analytic value falls inside the simulated
    confidence interval *or* within ``relative_tolerance`` of the mean (the
    second clause keeps near-zero measures, whose intervals collapse, from
    failing on noise).  *retry*/*faults*/*tracer* are forwarded to the
    replication engine (docs/RELIABILITY.md); they cannot change the
    verdict, only survive worker failures while reaching it.  *engine*
    selects the simulation kernel (``reference``/``fast``,
    docs/SIMULATION.md) — the verdict criteria are identical either way.
    """
    plugin = exponential_plugin(general_lts)
    ctmc = build_ctmc(plugin)
    pi = steady_state(ctmc)
    replication = replicate(
        plugin,
        measures,
        run_length,
        runs=runs,
        warmup=warmup,
        seed=seed,
        confidence=confidence,
        workers=workers,
        retry=retry,
        faults=faults,
        tracer=tracer,
        engine=engine,
    )
    report: Dict[str, MeasureValidation] = {}
    for measure in measures:
        analytic = evaluate_measure(ctmc, pi, measure)
        estimate = replication[measure.name]
        scale = max(abs(analytic), abs(estimate.mean), 1e-12)
        relative_error = abs(analytic - estimate.mean) / scale
        within = estimate.overlaps(analytic) or (
            relative_error <= relative_tolerance
        )
        report[measure.name] = MeasureValidation(
            measure.name, analytic, estimate, within, relative_error
        )
    return ValidationReport(report)


def require_valid(report: ValidationReport) -> None:
    """Raise :class:`ValidationError` unless the report passed."""
    if not report.passed:
        raise ValidationError(str(report))

"""Energy/quality trade-off analysis (the paper's Figs. 7 and 8).

The final step of the methodology plots, for every DPM operation rate, the
energy cost against a performance penalty (waiting time for rpc, miss rate
for streaming).  The paper observes that several points of the general rpc
curve are *beyond the Pareto curve* — dominated by other operating points
both in energy and in performance — which identifies counterproductive DPM
timeouts.  This module provides the curve container and Pareto analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class TradeoffPoint:
    """One DPM operating point on a trade-off curve.

    ``parameter`` is the swept DPM operation rate (shutdown timeout / awake
    period); ``performance`` and ``energy`` are the two objectives, both to
    be minimised (callers pass e.g. waiting time, not throughput).
    """

    parameter: float
    performance: float
    energy: float

    def dominates(self, other: "TradeoffPoint", tolerance: float = 0.0) -> bool:
        """Strict Pareto dominance (both objectives minimised)."""
        not_worse = (
            self.performance <= other.performance + tolerance
            and self.energy <= other.energy + tolerance
        )
        strictly_better = (
            self.performance < other.performance - tolerance
            or self.energy < other.energy - tolerance
        )
        return not_worse and strictly_better


@dataclass
class TradeoffCurve:
    """A named trade-off curve (one per model family/phase)."""

    name: str
    points: List[TradeoffPoint]

    @classmethod
    def from_sweep(
        cls,
        name: str,
        parameters: Sequence[float],
        performance: Sequence[float],
        energy: Sequence[float],
    ) -> "TradeoffCurve":
        """Assemble a curve from parallel sweep result arrays."""
        if not (len(parameters) == len(performance) == len(energy)):
            raise ValueError("sweep arrays must have equal length")
        points = [
            TradeoffPoint(p, x, y)
            for p, x, y in zip(parameters, performance, energy)
        ]
        return cls(name, points)

    def pareto_front(self, tolerance: float = 0.0) -> List[TradeoffPoint]:
        """Non-dominated points, sorted by performance."""
        front = [
            point
            for point in self.points
            if not any(
                other.dominates(point, tolerance)
                for other in self.points
                if other is not point
            )
        ]
        return sorted(front, key=lambda p: (p.performance, p.energy))

    def dominated_points(self, tolerance: float = 0.0) -> List[TradeoffPoint]:
        """Operating points beyond the Pareto curve (counterproductive)."""
        front = set(id(p) for p in self.pareto_front(tolerance))
        return [p for p in self.points if id(p) not in front]

    def knee_point(self) -> Optional[TradeoffPoint]:
        """Heuristic knee: closest front point to the normalised ideal."""
        front = self.pareto_front()
        if not front:
            return None
        performances = [p.performance for p in front]
        energies = [p.energy for p in front]
        performance_span = max(performances) - min(performances) or 1.0
        energy_span = max(energies) - min(energies) or 1.0

        def distance(point: TradeoffPoint) -> float:
            dx = (point.performance - min(performances)) / performance_span
            dy = (point.energy - min(energies)) / energy_span
            return dx * dx + dy * dy

        return min(front, key=distance)

    def describe(self) -> str:
        """Short textual summary (front size, dominated share, knee)."""
        front = self.pareto_front()
        dominated = self.dominated_points()
        knee = self.knee_point()
        lines = [
            f"trade-off curve {self.name!r}: {len(self.points)} points, "
            f"{len(front)} on the Pareto front, {len(dominated)} dominated"
        ]
        if knee is not None:
            lines.append(
                f"  knee at parameter={knee.parameter:g} "
                f"(performance={knee.performance:.6g}, "
                f"energy={knee.energy:.6g})"
            )
        for point in dominated:
            lines.append(
                f"  dominated: parameter={point.parameter:g} "
                f"(performance={point.performance:.6g}, "
                f"energy={point.energy:.6g})"
            )
        return "\n".join(lines)


def compare_curves(
    curves: Sequence[TradeoffCurve],
) -> Dict[str, Tuple[int, int]]:
    """Per-curve (front size, dominated count) summary table data."""
    return {
        curve.name: (len(curve.pareto_front()), len(curve.dominated_points()))
        for curve in curves
    }

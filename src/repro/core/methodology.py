"""The incremental assessment methodology (the paper's Fig. 1).

A :class:`ModelFamily` bundles the six models the methodology relates —
functional, Markovian and general descriptions, each with and without the
DPM — together with the high/low action sets and the performance measures.
:class:`IncrementalMethodology` then drives the three phases:

1. :meth:`~IncrementalMethodology.assess_functionality` — noninterference
   check on the functional model (correct-by-construction for the Markovian
   one, which only adds rates);
2. :meth:`~IncrementalMethodology.solve_markovian` /
   :meth:`~IncrementalMethodology.sweep_markovian` — analytic comparison of
   the reward measures with and without DPM while sweeping DPM operation
   rates;
3. :meth:`~IncrementalMethodology.validate` then
   :meth:`~IncrementalMethodology.simulate_general` /
   :meth:`~IncrementalMethodology.sweep_general` — cross-validated
   simulation of the realistic (generally timed) models.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..aemilia.architecture import ArchiType
from ..aemilia.semantics import generate_lts
from ..ctmc.build import build_ctmc
from ..ctmc.measures import Measure, evaluate_measures
from ..ctmc.parametric import record_parametric_fallback
from ..ctmc.solvers import resolve_method
from ..ctmc.steady_state import steady_state, steady_state_solution
from ..errors import AnalysisError, ParametricError
from ..lts.lts import LTS
from ..obs import log as obs_log
from ..obs import metrics as obs_metrics
from ..obs import tracing
from ..runtime import (
    FaultInjector,
    ParallelExecutor,
    RetryPolicy,
    StructuralStateSpaceCache,
    SweepCheckpoint,
    Timer,
    TraceRecorder,
    resolve_workers,
    sweep_fingerprint,
)
from ..distributions import Distribution
from ..sim.output import (
    PairedReplicationResult,
    ReplicationResult,
    replicate,
    replicate_paired,
    resolve_engine,
)
from ..sim.splitting import SplittingResult, split_replicate
from ..workload.hooks import apply_workload, workload_fingerprint
from .noninterference import NoninterferenceResult, check_noninterference
from .validation import ValidationReport, cross_validate

#: The two variants every phase compares.
VARIANTS = ("dpm", "nodpm")

#: Point count from which an ``auto`` Markovian sweep tries the
#: parametric fast path: below it the one-time elimination cost is not
#: amortised and the existing figures keep their bit-identical per-point
#: solves; at or above it (dense grids) the elimination pays for itself
#: many times over.
PARAMETRIC_AUTO_THRESHOLD = 100

_LOG = obs_log.get_logger("methodology")


def _phase_span(name: str):
    """Open a tracing span named *name* around a methodology phase.

    A no-op when no tracer is active; when one is, the phase span is the
    parent every executor point span (and, through
    :class:`~repro.obs.tracing.TraceContext` propagation, every
    worker-side span) attaches under.  It is opened *before* the sweep
    journal loads so a checkpoint resume can stamp its ``resumed_from``
    attribute onto the phase.
    """

    def wrap(fn):
        @functools.wraps(fn)
        def inner(self, *args, **kwargs):
            with tracing.span(name, case=self.family.name):
                return fn(self, *args, **kwargs)

        return inner

    return wrap


def _count_sweep_points(case: str, kind: str, count: int) -> None:
    """Bump ``repro_sweep_points_total`` for one completed sweep."""
    registry = obs_metrics.get_registry()
    if registry.enabled and count:
        obs_metrics.SWEEP_POINTS.on(registry).labels(
            case=case, kind=kind
        ).inc(count)


def summarize_solver_records(
    records: Sequence[Mapping[str, object]],
) -> Dict[str, object]:
    """Aggregate per-point solver reports into one runtime-stats entry.

    ``backends`` counts how many points each backend solved, and the
    residual/mass-defect maxima bound the numerical quality of the whole
    sweep: the acceptance contract is ``max_residual < 1e-8``.
    """
    backends: Dict[str, int] = {}
    for record in records:
        name = str(record.get("method", "?"))
        backends[name] = backends.get(name, 0) + 1
    return {
        "points": len(records),
        "backends": backends,
        "max_residual": max(
            (float(r.get("residual", 0.0)) for r in records), default=0.0
        ),
        "max_mass_defect": max(
            (float(r.get("mass_defect", 0.0)) for r in records),
            default=0.0,
        ),
        "total_iterations": sum(
            int(r.get("iterations", 0)) for r in records
        ),
    }


# ---------------------------------------------------------------------------
# Parallel sweep workers (module-level so the process pool can pickle them
# by reference; the heavy shared payload ships once per worker).
# ---------------------------------------------------------------------------

def _solve_ctmc_point(
    lts: LTS, measures: Sequence[Measure], method: str
) -> Dict[str, object]:
    """The single concrete-solve entry point of every Markovian path.

    One-point solves and both sweep workers funnel through here, so the
    build-solve-evaluate contract (and any future interception, like the
    parametric fast path's fallback) lives in exactly one place.
    """
    ctmc = build_ctmc(lts)
    solution = steady_state_solution(ctmc, method=method)
    return {
        "measures": evaluate_measures(ctmc, solution.pi, measures),
        "solver": solution.report.as_dict(),
    }


def _markov_point_cached(shared: Any, env: Mapping[str, object]) -> Dict[str, object]:
    """Solve one Markovian sweep point by relabeling the shared skeleton."""
    skeleton, measures, method = shared
    return _solve_ctmc_point(skeleton.relabel(env), measures, method)


def _markov_point_fresh(shared: Any, overrides: Mapping[str, object]) -> Dict[str, object]:
    """Solve one Markovian sweep point from scratch (structural parameter)."""
    archi, measures, method, max_states = shared
    return _solve_ctmc_point(
        generate_lts(archi, overrides, max_states), measures, method
    )


def _markov_point_parametric(shared: Any, value: float) -> Dict[str, object]:
    """Evaluate one sweep point on a prebuilt parametric solution.

    Still one executor task per point: checkpoint journals, retries,
    chaos injection and workers-N bit-identity all apply unchanged —
    the task is just microseconds instead of a full solve.
    """
    (solution,) = shared
    with tracing.span("parametric:eval", value=float(value)):
        return {
            "measures": solution.evaluate(value),
            "solver": solution.report_dict(),
        }


def _general_point_cached(shared: Any, env: Mapping[str, object]) -> Dict[str, float]:
    """Simulate one general sweep point on a relabeled shared skeleton."""
    (
        skeleton, measures, run_length, runs, warmup, seed, pattern,
        workload, engine,
    ) = shared
    lts = skeleton.relabel(env)
    if workload is not None:
        lts = apply_workload(lts, pattern, workload)
    replication = replicate(
        lts, measures, run_length, runs=runs, warmup=warmup, seed=seed,
        engine=engine,
    )
    return {name: est.mean for name, est in replication.estimates.items()}


def _general_point_fresh(shared: Any, overrides: Mapping[str, object]) -> Dict[str, float]:
    """Simulate one general sweep point from scratch (structural parameter)."""
    (
        archi, measures, run_length, runs, warmup, seed, max_states,
        pattern, workload, engine,
    ) = shared
    lts = generate_lts(archi, overrides, max_states)
    if workload is not None:
        lts = apply_workload(lts, pattern, workload)
    replication = replicate(
        lts, measures, run_length, runs=runs, warmup=warmup, seed=seed,
        engine=engine,
    )
    return {name: est.mean for name, est in replication.estimates.items()}


def _general_point_paired(shared: Any, value: float) -> Dict[str, Dict[str, float]]:
    """Simulate one paired (DPM vs NO-DPM) general sweep point.

    Both variants run under the common-random-numbers discipline: shared
    event types draw identical durations run by run, so the per-point
    delta intervals are far narrower than independent replications would
    give (docs/SIMULATION.md).  The swept parameter binds only on the
    DPM variant — the NO-DPM baseline has no DPM constants to sweep.
    """
    (
        archi_dpm, archi_nodpm, parameter, overrides, measures,
        run_length, runs, warmup, seed, max_states, pattern, workload,
        engine, crn,
    ) = shared
    lts_dpm = generate_lts(
        archi_dpm, dict(overrides, **{parameter: value}), max_states
    )
    lts_nodpm = generate_lts(archi_nodpm, dict(overrides), max_states)
    if workload is not None:
        lts_dpm = apply_workload(lts_dpm, pattern, workload)
        lts_nodpm = apply_workload(lts_nodpm, pattern, workload)
    paired = replicate_paired(
        lts_dpm, lts_nodpm, measures, run_length, runs=runs,
        warmup=warmup, seed=seed, engine=engine, crn=crn,
    )
    return {
        "dpm": {
            name: est.mean for name, est in paired.first.estimates.items()
        },
        "nodpm": {
            name: est.mean
            for name, est in paired.second.estimates.items()
        },
        "delta": {
            name: est.mean for name, est in paired.delta.items()
        },
        "delta_half_width": {
            name: est.half_width for name, est in paired.delta.items()
        },
    }


def _rare_point(
    shared: Any, overrides: Mapping[str, object]
) -> Dict[str, object]:
    """Rare-event splitting estimate at one general sweep point.

    One task per point, one splitting tree per replication inside it —
    the whole point runs on deterministic slot streams, so parallel
    sweeps are bit-identical to serial ones just like the plain general
    sweep workers.
    """
    (
        archi, measures, rare_measure, run_length, runs, warmup, seed,
        max_states, pattern, workload, engine, levels, splits, segments,
    ) = shared
    lts = generate_lts(archi, overrides, max_states)
    if workload is not None:
        lts = apply_workload(lts, pattern, workload)
    result = split_replicate(
        lts, measures, run_length, levels=levels, splits=splits,
        segments=segments, rare_measure=rare_measure, runs=runs,
        warmup=warmup, seed=seed, engine=engine,
    )
    rare = result.rare_probability()
    return {
        "measures": {
            name: est.mean for name, est in result.estimates.items()
        },
        "rare_probability": rare.mean,
        "rare_low": rare.low,
        "rare_high": rare.high,
    }


def _workload_point(shared: Any, item: Tuple) -> Dict[str, float]:
    """Simulate one (workload class, sweep point) task of sweep_workloads.

    The item carries the workload distribution (possibly a TraceReplay —
    its replay cursors are dropped on pickling, so every worker starts
    clean) and either a relabel environment (cached skeleton) or an
    override dict (fresh generation); the result depends only on
    ``(shared, item)``, which is what makes serial and parallel
    executions bit-identical.
    """
    (
        skeleton, archi, measures, run_length, runs, warmup, seed,
        pattern, max_states,
    ) = shared
    workload, point = item
    if skeleton is not None:
        lts = skeleton.relabel(point)
    else:
        lts = generate_lts(archi, point, max_states)
    if workload is not None:
        lts = apply_workload(lts, pattern, workload)
    replication = replicate(
        lts, measures, run_length, runs=runs, warmup=warmup, seed=seed
    )
    return {name: est.mean for name, est in replication.estimates.items()}


@dataclass
class ModelFamily:
    """The six models of one case study plus analysis metadata."""

    name: str
    functional_dpm: ArchiType
    markovian_dpm: ArchiType
    markovian_nodpm: ArchiType
    general_dpm: ArchiType
    general_nodpm: ArchiType
    high_patterns: Sequence[str]
    low_patterns: Sequence[str]
    measures: Sequence[Measure]
    #: Optional separate functional NO-DPM model; when absent, phase 1
    #: derives it by preventing the high actions (the standard check).
    functional_nodpm: Optional[ArchiType] = None
    #: Label pattern of the case study's workload hook — the timed
    #: transition whose duration a ``--workload`` replaces (e.g. the rpc
    #: client's ``C.process_result_packet``).  ``None`` means the case
    #: study takes no workload.
    workload_pattern: Optional[str] = None

    def measure_names(self) -> List[str]:
        """Names of the declared measures, in order."""
        return [m.name for m in self.measures]


def solve_markovian_architecture(
    archi: ArchiType,
    measures: Sequence[Measure],
    const_overrides: Optional[Mapping[str, object]] = None,
    max_states: int = 200_000,
    method: Optional[str] = None,
) -> Dict[str, float]:
    """Generate, build the CTMC, solve, and evaluate the measures."""
    lts = generate_lts(archi, const_overrides, max_states)
    ctmc = build_ctmc(lts)
    pi = steady_state(ctmc, method=method)
    return evaluate_measures(ctmc, pi, measures)


class IncrementalMethodology:
    """Drives the paper's three assessment phases over a model family.

    ``workers`` sets the default parallelism of the sweep and replication
    calls (1 = serial; ``None`` auto-detects).  Parallel runs are
    bit-identical to serial ones.  State spaces are cached on two levels:
    a concrete per-override cache (``build_lts`` returns the same object
    for the same request) backed by a :class:`StructuralStateSpaceCache`
    that re-labels rates instead of re-exploring when only rate-valued
    parameters change.
    """

    def __init__(
        self,
        family: ModelFamily,
        max_states: int = 200_000,
        workers: Optional[int] = 1,
        statespace_cache: Optional[StructuralStateSpaceCache] = None,
        retry: Optional[RetryPolicy] = None,
        faults: Optional[FaultInjector] = None,
        tracer: Optional[TraceRecorder] = None,
        solver: Optional[str] = None,
        workload: Optional[Distribution] = None,
        engine: Optional[str] = None,
    ):
        self.family = family
        self.max_states = max_states
        self.workers = resolve_workers(workers)
        self.cache = statespace_cache or StructuralStateSpaceCache()
        self.timer = Timer()
        self.retry = retry
        self.faults = faults
        self.tracer = tracer
        #: Default steady-state backend for every Markovian solve
        #: (``None`` resolves through ``$REPRO_SOLVER`` to ``auto``).
        self.solver = solver
        #: Default workload applied to every general-phase simulation at
        #: the family's workload hook (docs/WORKLOADS.md); the Markovian
        #: and functional phases never see it.
        self.workload = workload
        #: Default simulation engine for every general-phase run
        #: (``reference`` or ``fast``, docs/SIMULATION.md).
        self.engine = resolve_engine(engine)
        if workload is not None and family.workload_pattern is None:
            raise AnalysisError(
                f"model family {family.name!r} declares no workload hook "
                f"(workload_pattern); cannot apply workload {workload}"
            )
        #: Per-point solver reports of every Markovian solve so far,
        #: in execution order (see runtime_stats()["solver"]).
        self.solver_records: List[Dict[str, object]] = []
        self._lts_cache: Dict[Tuple, LTS] = {}

    def _solver_method(self, method: Optional[str]) -> str:
        """Resolve a per-call method request against the default chain.

        Explicit *method* wins over the methodology's ``solver`` which
        wins over ``$REPRO_SOLVER`` which defaults to ``auto``; the
        resolved name is what sweep fingerprints and workers see.
        """
        return resolve_method(
            method if method is not None else self.solver
        )

    def _engine(self, engine: Optional[str]) -> str:
        """Per-call engine request wins over the methodology default."""
        return resolve_engine(engine) if engine else self.engine

    def _resilience(self, checkpoint: Optional[SweepCheckpoint], phase: str):
        """Executor kwargs engaging the fault-tolerant path when needed.

        With no retry policy, fault injector, tracer or checkpoint
        configured this returns ``{}`` and sweeps use the zero-overhead
        fast path, exactly as before the reliability layer existed.
        """
        if (
            self.retry is None
            and self.faults is None
            and self.tracer is None
            and checkpoint is None
        ):
            return {}
        if self.tracer is None:
            # Lazily attach an in-memory recorder so retry/checkpoint
            # counters always reach runtime_stats().
            self.tracer = TraceRecorder()
        return {
            "retry": self.retry,
            "faults": self.faults,
            "tracer": self.tracer,
            "checkpoint": checkpoint,
            "phase": phase,
        }

    # -- shared helpers ------------------------------------------------------

    def _variant_archi(self, kind: str, variant: str) -> ArchiType:
        if variant not in VARIANTS:
            raise AnalysisError(
                f"unknown variant {variant!r} (use 'dpm' or 'nodpm')"
            )
        attribute = f"{kind}_{variant}"
        archi = getattr(self.family, attribute, None)
        if archi is None:
            raise AnalysisError(
                f"model family {self.family.name!r} has no {attribute} model"
            )
        return archi

    def _executor(self, workers: Optional[int]) -> ParallelExecutor:
        return ParallelExecutor(
            self.workers if workers is None else workers
        )

    def runtime_stats(self) -> Dict[str, object]:
        """Workers, cache counters and per-phase wall-clock so far.

        When the reliability layer is engaged (retry/faults/trace/
        checkpoint) the snapshot also carries retry and checkpoint-hit
        counters plus the aggregated trace.
        """
        stats: Dict[str, object] = {
            "workers": self.workers,
            "cache": self.cache.stats.as_dict(),
            "timings": self.timer.as_dict(),
        }
        if self.solver_records:
            stats["solver"] = summarize_solver_records(self.solver_records)
        if self.tracer is not None:
            stats["retries"] = self.tracer.retries
            stats["checkpoint_hits"] = self.tracer.checkpoint_hits
            stats["trace"] = self.tracer.summary()
        return stats

    def _sweep_checkpoint(
        self,
        checkpoint: Optional[str],
        **definition: object,
    ) -> Optional[SweepCheckpoint]:
        """Open a sweep journal keyed by the full sweep definition.

        The fingerprint covers everything that determines point results
        (family, phase, parameter, values, overrides, solver/simulation
        settings) and nothing that doesn't — notably not the worker
        count, so a journal written under ``--workers 4`` resumes under
        ``--workers 1`` and vice versa.
        """
        if checkpoint is None:
            return None
        return SweepCheckpoint(
            checkpoint,
            sweep_fingerprint(
                family=self.family.name,
                max_states=self.max_states,
                **definition,
            ),
        )

    def build_lts(
        self,
        kind: str,
        variant: str,
        const_overrides: Optional[Mapping[str, object]] = None,
    ) -> LTS:
        """Generate (and cache) the state space of one model variant."""
        key = (
            kind,
            variant,
            tuple(sorted((const_overrides or {}).items())),
        )
        cached = self._lts_cache.get(key)
        if cached is None:
            archi = self._variant_archi(kind, variant)
            cached = self.cache.lts(
                archi, const_overrides, self.max_states, timer=self.timer
            )
            self._lts_cache[key] = cached
        return cached

    def _resolve_workload(
        self, workload: Optional[Distribution]
    ) -> Optional[Distribution]:
        """Per-call workload wins over the constructor default."""
        chosen = workload if workload is not None else self.workload
        if chosen is not None and self.family.workload_pattern is None:
            raise AnalysisError(
                f"model family {self.family.name!r} declares no workload "
                f"hook (workload_pattern); cannot apply workload {chosen}"
            )
        return chosen

    def _apply_workload(
        self, lts: LTS, workload: Optional[Distribution]
    ) -> LTS:
        """Rewrite *lts* with the workload at the family's hook, if any."""
        if workload is None:
            return lts
        return apply_workload(
            lts, self.family.workload_pattern, workload
        )

    # -- phase 1: functional -------------------------------------------------

    @_phase_span("phase:functional")
    def assess_functionality(
        self,
        const_overrides: Optional[Mapping[str, object]] = None,
    ) -> NoninterferenceResult:
        """Noninterference check on the functional model (Sect. 3)."""
        return check_noninterference(
            self.family.functional_dpm,
            self.family.high_patterns,
            self.family.low_patterns,
            const_overrides,
            self.max_states,
        )

    # -- phase 2: Markovian -----------------------------------------------------

    @_phase_span("solve:markovian")
    def solve_markovian(
        self,
        variant: str = "dpm",
        const_overrides: Optional[Mapping[str, object]] = None,
        method: Optional[str] = None,
    ) -> Dict[str, float]:
        """Analytic steady-state measure values for one variant."""
        lts = self.build_lts("markovian", variant, const_overrides)
        with self.timer.span("solve"):
            result = _solve_ctmc_point(
                lts, self.family.measures, self._solver_method(method)
            )
        self.solver_records.append(result["solver"])
        return result["measures"]

    def _sweep_points(
        self,
        kind: str,
        variant: str,
        parameter: str,
        values: Sequence[float],
        const_overrides: Optional[Mapping[str, object]],
    ) -> Tuple[ArchiType, List[Dict[str, object]], bool]:
        """Per-point override dicts plus whether the skeleton is reusable."""
        archi = self._variant_archi(kind, variant)
        points = []
        for value in values:
            overrides = dict(const_overrides or {})
            overrides[parameter] = value
            points.append(overrides)
        reusable = self.cache.enabled and self.cache.is_rate_only(
            archi, parameter
        )
        return archi, points, reusable

    def _parametric_solution(
        self,
        archi: ArchiType,
        parameter: str,
        values: Sequence[float],
        rate_only: bool,
        method: str,
        const_overrides: Optional[Mapping[str, object]],
    ):
        """The parametric fast path's gate: a solution or ``None``.

        Eligible when the caller forced ``method="parametric"``, or when
        an ``auto`` sweep is dense enough
        (:data:`PARAMETRIC_AUTO_THRESHOLD`) to amortise the one-time
        elimination.  Any :class:`~repro.errors.ParametricError` is
        logged, counted (``repro_parametric_fallbacks_total``) and
        swallowed — the sweep then proceeds through the existing
        per-point solvers, where an explicit ``parametric`` request
        resolves along the deterministic fallback chain.
        """
        if method != "parametric" and not (
            method == "auto" and len(values) >= PARAMETRIC_AUTO_THRESHOLD
        ):
            return None
        if not rate_only:
            if method == "parametric":
                record_parametric_fallback("structure")
                _LOG.warning(
                    "parametric sweep requested but %r is a structural "
                    "parameter (or the cache is disabled); using the "
                    "concrete fallback chain per point",
                    parameter,
                )
            return None
        floats = [float(v) for v in values]
        domain = (min(floats), max(floats))
        try:
            return self.cache.parametric_solution(
                archi,
                parameter,
                self.family.measures,
                domain,
                const_overrides,
                self.max_states,
                timer=self.timer,
            )
        except ParametricError as error:
            record_parametric_fallback(error.reason)
            level = _LOG.warning if method == "parametric" else _LOG.info
            level(
                "parametric elimination unavailable (%s); sweeping with "
                "per-point solves",
                error,
            )
            return None

    @_phase_span("sweep:markovian")
    def sweep_markovian(
        self,
        parameter: str,
        values: Sequence[float],
        variant: str = "dpm",
        const_overrides: Optional[Mapping[str, object]] = None,
        method: Optional[str] = None,
        workers: Optional[int] = None,
        checkpoint: Optional[str] = None,
    ) -> Dict[str, List[float]]:
        """Sweep a const parameter; returns series keyed by measure name.

        When *parameter* is rate-only the state space is generated once
        and every point re-labels the cached skeleton; points are then
        distributed over the executor (``workers=None`` uses the
        methodology default).  Parallel results are identical to serial.
        *checkpoint* names a journal file: completed points are replayed
        from it and new completions appended, so an interrupted sweep
        resumes bit-identically (docs/RELIABILITY.md).  Every point's
        solver backend and residual are appended to
        :attr:`solver_records`.

        Dense sweeps (``method="parametric"``, or ``auto`` with
        :data:`PARAMETRIC_AUTO_THRESHOLD` or more points) first try to
        eliminate the chain into per-measure rational functions
        (:mod:`repro.ctmc.parametric`): one symbolic solve, then
        microseconds per point.  The checkpoint fingerprint embeds the
        *resolved* method, so a journal written parametrically refuses
        to resume through per-point solves and vice versa.
        """
        method = self._solver_method(method)
        archi, points, rate_only = self._sweep_points(
            "markovian", variant, parameter, values, const_overrides
        )
        parametric = self._parametric_solution(
            archi, parameter, values, rate_only, method, const_overrides
        )
        if parametric is not None:
            method = "parametric"
        _LOG.info(
            "markovian sweep: %s over %s (%d points, %s, workers=%d)",
            self.family.name, parameter, len(points),
            "parametric solution" if parametric is not None
            else "cached skeleton" if rate_only
            else "fresh state spaces",
            self.workers if workers is None else resolve_workers(workers),
        )
        tracing.add_attributes(
            parameter=parameter, points=len(points), method=method,
            variant=variant,
        )
        executor = self._executor(workers)
        journal = self._sweep_checkpoint(
            checkpoint,
            kind="markovian",
            variant=variant,
            parameter=parameter,
            values=list(values),
            const_overrides=sorted((const_overrides or {}).items()),
            method=method,
        )
        resilience = self._resilience(journal, "solve")
        try:
            if parametric is not None:
                shared = (parametric,)
                with self.timer.span("solve"):
                    results = executor.map(
                        _markov_point_parametric,
                        [float(v) for v in values],
                        shared,
                        **resilience,
                    )
            elif rate_only:
                skeleton = self.cache.skeleton(
                    archi, const_overrides, self.max_states,
                    timer=self.timer,
                )
                envs = [archi.bind_constants(p) for p in points]
                self.cache.stats.relabel(
                    sum(1 for env in envs if env != skeleton.const_env)
                )
                shared = (skeleton, self.family.measures, method)
                with self.timer.span("solve"):
                    results = executor.map(
                        _markov_point_cached, envs, shared, **resilience
                    )
            else:
                # Structural parameter: every point is a different state
                # space, so each task generates its own from scratch.
                shared = (
                    archi, self.family.measures, method, self.max_states,
                )
                with self.timer.span("solve"):
                    results = executor.map(
                        _markov_point_fresh, points, shared, **resilience
                    )
        finally:
            if journal is not None:
                journal.close()
        _count_sweep_points(self.family.name, "markovian", len(results))
        series: Dict[str, List[float]] = {
            name: [] for name in self.family.measure_names()
        }
        for point_result in results:
            measures = point_result["measures"]
            self.solver_records.append(point_result["solver"])
            for name in series:
                series[name].append(measures[name])
        return series

    # -- phase 3: general ----------------------------------------------------------

    @_phase_span("validate")
    def validate(
        self,
        const_overrides: Optional[Mapping[str, object]] = None,
        run_length: float = 20_000.0,
        runs: int = 30,
        warmup: float = 0.0,
        seed: int = 20040628,
        variant: str = "dpm",
        relative_tolerance: float = 0.10,
        workers: Optional[int] = None,
        engine: Optional[str] = None,
    ) -> ValidationReport:
        """Cross-validate the general model per Sect. 5.1."""
        lts = self.build_lts("general", variant, const_overrides)
        with self.timer.span("simulate"):
            return cross_validate(
                lts,
                self.family.measures,
                run_length,
                runs=runs,
                warmup=warmup,
                seed=seed,
                relative_tolerance=relative_tolerance,
                workers=self._executor(workers).workers,
                retry=self.retry,
                faults=self.faults,
                tracer=self.tracer,
                engine=self._engine(engine),
            )

    @_phase_span("simulate:general")
    def simulate_general(
        self,
        variant: str = "dpm",
        const_overrides: Optional[Mapping[str, object]] = None,
        run_length: float = 20_000.0,
        runs: int = 30,
        warmup: float = 0.0,
        seed: int = 20040628,
        confidence: float = 0.90,
        workers: Optional[int] = None,
        workload: Optional[Distribution] = None,
        engine: Optional[str] = None,
    ) -> ReplicationResult:
        """Estimate the measures on the general model by simulation.

        *workload* (default: the methodology's configured workload, if
        any) replaces the duration at the family's workload hook before
        simulating (docs/WORKLOADS.md).  *engine* (default: the
        methodology's engine) picks the simulation kernel.
        """
        lts = self._apply_workload(
            self.build_lts("general", variant, const_overrides),
            self._resolve_workload(workload),
        )
        with self.timer.span("simulate"):
            return replicate(
                lts,
                self.family.measures,
                run_length,
                runs=runs,
                warmup=warmup,
                seed=seed,
                confidence=confidence,
                workers=self._executor(workers).workers,
                retry=self.retry,
                faults=self.faults,
                tracer=self.tracer,
                engine=self._engine(engine),
            )

    @_phase_span("sweep:general")
    def sweep_general(
        self,
        parameter: str,
        values: Sequence[float],
        variant: str = "dpm",
        const_overrides: Optional[Mapping[str, object]] = None,
        run_length: float = 20_000.0,
        runs: int = 10,
        warmup: float = 0.0,
        seed: int = 20040628,
        workers: Optional[int] = None,
        checkpoint: Optional[str] = None,
        workload: Optional[Distribution] = None,
        engine: Optional[str] = None,
    ) -> Dict[str, List[float]]:
        """Simulation sweep; returns mean series keyed by measure name.

        Each sweep point is one task (a full serial replication batch),
        so parallel means are bit-identical to the serial sweep.  A
        rate-only parameter reuses one state-space skeleton across all
        points.  *checkpoint* names a journal file enabling bit-identical
        resume after an interruption (docs/RELIABILITY.md).  *workload*
        (default: the methodology's configured workload) replaces the
        family's workload-hook duration at every point; its fingerprint
        is part of the checkpoint identity, so a journal written under
        one workload refuses to resume under another.  *engine*
        (default: the methodology's engine) selects the simulation
        kernel; it is part of the checkpoint identity because the two
        engines follow different RNG disciplines (docs/SIMULATION.md).
        """
        workload = self._resolve_workload(workload)
        engine = self._engine(engine)
        archi, points, rate_only = self._sweep_points(
            "general", variant, parameter, values, const_overrides
        )
        _LOG.info(
            "general sweep: %s over %s (%d points, %d runs each, %s)",
            self.family.name, parameter, len(points), runs,
            "cached skeleton" if rate_only else "fresh state spaces",
        )
        tracing.add_attributes(
            parameter=parameter, points=len(points), runs=runs,
            engine=engine, variant=variant,
        )
        executor = self._executor(workers)
        journal = self._sweep_checkpoint(
            checkpoint,
            kind="general",
            variant=variant,
            parameter=parameter,
            values=list(values),
            const_overrides=sorted((const_overrides or {}).items()),
            run_length=run_length,
            runs=runs,
            warmup=warmup,
            seed=seed,
            workload=workload_fingerprint(workload),
            engine=engine,
        )
        resilience = self._resilience(journal, "simulate")
        pattern = self.family.workload_pattern
        try:
            if rate_only:
                skeleton = self.cache.skeleton(
                    archi, const_overrides, self.max_states,
                    timer=self.timer,
                )
                envs = [archi.bind_constants(p) for p in points]
                self.cache.stats.relabel(
                    sum(1 for env in envs if env != skeleton.const_env)
                )
                shared = (
                    skeleton, self.family.measures, run_length, runs,
                    warmup, seed, pattern, workload, engine,
                )
                with self.timer.span("simulate"):
                    results = executor.map(
                        _general_point_cached, envs, shared, **resilience
                    )
            else:
                shared = (
                    archi, self.family.measures, run_length, runs, warmup,
                    seed, self.max_states, pattern, workload, engine,
                )
                with self.timer.span("simulate"):
                    results = executor.map(
                        _general_point_fresh, points, shared, **resilience
                    )
        finally:
            if journal is not None:
                journal.close()
        _count_sweep_points(self.family.name, "general", len(results))
        series: Dict[str, List[float]] = {
            name: [] for name in self.family.measure_names()
        }
        for point_result in results:
            for name in series:
                series[name].append(point_result[name])
        return series

    @_phase_span("sweep:general-paired")
    def sweep_general_paired(
        self,
        parameter: str,
        values: Sequence[float],
        const_overrides: Optional[Mapping[str, object]] = None,
        run_length: float = 20_000.0,
        runs: int = 10,
        warmup: float = 0.0,
        seed: int = 20040628,
        workers: Optional[int] = None,
        checkpoint: Optional[str] = None,
        workload: Optional[Distribution] = None,
        engine: Optional[str] = None,
        crn: bool = True,
    ) -> Dict[str, Dict[str, List[float]]]:
        """Paired DPM vs NO-DPM sweep with common random numbers.

        Every sweep point simulates *both* general variants — the DPM
        model at the swept parameter value and the NO-DPM baseline —
        under the shared per-event-type stream discipline (``crn=True``,
        the default), so shared event types draw identical durations and
        the per-point delta confidence intervals shrink far below what
        independent replications would give (docs/SIMULATION.md).  The
        swept parameter binds only on the DPM variant; *const_overrides*
        bind on both.  Returns four series groups keyed by measure name:
        ``"dpm"`` and ``"nodpm"`` means, ``"delta"`` (dpm − nodpm mean
        difference) and ``"delta_half_width"`` (paired-t half-widths).
        """
        workload = self._resolve_workload(workload)
        engine = self._engine(engine)
        archi_dpm = self._variant_archi("general", "dpm")
        archi_nodpm = self._variant_archi("general", "nodpm")
        _LOG.info(
            "paired general sweep: %s over %s (%d points, %d runs each, "
            "crn=%s, engine=%s)",
            self.family.name, parameter, len(values), runs, crn, engine,
        )
        tracing.add_attributes(
            parameter=parameter, points=len(values), runs=runs,
            engine=engine, crn=crn,
        )
        executor = self._executor(workers)
        journal = self._sweep_checkpoint(
            checkpoint,
            kind="general-paired",
            parameter=parameter,
            values=list(values),
            const_overrides=sorted((const_overrides or {}).items()),
            run_length=run_length,
            runs=runs,
            warmup=warmup,
            seed=seed,
            workload=workload_fingerprint(workload),
            engine=engine,
            crn=crn,
        )
        resilience = self._resilience(journal, "simulate")
        shared = (
            archi_dpm, archi_nodpm, parameter,
            dict(const_overrides or {}), self.family.measures,
            run_length, runs, warmup, seed, self.max_states,
            self.family.workload_pattern, workload, engine, crn,
        )
        try:
            with self.timer.span("simulate"):
                results = executor.map(
                    _general_point_paired, list(values), shared,
                    **resilience,
                )
        finally:
            if journal is not None:
                journal.close()
        _count_sweep_points(
            self.family.name, "general-paired", len(results)
        )
        measure_names = self.family.measure_names()
        series: Dict[str, Dict[str, List[float]]] = {
            group: {name: [] for name in measure_names}
            for group in ("dpm", "nodpm", "delta", "delta_half_width")
        }
        for point_result in results:
            for group, columns in series.items():
                for name in columns:
                    columns[name].append(point_result[group][name])
        return series

    @_phase_span("replicate:rare")
    def replicate_rare(
        self,
        variant: str = "dpm",
        const_overrides: Optional[Mapping[str, object]] = None,
        run_length: float = 20_000.0,
        levels: int = 4,
        splits: int = 4,
        segments: int = 32,
        rare_measure: Optional[str] = None,
        runs: int = 30,
        warmup: float = 0.0,
        seed: int = 20040628,
        confidence: float = 0.90,
        workers: Optional[int] = None,
        workload: Optional[Distribution] = None,
        engine: Optional[str] = None,
    ) -> SplittingResult:
        """Estimate the measures by rare-event importance splitting.

        The splitting counterpart of :meth:`simulate_general`: grows
        ``runs`` RESTART trajectory trees over the general model, with
        the importance function derived from the reward support of
        *rare_measure* (default: the family's first measure), and
        returns the :class:`~repro.sim.splitting.SplittingResult` whose
        ``rare_probability()`` carries the asymmetric near-zero interval
        (docs/SIMULATION.md).
        """
        lts = self._apply_workload(
            self.build_lts("general", variant, const_overrides),
            self._resolve_workload(workload),
        )
        with self.timer.span("simulate"):
            return split_replicate(
                lts,
                self.family.measures,
                run_length,
                levels=levels,
                splits=splits,
                segments=segments,
                rare_measure=rare_measure,
                runs=runs,
                warmup=warmup,
                seed=seed,
                confidence=confidence,
                workers=self._executor(workers).workers,
                retry=self.retry,
                faults=self.faults,
                tracer=self.tracer,
                engine=self._engine(engine),
            )

    @_phase_span("sweep:rare")
    def sweep_rare(
        self,
        parameter: str,
        values: Sequence[float],
        variant: str = "dpm",
        const_overrides: Optional[Mapping[str, object]] = None,
        run_length: float = 20_000.0,
        levels: int = 4,
        splits: int = 4,
        segments: int = 32,
        rare_measure: Optional[str] = None,
        runs: int = 10,
        warmup: float = 0.0,
        seed: int = 20040628,
        workers: Optional[int] = None,
        checkpoint: Optional[str] = None,
        workload: Optional[Distribution] = None,
        engine: Optional[str] = None,
    ) -> Dict[str, List[float]]:
        """Rare-event splitting sweep over the general model.

        Like :meth:`sweep_general` but every point runs the splitting
        estimator, so measures whose per-point probability is far below
        ``1/(runs * run_length)`` still get stable estimates.  Returns
        the measure mean series plus three extra series:
        ``"rare_probability"`` (top-level occupancy product) and
        ``"rare_low"``/``"rare_high"`` (its asymmetric near-zero
        interval bounds).  The splitting configuration — levels, splits,
        segments, and the importance-defining *rare_measure* — is part
        of the checkpoint identity: a journal written under one
        splitting geometry refuses to resume under another, because the
        per-point samples would not be comparable (docs/RELIABILITY.md).
        """
        workload = self._resolve_workload(workload)
        engine = self._engine(engine)
        archi, points, _ = self._sweep_points(
            "general", variant, parameter, values, const_overrides
        )
        _LOG.info(
            "rare sweep: %s over %s (%d points, %d trees each, "
            "levels=%d splits=%d segments=%d)",
            self.family.name, parameter, len(points), runs, levels,
            splits, segments,
        )
        tracing.add_attributes(
            parameter=parameter, points=len(points), runs=runs,
            levels=levels, splits=splits, segments=segments,
        )
        executor = self._executor(workers)
        journal = self._sweep_checkpoint(
            checkpoint,
            kind="rare",
            variant=variant,
            parameter=parameter,
            values=list(values),
            const_overrides=sorted((const_overrides or {}).items()),
            run_length=run_length,
            runs=runs,
            warmup=warmup,
            seed=seed,
            workload=workload_fingerprint(workload),
            engine=engine,
            levels=levels,
            splits=splits,
            segments=segments,
            rare=rare_measure,
        )
        resilience = self._resilience(journal, "simulate")
        shared = (
            archi, self.family.measures, rare_measure, run_length, runs,
            warmup, seed, self.max_states, self.family.workload_pattern,
            workload, engine, levels, splits, segments,
        )
        try:
            with self.timer.span("simulate"):
                results = executor.map(
                    _rare_point, points, shared, **resilience
                )
        finally:
            if journal is not None:
                journal.close()
        _count_sweep_points(self.family.name, "rare", len(results))
        series: Dict[str, List[float]] = {
            name: [] for name in self.family.measure_names()
        }
        series["rare_probability"] = []
        series["rare_low"] = []
        series["rare_high"] = []
        for point_result in results:
            for name in self.family.measure_names():
                series[name].append(point_result["measures"][name])
            series["rare_probability"].append(
                point_result["rare_probability"]
            )
            series["rare_low"].append(point_result["rare_low"])
            series["rare_high"].append(point_result["rare_high"])
        return series

    @_phase_span("sweep:workloads")
    def sweep_workloads(
        self,
        workloads: Mapping[str, Optional[Distribution]],
        parameter: str,
        values: Sequence[float],
        variant: str = "dpm",
        const_overrides: Optional[Mapping[str, object]] = None,
        run_length: float = 20_000.0,
        runs: int = 10,
        warmup: float = 0.0,
        seed: int = 20040628,
        workers: Optional[int] = None,
        checkpoint: Optional[str] = None,
    ) -> Dict[str, Dict[str, List[float]]]:
        """Sweep a parameter under several workload classes at once.

        *workloads* maps class names (e.g. ``"poisson"``, ``"mmpp"``,
        ``"pareto"``) to the distribution injected at the family's
        workload hook (``None`` = the specification's own duration).
        Every (class, point) pair is one executor task, so all classes
        progress in parallel; the result maps each class name to the
        same per-measure series :meth:`sweep_general` returns.  The
        checkpoint fingerprint covers every class's workload
        fingerprint, so one journal resumes the whole grid.
        """
        if not workloads:
            raise AnalysisError("sweep_workloads needs at least one class")
        for name, workload in workloads.items():
            if workload is not None:
                self._resolve_workload(workload)  # hook presence check
        archi, points, rate_only = self._sweep_points(
            "general", variant, parameter, values, const_overrides
        )
        class_names = list(workloads)
        _LOG.info(
            "workload sweep: %s over %s x %d classes (%s; %d tasks)",
            self.family.name, parameter, len(class_names),
            ", ".join(class_names), len(points) * len(class_names),
        )
        tracing.add_attributes(
            parameter=parameter,
            points=len(points),
            classes=len(class_names),
        )
        executor = self._executor(workers)
        journal = self._sweep_checkpoint(
            checkpoint,
            kind="workloads",
            variant=variant,
            parameter=parameter,
            values=list(values),
            const_overrides=sorted((const_overrides or {}).items()),
            run_length=run_length,
            runs=runs,
            warmup=warmup,
            seed=seed,
            workloads=[
                (name, workload_fingerprint(workloads[name]))
                for name in class_names
            ],
        )
        resilience = self._resilience(journal, "simulate")
        pattern = self.family.workload_pattern
        try:
            if rate_only:
                skeleton = self.cache.skeleton(
                    archi, const_overrides, self.max_states,
                    timer=self.timer,
                )
                envs = [archi.bind_constants(p) for p in points]
                self.cache.stats.relabel(
                    len(class_names)
                    * sum(1 for env in envs if env != skeleton.const_env)
                )
                shared = (
                    skeleton, None, self.family.measures, run_length,
                    runs, warmup, seed, pattern, self.max_states,
                )
                items = [
                    (workloads[name], env)
                    for name in class_names
                    for env in envs
                ]
            else:
                shared = (
                    None, archi, self.family.measures, run_length, runs,
                    warmup, seed, pattern, self.max_states,
                )
                items = [
                    (workloads[name], point)
                    for name in class_names
                    for point in points
                ]
            with self.timer.span("simulate"):
                results = executor.map(
                    _workload_point, items, shared, **resilience
                )
        finally:
            if journal is not None:
                journal.close()
        _count_sweep_points(
            self.family.name, "workloads", len(results)
        )
        grid: Dict[str, Dict[str, List[float]]] = {}
        measure_names = self.family.measure_names()
        for position, name in enumerate(class_names):
            block = results[
                position * len(points):(position + 1) * len(points)
            ]
            grid[name] = {
                measure: [point[measure] for point in block]
                for measure in measure_names
            }
        return grid

    # -- one-call driver ------------------------------------------------------

    def full_assessment(
        self,
        const_overrides: Optional[Mapping[str, object]] = None,
        run_length: float = 10_000.0,
        runs: int = 8,
        warmup: float = 300.0,
        seed: int = 20040628,
    ) -> "AssessmentReport":
        """Run all three phases at one operating point and bundle the
        results (the whole Fig. 1 workflow in one call)."""
        # Each model only sees the overrides it declares (the functional
        # model typically has no rate parameters).
        def filtered(archi):
            declared = {p.name for p in archi.const_params}
            return {
                k: v
                for k, v in (const_overrides or {}).items()
                if k in declared
            }

        functional = self.assess_functionality(
            filtered(self.family.functional_dpm)
        )
        markovian_dpm: Optional[Dict[str, float]] = None
        markovian_nodpm: Optional[Dict[str, float]] = None
        validation: Optional[ValidationReport] = None
        general_dpm: Optional[ReplicationResult] = None
        general_nodpm: Optional[ReplicationResult] = None
        if functional.holds:
            markovian_dpm = self.solve_markovian("dpm", const_overrides)
            markovian_nodpm = self.solve_markovian("nodpm")
            validation = self.validate(
                const_overrides,
                run_length=run_length,
                runs=runs,
                warmup=warmup,
                seed=seed,
            )
            if validation.passed:
                general_dpm = self.simulate_general(
                    "dpm",
                    const_overrides,
                    run_length,
                    runs=runs,
                    warmup=warmup,
                    seed=seed,
                )
                general_nodpm = self.simulate_general(
                    "nodpm",
                    None,
                    run_length,
                    runs=runs,
                    warmup=warmup,
                    seed=seed,
                )
        return AssessmentReport(
            family_name=self.family.name,
            functional=functional,
            markovian_dpm=markovian_dpm,
            markovian_nodpm=markovian_nodpm,
            validation=validation,
            general_dpm=general_dpm,
            general_nodpm=general_nodpm,
        )


@dataclass
class AssessmentReport:
    """Bundle of all three phases at one DPM operating point.

    The phases short-circuit exactly as the methodology prescribes: a
    failed functional check leaves the performance phases empty (fix the
    DPM first), and a failed validation leaves the general phase empty
    (fix the general model first).
    """

    family_name: str
    functional: "NoninterferenceResult"
    markovian_dpm: Optional[Dict[str, float]]
    markovian_nodpm: Optional[Dict[str, float]]
    validation: Optional["ValidationReport"]
    general_dpm: Optional[ReplicationResult]
    general_nodpm: Optional[ReplicationResult]

    @property
    def completed(self) -> bool:
        """True when every phase ran and passed its gate."""
        return (
            self.functional.holds
            and self.validation is not None
            and self.validation.passed
            and self.general_dpm is not None
        )

    def report(self) -> str:
        """Render the full assessment as plain text."""
        lines = [f"=== incremental DPM assessment: {self.family_name} ==="]
        lines.append("-- phase 1 (functional):")
        lines.append(self.functional.diagnostic())
        if self.markovian_dpm is None:
            lines.append(
                "phases 2-3 skipped: repair the DPM/system first "
                "(use the formula above as the diagnostic)"
            )
            return "\n".join(lines)
        lines.append("-- phase 2 (Markovian steady state):")
        for name, value in self.markovian_dpm.items():
            baseline = self.markovian_nodpm[name]
            lines.append(
                f"  {name}: DPM={value:.6g}  NO-DPM={baseline:.6g}"
            )
        lines.append("-- phase 3a (validation):")
        lines.append(str(self.validation))
        if self.general_dpm is None:
            lines.append(
                "phase 3b skipped: the general model failed validation"
            )
            return "\n".join(lines)
        lines.append("-- phase 3b (general model, simulated):")
        for name, estimate in self.general_dpm.estimates.items():
            baseline = self.general_nodpm[name]
            lines.append(
                f"  {name}: DPM={estimate}  NO-DPM={baseline}"
            )
        return "\n".join(lines)

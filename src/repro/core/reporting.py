"""Plain-text reporting: tables and ASCII charts for the experiment harness.

The benchmark harness regenerates every figure of the paper as (a) a table
of the plotted series and (b) an ASCII chart that makes the qualitative
shape — who wins, where the knee falls — visible in a terminal or CI log.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

_MARKERS = "*o+x#@%&"


def format_number(value: float, width: int = 10) -> str:
    """Fixed-width human-friendly number formatting."""
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "-".rjust(width)
    if value == 0:
        return "0".rjust(width)
    magnitude = abs(value)
    if 1e-3 <= magnitude < 1e6:
        text = f"{value:.4g}"
    else:
        text = f"{value:.3e}"
    return text.rjust(width)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned plain-text table."""
    columns = len(headers)
    cells: List[List[str]] = []
    for row in rows:
        if len(row) != columns:
            raise ValueError(
                f"row {row!r} has {len(row)} cells, expected {columns}"
            )
        rendered = []
        for value in row:
            if isinstance(value, float):
                rendered.append(format_number(value).strip())
            else:
                rendered.append(str(value))
        cells.append(rendered)
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in cells))
        if cells
        else len(str(headers[i]))
        for i in range(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        str(h).ljust(widths[i]) for i, h in enumerate(headers)
    )
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def ascii_chart(
    xs: Sequence[float],
    series: Dict[str, Sequence[float]],
    width: int = 68,
    height: int = 16,
    title: Optional[str] = None,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Scatter the series on a character grid (one marker per series)."""
    if not xs:
        raise ValueError("nothing to plot")
    finite_values = [
        v
        for values in series.values()
        for v in values
        if v is not None and math.isfinite(v)
    ]
    if not finite_values:
        raise ValueError("all series values are non-finite")
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(finite_values), max(finite_values)
    if x_high == x_low:
        x_high = x_low + 1.0
    if y_high == y_low:
        y_high = y_low + 1.0
    grid = [[" "] * width for _ in range(height)]

    def place(x: float, y: float, marker: str) -> None:
        col = round((x - x_low) / (x_high - x_low) * (width - 1))
        row = round((y - y_low) / (y_high - y_low) * (height - 1))
        grid[height - 1 - row][col] = marker

    legend = []
    for position, (name, values) in enumerate(series.items()):
        marker = _MARKERS[position % len(_MARKERS)]
        legend.append(f"{marker} = {name}")
        for x, y in zip(xs, values):
            if y is None or not math.isfinite(y):
                continue
            place(x, y, marker)
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_label} (top {format_number(y_high).strip()}, "
                 f"bottom {format_number(y_low).strip()})")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(
        f" {x_label}: {format_number(x_low).strip()} .. "
        f"{format_number(x_high).strip()}    {'; '.join(legend)}"
    )
    return "\n".join(lines)


def format_comparison(
    parameter_name: str,
    parameters: Sequence[float],
    with_dpm: Dict[str, Sequence[float]],
    without_dpm: Dict[str, Sequence[float]],
    title: Optional[str] = None,
) -> str:
    """Side-by-side DPM vs NO-DPM table for a swept parameter."""
    measure_names = list(with_dpm)
    headers = [parameter_name]
    for name in measure_names:
        headers.append(f"{name} (DPM)")
        headers.append(f"{name} (NO-DPM)")
    rows = []
    for position, parameter in enumerate(parameters):
        row: List[object] = [parameter]
        for name in measure_names:
            row.append(with_dpm[name][position])
            nodpm_values = without_dpm.get(name)
            row.append(
                nodpm_values[position] if nodpm_values is not None else "-"
            )
        rows.append(row)
    return format_table(headers, rows, title)

"""repro — reproduction of "Assessing the Impact of Dynamic Power Management
on the Functionality and the Performance of Battery-Powered Appliances"
(DSN 2004).

The library provides, from scratch:

* :mod:`repro.aemilia` — a stochastic process-algebraic architectural
  description language with the paper's concrete syntax;
* :mod:`repro.lts` — labelled transition systems, weak bisimulation
  equivalence checking and distinguishing-formula generation;
* :mod:`repro.ctmc` — CTMC construction (vanishing-state elimination),
  steady-state/transient solvers and the reward-based MEASURE language;
* :mod:`repro.sim` — a discrete-event (GSMP) simulator for generally
  timed models with replication/confidence-interval output analysis;
* :mod:`repro.core` — the paper's three-phase incremental methodology
  (noninterference → Markovian analysis → validated general simulation);
* :mod:`repro.fleet` — the compositional N-device fleet engine
  (Kronecker generators, exchangeability lumping, matrix-free solves);
* :mod:`repro.casestudies` — the rpc, streaming and fleet case studies;
* :mod:`repro.experiments` — regeneration of every figure of the paper.
"""

from .core import (
    IncrementalMethodology,
    ModelFamily,
    check_noninterference,
    cross_validate,
)
from .errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "IncrementalMethodology",
    "ModelFamily",
    "check_noninterference",
    "cross_validate",
    "ReproError",
    "__version__",
]

"""Replaying a recorded trace as a :class:`Distribution`.

:class:`TraceReplay` makes a :class:`~repro.workload.trace.WorkloadTrace`
usable anywhere a closed-form distribution is: as a ``GeneralRate`` in a
specification, through :func:`repro.workload.hooks.apply_workload`, in
batch means with clock carry.  Two modes:

* ``"bootstrap"`` (default) — each sample is drawn uniformly at random
  from the trace's interarrivals.  I.i.d. resampling of the empirical
  distribution: correct marginal, no serial correlation.  Every draw is
  a pure function of the caller's generator state, so serial and
  parallel replications (which reconstruct per-run generators from the
  same SeedSequence spawn keys) see bit-identical values.
* ``"cycle"`` — samples walk the trace in order, wrapping around.
  Preserves the *correlation structure* (bursts stay bursts), which is
  the whole point of replaying an MMPP trace rather than fitting a
  renewal distribution to it.  The walk position is tracked **per
  generator**: the first draw from a given generator seeds the start
  offset from that generator itself (``rng.integers(len(trace))``), so
  distinct replications start at independent offsets yet each
  replication is reproducible from its seed alone — the property the
  engine's enabling-memory clock semantics and the parallel runtime
  both rely on.

Cursor bookkeeping is an identity-keyed dict (numpy Generators do not
support weak references) holding a strong reference to each generator —
which also guarantees ``id()`` uniqueness — with bounded FIFO eviction,
and is dropped on pickling: a TraceReplay shipped to a worker process
arrives cursor-free, exactly like a freshly built one.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..distributions import Distribution
from ..errors import WorkloadError
from ..obs import metrics as obs_metrics
from .trace import WorkloadTrace

__all__ = ["REPLAY_MODES", "TraceReplay"]

REPLAY_MODES = ("bootstrap", "cycle")

#: Cycle-mode cursors tracked per TraceReplay before FIFO eviction.
_MAX_CURSORS = 128


class TraceReplay(Distribution):
    """An empirical distribution that replays a workload trace.

    Equality and hashing follow the (trace fingerprint, mode) pair —
    the engine's event-compilation step compares distributions to
    decide whether two transitions share an event, and two replays of
    the same trace in the same mode are the same workload.
    """

    def __init__(self, trace: WorkloadTrace, mode: str = "bootstrap"):
        if not isinstance(trace, WorkloadTrace):
            raise WorkloadError(
                f"TraceReplay needs a WorkloadTrace, got {type(trace).__name__}"
            )
        if mode not in REPLAY_MODES:
            raise WorkloadError(
                f"unknown replay mode {mode!r} "
                f"(known: {', '.join(REPLAY_MODES)})"
            )
        self.trace = trace
        self.mode = mode
        # id(rng) -> [rng, start, count]; the strong reference to rng
        # both prevents id() reuse and keeps the cursor valid.
        self._cursors: Dict[int, List] = {}

    # -- Distribution interface -----------------------------------------

    def sample(self, rng: np.random.Generator) -> float:
        values = self.trace.interarrivals
        n = values.size
        if self.mode == "bootstrap":
            value = float(values[int(rng.integers(n))])
        else:
            cursor = self._cursors.get(id(rng))
            if cursor is None or cursor[0] is not rng:
                if len(self._cursors) >= _MAX_CURSORS:
                    oldest = next(iter(self._cursors))
                    del self._cursors[oldest]
                cursor = [rng, int(rng.integers(n)), 0]
                self._cursors[id(rng)] = cursor
            value = float(values[(cursor[1] + cursor[2]) % n])
            cursor[2] += 1
        registry = obs_metrics.get_registry()
        if registry.enabled:
            obs_metrics.WORKLOAD_EVENTS_REPLAYED.on(registry).labels(
                mode=self.mode
            ).inc()
        return value

    @property
    def mean(self) -> float:
        return self.trace.mean

    @property
    def variance(self) -> float:
        return self.trace.variance

    def cdf(self, x: float) -> float:
        """Empirical CDF of the trace."""
        sorted_values = getattr(self, "_sorted", None)
        if sorted_values is None:
            sorted_values = np.sort(self.trace.interarrivals)
            self._sorted = sorted_values
        rank = np.searchsorted(sorted_values, x, side="right")
        return float(rank) / sorted_values.size

    # -- identity --------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceReplay):
            return NotImplemented
        return self.mode == other.mode and self.trace == other.trace

    def __hash__(self) -> int:
        return hash((self.trace.fingerprint, self.mode))

    def __str__(self) -> str:
        return (
            f"replay({self.mode}, {len(self.trace)} events, "
            f"mean {self.trace.mean:g})"
        )

    def __repr__(self) -> str:
        return (
            f"TraceReplay(trace=<{len(self.trace)} events, "
            f"{self.trace.fingerprint[:12]}>, mode={self.mode!r})"
        )

    # -- pickling --------------------------------------------------------

    def __getstate__(self):
        return {"trace": self.trace, "mode": self.mode}

    def __setstate__(self, state):
        self.trace = state["trace"]
        self.mode = state["mode"]
        self._cursors = {}

"""Trace cross-validation: closing the loop on the paper's Sect. 5.1.

The paper validates general models by plugging in exponential
distributions and checking the simulation against the analytic Markovian
solution (:func:`repro.core.validation.cross_validate`).  The workload
subsystem adds one more link to that chain: **generate** an exponential
trace, **replay** it through the general-phase simulator at the case
study's workload hook, and check that the batch-means estimates still
reproduce the analytic measures.  If they do, every stage — generator,
trace container, replay distribution, LTS rewrite, engine clock carry —
is jointly validated against ground truth, and non-Markovian traces can
be trusted to measure what they claim.

The verdict per measure mirrors ``cross_validate``: the analytic value
must fall inside the batch-means confidence interval *or* within a
relative tolerance of the mean (the second clause keeps near-zero
measures, whose intervals collapse, from failing on noise).  Bootstrap
replay of an exponential trace is i.i.d. sampling of an empirical
exponential distribution, so for traces of a few thousand events the
discretisation error is far below the confidence half-widths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from ..ctmc.build import build_ctmc
from ..ctmc.measures import Measure, evaluate_measure
from ..ctmc.steady_state import steady_state
from ..errors import ValidationError
from ..lts.lts import LTS
from ..sim.batch_means import batch_means
from ..sim.output import Estimate
from .generators import PoissonGenerator
from .hooks import apply_workload
from .replay import TraceReplay

__all__ = [
    "ReplayMeasureValidation",
    "ReplayValidationReport",
    "cross_validate_replay",
    "require_replay_valid",
]


@dataclass
class ReplayMeasureValidation:
    """Verdict for one measure of a replay cross-validation."""

    name: str
    analytic: float
    simulated: Estimate
    within_interval: bool
    relative_error: float

    def __str__(self) -> str:
        flag = "OK " if self.within_interval else "FAIL"
        return (
            f"[{flag}] {self.name}: analytic={self.analytic:.6g}, "
            f"replayed={self.simulated} "
            f"(rel.err {self.relative_error:.2%})"
        )


@dataclass
class ReplayValidationReport:
    """Results of one trace cross-validation run."""

    hook: str
    trace_fingerprint: str
    trace_events: int
    measures: Dict[str, ReplayMeasureValidation]

    @property
    def passed(self) -> bool:
        return all(v.within_interval for v in self.measures.values())

    def __str__(self) -> str:
        header = (
            f"replay cross-validation "
            f"{'PASSED' if self.passed else 'FAILED'} "
            f"(hook {self.hook}, trace {self.trace_fingerprint[:12]}, "
            f"{self.trace_events} events)"
        )
        lines = [header]
        lines.extend(str(v) for v in self.measures.values())
        return "\n".join(lines)


def cross_validate_replay(
    general_lts: LTS,
    hook: str,
    hook_rate: float,
    measures: Sequence[Measure],
    batch_length: float,
    batches: int = 20,
    warmup: float = 0.0,
    seed: int = 20040628,
    confidence: float = 0.90,
    relative_tolerance: float = 0.10,
    trace_events: int = 4000,
) -> ReplayValidationReport:
    """Validate trace replay against the analytic Markovian solution.

    *general_lts* is first made fully Markovian with
    :func:`~repro.core.validation.exponential_plugin` (so the analytic
    side is well defined), then the *hook* transition's exponential
    duration (rate *hook_rate*) is replaced by a bootstrap
    :class:`TraceReplay` of a **generated exponential trace with the
    same rate** (``PoissonGenerator(hook_rate)``, *trace_events* events,
    derived from *seed*).  Batch means on the replayed model must
    reproduce the analytic measures of the untouched Markovian model.
    """
    from ..core.validation import exponential_plugin

    markovian = exponential_plugin(general_lts)
    ctmc = build_ctmc(markovian)
    pi = steady_state(ctmc)

    trace = PoissonGenerator(hook_rate).generate(trace_events, seed)
    replay = TraceReplay(trace, "bootstrap")
    replayed_lts = apply_workload(markovian, hook, replay)

    result = batch_means(
        replayed_lts,
        measures,
        batch_length,
        batches=batches,
        warmup=warmup,
        seed=seed,
        confidence=confidence,
    )

    report: Dict[str, ReplayMeasureValidation] = {}
    for measure in measures:
        analytic = evaluate_measure(ctmc, pi, measure)
        estimate = result[measure.name]
        scale = max(abs(analytic), abs(estimate.mean), 1e-12)
        relative_error = abs(analytic - estimate.mean) / scale
        within = estimate.overlaps(analytic) or (
            relative_error <= relative_tolerance
        )
        report[measure.name] = ReplayMeasureValidation(
            measure.name, analytic, estimate, within, relative_error
        )
    return ReplayValidationReport(
        hook, trace.fingerprint, len(trace), report
    )


def require_replay_valid(report: ReplayValidationReport) -> None:
    """Raise :class:`ValidationError` unless the report passed."""
    if not report.passed:
        raise ValidationError(str(report))

"""Seeded synthetic workload generators.

Each generator is a frozen dataclass with a ``generate(events, seed)``
method that derives its random stream through
:func:`repro.sim.random.make_generator` (PCG64 from a SeedSequence), so
the same spec + seed always yields a bit-identical
:class:`~repro.workload.trace.WorkloadTrace` regardless of platform or
process count.

The three non-Poisson families cover the workload axes the DPM
literature cares about (Q-DPM's bursty device request traces, the
SystemC study's workload-dependent stimuli):

* :class:`MMPPGenerator` — 2-state Markov-modulated Poisson process
  (on-off bursty): arrivals at ``rate_high`` in the burst state,
  ``rate_low`` between bursts, exponential state holding times.  cv2 of
  the interarrivals exceeds 1 and arrivals are positively correlated —
  exactly the structure closed-form renewal distributions cannot carry,
  and why :class:`~repro.workload.replay.TraceReplay`'s cycle mode
  exists.
* :class:`ParetoGenerator` — i.i.d. Pareto(alpha, xm) interarrivals:
  heavy-tailed silence periods that punish fixed-timeout DPM policies.
* :class:`DiurnalGenerator` — non-homogeneous Poisson with a sinusoidal
  rate profile sampled by thinning: slow deterministic load modulation
  (day/night cycles scaled down to simulation time).
* :class:`PoissonGenerator` — the homogeneous baseline, so a workload
  sweep can include the paper's own Markovian assumption as one class.

Generators parse from compact spec strings mirroring
:func:`repro.distributions.parse_distribution_spec`::

    poisson:rate
    mmpp:rate_high,rate_low,burst_mean,idle_mean
    pareto:alpha,xm
    diurnal:base_rate,amplitude,period
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from ..errors import WorkloadError
from ..obs import metrics as obs_metrics
from ..sim.random import make_generator
from .trace import WorkloadTrace

__all__ = [
    "GENERATOR_KEYWORDS",
    "DiurnalGenerator",
    "MMPPGenerator",
    "ParetoGenerator",
    "PoissonGenerator",
    "TraceGenerator",
    "parse_generator_spec",
]


class TraceGenerator:
    """Base class: subclasses implement ``_interarrivals(events, rng)``."""

    #: Spec-language keyword, set on each subclass.
    keyword = ""

    def _interarrivals(
        self, events: int, rng: np.random.Generator
    ) -> np.ndarray:
        raise NotImplementedError

    def spec(self) -> str:
        """The compact spec string that reconstructs this generator."""
        raise NotImplementedError

    def generate(self, events: int, seed: int) -> WorkloadTrace:
        """Generate a trace of *events* interarrivals from *seed*."""
        if events <= 0:
            raise WorkloadError(
                f"trace length must be positive, got {events}"
            )
        rng = make_generator(seed)
        values = self._interarrivals(int(events), rng)
        registry = obs_metrics.get_registry()
        if registry.enabled:
            obs_metrics.WORKLOAD_TRACES.on(registry).labels(
                source="generated"
            ).inc()
        return WorkloadTrace(
            values,
            {"generator": self.spec(), "seed": int(seed)},
        )


def _positive(name: str, value: float, spec: str) -> float:
    if not (value > 0) or not math.isfinite(value):
        raise WorkloadError(
            f"{spec}: {name} must be positive and finite, got {value!r}"
        )
    return float(value)


@dataclass(frozen=True)
class PoissonGenerator(TraceGenerator):
    """Homogeneous Poisson arrivals: i.i.d. exponential interarrivals."""

    rate: float
    keyword = "poisson"

    def __post_init__(self):
        _positive("rate", self.rate, self.spec())

    def spec(self) -> str:
        return f"poisson:{self.rate:g}"

    def _interarrivals(self, events, rng):
        return rng.exponential(1.0 / self.rate, size=events)


@dataclass(frozen=True)
class MMPPGenerator(TraceGenerator):
    """2-state Markov-modulated Poisson process (on-off bursty arrivals).

    The modulating chain alternates between a *burst* state (arrival
    rate ``rate_high``, mean holding time ``burst_mean``) and an *idle*
    state (``rate_low``, ``idle_mean``).  Simulated by competing
    exponentials: in each state, draw the next arrival and the next
    state change; the earlier one wins, and losing clocks are redrawn
    (memorylessness makes that exact).
    """

    rate_high: float
    rate_low: float
    burst_mean: float
    idle_mean: float
    keyword = "mmpp"

    def __post_init__(self):
        spec = self.spec()
        _positive("rate_high", self.rate_high, spec)
        _positive("rate_low", self.rate_low, spec)
        _positive("burst_mean", self.burst_mean, spec)
        _positive("idle_mean", self.idle_mean, spec)
        if self.rate_high <= self.rate_low:
            raise WorkloadError(
                f"{spec}: rate_high ({self.rate_high:g}) must exceed "
                f"rate_low ({self.rate_low:g}) for a bursty process"
            )

    def spec(self) -> str:
        return (
            f"mmpp:{self.rate_high:g},{self.rate_low:g},"
            f"{self.burst_mean:g},{self.idle_mean:g}"
        )

    def _interarrivals(self, events, rng):
        rates = (self.rate_high, self.rate_low)
        switch_rates = (1.0 / self.burst_mean, 1.0 / self.idle_mean)
        state = 0  # start in the burst state
        out = np.empty(events, dtype=np.float64)
        elapsed = 0.0
        produced = 0
        while produced < events:
            arrival = rng.exponential(1.0 / rates[state])
            switch = rng.exponential(1.0 / switch_rates[state])
            if arrival <= switch:
                out[produced] = elapsed + arrival
                elapsed = 0.0
                produced += 1
            else:
                elapsed += switch
                state = 1 - state
        return out


@dataclass(frozen=True)
class ParetoGenerator(TraceGenerator):
    """I.i.d. Pareto(alpha, xm) interarrivals — heavy-tailed silences."""

    alpha: float
    xm: float
    keyword = "pareto"

    def __post_init__(self):
        spec = self.spec()
        _positive("alpha", self.alpha, spec)
        _positive("xm", self.xm, spec)

    def spec(self) -> str:
        return f"pareto:{self.alpha:g},{self.xm:g}"

    def _interarrivals(self, events, rng):
        return self.xm * (1.0 + rng.pareto(self.alpha, size=events))


@dataclass(frozen=True)
class DiurnalGenerator(TraceGenerator):
    """Non-homogeneous Poisson with a sinusoidal rate, via thinning.

    Instantaneous rate ``base_rate * (1 + amplitude * sin(2 pi t /
    period))``; candidate events are drawn from a homogeneous process at
    the peak rate and accepted with probability rate(t)/peak
    (Lewis-Shedler thinning — exact, not a discretisation).
    """

    base_rate: float
    amplitude: float
    period: float
    keyword = "diurnal"

    def __post_init__(self):
        spec = self.spec()
        _positive("base_rate", self.base_rate, spec)
        _positive("period", self.period, spec)
        if not (0.0 < self.amplitude < 1.0):
            raise WorkloadError(
                f"{spec}: amplitude must be in (0, 1) so the rate stays "
                f"positive, got {self.amplitude!r}"
            )

    def spec(self) -> str:
        return (
            f"diurnal:{self.base_rate:g},{self.amplitude:g},{self.period:g}"
        )

    def _interarrivals(self, events, rng):
        peak = self.base_rate * (1.0 + self.amplitude)
        omega = 2.0 * math.pi / self.period
        out = np.empty(events, dtype=np.float64)
        clock = 0.0
        previous = 0.0
        produced = 0
        while produced < events:
            clock += rng.exponential(1.0 / peak)
            rate = self.base_rate * (1.0 + self.amplitude * math.sin(omega * clock))
            if rng.random() * peak <= rate:
                out[produced] = clock - previous
                previous = clock
                produced += 1
        return out


#: Generator constructors by keyword: (arity, factory).
GENERATOR_KEYWORDS: Dict[str, Tuple[int, object]] = {
    "poisson": (1, lambda rate: PoissonGenerator(rate)),
    "mmpp": (
        4,
        lambda rh, rl, bm, im: MMPPGenerator(rh, rl, bm, im),
    ),
    "pareto": (2, lambda alpha, xm: ParetoGenerator(alpha, xm)),
    "diurnal": (
        3,
        lambda base, amp, period: DiurnalGenerator(base, amp, period),
    ),
}


def parse_generator_spec(spec: str) -> TraceGenerator:
    """Parse ``keyword:arg,...`` into a generator, mirroring
    :func:`repro.distributions.parse_distribution_spec` semantics."""
    if not isinstance(spec, str) or not spec.strip():
        raise WorkloadError(
            f"empty generator spec {spec!r}; expected 'keyword:arg,...' "
            f"such as 'mmpp:2.0,0.05,5.0,50.0'"
        )
    keyword, separator, argtext = spec.partition(":")
    keyword = keyword.strip()
    if keyword not in GENERATOR_KEYWORDS:
        known = ", ".join(sorted(GENERATOR_KEYWORDS))
        raise WorkloadError(
            f"unknown generator {keyword!r} in spec {spec!r} "
            f"(known: {known})"
        )
    arity, factory = GENERATOR_KEYWORDS[keyword]
    if not separator or not argtext.strip():
        raise WorkloadError(
            f"generator spec {spec!r} is missing its arguments: "
            f"{keyword!r} expects {arity}"
        )
    parts = [part.strip() for part in argtext.split(",")]
    values = []
    for position, part in enumerate(parts, start=1):
        try:
            values.append(float(part))
        except ValueError:
            raise WorkloadError(
                f"generator spec {spec!r}: argument {position} "
                f"({part!r}) is not a number"
            ) from None
    if len(values) != arity:
        raise WorkloadError(
            f"generator spec {spec!r}: {keyword!r} expects {arity} "
            f"argument(s), got {len(values)}"
        )
    return factory(*values)

"""Trace-driven workload subsystem (docs/WORKLOADS.md).

Four layers turn "what if the workload were realistic?" into a swept
parameter of the paper's methodology:

* :mod:`~repro.workload.trace` — :class:`WorkloadTrace`, the validated
  interarrival container with JSONL/CSV I/O and content fingerprints;
* :mod:`~repro.workload.generators` — seeded synthetic generators
  (Poisson baseline, MMPP on-off bursty, Pareto heavy-tail, diurnal
  rate-modulated Poisson);
* :mod:`~repro.workload.fit` — moment/MLE fitting of traces to the
  closed-form :class:`~repro.distributions.Distribution` families with
  KS model selection;
* :mod:`~repro.workload.replay` — :class:`TraceReplay`, an empirical
  distribution (bootstrap or cycle mode) usable anywhere a closed-form
  one is.

:mod:`~repro.workload.hooks` wires workloads into the case studies
(``apply_workload`` LTS rewrite, ``--workload`` CLI parsing, checkpoint
fingerprints) and :mod:`~repro.workload.validation` closes the Sect. 5.1
loop by replaying a generated exponential trace against the analytic
Markovian solution.
"""

from .fit import (  # noqa: F401
    FIT_FAMILIES,
    FitReport,
    FittedCandidate,
    fit_trace,
    ks_pvalue,
    ks_statistic,
)
from .generators import (  # noqa: F401
    GENERATOR_KEYWORDS,
    DiurnalGenerator,
    MMPPGenerator,
    ParetoGenerator,
    PoissonGenerator,
    TraceGenerator,
    parse_generator_spec,
)
from .hooks import (  # noqa: F401
    apply_workload,
    parse_workload,
    workload_fingerprint,
)
from .replay import REPLAY_MODES, TraceReplay  # noqa: F401
from .trace import WorkloadTrace, read_trace, write_trace  # noqa: F401
from .validation import (  # noqa: F401
    ReplayMeasureValidation,
    ReplayValidationReport,
    cross_validate_replay,
    require_replay_valid,
)

__all__ = [
    "FIT_FAMILIES",
    "FitReport",
    "FittedCandidate",
    "GENERATOR_KEYWORDS",
    "DiurnalGenerator",
    "MMPPGenerator",
    "ParetoGenerator",
    "PoissonGenerator",
    "REPLAY_MODES",
    "ReplayMeasureValidation",
    "ReplayValidationReport",
    "TraceGenerator",
    "TraceReplay",
    "WorkloadTrace",
    "apply_workload",
    "cross_validate_replay",
    "fit_trace",
    "ks_pvalue",
    "ks_statistic",
    "parse_generator_spec",
    "parse_workload",
    "read_trace",
    "require_replay_valid",
    "workload_fingerprint",
    "write_trace",
]

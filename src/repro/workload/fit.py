"""Fitting workload traces to the library's closed-form distributions.

:func:`fit_trace` estimates parameters for every candidate family that
can represent the trace (moment matching where it is exact, MLE where it
is cheap, a bisection on the Weibull shape where neither closes), scores
each candidate with the Kolmogorov-Smirnov statistic against the
empirical distribution, and returns a :class:`FitReport` whose ``best``
candidate minimises the KS distance.  The fitted
:class:`~repro.distributions.Distribution` objects plug straight into
the general phase (``--workload`` flag, ``apply_workload``), closing the
loop trace → fit → evaluate.

Estimators per family (interarrivals ``x_1..x_n``, sample mean ``m``,
sample variance ``s2`` with ``ddof=1``):

* ``exp`` — MLE ``rate = 1/m``.
* ``det`` — ``value = m`` (the L2-optimal point mass).
* ``normal`` — moment match ``(m, sqrt(s2))`` (the library's Normal is
  left-truncated at zero when sampling, so this is an approximation
  that KS then judges).
* ``unif`` — MLE ``(min, max)``.
* ``erlang`` — moment match ``shape = round(m^2/s2)`` clamped to >= 1,
  ``rate = shape/m``.
* ``weibull`` — bisection on the shape ``k`` solving the scale-free
  moment relation ``Gamma(1+2/k)/Gamma(1+1/k)^2 - 1 = cv2``; then
  ``lam = m / Gamma(1+1/k)``.
* ``pareto`` — MLE ``xm = min(x)``, ``alpha = n / sum(ln(x_i/xm))``.

Numerical work is counted into the
``repro_workload_fit_iterations_total`` metric and each candidate's KS
statistic into the ``repro_workload_ks_statistic`` gauge.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..distributions import (
    Deterministic,
    Distribution,
    Erlang,
    Exponential,
    Normal,
    Pareto,
    Uniform,
    Weibull,
)
from ..errors import WorkloadError
from ..obs import metrics as obs_metrics
from .trace import WorkloadTrace

__all__ = [
    "FIT_FAMILIES",
    "FitReport",
    "FittedCandidate",
    "fit_trace",
    "ks_pvalue",
    "ks_statistic",
]


def ks_statistic(values: np.ndarray, distribution: Distribution) -> float:
    """One-sample Kolmogorov-Smirnov statistic ``D_n``.

    ``sup_x |F_n(x) - F(x)|`` evaluated at the sorted sample, using the
    distribution's :meth:`~repro.distributions.Distribution.cdf`.
    """
    ordered = np.sort(np.asarray(values, dtype=np.float64))
    n = ordered.size
    if n == 0:
        raise WorkloadError("KS statistic needs at least one observation")
    cdf_values = np.array(
        [distribution.cdf(float(x)) for x in ordered], dtype=np.float64
    )
    upper = np.arange(1, n + 1) / n - cdf_values
    lower = cdf_values - np.arange(0, n) / n
    return float(max(np.max(upper), np.max(lower), 0.0))


def ks_pvalue(statistic: float, n: int) -> float:
    """Asymptotic Kolmogorov p-value with the Stephens small-n correction.

    ``lambda = (sqrt(n) + 0.12 + 0.11/sqrt(n)) * D`` and
    ``Q(lambda) = 2 sum_{k>=1} (-1)^{k-1} exp(-2 k^2 lambda^2)``.
    """
    if n <= 0:
        raise WorkloadError("KS p-value needs a positive sample size")
    root_n = math.sqrt(n)
    lam = (root_n + 0.12 + 0.11 / root_n) * statistic
    if lam < 1e-9:
        return 1.0
    total = 0.0
    for k in range(1, 101):
        term = (-1.0) ** (k - 1) * math.exp(-2.0 * k * k * lam * lam)
        total += term
        if abs(term) < 1e-12:
            break
    return float(min(1.0, max(0.0, 2.0 * total)))


@dataclass(frozen=True)
class FittedCandidate:
    """One candidate family's fit: distribution, KS score, fit cost."""

    family: str
    distribution: Distribution
    ks: float
    pvalue: float
    iterations: int

    @property
    def spec(self) -> str:
        """Compact spec string (``parse_distribution_spec`` round-trip)."""
        return str(self.distribution).replace("(", ":").rstrip(")").replace(
            ", ", ","
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "family": self.family,
            "spec": self.spec,
            "distribution": str(self.distribution),
            "ks": self.ks,
            "pvalue": self.pvalue,
            "iterations": self.iterations,
        }


@dataclass(frozen=True)
class FitReport:
    """All candidates (sorted by KS, best first) plus trace provenance."""

    trace_summary: Dict[str, object]
    candidates: Tuple[FittedCandidate, ...]

    @property
    def best(self) -> FittedCandidate:
        return self.candidates[0]

    def candidate(self, family: str) -> FittedCandidate:
        for entry in self.candidates:
            if entry.family == family:
                return entry
        raise WorkloadError(
            f"no fitted candidate for family {family!r} "
            f"(have: {', '.join(c.family for c in self.candidates)})"
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "trace": self.trace_summary,
            "best": self.best.family,
            "candidates": [entry.as_dict() for entry in self.candidates],
        }


# ---------------------------------------------------------------------------
# Per-family estimators: (values, mean, variance) -> (Distribution, iters).
# ---------------------------------------------------------------------------


def _fit_exponential(values, mean, variance):
    return Exponential(1.0 / mean), 1


def _fit_deterministic(values, mean, variance):
    return Deterministic(mean), 1


def _fit_normal(values, mean, variance):
    if variance <= 0.0:
        raise WorkloadError("normal fit needs positive sample variance")
    return Normal(mean, math.sqrt(variance)), 1


def _fit_uniform(values, mean, variance):
    low = float(np.min(values))
    high = float(np.max(values))
    if not (high > low):
        raise WorkloadError("uniform fit needs a non-degenerate range")
    return Uniform(low, high), 1


def _fit_erlang(values, mean, variance):
    if variance <= 0.0:
        raise WorkloadError("erlang fit needs positive sample variance")
    shape = max(1, int(round(mean * mean / variance)))
    return Erlang(shape, shape / mean), 1


def _weibull_cv2(k: float) -> float:
    g1 = math.gamma(1.0 + 1.0 / k)
    g2 = math.gamma(1.0 + 2.0 / k)
    return g2 / (g1 * g1) - 1.0


def _fit_weibull(values, mean, variance):
    if variance <= 0.0:
        raise WorkloadError("weibull fit needs positive sample variance")
    cv2 = variance / (mean * mean)
    # _weibull_cv2 is strictly decreasing in k; bracket then bisect.
    low, high = 0.05, 50.0
    if not (_weibull_cv2(high) <= cv2 <= _weibull_cv2(low)):
        raise WorkloadError(
            f"trace cv2 {cv2:.4g} outside the representable Weibull "
            f"range [{_weibull_cv2(high):.4g}, {_weibull_cv2(low):.4g}]"
        )
    iterations = 0
    for _ in range(200):
        iterations += 1
        mid = 0.5 * (low + high)
        if _weibull_cv2(mid) > cv2:
            low = mid
        else:
            high = mid
        if high - low < 1e-10:
            break
    k = 0.5 * (low + high)
    lam = mean / math.gamma(1.0 + 1.0 / k)
    return Weibull(k, lam), iterations


def _fit_pareto(values, mean, variance):
    xm = float(np.min(values))
    if xm <= 0.0:
        raise WorkloadError("pareto fit needs strictly positive values")
    log_sum = float(np.sum(np.log(values / xm)))
    if log_sum <= 0.0:
        raise WorkloadError("pareto fit needs a non-degenerate sample")
    alpha = values.size / log_sum
    return Pareto(alpha, xm), 1


#: family -> estimator, in report order.
FIT_FAMILIES: Dict[str, Callable] = {
    "exp": _fit_exponential,
    "det": _fit_deterministic,
    "normal": _fit_normal,
    "unif": _fit_uniform,
    "erlang": _fit_erlang,
    "weibull": _fit_weibull,
    "pareto": _fit_pareto,
}


def fit_trace(
    trace: WorkloadTrace,
    families: Optional[Sequence[str]] = None,
) -> FitReport:
    """Fit *trace* to each family in *families* (default: all) and rank.

    Families whose estimator cannot represent the trace (degenerate
    variance, cv2 outside the Weibull range, ...) are silently skipped;
    at least one candidate always survives because the exponential and
    deterministic fits are total.
    """
    chosen = list(families) if families is not None else list(FIT_FAMILIES)
    unknown = [name for name in chosen if name not in FIT_FAMILIES]
    if unknown:
        raise WorkloadError(
            f"unknown fit families {unknown} "
            f"(known: {', '.join(FIT_FAMILIES)})"
        )
    values = trace.interarrivals
    mean = trace.mean
    variance = trace.variance
    registry = obs_metrics.get_registry()
    candidates: List[FittedCandidate] = []
    for family in chosen:
        try:
            distribution, iterations = FIT_FAMILIES[family](
                values, mean, variance
            )
        except WorkloadError:
            continue
        ks = ks_statistic(values, distribution)
        pvalue = ks_pvalue(ks, values.size)
        if registry.enabled:
            obs_metrics.WORKLOAD_FIT_ITERATIONS.on(registry).labels(
                family=family
            ).inc(iterations)
            obs_metrics.WORKLOAD_KS_STATISTIC.on(registry).labels(
                family=family
            ).set(ks)
        candidates.append(
            FittedCandidate(family, distribution, ks, pvalue, iterations)
        )
    if not candidates:
        raise WorkloadError(
            f"no candidate family could fit the trace "
            f"(tried: {', '.join(chosen)})"
        )
    candidates.sort(key=lambda entry: (entry.ks, entry.family))
    if registry.enabled:
        obs_metrics.WORKLOAD_TRACES.on(registry).labels(source="fitted").inc()
    return FitReport(trace.summary(), tuple(candidates))

"""Workload traces: validated interarrival sequences with provenance.

A :class:`WorkloadTrace` is the exchange format of the workload
subsystem: generators produce one, the fitter consumes one, and
:class:`~repro.workload.replay.TraceReplay` turns one back into a
:class:`~repro.distributions.Distribution`.  The payload is a read-only
float64 array of **interarrival times** (strictly positive, finite) plus
a metadata dict recording where the trace came from (generator spec,
seed, source file).

Traces round-trip through two on-disk formats:

* **JSONL** (``.jsonl``) — one JSON header object on the first line
  (``{"format": "repro-workload", "version": 1, "metadata": {...}}``)
  followed by one interarrival per line.  Self-describing; the format
  the CLI and CI artifacts use.
* **CSV** (``.csv``) — an optional ``interarrival`` header then one
  value per line.  For interop with external tools; metadata is not
  preserved.

The content **fingerprint** (sha256 over the exact float64 bytes plus
the trace length) identifies a trace independently of its file path or
metadata, and is what :mod:`repro.core.methodology` folds into sweep
checkpoint fingerprints so a resumed trace-driven sweep is provably
replaying the same workload.
"""

from __future__ import annotations

import csv
import hashlib
import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Sequence, Union

import numpy as np

from ..errors import WorkloadError
from ..obs import metrics as obs_metrics

__all__ = [
    "WorkloadTrace",
    "read_trace",
    "write_trace",
]

_FORMAT_NAME = "repro-workload"
_FORMAT_VERSION = 1


def _record_trace_metric(source: str) -> None:
    registry = obs_metrics.get_registry()
    if registry.enabled:
        obs_metrics.WORKLOAD_TRACES.on(registry).labels(source=source).inc()


@dataclass(frozen=True)
class WorkloadTrace:
    """An immutable sequence of interarrival times with metadata.

    ``interarrivals`` is always a read-only, C-contiguous float64 array;
    every constructor path validates that the values are finite and
    strictly positive (a zero interarrival would alias two events and
    break the simulator's strictly-increasing clock assumption).
    """

    interarrivals: np.ndarray
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self):
        values = np.ascontiguousarray(self.interarrivals, dtype=np.float64)
        if values.ndim != 1:
            raise WorkloadError(
                f"trace interarrivals must be one-dimensional, "
                f"got shape {values.shape}"
            )
        if values.size == 0:
            raise WorkloadError("trace must contain at least one event")
        if not np.all(np.isfinite(values)):
            bad = int(np.flatnonzero(~np.isfinite(values))[0])
            raise WorkloadError(
                f"trace interarrival {bad} is not finite ({values[bad]!r})"
            )
        if not np.all(values > 0.0):
            bad = int(np.flatnonzero(values <= 0.0)[0])
            raise WorkloadError(
                f"trace interarrival {bad} is not strictly positive "
                f"({values[bad]!r})"
            )
        values.setflags(write=False)
        object.__setattr__(self, "interarrivals", values)
        object.__setattr__(self, "metadata", dict(self.metadata))

    # -- constructors ----------------------------------------------------

    @classmethod
    def from_event_times(
        cls,
        event_times: Sequence[float],
        metadata: Optional[Dict[str, object]] = None,
    ) -> "WorkloadTrace":
        """Build from absolute event times (first interarrival = first time).

        Event times must be strictly increasing and start after 0.
        """
        times = np.asarray(event_times, dtype=np.float64)
        if times.ndim != 1 or times.size == 0:
            raise WorkloadError("event times must be a non-empty 1-D sequence")
        deltas = np.diff(times, prepend=0.0)
        return cls(deltas, metadata or {})

    # -- derived views ---------------------------------------------------

    def event_times(self) -> np.ndarray:
        """Absolute event times (cumulative sum of interarrivals)."""
        return np.cumsum(self.interarrivals)

    def __len__(self) -> int:
        return int(self.interarrivals.size)

    @property
    def mean(self) -> float:
        return float(np.mean(self.interarrivals))

    @property
    def variance(self) -> float:
        if len(self) < 2:
            return 0.0
        return float(np.var(self.interarrivals, ddof=1))

    @property
    def cv2(self) -> float:
        """Squared coefficient of variation — the burstiness index.

        1 for Poisson, < 1 for regular (deterministic-like) arrivals,
        > 1 for bursty / heavy-tailed workloads.
        """
        mean = self.mean
        if mean == 0.0:
            return math.inf
        return self.variance / (mean * mean)

    @property
    def fingerprint(self) -> str:
        """sha256 over the exact float64 payload — identity of the trace."""
        digest = hashlib.sha256()
        digest.update(f"{_FORMAT_NAME}:{len(self)}:".encode())
        digest.update(self.interarrivals.tobytes())
        return digest.hexdigest()

    def rescaled(self, target_mean: float) -> "WorkloadTrace":
        """A copy scaled so the mean interarrival equals *target_mean*.

        Preserves the trace's correlation structure and normalised shape
        (cv2 is scale-invariant) while matching a case study's rate —
        how a generated bursty trace gets mean-matched to e.g. the rpc
        client's 9.7 ms processing time for apples-to-apples trade-off
        curves.
        """
        if not (target_mean > 0) or not math.isfinite(target_mean):
            raise WorkloadError(
                f"rescale target mean must be positive and finite, "
                f"got {target_mean}"
            )
        factor = target_mean / self.mean
        metadata = dict(self.metadata)
        metadata["rescaled_to_mean"] = target_mean
        return WorkloadTrace(self.interarrivals * factor, metadata)

    def summary(self) -> Dict[str, object]:
        """Compact statistics dict (CLI output, fit-report headers)."""
        return {
            "events": len(self),
            "mean": self.mean,
            "variance": self.variance,
            "cv2": self.cv2,
            "min": float(np.min(self.interarrivals)),
            "max": float(np.max(self.interarrivals)),
            "fingerprint": self.fingerprint,
            "metadata": dict(self.metadata),
        }

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WorkloadTrace):
            return NotImplemented
        return (
            self.interarrivals.shape == other.interarrivals.shape
            and bool(np.all(self.interarrivals == other.interarrivals))
        )

    def __hash__(self) -> int:
        return hash(self.fingerprint)


# ---------------------------------------------------------------------------
# Readers / writers.
# ---------------------------------------------------------------------------


def write_trace(trace: WorkloadTrace, path: Union[str, Path]) -> Path:
    """Write *trace* to *path*; format chosen by suffix (.jsonl / .csv)."""
    path = Path(path)
    suffix = path.suffix.lower()
    if suffix == ".csv":
        _write_csv(trace, path)
    elif suffix in (".jsonl", ".json"):
        _write_jsonl(trace, path)
    else:
        raise WorkloadError(
            f"cannot infer trace format from suffix {suffix!r} of {path}; "
            f"use .jsonl or .csv"
        )
    return path


def read_trace(path: Union[str, Path]) -> WorkloadTrace:
    """Read a trace from *path*; format chosen by suffix (.jsonl / .csv)."""
    path = Path(path)
    if not path.exists():
        raise WorkloadError(f"trace file not found: {path}")
    suffix = path.suffix.lower()
    if suffix == ".csv":
        trace = _read_csv(path)
    elif suffix in (".jsonl", ".json"):
        trace = _read_jsonl(path)
    else:
        raise WorkloadError(
            f"cannot infer trace format from suffix {suffix!r} of {path}; "
            f"use .jsonl or .csv"
        )
    _record_trace_metric("file")
    return trace


def _write_jsonl(trace: WorkloadTrace, path: Path) -> None:
    header = {
        "format": _FORMAT_NAME,
        "version": _FORMAT_VERSION,
        "events": len(trace),
        "metadata": trace.metadata,
    }
    with path.open("w", encoding="utf-8") as handle:
        handle.write(json.dumps(header, sort_keys=True) + "\n")
        for value in trace.interarrivals:
            handle.write(repr(float(value)) + "\n")


def _read_jsonl(path: Path) -> WorkloadTrace:
    with path.open("r", encoding="utf-8") as handle:
        first = handle.readline()
        if not first.strip():
            raise WorkloadError(f"{path}: empty trace file")
        try:
            header = json.loads(first)
        except json.JSONDecodeError as error:
            raise WorkloadError(
                f"{path}: first line is not a JSON header ({error})"
            ) from None
        if (
            not isinstance(header, dict)
            or header.get("format") != _FORMAT_NAME
        ):
            raise WorkloadError(
                f"{path}: not a {_FORMAT_NAME} trace "
                f"(header {str(first.strip())[:80]!r})"
            )
        version = header.get("version")
        if version != _FORMAT_VERSION:
            raise WorkloadError(
                f"{path}: unsupported trace version {version!r} "
                f"(this library reads version {_FORMAT_VERSION})"
            )
        values = []
        for lineno, line in enumerate(handle, start=2):
            line = line.strip()
            if not line:
                continue
            try:
                values.append(float(line))
            except ValueError:
                raise WorkloadError(
                    f"{path}:{lineno}: not a number: {line[:40]!r}"
                ) from None
    metadata = header.get("metadata") or {}
    if not isinstance(metadata, dict):
        raise WorkloadError(f"{path}: metadata must be a JSON object")
    try:
        return WorkloadTrace(np.asarray(values, dtype=np.float64), metadata)
    except WorkloadError as error:
        raise WorkloadError(f"{path}: {error}") from None


def _write_csv(trace: WorkloadTrace, path: Path) -> None:
    with path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["interarrival"])
        for value in trace.interarrivals:
            writer.writerow([repr(float(value))])


def _read_csv(path: Path) -> WorkloadTrace:
    values = []
    with path.open("r", encoding="utf-8", newline="") as handle:
        reader = csv.reader(handle)
        for lineno, row in enumerate(reader, start=1):
            if not row or not row[0].strip():
                continue
            cell = row[0].strip()
            if lineno == 1 and not _is_number(cell):
                continue  # header row
            if not _is_number(cell):
                raise WorkloadError(
                    f"{path}:{lineno}: not a number: {cell[:40]!r}"
                )
            values.append(float(cell))
    if not values:
        raise WorkloadError(f"{path}: no interarrival values found")
    try:
        return WorkloadTrace(
            np.asarray(values, dtype=np.float64), {"source": str(path)}
        )
    except WorkloadError as error:
        raise WorkloadError(f"{path}: {error}") from None


def _is_number(text: str) -> bool:
    try:
        float(text)
    except ValueError:
        return False
    return True

"""Injecting workloads into case-study models.

:func:`apply_workload` is the bridge between the workload subsystem and
the general phase: it rewrites a rate-labelled LTS so that every timed
transition whose label matches a *pattern* (the case study's **workload
hook** — ``C.process_result_packet`` for the rpc client's processing
time, ``S.produce_frame`` for the streaming frame-arrival process) draws
its duration from a caller-supplied
:class:`~repro.distributions.Distribution` instead of the one written in
the specification.  The transform is mechanical, exactly like
:func:`repro.core.validation.exponential_plugin`, and composes with it:
``apply_workload(exponential_plugin(lts), ...)`` yields a model that is
Markovian everywhere except the workload hook — the configuration the
trade-off figures sweep.

Label patterns use the standard matching rules of
:func:`repro.lts.labels.matches` (exact label, ``#``-participant, or
``Inst.*`` wildcard).

:func:`parse_workload` turns the CLI's ``--workload`` argument into a
distribution: either a compact closed-form spec
(:func:`~repro.distributions.parse_distribution_spec`, e.g.
``pareto:1.5,3.23``) or a trace replay ``trace:PATH[:MODE]`` referencing
a trace file on disk.

:func:`workload_fingerprint` gives the stable identity string folded
into sweep-checkpoint fingerprints: closed-form distributions are
identified by their spec text, trace replays by mode plus the trace's
content fingerprint — so a resumed sweep refuses a journal written under
a different workload.
"""

from __future__ import annotations

from typing import Optional

from ..aemilia.rates import ExpRate, GeneralRate, Rate
from ..distributions import Distribution, parse_distribution_spec
from ..errors import SpecificationError, WorkloadError
from ..lts.labels import matches
from ..lts.lts import LTS
from .replay import REPLAY_MODES, TraceReplay
from .trace import read_trace

__all__ = [
    "apply_workload",
    "parse_workload",
    "workload_fingerprint",
]


def apply_workload(
    lts: LTS, pattern: str, distribution: Distribution
) -> LTS:
    """Rewrite timed transitions matching *pattern* to draw *distribution*.

    Matching transitions must carry an active timed rate (exponential or
    general); passive and immediate transitions matching the pattern are
    an error — a workload replaces a duration, not a synchronisation
    priority.  Raises :class:`WorkloadError` if nothing matches (the
    hook name is wrong, not the workload).
    """
    result = LTS(lts.initial)
    for state in lts.states():
        result.add_state()
        result.set_state_info(state, lts.state_info(state))
    replaced = 0
    for transition in lts.transitions:
        rate: Optional[Rate] = transition.rate
        if rate is not None and matches(pattern, transition.label):
            if not isinstance(rate, (ExpRate, GeneralRate)):
                raise WorkloadError(
                    f"workload hook {pattern!r} matched transition "
                    f"{transition} whose rate {rate} is not an active "
                    f"timed rate"
                )
            rate = GeneralRate(distribution)
            replaced += 1
        result.add_transition(
            transition.source,
            transition.label,
            transition.target,
            rate,
            transition.event,
            transition.weight,
        )
    if replaced == 0:
        raise WorkloadError(
            f"workload hook pattern {pattern!r} matched no timed "
            f"transition in the model"
        )
    return result


def parse_workload(text: str) -> Distribution:
    """Parse a ``--workload`` argument into a distribution.

    Two forms::

        <keyword>:<arg>,...        closed-form, e.g. exp:0.103
        trace:<path>[:<mode>]      replay a trace file (mode defaults
                                   to bootstrap)
    """
    if not isinstance(text, str) or not text.strip():
        raise WorkloadError(
            "empty workload spec; expected 'keyword:args' "
            "(e.g. 'pareto:1.5,3.23') or 'trace:PATH[:MODE]'"
        )
    text = text.strip()
    if text.startswith("trace:"):
        remainder = text[len("trace:"):]
        path, _, mode = remainder.rpartition(":")
        if path and mode in REPLAY_MODES:
            return TraceReplay(read_trace(path), mode)
        if not remainder:
            raise WorkloadError(
                f"workload spec {text!r} is missing the trace path "
                f"(expected 'trace:PATH[:MODE]')"
            )
        return TraceReplay(read_trace(remainder), "bootstrap")
    try:
        return parse_distribution_spec(text)
    except SpecificationError as error:
        raise WorkloadError(str(error)) from None


def workload_fingerprint(distribution: Optional[Distribution]) -> str:
    """Stable identity of a workload for checkpoint fingerprints."""
    if distribution is None:
        return "none"
    if isinstance(distribution, TraceReplay):
        return (
            f"replay:{distribution.mode}:{distribution.trace.fingerprint}"
        )
    return str(distribution)

"""Labelled transition systems.

The LTS is the common semantic object of the library: state-space generation
produces one, equivalence checking and noninterference analysis consume the
functional (rate-free) view, and the CTMC builder consumes the rate-labelled
view of Markovian models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..aemilia.rates import Rate
from ..errors import AnalysisError
from .labels import TAU


@dataclass(frozen=True)
class Transition:
    """A single transition ``source --label--> target`` with optional rate.

    ``event`` identifies the *activity* the transition belongs to (e.g. the
    active participant ``S.serve``): transitions of the same source state
    sharing an event are probabilistic branches of one activity, selected
    with probability proportional to ``weight`` when the activity completes.
    The discrete-event engine also uses the event as the stable identity for
    clock persistence (enabling-memory semantics).
    """

    source: int
    label: str
    target: int
    rate: Optional[Rate] = None
    event: Optional[str] = None
    weight: float = 1.0

    def __str__(self) -> str:
        rate = f" [{self.rate}]" if self.rate is not None else ""
        return f"{self.source} --{self.label}{rate}--> {self.target}"


class LTS:
    """A finite labelled transition system with a single initial state."""

    def __init__(self, initial: int = 0):
        self._num_states = 0
        self.initial = initial
        self.transitions: List[Transition] = []
        self._outgoing: Dict[int, List[Transition]] = {}
        self._state_info: Dict[int, str] = {}

    # -- construction -----------------------------------------------------

    def add_state(self, info: Optional[str] = None) -> int:
        """Add a state, optionally with a human-readable description."""
        index = self._num_states
        self._num_states += 1
        if info is not None:
            self._state_info[index] = info
        return index

    def add_transition(
        self,
        source: int,
        label: str,
        target: int,
        rate: Optional[Rate] = None,
        event: Optional[str] = None,
        weight: float = 1.0,
    ) -> Transition:
        """Add a transition between existing states."""
        for state in (source, target):
            if not 0 <= state < self._num_states:
                raise AnalysisError(
                    f"transition endpoint {state} is not a state "
                    f"(have {self._num_states})"
                )
        transition = Transition(source, label, target, rate, event, weight)
        self.transitions.append(transition)
        self._outgoing.setdefault(source, []).append(transition)
        return transition

    # -- accessors --------------------------------------------------------

    @property
    def num_states(self) -> int:
        """Number of states."""
        return self._num_states

    @property
    def num_transitions(self) -> int:
        """Number of transitions."""
        return len(self.transitions)

    def states(self) -> range:
        """Iterate over state indices."""
        return range(self._num_states)

    def outgoing(self, state: int) -> Sequence[Transition]:
        """Transitions leaving *state*."""
        return self._outgoing.get(state, ())

    def state_info(self, state: int) -> str:
        """Human-readable description of *state* (or its index)."""
        return self._state_info.get(state, f"state {state}")

    def set_state_info(self, state: int, info: str) -> None:
        """Attach a human-readable description to *state*."""
        self._state_info[state] = info

    def labels(self) -> Set[str]:
        """The set of labels appearing on transitions."""
        return {t.label for t in self.transitions}

    def visible_labels(self) -> Set[str]:
        """All labels except ``tau``."""
        return self.labels() - {TAU}

    def successors(self, state: int, label: str) -> List[int]:
        """Targets of *label*-transitions leaving *state*."""
        return [t.target for t in self.outgoing(state) if t.label == label]

    def has_deadlock(self) -> bool:
        """True when some reachable state has no outgoing transition."""
        return any(not self.outgoing(s) for s in self.states())

    def deadlock_states(self) -> List[int]:
        """All states with no outgoing transition."""
        return [s for s in self.states() if not self.outgoing(s)]

    # -- misc -------------------------------------------------------------

    def copy_structure(self) -> "LTS":
        """Copy of the states and their metadata, with no transitions.

        Used by the sweep runtime to rebuild a cached state-space skeleton
        with relabeled rates without re-exploring the state space.
        """
        clone = LTS(self.initial)
        clone._num_states = self._num_states
        clone._state_info = dict(self._state_info)
        return clone

    def copy(self) -> "LTS":
        """Deep-enough copy (transitions are immutable)."""
        clone = LTS(self.initial)
        clone._num_states = self._num_states
        clone.transitions = list(self.transitions)
        clone._outgoing = {s: list(ts) for s, ts in self._outgoing.items()}
        clone._state_info = dict(self._state_info)
        return clone

    def __str__(self) -> str:
        return (
            f"LTS({self._num_states} states, {len(self.transitions)} "
            f"transitions, initial {self.initial})"
        )


def build_lts(
    num_states: int,
    transitions: Iterable[Tuple[int, str, int]],
    initial: int = 0,
) -> LTS:
    """Convenience constructor from plain tuples (used heavily in tests)."""
    lts = LTS(initial)
    for _ in range(num_states):
        lts.add_state()
    for source, label, target in transitions:
        lts.add_transition(source, label, target)
    return lts

"""Reachability utilities for labelled transition systems."""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Set

from .lts import LTS


def reachable_states(lts: LTS, start: int = None) -> Set[int]:
    """States reachable from *start* (default: the initial state)."""
    if start is None:
        start = lts.initial
    seen: Set[int] = {start}
    frontier = deque([start])
    while frontier:
        state = frontier.popleft()
        for transition in lts.outgoing(state):
            if transition.target not in seen:
                seen.add(transition.target)
                frontier.append(transition.target)
    return seen


def restrict_to_reachable(lts: LTS) -> LTS:
    """Return a copy containing only states reachable from the initial one.

    States are renumbered in BFS discovery order, keeping diagnostics
    stable.
    """
    order: List[int] = []
    index: Dict[int, int] = {}
    frontier = deque([lts.initial])
    index[lts.initial] = 0
    order.append(lts.initial)
    while frontier:
        state = frontier.popleft()
        for transition in lts.outgoing(state):
            if transition.target not in index:
                index[transition.target] = len(order)
                order.append(transition.target)
                frontier.append(transition.target)
    result = LTS(0)
    for old in order:
        new = result.add_state()
        result.set_state_info(new, lts.state_info(old))
    for old in order:
        for transition in lts.outgoing(old):
            if transition.target in index:
                result.add_transition(
                    index[old],
                    transition.label,
                    index[transition.target],
                    transition.rate,
                    transition.event,
                    transition.weight,
                )
    return result

"""Distinguishing-formula generation for weakly non-bisimilar states.

When the noninterference check of Sect. 3 fails, the paper's workflow uses
the modal-logic formula produced by the equivalence checker as a diagnostic
to repair the DPM or the system.  This module rebuilds such formulas.

The construction is the classic one (Cleaveland, *On automatically
explaining bisimulation inequivalence*): let ``≈_k`` be the partition after
``k`` refinement rounds.  If ``s`` and ``t`` are first separated at round
``k``, there is a weak move ``s =a=> s'`` (or symmetrically from ``t``) such
that every weak ``a``-move of the other state reaches a state separated
from ``s'`` strictly earlier than round ``k``; recursion on the earlier
separations terminates and yields a formula satisfied by ``s`` and not by
``t``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import AnalysisError
from .hml import DiamondWeak, Formula, Not, conjunction
from .labels import TAU
from .weak import WeakBisimulationResult, WeakStructure


class _Builder:
    """Stateful helper carrying the refinement levels during construction."""

    def __init__(self, result: WeakBisimulationResult):
        self.structure: WeakStructure = result.structure
        self.levels: List[Dict[int, int]] = result.partition.levels
        self._memo: Dict[Tuple[int, int], Formula] = {}

    def separation_level(self, s: int, t: int) -> Optional[int]:
        for k, level in enumerate(self.levels):
            if level[s] != level[t]:
                return k
        return None

    def _candidate_labels(self, state: int):
        yield TAU
        for label in sorted(self.structure.weak_labels(state)):
            yield label

    def _move_from(self, s: int, t: int, k: int) -> Optional[Formula]:
        """Try to find a distinguishing weak move out of *s* against *t*."""
        best: Optional[Formula] = None
        for label in self._candidate_labels(s):
            s_targets = self.structure.weak_successors(s, label)
            t_targets = self.structure.weak_successors(t, label)
            for s_prime in sorted(s_targets):
                separations = []
                ok = True
                for t_prime in sorted(t_targets):
                    level = self.separation_level(s_prime, t_prime)
                    if level is None or level >= k:
                        ok = False
                        break
                    separations.append((t_prime, level))
                if not ok:
                    continue
                parts = [
                    self.build(s_prime, t_prime) for t_prime, _ in separations
                ]
                formula = DiamondWeak(label, conjunction(parts))
                if best is None or formula.size() < best.size():
                    best = formula
        return best

    def build(self, s: int, t: int) -> Formula:
        """Formula satisfied by *s* and not by *t* (must be separable)."""
        if (s, t) in self._memo:
            return self._memo[(s, t)]
        k = self.separation_level(s, t)
        if k is None:
            raise AnalysisError(
                f"states {s} and {t} are weakly bisimilar; "
                f"no distinguishing formula exists"
            )
        formula = self._move_from(s, t, k)
        if formula is None:
            mirrored = self._move_from(t, s, k)
            if mirrored is None:  # pragma: no cover - theory guarantees one
                raise AnalysisError(
                    f"failed to build a distinguishing formula for "
                    f"states {s} and {t} at level {k}"
                )
            formula = Not(mirrored)
        self._memo[(s, t)] = formula
        return formula


def distinguishing_formula(
    result: WeakBisimulationResult, s: int, t: int
) -> Optional[Formula]:
    """Return a weak-HML formula satisfied by *s* but not by *t*.

    *s* and *t* are **original** state indices (they are mapped onto the
    tau-SCC quotient internally).  Returns ``None`` when the states are
    weakly bisimilar.  The returned formula is guaranteed (and asserted in
    tests) to hold at *s* and fail at *t* under the weak satisfaction
    relation of :mod:`repro.lts.hml`.
    """
    builder = _Builder(result)
    qs, qt = result.quotient_state(s), result.quotient_state(t)
    if builder.separation_level(qs, qt) is None:
        return None
    return builder.build(qs, qt)


def verify_distinguishing(
    result: WeakBisimulationResult, formula: Formula, s: int, t: int
) -> bool:
    """Check that *formula* separates *s* (sat) from *t* (unsat)."""
    structure = result.structure
    qs, qt = result.quotient_state(s), result.quotient_state(t)
    return formula.satisfied_by(structure, qs) and not formula.satisfied_by(
        structure, qt
    )

"""Transition-label conventions and pattern matching.

Labels of the composed system are structured strings:

* ``Inst.action`` — an internal (or unattached) action of one instance;
* ``InstA.out#InstB.in`` — a synchronisation between an output and an input
  interaction (the paper's equivalence checker prints these, e.g.
  ``C.send_rpc_packet#RCS.get_packet``);
* ``tau`` — the invisible action produced by hiding.

A *pattern* (used by noninterference high/low sets and by the measure
language's ``ENABLED`` conditions) matches a label when it equals the whole
label, equals one of its ``#``-separated participants, or is an
``Inst.*`` wildcard covering every action of one instance.
"""

from __future__ import annotations

from typing import Iterable, List

#: The invisible action label.
TAU = "tau"

#: Separator between synchronising participants.
SYNC_SEPARATOR = "#"


def participants(label: str) -> List[str]:
    """Split a label into its ``Inst.action`` participants."""
    if label == TAU:
        return []
    return label.split(SYNC_SEPARATOR)


def sync_label(*parts: str) -> str:
    """Build a synchronisation label from participant strings."""
    return SYNC_SEPARATOR.join(parts)


def local_label(instance: str, action: str) -> str:
    """Build the label of a local action."""
    return f"{instance}.{action}"


def matches(pattern: str, label: str) -> bool:
    """Return True when *pattern* matches *label* (see module docstring)."""
    if pattern == label:
        return True
    if label == TAU:
        return False
    parts = participants(label)
    if pattern in parts:
        return True
    if pattern.endswith(".*"):
        instance = pattern[:-2]
        return any(part.startswith(instance + ".") for part in parts)
    return False


def matches_any(patterns: Iterable[str], label: str) -> bool:
    """True when any of *patterns* matches *label*."""
    return any(matches(pattern, label) for pattern in patterns)

"""Weak (observational) equivalence — Milner's weak bisimilarity.

Weak bisimilarity abstracts from invisible ``tau`` steps: a visible move
``s =a=> t`` may be padded with any number of ``tau`` steps before and
after, and a ``tau`` move may be matched by doing nothing.  This is the
equivalence the paper uses for its noninterference check (Sect. 3).

The implementation saturates the transition relation (computing all weak
moves) and then runs the strong partition refinement of
:mod:`repro.lts.bisimulation` on the saturated system, keeping the
refinement levels so that a distinguishing formula can be rebuilt when the
check fails.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set, Tuple

from .bisimulation import PartitionResult, refine
from .labels import TAU
from .lts import LTS
from .ops import disjoint_union


class WeakStructure:
    """Precomputed weak transition relation of an LTS.

    ``weak_successors(s, a)`` is the set of states reachable as
    ``s (tau*) a (tau*) t`` for visible ``a``, and the tau-closure of ``s``
    (including ``s`` itself — the empty move) for ``a == tau``.
    """

    def __init__(self, lts: LTS):
        self.lts = lts
        self._tau_closure: List[FrozenSet[int]] = self._compute_tau_closures()
        self._weak: Dict[Tuple[int, str], FrozenSet[int]] = {}
        self._compute_weak_moves()

    def _compute_tau_closures(self) -> List[FrozenSet[int]]:
        closures: List[FrozenSet[int]] = []
        for state in self.lts.states():
            seen: Set[int] = {state}
            frontier = deque([state])
            while frontier:
                current = frontier.popleft()
                for transition in self.lts.outgoing(current):
                    if transition.label == TAU and transition.target not in seen:
                        seen.add(transition.target)
                        frontier.append(transition.target)
            closures.append(frozenset(seen))
        return closures

    def _compute_weak_moves(self) -> None:
        self._labels_by_state: Dict[int, Set[str]] = {}
        for state in self.lts.states():
            by_label: Dict[str, Set[int]] = {}
            for pre in self._tau_closure[state]:
                for transition in self.lts.outgoing(pre):
                    if transition.label == TAU:
                        continue
                    targets = by_label.setdefault(transition.label, set())
                    targets |= self._tau_closure[transition.target]
            self._labels_by_state[state] = set(by_label)
            for label, targets in by_label.items():
                self._weak[(state, label)] = frozenset(targets)

    def tau_closure(self, state: int) -> FrozenSet[int]:
        """States reachable from *state* by (possibly zero) tau steps."""
        return self._tau_closure[state]

    def weak_successors(self, state: int, label: str) -> FrozenSet[int]:
        """Weak *label*-successors of *state* (see class docstring)."""
        if label == TAU:
            return self._tau_closure[state]
        return self._weak.get((state, label), frozenset())

    def weak_labels(self, state: int) -> Set[str]:
        """Visible labels with at least one weak move from *state*."""
        return self._labels_by_state.get(state, set())


def tau_condensation(lts: LTS) -> Tuple[LTS, List[int]]:
    """Collapse mutually tau-reachable states (tau-SCCs).

    States on a common tau-cycle are weakly bisimilar, so the quotient is
    weak-bisimulation equivalent to the original system while being —
    for the hidden views used by noninterference analysis — dramatically
    smaller.  Returns the quotient and the original→quotient state map.
    """
    # Tarjan over tau-edges only (iterative).
    successors: List[List[int]] = [[] for _ in lts.states()]
    for transition in lts.transitions:
        if transition.label == TAU and transition.source != transition.target:
            successors[transition.source].append(transition.target)
    index_counter = [0]
    stack: List[int] = []
    lowlink: Dict[int, int] = {}
    index: Dict[int, int] = {}
    on_stack: Dict[int, bool] = {}
    scc_of: List[int] = [-1] * lts.num_states
    scc_count = [0]

    for root in lts.states():
        if root in index:
            continue
        work = [(root, iter(successors[root]))]
        index[root] = lowlink[root] = index_counter[0]
        index_counter[0] += 1
        stack.append(root)
        on_stack[root] = True
        while work:
            node, successor_iter = work[-1]
            advanced = False
            for successor in successor_iter:
                if successor not in index:
                    index[successor] = lowlink[successor] = index_counter[0]
                    index_counter[0] += 1
                    stack.append(successor)
                    on_stack[successor] = True
                    work.append((successor, iter(successors[successor])))
                    advanced = True
                    break
                if on_stack.get(successor):
                    lowlink[node] = min(lowlink[node], index[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                members = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    members.append(member)
                    if member == node:
                        break
                scc_id = scc_count[0]
                scc_count[0] += 1
                for member in members:
                    scc_of[member] = scc_id
    quotient = LTS(scc_of[lts.initial])
    for _ in range(scc_count[0]):
        quotient.add_state()
    for state in lts.states():
        quotient.set_state_info(scc_of[state], lts.state_info(state))
    seen: Set[Tuple[int, str, int]] = set()
    for transition in lts.transitions:
        source = scc_of[transition.source]
        target = scc_of[transition.target]
        if transition.label == TAU and source == target:
            continue  # internal to the collapsed class
        key = (source, transition.label, target)
        if key in seen:
            continue
        seen.add(key)
        quotient.add_transition(source, transition.label, target)
    return quotient, scc_of


@dataclass
class WeakBisimulationResult:
    """Partition result together with the weak structure that produced it.

    The computation runs on the tau-SCC quotient; ``state_map`` maps
    original state indices to quotient indices, and every public method
    accepts *original* indices.
    """

    structure: WeakStructure
    partition: PartitionResult
    state_map: List[int]

    def quotient_state(self, state: int) -> int:
        """Quotient index of an original state."""
        return self.state_map[state]

    def equivalent(self, s: int, t: int) -> bool:
        """True when original states *s* and *t* are weakly bisimilar."""
        return self.partition.equivalent(self.state_map[s], self.state_map[t])


def weak_bisimulation(lts: LTS) -> WeakBisimulationResult:
    """Compute the weak bisimilarity partition of *lts*."""
    quotient, state_map = tau_condensation(lts)
    structure = WeakStructure(quotient)

    def signature(state: int, block_of: Dict[int, int]) -> FrozenSet:
        items = set()
        for label in structure.weak_labels(state):
            for target in structure.weak_successors(state, label):
                items.add((label, block_of[target]))
        for target in structure.tau_closure(state):
            items.add((TAU, block_of[target]))
        return frozenset(items)

    partition = refine(quotient, signature)
    return WeakBisimulationResult(structure, partition, state_map)


@dataclass
class WeakEquivalenceCheck:
    """Outcome of comparing two systems up to weak bisimilarity."""

    equivalent: bool
    union: LTS
    initial_first: int
    initial_second: int
    result: WeakBisimulationResult


def check_weak_equivalence(first: LTS, second: LTS) -> WeakEquivalenceCheck:
    """Compare the initial states of two systems up to weak bisimilarity.

    The two systems are embedded into a disjoint union so that one partition
    refinement answers the question; the union and the refinement result are
    returned so that callers (the noninterference analyzer) can derive a
    distinguishing formula on failure.
    """
    union, init_a, init_b = disjoint_union(first, second)
    result = weak_bisimulation(union)
    return WeakEquivalenceCheck(
        equivalent=result.equivalent(init_a, init_b),
        union=union,
        initial_first=init_a,
        initial_second=init_b,
        result=result,
    )

"""Operators on labelled transition systems: hide, restrict, relabel, union.

These are the ingredients of the noninterference check of Sect. 3:

* :func:`hide` turns matching labels into ``tau`` — the system *with* the
  DPM but with its actions unobservable;
* :func:`restrict` removes matching transitions — the system with the DPM
  actions *prevented from occurring*;
* :func:`disjoint_union` places two systems side by side so that a single
  bisimulation computation can compare their initial states.
"""

from __future__ import annotations

from typing import Callable, Iterable, Tuple, Union

from .labels import TAU, matches_any
from .lts import LTS
from .reachability import restrict_to_reachable

LabelSelector = Union[Iterable[str], Callable[[str], bool]]


def _as_predicate(selector: LabelSelector) -> Callable[[str], bool]:
    if callable(selector):
        return selector
    patterns = list(selector)
    return lambda label: matches_any(patterns, label)


def hide(lts: LTS, selector: LabelSelector) -> LTS:
    """Rename every matching label to ``tau``."""
    predicate = _as_predicate(selector)
    result = LTS(lts.initial)
    for state in lts.states():
        result.add_state()
        result.set_state_info(state, lts.state_info(state))
    for transition in lts.transitions:
        label = TAU if predicate(transition.label) else transition.label
        result.add_transition(
            transition.source, label, transition.target, transition.rate,
            transition.event, transition.weight,
        )
    return result


def restrict(lts: LTS, selector: LabelSelector, prune: bool = True) -> LTS:
    """Remove every transition with a matching label.

    With ``prune`` (default) the result is restricted to the states still
    reachable from the initial state.
    """
    predicate = _as_predicate(selector)
    result = LTS(lts.initial)
    for state in lts.states():
        result.add_state()
        result.set_state_info(state, lts.state_info(state))
    for transition in lts.transitions:
        if not predicate(transition.label):
            result.add_transition(
                transition.source,
                transition.label,
                transition.target,
                transition.rate,
                transition.event,
                transition.weight,
            )
    return restrict_to_reachable(result) if prune else result


def relabel(lts: LTS, mapping: Callable[[str], str]) -> LTS:
    """Apply a label-to-label function to every transition."""
    result = LTS(lts.initial)
    for state in lts.states():
        result.add_state()
        result.set_state_info(state, lts.state_info(state))
    for transition in lts.transitions:
        result.add_transition(
            transition.source,
            mapping(transition.label),
            transition.target,
            transition.rate,
            transition.event,
            transition.weight,
        )
    return result


def disjoint_union(first: LTS, second: LTS) -> Tuple[LTS, int, int]:
    """Combine two systems over disjoint state sets.

    Returns ``(union, initial_first, initial_second)`` where the two indices
    locate the original initial states inside the union.
    """
    union = LTS(first.initial)
    for state in first.states():
        union.add_state()
        union.set_state_info(state, "A:" + first.state_info(state))
    offset = first.num_states
    for state in second.states():
        union.add_state()
        union.set_state_info(offset + state, "B:" + second.state_info(state))
    for transition in first.transitions:
        union.add_transition(
            transition.source, transition.label, transition.target,
            transition.rate, transition.event, transition.weight,
        )
    for transition in second.transitions:
        union.add_transition(
            transition.source + offset,
            transition.label,
            transition.target + offset,
            transition.rate,
            transition.event,
            transition.weight,
        )
    return union, first.initial, second.initial + offset

"""Strong bisimulation via partition refinement.

The refinement loop follows Kanellakis–Smolka: states are repeatedly split
by the *signature* of their outgoing transitions (label, target block) until
the partition stabilises.  With ``markovian=True`` the signature also
accumulates exit rates per (label, block), which yields ordinary Markovian
lumpability — the strongest equivalence preserving CTMC solutions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from ..aemilia.rates import ExpRate, ImmediateRate
from .lts import LTS
from .ops import disjoint_union


@dataclass
class PartitionResult:
    """Result of a partition refinement.

    Attributes
    ----------
    block_of:
        Final mapping from state index to block id.
    levels:
        ``levels[k][s]`` is the block of ``s`` after ``k`` refinement
        rounds; ``levels[0]`` is the initial (coarsest) partition and the
        last entry equals ``block_of``.
    """

    block_of: Dict[int, int]
    levels: List[Dict[int, int]]

    @property
    def num_blocks(self) -> int:
        """Number of equivalence classes."""
        return len(set(self.block_of.values()))

    def equivalent(self, s: int, t: int) -> bool:
        """True when the two states ended in the same block."""
        return self.block_of[s] == self.block_of[t]

    def separation_level(self, s: int, t: int) -> Optional[int]:
        """First refinement round that separated *s* and *t* (None if never)."""
        for k, level in enumerate(self.levels):
            if level[s] != level[t]:
                return k
        return None

    def blocks(self) -> List[List[int]]:
        """The equivalence classes as lists of states."""
        grouped: Dict[int, List[int]] = {}
        for state, block in self.block_of.items():
            grouped.setdefault(block, []).append(state)
        return [sorted(states) for _, states in sorted(grouped.items())]


SignatureFn = Callable[[int, Dict[int, int]], FrozenSet]


def refine(
    lts: LTS,
    signature: SignatureFn,
    initial_partition: Optional[Dict[int, int]] = None,
) -> PartitionResult:
    """Run signature-based partition refinement to a fixpoint."""
    if initial_partition is None:
        block_of = {s: 0 for s in lts.states()}
    else:
        block_of = dict(initial_partition)
    levels = [dict(block_of)]
    while True:
        signatures: Dict[int, Tuple[int, FrozenSet]] = {
            s: (block_of[s], signature(s, block_of)) for s in lts.states()
        }
        block_ids: Dict[Tuple[int, FrozenSet], int] = {}
        new_block_of: Dict[int, int] = {}
        for state in lts.states():
            key = signatures[state]
            if key not in block_ids:
                block_ids[key] = len(block_ids)
            new_block_of[state] = block_ids[key]
        if len(set(new_block_of.values())) == len(set(block_of.values())):
            # No split happened: stable.
            break
        block_of = new_block_of
        levels.append(dict(block_of))
    return PartitionResult(block_of, levels)


def _strong_signature(lts: LTS) -> SignatureFn:
    def signature(state: int, block_of: Dict[int, int]) -> FrozenSet:
        return frozenset(
            (t.label, block_of[t.target]) for t in lts.outgoing(state)
        )

    return signature


def _markovian_signature(lts: LTS) -> SignatureFn:
    def signature(state: int, block_of: Dict[int, int]) -> FrozenSet:
        totals: Dict[Tuple[str, int], float] = {}
        kinds: Dict[Tuple[str, int], str] = {}
        for transition in lts.outgoing(state):
            key = (transition.label, block_of[transition.target])
            rate = transition.rate
            if isinstance(rate, ExpRate):
                totals[key] = totals.get(key, 0.0) + rate.rate
                kinds[key] = "exp"
            elif isinstance(rate, ImmediateRate):
                totals[key] = totals.get(key, 0.0) + rate.weight
                kinds[key] = f"inf{rate.priority}"
            else:
                totals[key] = totals.get(key, 0.0)
                kinds[key] = str(type(rate).__name__)
        return frozenset(
            (label, block, kinds[(label, block)], round(total, 12))
            for (label, block), total in totals.items()
        )

    return signature


def strong_bisimulation(lts: LTS, markovian: bool = False) -> PartitionResult:
    """Compute the strong (or Markovian-lumping) bisimulation partition."""
    signature = _markovian_signature(lts) if markovian else _strong_signature(lts)
    return refine(lts, signature)


def strongly_bisimilar(first: LTS, second: LTS, markovian: bool = False) -> bool:
    """Check whether the initial states of two systems are bisimilar."""
    union, init_a, init_b = disjoint_union(first, second)
    result = strong_bisimulation(union, markovian=markovian)
    return result.equivalent(init_a, init_b)


def minimize(lts: LTS, markovian: bool = False) -> LTS:
    """Return the quotient of *lts* by strong bisimilarity."""
    result = strong_bisimulation(lts, markovian=markovian)
    quotient = LTS(result.block_of[lts.initial])
    for _ in range(result.num_blocks):
        quotient.add_state()
    seen = set()
    for transition in lts.transitions:
        key = (
            result.block_of[transition.source],
            transition.label,
            result.block_of[transition.target],
            transition.rate,
        )
        if key in seen:
            continue
        seen.add(key)
        quotient.add_transition(key[0], key[1], key[2], key[3])
    for block, states in enumerate(result.blocks()):
        quotient.set_state_info(
            block, "{" + ", ".join(lts.state_info(s) for s in states[:3]) + "}"
        )
    return quotient

"""GraphViz (DOT) export of LTSs and CTMCs.

Small models are much easier to review as pictures; these exporters
produce standard ``.dot`` text (render with ``dot -Tpdf``).  Rates are
printed on the edges, the initial state is marked with a double circle,
and deadlock states are shaded.
"""

from __future__ import annotations

from typing import Optional

from ..ctmc.chain import CTMC
from .labels import TAU
from .lts import LTS


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def lts_to_dot(
    lts: LTS,
    name: str = "lts",
    include_state_info: bool = False,
    max_states: Optional[int] = None,
) -> str:
    """Render an LTS as a DOT digraph."""
    limit = lts.num_states if max_states is None else min(
        max_states, lts.num_states
    )
    lines = [f'digraph "{_escape(name)}" {{', "  rankdir=LR;"]
    for state in range(limit):
        attributes = []
        if state == lts.initial:
            attributes.append("shape=doublecircle")
        else:
            attributes.append("shape=circle")
        if not lts.outgoing(state):
            attributes.append('style=filled fillcolor="#dddddd"')
        label = (
            _escape(lts.state_info(state))
            if include_state_info
            else str(state)
        )
        attributes.append(f'label="{label}"')
        lines.append(f"  s{state} [{' '.join(attributes)}];")
    for transition in lts.transitions:
        if transition.source >= limit or transition.target >= limit:
            continue
        label = transition.label
        if transition.rate is not None:
            label += f"\\n{transition.rate}"
        style = ' style=dashed color="#888888"' if transition.label == TAU else ""
        lines.append(
            f'  s{transition.source} -> s{transition.target} '
            f'[label="{_escape(label)}"{style}];'
        )
    if limit < lts.num_states:
        lines.append(
            f'  truncated [shape=note label="{lts.num_states - limit} '
            f'more states not shown"];'
        )
    lines.append("}")
    return "\n".join(lines)


def ctmc_to_dot(
    ctmc: CTMC,
    name: str = "ctmc",
    include_state_info: bool = False,
    max_states: Optional[int] = None,
) -> str:
    """Render a CTMC as a DOT digraph (rates on edges)."""
    limit = ctmc.num_states if max_states is None else min(
        max_states, ctmc.num_states
    )
    lines = [f'digraph "{_escape(name)}" {{', "  rankdir=LR;"]
    for state in range(limit):
        label = (
            _escape(ctmc.state_info(state))
            if include_state_info
            else str(state)
        )
        initial_mass = ctmc.initial_distribution[state]
        shape = "doublecircle" if initial_mass > 0 else "circle"
        lines.append(f'  s{state} [shape={shape} label="{label}"];')
    for transition in ctmc.transitions:
        if transition.source >= limit or transition.target >= limit:
            continue
        labels = ", ".join(sorted(transition.label_counts)[:2])
        text = f"{transition.rate:.4g}"
        if labels:
            text += f"\\n{labels}"
        lines.append(
            f'  s{transition.source} -> s{transition.target} '
            f'[label="{_escape(text)}"];'
        )
    if limit < ctmc.num_states:
        lines.append(
            f'  truncated [shape=note label="{ctmc.num_states - limit} '
            f'more states not shown"];'
        )
    lines.append("}")
    return "\n".join(lines)

"""Hennessy–Milner logic with weak modalities.

The equivalence checker of the paper's toolchain reports failed checks as a
modal-logic formula satisfied by one system and not by the other, e.g.::

    EXISTS_WEAK_TRANS(
      LABEL(C.send_rpc_packet#RCS.get_packet);
      REACHED_STATE_SAT(
        NOT(EXISTS_WEAK_TRANS(
          LABEL(RSC.deliver_packet#C.receive_result_packet);
          REACHED_STATE_SAT(TRUE)))))

This module defines the formula AST, its satisfaction relation over the
*weak* transition relation (so formulas distinguish exactly up to weak
bisimilarity) and the TwoTowers-style rendering above.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from .weak import WeakStructure


class Formula:
    """Base class of HML formulas (weak modalities)."""

    def satisfied_by(self, structure: WeakStructure, state: int) -> bool:
        """Evaluate the formula at *state* of the given weak structure."""
        raise NotImplementedError

    def render(self, indent: int = 0) -> str:
        """Render in the TwoTowers-like concrete syntax."""
        raise NotImplementedError

    def size(self) -> int:
        """Number of AST nodes (used to prefer small diagnostics)."""
        raise NotImplementedError

    def __str__(self) -> str:
        return self.render()


@dataclass(frozen=True)
class Top(Formula):
    """The trivially true formula."""

    def satisfied_by(self, structure: WeakStructure, state: int) -> bool:
        return True

    def render(self, indent: int = 0) -> str:
        return " " * indent + "TRUE"

    def size(self) -> int:
        return 1


@dataclass(frozen=True)
class Not(Formula):
    """Negation."""

    operand: Formula

    def satisfied_by(self, structure: WeakStructure, state: int) -> bool:
        return not self.operand.satisfied_by(structure, state)

    def render(self, indent: int = 0) -> str:
        pad = " " * indent
        inner = self.operand.render(indent + 2)
        return f"{pad}NOT(\n{inner}\n{pad})"

    def size(self) -> int:
        return 1 + self.operand.size()


@dataclass(frozen=True)
class And(Formula):
    """Finite conjunction (empty conjunction is TRUE)."""

    operands: Tuple[Formula, ...]

    def satisfied_by(self, structure: WeakStructure, state: int) -> bool:
        return all(op.satisfied_by(structure, state) for op in self.operands)

    def render(self, indent: int = 0) -> str:
        pad = " " * indent
        if not self.operands:
            return pad + "TRUE"
        if len(self.operands) == 1:
            return self.operands[0].render(indent)
        inner = ";\n".join(op.render(indent + 2) for op in self.operands)
        return f"{pad}AND(\n{inner}\n{pad})"

    def size(self) -> int:
        return 1 + sum(op.size() for op in self.operands)


@dataclass(frozen=True)
class DiamondWeak(Formula):
    """``EXISTS_WEAK_TRANS(LABEL(a); REACHED_STATE_SAT(phi))``.

    Satisfied when some weak ``a``-successor satisfies the continuation.
    For ``a == tau`` the empty move counts (the state itself is among its
    weak tau-successors).
    """

    label: str
    continuation: Formula

    def satisfied_by(self, structure: WeakStructure, state: int) -> bool:
        return any(
            self.continuation.satisfied_by(structure, target)
            for target in structure.weak_successors(state, self.label)
        )

    def render(self, indent: int = 0) -> str:
        pad = " " * indent
        inner = self.continuation.render(indent + 4)
        return (
            f"{pad}EXISTS_WEAK_TRANS(\n"
            f"{pad}  LABEL({self.label});\n"
            f"{pad}  REACHED_STATE_SAT(\n{inner}\n"
            f"{pad}  )\n"
            f"{pad})"
        )

    def size(self) -> int:
        return 1 + self.continuation.size()


def conjunction(operands) -> Formula:
    """Build a conjunction, deduplicating and flattening trivial cases."""
    unique = []
    seen = set()
    for operand in operands:
        if isinstance(operand, Top) or operand in seen:
            continue
        seen.add(operand)
        unique.append(operand)
    if not unique:
        return Top()
    if len(unique) == 1:
        return unique[0]
    return And(tuple(unique))

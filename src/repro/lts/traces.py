"""Trace (language) semantics of LTSs.

Weak bisimilarity — the equivalence the methodology uses — is strictly
finer than trace equivalence: the classic coffee-machine pair accepts the
same traces but is not bisimilar, and the difference matters for
noninterference (an interfering DPM can be trace-invisible yet still
pre-empt choices the user would notice).  This module provides bounded
weak-trace enumeration and trace-equivalence checking so that tests and
examples can demonstrate exactly that gap.
"""

from __future__ import annotations

from typing import Set, Tuple

from .lts import LTS
from .weak import WeakStructure

Trace = Tuple[str, ...]


def weak_traces(lts: LTS, max_length: int) -> Set[Trace]:
    """All visible traces of length up to *max_length* from the initial
    state (tau steps do not count towards the length)."""
    if max_length < 0:
        raise ValueError(f"max_length must be >= 0, got {max_length}")
    structure = WeakStructure(lts)
    traces: Set[Trace] = {()}
    frontier: Set[Tuple[int, Trace]] = {
        (state, ()) for state in structure.tau_closure(lts.initial)
    }
    for _ in range(max_length):
        next_frontier: Set[Tuple[int, Trace]] = set()
        for state, trace in frontier:
            for label in structure.weak_labels(state):
                extended = trace + (label,)
                if extended in traces:
                    # Still explore: other continuations may be new.
                    pass
                traces.add(extended)
                for target in structure.weak_successors(state, label):
                    next_frontier.add((target, extended))
        if not next_frontier:
            break
        frontier = next_frontier
    return traces


def trace_equivalent(first: LTS, second: LTS, max_length: int) -> bool:
    """Bounded weak-trace equivalence of the two initial states.

    Exactness note: for LTSs with at most ``n`` states each, traces of
    length up to ``n1 * n2`` decide (full) trace equivalence; callers that
    want the exact answer can pass that bound.
    """
    return weak_traces(first, max_length) == weak_traces(second, max_length)


def completed_weak_traces(lts: LTS, max_length: int) -> Set[Trace]:
    """Traces that can end in a state with no visible continuation.

    Distinguishes deadlock-sensitive behaviour that plain trace sets miss
    (completed-trace semantics sits between traces and failures).
    """
    structure = WeakStructure(lts)
    completed: Set[Trace] = set()
    frontier: Set[Tuple[int, Trace]] = {
        (state, ()) for state in structure.tau_closure(lts.initial)
    }
    seen: Set[Tuple[int, Trace]] = set(frontier)
    for _ in range(max_length + 1):
        next_frontier: Set[Tuple[int, Trace]] = set()
        for state, trace in frontier:
            labels = structure.weak_labels(state)
            if not labels:
                completed.add(trace)
                continue
            if len(trace) >= max_length:
                continue
            for label in labels:
                extended = trace + (label,)
                for target in structure.weak_successors(state, label):
                    key = (target, extended)
                    if key not in seen:
                        seen.add(key)
                        next_frontier.add(key)
        if not next_frontier:
            break
        frontier = next_frontier
    return completed

"""Labelled transition systems and behavioural equivalences."""

from .bisimulation import (
    PartitionResult,
    minimize,
    strong_bisimulation,
    strongly_bisimilar,
)
from .distinguish import distinguishing_formula, verify_distinguishing
from .dot import ctmc_to_dot, lts_to_dot
from .hml import And, DiamondWeak, Formula, Not, Top, conjunction
from .labels import TAU, local_label, matches, matches_any, sync_label
from .lts import LTS, Transition, build_lts
from .ops import disjoint_union, hide, relabel, restrict
from .reachability import reachable_states, restrict_to_reachable
from .traces import completed_weak_traces, trace_equivalent, weak_traces
from .weak import (
    WeakBisimulationResult,
    WeakEquivalenceCheck,
    WeakStructure,
    check_weak_equivalence,
    weak_bisimulation,
)

__all__ = [
    "PartitionResult",
    "minimize",
    "strong_bisimulation",
    "strongly_bisimilar",
    "distinguishing_formula",
    "ctmc_to_dot",
    "lts_to_dot",
    "verify_distinguishing",
    "And",
    "DiamondWeak",
    "Formula",
    "Not",
    "Top",
    "conjunction",
    "TAU",
    "local_label",
    "matches",
    "matches_any",
    "sync_label",
    "LTS",
    "Transition",
    "build_lts",
    "disjoint_union",
    "hide",
    "relabel",
    "restrict",
    "reachable_states",
    "completed_weak_traces",
    "trace_equivalent",
    "weak_traces",
    "restrict_to_reachable",
    "WeakBisimulationResult",
    "WeakEquivalenceCheck",
    "WeakStructure",
    "check_weak_equivalence",
    "weak_bisimulation",
]

"""Probability distributions for generally-timed models.

The general models of the paper (Sect. 5) replace exponential delays with
deterministic and normal delays.  This module provides those plus a few more
standard non-negative duration distributions, each exposing:

* :meth:`Distribution.sample` — draw a duration from a NumPy generator,
* :attr:`Distribution.mean` / :attr:`Distribution.variance` — analytic
  moments, used by validation and by tests,
* :meth:`Distribution.exponential_equivalent` — the exponential distribution
  with the same mean, used for the parametric cross-validation of Sect. 5.1.

Durations are times, hence never negative; the normal distribution is
left-truncated at zero on sampling (with the small parameterisations used by
the paper — e.g. mean 0.8 ms, sigma 0.0345 ms — truncation is negligible).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .errors import SpecificationError


class Distribution:
    """Base class of duration distributions."""

    def sample(self, rng: np.random.Generator) -> float:
        """Draw one duration (non-negative float)."""
        raise NotImplementedError

    @property
    def mean(self) -> float:
        """Analytic mean of the distribution."""
        raise NotImplementedError

    @property
    def variance(self) -> float:
        """Analytic variance of the distribution."""
        raise NotImplementedError

    def exponential_equivalent(self) -> "Exponential":
        """Exponential distribution with the same mean (for validation)."""
        mean = self.mean
        if mean <= 0:
            raise SpecificationError(
                f"{self!r} has non-positive mean; no exponential equivalent"
            )
        return Exponential(1.0 / mean)


@dataclass(frozen=True)
class Exponential(Distribution):
    """Exponential distribution with rate ``rate`` (mean ``1/rate``)."""

    rate: float

    def __post_init__(self):
        if not (self.rate > 0) or not math.isfinite(self.rate):
            raise SpecificationError(
                f"exponential rate must be positive and finite, got {self.rate}"
            )

    def sample(self, rng: np.random.Generator) -> float:
        return rng.exponential(1.0 / self.rate)

    @property
    def mean(self) -> float:
        return 1.0 / self.rate

    @property
    def variance(self) -> float:
        return 1.0 / (self.rate * self.rate)

    def exponential_equivalent(self) -> "Exponential":
        return self

    def __str__(self) -> str:
        return f"exp({self.rate:g})"


@dataclass(frozen=True)
class Deterministic(Distribution):
    """Constant (degenerate) duration."""

    value: float

    def __post_init__(self):
        if self.value < 0 or not math.isfinite(self.value):
            raise SpecificationError(
                f"deterministic duration must be >= 0 and finite, got {self.value}"
            )

    def sample(self, rng: np.random.Generator) -> float:
        return self.value

    @property
    def mean(self) -> float:
        return self.value

    @property
    def variance(self) -> float:
        return 0.0

    def __str__(self) -> str:
        return f"det({self.value:g})"


@dataclass(frozen=True)
class Normal(Distribution):
    """Normal duration, left-truncated at zero when sampled.

    ``mean``/``variance`` report the untruncated moments; the case-study
    parameterisations keep the truncated mass far below 1e-6 so the
    difference is immaterial (asserted in tests).
    """

    mu: float
    sigma: float

    def __post_init__(self):
        if self.sigma <= 0 or not math.isfinite(self.sigma):
            raise SpecificationError(
                f"normal sigma must be positive and finite, got {self.sigma}"
            )
        if not math.isfinite(self.mu):
            raise SpecificationError(f"normal mu must be finite, got {self.mu}")

    def sample(self, rng: np.random.Generator) -> float:
        value = rng.normal(self.mu, self.sigma)
        while value < 0:
            value = rng.normal(self.mu, self.sigma)
        return value

    @property
    def mean(self) -> float:
        return self.mu

    @property
    def variance(self) -> float:
        return self.sigma * self.sigma

    def __str__(self) -> str:
        return f"normal({self.mu:g}, {self.sigma:g})"


@dataclass(frozen=True)
class Uniform(Distribution):
    """Uniform duration on ``[low, high]``."""

    low: float
    high: float

    def __post_init__(self):
        if self.low < 0 or self.high <= self.low:
            raise SpecificationError(
                f"uniform bounds must satisfy 0 <= low < high, "
                f"got [{self.low}, {self.high}]"
            )

    def sample(self, rng: np.random.Generator) -> float:
        return rng.uniform(self.low, self.high)

    @property
    def mean(self) -> float:
        return 0.5 * (self.low + self.high)

    @property
    def variance(self) -> float:
        width = self.high - self.low
        return width * width / 12.0

    def __str__(self) -> str:
        return f"unif({self.low:g}, {self.high:g})"


@dataclass(frozen=True)
class Erlang(Distribution):
    """Erlang distribution: sum of ``shape`` exponentials of rate ``rate``."""

    shape: int
    rate: float

    def __post_init__(self):
        if self.shape < 1 or not isinstance(self.shape, int):
            raise SpecificationError(
                f"Erlang shape must be a positive integer, got {self.shape}"
            )
        if not (self.rate > 0) or not math.isfinite(self.rate):
            raise SpecificationError(
                f"Erlang rate must be positive and finite, got {self.rate}"
            )

    def sample(self, rng: np.random.Generator) -> float:
        return rng.gamma(self.shape, 1.0 / self.rate)

    @property
    def mean(self) -> float:
        return self.shape / self.rate

    @property
    def variance(self) -> float:
        return self.shape / (self.rate * self.rate)

    def __str__(self) -> str:
        return f"erlang({self.shape}, {self.rate:g})"


@dataclass(frozen=True)
class Weibull(Distribution):
    """Weibull distribution with shape ``k`` and scale ``lam``."""

    k: float
    lam: float

    def __post_init__(self):
        if self.k <= 0 or self.lam <= 0:
            raise SpecificationError(
                f"Weibull parameters must be positive, got k={self.k}, lam={self.lam}"
            )

    def sample(self, rng: np.random.Generator) -> float:
        return self.lam * rng.weibull(self.k)

    @property
    def mean(self) -> float:
        return self.lam * math.gamma(1.0 + 1.0 / self.k)

    @property
    def variance(self) -> float:
        g1 = math.gamma(1.0 + 1.0 / self.k)
        g2 = math.gamma(1.0 + 2.0 / self.k)
        return self.lam * self.lam * (g2 - g1 * g1)

    def __str__(self) -> str:
        return f"weibull({self.k:g}, {self.lam:g})"


#: Distribution constructors by specification-language keyword.
DISTRIBUTION_KEYWORDS = {
    "exp": (1, lambda rate: Exponential(rate)),
    "det": (1, lambda value: Deterministic(value)),
    "normal": (2, lambda mu, sigma: Normal(mu, sigma)),
    "unif": (2, lambda low, high: Uniform(low, high)),
    "erlang": (2, lambda shape, rate: Erlang(int(shape), rate)),
    "weibull": (2, lambda k, lam: Weibull(k, lam)),
}


def make_distribution(keyword: str, args) -> Distribution:
    """Construct a distribution from its keyword and numeric arguments."""
    try:
        arity, factory = DISTRIBUTION_KEYWORDS[keyword]
    except KeyError:
        known = ", ".join(sorted(DISTRIBUTION_KEYWORDS))
        raise SpecificationError(
            f"unknown distribution {keyword!r} (known: {known})"
        ) from None
    args = list(args)
    if len(args) != arity:
        raise SpecificationError(
            f"distribution {keyword!r} expects {arity} argument(s), got {len(args)}"
        )
    return factory(*args)

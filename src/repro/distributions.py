"""Probability distributions for generally-timed models.

The general models of the paper (Sect. 5) replace exponential delays with
deterministic and normal delays.  This module provides those plus a few more
standard non-negative duration distributions, each exposing:

* :meth:`Distribution.sample` — draw a duration from a NumPy generator,
* :attr:`Distribution.mean` / :attr:`Distribution.variance` — analytic
  moments, used by validation and by tests,
* :meth:`Distribution.exponential_equivalent` — the exponential distribution
  with the same mean, used for the parametric cross-validation of Sect. 5.1.

Durations are times, hence never negative; the normal distribution is
left-truncated at zero on sampling (with the small parameterisations used by
the paper — e.g. mean 0.8 ms, sigma 0.0345 ms — truncation is negligible).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .errors import SpecificationError


class Distribution:
    """Base class of duration distributions."""

    def sample(self, rng: np.random.Generator) -> float:
        """Draw one duration (non-negative float)."""
        raise NotImplementedError

    def sample_block(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw *size* durations in one vectorized call.

        Used by the event-stream allocator (:mod:`repro.sim.streams`) to
        refill per-event-type buffers: one numpy call amortises the
        per-draw overhead across a whole block.  The base implementation
        falls back to repeated scalar :meth:`sample` calls — exactly the
        stream a sequential consumer would see — so stateful
        distributions (e.g. trace replay cursors) keep their semantics
        without a vectorized override.
        """
        return np.array([self.sample(rng) for _ in range(size)], float)

    @property
    def mean(self) -> float:
        """Analytic mean of the distribution."""
        raise NotImplementedError

    @property
    def variance(self) -> float:
        """Analytic variance of the distribution."""
        raise NotImplementedError

    def cdf(self, x: float) -> float:
        """P(X <= x) of the *sampling* distribution.

        Used by the workload-fitting Kolmogorov-Smirnov test
        (:mod:`repro.workload.fit`); where sampling truncates (the
        left-truncated normal) the CDF reports the truncated law, so the
        KS statistic compares what :meth:`sample` actually draws.
        """
        raise NotImplementedError

    def exponential_equivalent(self) -> "Exponential":
        """Exponential distribution with the same mean (for validation)."""
        mean = self.mean
        if mean <= 0 or not math.isfinite(mean):
            raise SpecificationError(
                f"{self!r} has non-positive or infinite mean; "
                f"no exponential equivalent"
            )
        return Exponential(1.0 / mean)


@dataclass(frozen=True)
class Exponential(Distribution):
    """Exponential distribution with rate ``rate`` (mean ``1/rate``)."""

    rate: float

    def __post_init__(self):
        if not (self.rate > 0) or not math.isfinite(self.rate):
            raise SpecificationError(
                f"exponential rate must be positive and finite, got {self.rate}"
            )

    def sample(self, rng: np.random.Generator) -> float:
        return rng.exponential(1.0 / self.rate)

    def sample_block(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.exponential(1.0 / self.rate, size)

    @property
    def mean(self) -> float:
        return 1.0 / self.rate

    @property
    def variance(self) -> float:
        return 1.0 / (self.rate * self.rate)

    def cdf(self, x: float) -> float:
        if x <= 0:
            return 0.0
        return 1.0 - math.exp(-self.rate * x)

    def exponential_equivalent(self) -> "Exponential":
        return self

    def __str__(self) -> str:
        return f"exp({self.rate:g})"


@dataclass(frozen=True)
class Deterministic(Distribution):
    """Constant (degenerate) duration."""

    value: float

    def __post_init__(self):
        if self.value < 0 or not math.isfinite(self.value):
            raise SpecificationError(
                f"deterministic duration must be >= 0 and finite, got {self.value}"
            )

    def sample(self, rng: np.random.Generator) -> float:
        return self.value

    def sample_block(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return np.full(size, self.value, float)

    @property
    def mean(self) -> float:
        return self.value

    @property
    def variance(self) -> float:
        return 0.0

    def cdf(self, x: float) -> float:
        return 1.0 if x >= self.value else 0.0

    def __str__(self) -> str:
        return f"det({self.value:g})"


@dataclass(frozen=True)
class Normal(Distribution):
    """Normal duration, left-truncated at zero when sampled.

    ``mean``/``variance`` report the untruncated moments; the case-study
    parameterisations keep the truncated mass far below 1e-6 so the
    difference is immaterial (asserted in tests).
    """

    mu: float
    sigma: float

    def __post_init__(self):
        if self.sigma <= 0 or not math.isfinite(self.sigma):
            raise SpecificationError(
                f"normal sigma must be positive and finite, got {self.sigma}"
            )
        if not math.isfinite(self.mu):
            raise SpecificationError(f"normal mu must be finite, got {self.mu}")

    def sample(self, rng: np.random.Generator) -> float:
        value = rng.normal(self.mu, self.sigma)
        while value < 0:
            value = rng.normal(self.mu, self.sigma)
        return value

    def sample_block(self, rng: np.random.Generator, size: int) -> np.ndarray:
        values = rng.normal(self.mu, self.sigma, size)
        bad = values < 0
        while bad.any():
            values[bad] = rng.normal(self.mu, self.sigma, int(bad.sum()))
            bad = values < 0
        return values

    @property
    def mean(self) -> float:
        return self.mu

    @property
    def variance(self) -> float:
        return self.sigma * self.sigma

    def cdf(self, x: float) -> float:
        # The sampling law is the normal truncated to [0, inf).
        if x <= 0:
            return 0.0

        def phi(z: float) -> float:
            return 0.5 * (1.0 + math.erf(z / math.sqrt(2.0)))

        below_zero = phi(-self.mu / self.sigma)
        return (phi((x - self.mu) / self.sigma) - below_zero) / (
            1.0 - below_zero
        )

    def __str__(self) -> str:
        return f"normal({self.mu:g}, {self.sigma:g})"


@dataclass(frozen=True)
class Uniform(Distribution):
    """Uniform duration on ``[low, high]``."""

    low: float
    high: float

    def __post_init__(self):
        if self.low < 0 or self.high <= self.low:
            raise SpecificationError(
                f"uniform bounds must satisfy 0 <= low < high, "
                f"got [{self.low}, {self.high}]"
            )

    def sample(self, rng: np.random.Generator) -> float:
        return rng.uniform(self.low, self.high)

    def sample_block(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.uniform(self.low, self.high, size)

    @property
    def mean(self) -> float:
        return 0.5 * (self.low + self.high)

    @property
    def variance(self) -> float:
        width = self.high - self.low
        return width * width / 12.0

    def cdf(self, x: float) -> float:
        if x <= self.low:
            return 0.0
        if x >= self.high:
            return 1.0
        return (x - self.low) / (self.high - self.low)

    def __str__(self) -> str:
        return f"unif({self.low:g}, {self.high:g})"


@dataclass(frozen=True)
class Erlang(Distribution):
    """Erlang distribution: sum of ``shape`` exponentials of rate ``rate``."""

    shape: int
    rate: float

    def __post_init__(self):
        if self.shape < 1 or not isinstance(self.shape, int):
            raise SpecificationError(
                f"Erlang shape must be a positive integer, got {self.shape}"
            )
        if not (self.rate > 0) or not math.isfinite(self.rate):
            raise SpecificationError(
                f"Erlang rate must be positive and finite, got {self.rate}"
            )

    def sample(self, rng: np.random.Generator) -> float:
        return rng.gamma(self.shape, 1.0 / self.rate)

    def sample_block(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.gamma(self.shape, 1.0 / self.rate, size)

    @property
    def mean(self) -> float:
        return self.shape / self.rate

    @property
    def variance(self) -> float:
        return self.shape / (self.rate * self.rate)

    def cdf(self, x: float) -> float:
        if x <= 0:
            return 0.0
        # Regularised lower incomplete gamma at integer shape:
        # 1 - exp(-rx) * sum_{n<shape} (rx)^n / n!
        rx = self.rate * x
        term = 1.0
        total = 1.0
        for n in range(1, self.shape):
            term *= rx / n
            total += term
        return 1.0 - math.exp(-rx) * total

    def __str__(self) -> str:
        return f"erlang({self.shape}, {self.rate:g})"


@dataclass(frozen=True)
class Weibull(Distribution):
    """Weibull distribution with shape ``k`` and scale ``lam``."""

    k: float
    lam: float

    def __post_init__(self):
        if self.k <= 0 or self.lam <= 0:
            raise SpecificationError(
                f"Weibull parameters must be positive, got k={self.k}, lam={self.lam}"
            )

    def sample(self, rng: np.random.Generator) -> float:
        return self.lam * rng.weibull(self.k)

    def sample_block(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return self.lam * rng.weibull(self.k, size)

    @property
    def mean(self) -> float:
        return self.lam * math.gamma(1.0 + 1.0 / self.k)

    @property
    def variance(self) -> float:
        g1 = math.gamma(1.0 + 1.0 / self.k)
        g2 = math.gamma(1.0 + 2.0 / self.k)
        return self.lam * self.lam * (g2 - g1 * g1)

    def cdf(self, x: float) -> float:
        if x <= 0:
            return 0.0
        return 1.0 - math.exp(-((x / self.lam) ** self.k))

    def __str__(self) -> str:
        return f"weibull({self.k:g}, {self.lam:g})"


@dataclass(frozen=True)
class Pareto(Distribution):
    """Pareto (type I) distribution: shape ``alpha``, minimum ``xm``.

    The canonical heavy-tailed duration law (workload interarrivals,
    service bursts): P(X > x) = (xm / x)^alpha for x >= xm.  The mean is
    infinite for ``alpha <= 1`` and the variance for ``alpha <= 2``; such
    parameterisations sample fine but have no exponential equivalent.
    """

    alpha: float
    xm: float

    def __post_init__(self):
        if not (self.alpha > 0) or not math.isfinite(self.alpha):
            raise SpecificationError(
                f"Pareto alpha must be positive and finite, got {self.alpha}"
            )
        if not (self.xm > 0) or not math.isfinite(self.xm):
            raise SpecificationError(
                f"Pareto xm must be positive and finite, got {self.xm}"
            )

    def sample(self, rng: np.random.Generator) -> float:
        # numpy's rng.pareto draws the Lomax (Pareto II) law on [0, inf);
        # shifting by 1 and scaling by xm gives classical Pareto I.
        return self.xm * (1.0 + rng.pareto(self.alpha))

    def sample_block(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return self.xm * (1.0 + rng.pareto(self.alpha, size))

    @property
    def mean(self) -> float:
        if self.alpha <= 1.0:
            return math.inf
        return self.alpha * self.xm / (self.alpha - 1.0)

    @property
    def variance(self) -> float:
        if self.alpha <= 2.0:
            return math.inf
        excess = self.alpha - 1.0
        return (
            self.xm * self.xm * self.alpha
            / (excess * excess * (self.alpha - 2.0))
        )

    def cdf(self, x: float) -> float:
        if x <= self.xm:
            return 0.0
        return 1.0 - (self.xm / x) ** self.alpha

    def __str__(self) -> str:
        return f"pareto({self.alpha:g}, {self.xm:g})"


#: Distribution constructors by specification-language keyword.
DISTRIBUTION_KEYWORDS = {
    "exp": (1, lambda rate: Exponential(rate)),
    "det": (1, lambda value: Deterministic(value)),
    "normal": (2, lambda mu, sigma: Normal(mu, sigma)),
    "unif": (2, lambda low, high: Uniform(low, high)),
    "erlang": (2, lambda shape, rate: Erlang(int(shape), rate)),
    "weibull": (2, lambda k, lam: Weibull(k, lam)),
    "pareto": (2, lambda alpha, xm: Pareto(alpha, xm)),
}


def parse_distribution_spec(spec: str) -> Distribution:
    """Parse a compact ``keyword:arg,...`` spec, e.g. ``"normal:0.8,0.0345"``.

    The textual form used by the ``--workload`` CLI flag and the workload
    fit reports: the keyword, a colon, then comma-separated numeric
    arguments (``"exp:0.103"``, ``"pareto:1.2,9.7"``).  Raises
    :class:`~repro.errors.SpecificationError` pinpointing exactly what is
    wrong — the keyword, the arity, or the single argument that failed to
    parse.
    """
    if not isinstance(spec, str) or not spec.strip():
        raise SpecificationError(
            f"empty distribution spec {spec!r}; expected 'keyword:arg,...' "
            f"such as 'normal:0.8,0.0345'"
        )
    keyword, separator, argtext = spec.partition(":")
    keyword = keyword.strip()
    if keyword not in DISTRIBUTION_KEYWORDS:
        known = ", ".join(sorted(DISTRIBUTION_KEYWORDS))
        raise SpecificationError(
            f"unknown distribution {keyword!r} in spec {spec!r} "
            f"(known: {known})"
        )
    arity, _ = DISTRIBUTION_KEYWORDS[keyword]
    if not separator or not argtext.strip():
        raise SpecificationError(
            f"distribution spec {spec!r} is missing its arguments: "
            f"{keyword!r} expects {arity} (as in "
            f"'{keyword}:{','.join(['<value>'] * arity)}')"
        )
    parts = [part.strip() for part in argtext.split(",")]
    values = []
    for position, part in enumerate(parts, start=1):
        try:
            values.append(float(part))
        except ValueError:
            raise SpecificationError(
                f"distribution spec {spec!r}: argument {position} "
                f"({part!r}) is not a number"
            ) from None
    if len(values) != arity:
        raise SpecificationError(
            f"distribution spec {spec!r}: {keyword!r} expects {arity} "
            f"argument(s), got {len(values)}"
        )
    if keyword == "erlang" and values[0] != int(values[0]):
        raise SpecificationError(
            f"distribution spec {spec!r}: Erlang shape must be a positive "
            f"integer, got {values[0]:g}"
        )
    return make_distribution(keyword, values)


def make_distribution(keyword: str, args=None) -> Distribution:
    """Construct a distribution from a keyword plus numeric arguments, or
    from a compact spec string such as ``"pareto:1.2,9.7"``.

    The two calling conventions::

        make_distribution("normal", [0.8, 0.0345])
        make_distribution("normal:0.8,0.0345")

    The second (``args`` omitted) routes through
    :func:`parse_distribution_spec`, which the ``--workload`` CLI parsing
    shares.
    """
    if args is None:
        return parse_distribution_spec(keyword)
    try:
        arity, factory = DISTRIBUTION_KEYWORDS[keyword]
    except KeyError:
        known = ", ".join(sorted(DISTRIBUTION_KEYWORDS))
        raise SpecificationError(
            f"unknown distribution {keyword!r} (known: {known})"
        ) from None
    args = list(args)
    if len(args) != arity:
        raise SpecificationError(
            f"distribution {keyword!r} expects {arity} argument(s), got {len(args)}"
        )
    return factory(*args)

"""Architectural element types (AETs): behaviour plus declared interactions.

An AET packages a family of behaviour equations with the declaration of
which actions are *input interactions* (offered to the outside, passive) and
which are *output interactions* (initiated towards the outside).  All other
actions are internal to the element.

Interactions are declared with a multiplicity qualifier:

* ``UNI`` — attached to exactly one interaction of another instance;
* ``OR``  — an output attached to several inputs, one of which is selected
  probabilistically per firing (server-pool style);
* ``AND`` — an output broadcast to several inputs that all synchronise with
  it simultaneously.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Mapping, Set, Tuple

from ..errors import SpecificationError, TypeCheckError, UnguardedRecursionError
from .ast import (
    ActionPrefix,
    Behavior,
    Choice,
    Guarded,
    ProcessCall,
    ProcessDef,
    Stop,
)
from .expressions import DataType


class Multiplicity(enum.Enum):
    """Attachment multiplicity of an interaction."""

    UNI = "UNI"
    OR = "OR"
    AND = "AND"


class Direction(enum.Enum):
    """Whether an interaction receives (input) or initiates (output)."""

    INPUT = "input"
    OUTPUT = "output"


@dataclass(frozen=True)
class Interaction:
    """A declared interaction of an element type."""

    name: str
    direction: Direction
    multiplicity: Multiplicity = Multiplicity.UNI

    def __post_init__(self):
        if not self.name.isidentifier():
            raise SpecificationError(f"invalid interaction name {self.name!r}")


def collect_actions(term: Behavior) -> Set[str]:
    """Return all action names occurring in a behaviour term."""
    actions: Set[str] = set()
    stack = [term]
    while stack:
        node = stack.pop()
        if isinstance(node, ActionPrefix):
            actions.add(node.action)
            stack.append(node.continuation)
        elif isinstance(node, Choice):
            stack.extend(node.alternatives)
        elif isinstance(node, Guarded):
            stack.append(node.behavior)
        elif isinstance(node, (ProcessCall, Stop)):
            pass
        else:  # pragma: no cover - defensive
            raise SpecificationError(f"unknown behaviour node {node!r}")
    return actions


@dataclass
class ElemType:
    """An architectural element type: equations + interaction declarations.

    The first behaviour equation is the initial behaviour of every instance
    of the type; its formal defaults (if any) provide the initial data
    values, which instances may override.
    """

    name: str
    definitions: Tuple[ProcessDef, ...]
    interactions: Tuple[Interaction, ...] = ()

    def __post_init__(self):
        if not self.name.isidentifier():
            raise SpecificationError(f"invalid element type name {self.name!r}")
        if not self.definitions:
            raise SpecificationError(
                f"element type {self.name!r} has no behaviour equations"
            )
        self._defs_by_name: Dict[str, ProcessDef] = {}
        for definition in self.definitions:
            if definition.name in self._defs_by_name:
                raise SpecificationError(
                    f"duplicate behaviour equation {definition.name!r} "
                    f"in element type {self.name!r}"
                )
            self._defs_by_name[definition.name] = definition
        self._interactions_by_name: Dict[str, Interaction] = {}
        for interaction in self.interactions:
            if interaction.name in self._interactions_by_name:
                raise SpecificationError(
                    f"interaction {interaction.name!r} declared twice "
                    f"in element type {self.name!r}"
                )
            self._interactions_by_name[interaction.name] = interaction

    # -- lookups ----------------------------------------------------------

    @property
    def initial_definition(self) -> ProcessDef:
        """The first behaviour equation (entry point of instances)."""
        return self.definitions[0]

    def definition(self, name: str) -> ProcessDef:
        """Return the behaviour equation called *name*."""
        try:
            return self._defs_by_name[name]
        except KeyError:
            raise SpecificationError(
                f"element type {self.name!r} has no behaviour {name!r}"
            ) from None

    def interaction(self, name: str) -> Interaction:
        """Return the declared interaction called *name*."""
        try:
            return self._interactions_by_name[name]
        except KeyError:
            raise SpecificationError(
                f"element type {self.name!r} has no interaction {name!r}"
            ) from None

    def has_interaction(self, name: str) -> bool:
        """True when *name* is a declared interaction of the type."""
        return name in self._interactions_by_name

    def input_interactions(self) -> Tuple[Interaction, ...]:
        """All declared input interactions."""
        return tuple(
            i for i in self.interactions if i.direction is Direction.INPUT
        )

    def output_interactions(self) -> Tuple[Interaction, ...]:
        """All declared output interactions."""
        return tuple(
            i for i in self.interactions if i.direction is Direction.OUTPUT
        )

    def all_actions(self) -> FrozenSet[str]:
        """All action names used by the behaviour equations."""
        actions: Set[str] = set()
        for definition in self.definitions:
            actions |= collect_actions(definition.body)
        return frozenset(actions)

    def internal_actions(self) -> FrozenSet[str]:
        """Actions that are not declared interactions."""
        return self.all_actions() - set(self._interactions_by_name)

    # -- static checks ----------------------------------------------------

    def validate(self, constants: Mapping[str, DataType]) -> None:
        """Run all static well-formedness checks.

        *constants* maps architectural ``const`` parameter names to types;
        they are visible inside behaviour bodies (typically in rates).
        """
        const_names = frozenset(constants)
        self._validate_calls()
        self._validate_types(constants)
        self._validate_guardedness()
        for definition in self.definitions:
            definition.check_closed(const_names)
        used = self.all_actions()
        for interaction in self.interactions:
            if interaction.name not in used:
                raise SpecificationError(
                    f"interaction {interaction.name!r} of element type "
                    f"{self.name!r} never occurs in its behaviour"
                )

    def _validate_calls(self) -> None:
        for definition in self.definitions:
            for called in definition.body.called_processes():
                if called not in self._defs_by_name:
                    raise SpecificationError(
                        f"process {definition.name!r} of element type "
                        f"{self.name!r} calls undefined behaviour {called!r}"
                    )

    def _validate_types(self, constants: Mapping[str, DataType]) -> None:
        scopes: Dict[str, Dict[str, DataType]] = {}
        for definition in self.definitions:
            scope = dict(constants)
            for formal in definition.formals:
                scope[formal.name] = formal.type
            scopes[definition.name] = scope
        for definition in self.definitions:
            self._check_term_types(
                definition.body, scopes[definition.name], definition.name
            )

    def _check_term_types(
        self, term: Behavior, scope: Mapping[str, DataType], where: str
    ) -> None:
        if isinstance(term, ActionPrefix):
            self._check_term_types(term.continuation, scope, where)
        elif isinstance(term, Choice):
            for alt in term.alternatives:
                self._check_term_types(alt, scope, where)
        elif isinstance(term, Guarded):
            guard_type = term.condition.infer_type(scope)
            if guard_type is not DataType.BOOL:
                raise TypeCheckError(
                    f"guard {term.condition} in {self.name}.{where} "
                    f"has type {guard_type.value}, expected bool"
                )
            self._check_term_types(term.behavior, scope, where)
        elif isinstance(term, ProcessCall):
            target = self.definition(term.name)
            if len(term.args) > len(target.formals):
                raise TypeCheckError(
                    f"call {term} in {self.name}.{where} passes "
                    f"{len(term.args)} argument(s); {target.name!r} "
                    f"declares {len(target.formals)}"
                )
            for formal in target.formals[len(term.args):]:
                if formal.default is None:
                    raise TypeCheckError(
                        f"call {term} in {self.name}.{where} misses a "
                        f"value for parameter {formal.name!r} (no default)"
                    )
            for arg, formal in zip(term.args, target.formals):
                arg_type = arg.infer_type(scope)
                if not formal.type.accepts(arg_type):
                    raise TypeCheckError(
                        f"argument {arg} of call {term} in "
                        f"{self.name}.{where} has type {arg_type.value}, "
                        f"expected {formal.type.value}"
                    )
        elif isinstance(term, Stop):
            pass
        else:  # pragma: no cover - defensive
            raise SpecificationError(f"unknown behaviour node {term!r}")

    def _validate_guardedness(self) -> None:
        """Reject recursion that can loop without performing an action."""
        graph: Dict[str, FrozenSet[str]] = {
            definition.name: definition.body.unguarded_calls()
            for definition in self.definitions
        }
        for start in graph:
            seen: Set[str] = set()
            frontier = list(graph[start])
            while frontier:
                name = frontier.pop()
                if name == start:
                    raise UnguardedRecursionError(
                        f"behaviour {start!r} of element type {self.name!r} "
                        f"can recurse without performing an action"
                    )
                if name in seen:
                    continue
                seen.add(name)
                frontier.extend(graph.get(name, frozenset()))


def make_interactions(
    inputs: Iterable[str] = (),
    outputs: Iterable[str] = (),
    or_inputs: Iterable[str] = (),
    or_outputs: Iterable[str] = (),
    and_outputs: Iterable[str] = (),
) -> Tuple[Interaction, ...]:
    """Convenience constructor for interaction declarations."""
    interactions = []
    for name in inputs:
        interactions.append(Interaction(name, Direction.INPUT))
    for name in outputs:
        interactions.append(Interaction(name, Direction.OUTPUT))
    for name in or_inputs:
        interactions.append(Interaction(name, Direction.INPUT, Multiplicity.OR))
    for name in or_outputs:
        interactions.append(Interaction(name, Direction.OUTPUT, Multiplicity.OR))
    for name in and_outputs:
        interactions.append(Interaction(name, Direction.OUTPUT, Multiplicity.AND))
    return tuple(interactions)

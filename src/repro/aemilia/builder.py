"""Programmatic construction helpers for architectural descriptions.

The textual parser is the primary front-end (it accepts the paper's
listings verbatim), but tests, examples and generated models are often more
convenient to build in Python.  This module provides small, composable
constructors::

    from repro.aemilia import builder as b

    server = b.elem_type(
        "Server_Type",
        [
            b.process(
                "Idle_Server",
                b.choice(
                    b.prefix("serve", b.exp(2.0), b.call("Idle_Server")),
                    b.prefix("shutdown", b.passive(), b.call("Asleep")),
                ),
            ),
            b.process("Asleep", b.prefix("wake", b.exp(0.5), b.call("Idle_Server"))),
        ],
        inputs=["shutdown"],
    )
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

from .architecture import ArchiType, Attachment, ConstParam, Instance
from .ast import (
    ActionPrefix,
    Behavior,
    Choice,
    Formal,
    Guarded,
    ProcessCall,
    ProcessDef,
    Stop,
)
from .elemtypes import Direction, ElemType, Interaction, Multiplicity
from .expressions import DataType, Expr, Literal, Value
from .rates import (
    ExpSpec,
    GeneralSpec,
    ImmediateSpec,
    PassiveSpec,
    RateSpec,
)

ExprLike = Union[Expr, Value]


def _expr(value: ExprLike) -> Expr:
    return value if isinstance(value, Expr) else Literal(value)


# -- rates -------------------------------------------------------------------

def passive(priority: ExprLike = 0, weight: ExprLike = 1.0) -> PassiveSpec:
    """Passive rate ``_`` (optionally with priority and weight)."""
    return PassiveSpec(_expr(priority), _expr(weight))


def exp(rate: ExprLike) -> ExpSpec:
    """Exponential rate ``exp(rate)``."""
    return ExpSpec(_expr(rate))


def imm(priority: ExprLike = 1, weight: ExprLike = 1.0) -> ImmediateSpec:
    """Immediate rate ``inf(priority, weight)``."""
    return ImmediateSpec(_expr(priority), _expr(weight))


def gen(keyword: str, *args: ExprLike) -> GeneralSpec:
    """General-distribution rate, e.g. ``gen('normal', 0.8, 0.03)``."""
    return GeneralSpec(keyword, tuple(_expr(a) for a in args))


def det(value: ExprLike) -> GeneralSpec:
    """Deterministic rate ``det(value)``."""
    return gen("det", value)


# -- behaviours ----------------------------------------------------------------

def stop() -> Stop:
    """The inert behaviour."""
    return Stop()


def prefix(action: str, rate: RateSpec, continuation: Behavior) -> ActionPrefix:
    """Action prefix ``<action, rate> . continuation``."""
    return ActionPrefix(action, rate, continuation)


def choice(*alternatives: Behavior) -> Choice:
    """Alternative composition ``choice { ... }``."""
    return Choice(tuple(alternatives))


def cond(condition: Expr, behavior: Behavior) -> Guarded:
    """Guarded behaviour ``cond(condition) -> behavior``."""
    return Guarded(condition, behavior)


def call(name: str, *args: ExprLike) -> ProcessCall:
    """Process call ``Name(args...)``."""
    return ProcessCall(name, tuple(_expr(a) for a in args))


def formal(
    name: str, type_: DataType = DataType.INT, default: Optional[ExprLike] = None
) -> Formal:
    """Typed formal parameter with optional default."""
    return Formal(
        name, type_, _expr(default) if default is not None else None
    )


def process(
    name: str, body: Behavior, formals: Sequence[Formal] = ()
) -> ProcessDef:
    """Behaviour equation ``Name(formals; void) = body``."""
    return ProcessDef(name, tuple(formals), body)


# -- element types / architectures ---------------------------------------------

def elem_type(
    name: str,
    definitions: Sequence[ProcessDef],
    inputs: Iterable[str] = (),
    outputs: Iterable[str] = (),
    or_outputs: Iterable[str] = (),
    and_outputs: Iterable[str] = (),
) -> ElemType:
    """Element type with UNI inputs/outputs (plus OR/AND outputs)."""
    interactions: List[Interaction] = []
    for interaction_name in inputs:
        interactions.append(Interaction(interaction_name, Direction.INPUT))
    for interaction_name in outputs:
        interactions.append(Interaction(interaction_name, Direction.OUTPUT))
    for interaction_name in or_outputs:
        interactions.append(
            Interaction(interaction_name, Direction.OUTPUT, Multiplicity.OR)
        )
    for interaction_name in and_outputs:
        interactions.append(
            Interaction(interaction_name, Direction.OUTPUT, Multiplicity.AND)
        )
    return ElemType(name, tuple(definitions), tuple(interactions))


def instance(name: str, type_name: str, *args: ExprLike) -> Instance:
    """Instance declaration ``name : Type(args...)``."""
    return Instance(name, type_name, tuple(_expr(a) for a in args))


def attach(from_end: str, to_end: str) -> Attachment:
    """Attachment ``FROM a.x TO b.y`` written as ``attach("a.x", "b.y")``."""
    from_instance, from_interaction = from_end.split(".", 1)
    to_instance, to_interaction = to_end.split(".", 1)
    return Attachment(
        from_instance, from_interaction, to_instance, to_interaction
    )


def const(
    name: str, default: ExprLike, type_: Optional[DataType] = None
) -> ConstParam:
    """Architectural const parameter (type inferred from default if omitted)."""
    if type_ is None:
        if isinstance(default, bool):
            type_ = DataType.BOOL
        elif isinstance(default, int):
            type_ = DataType.INT
        else:
            type_ = DataType.REAL
    return ConstParam(name, type_, _expr(default))


def archi(
    name: str,
    elem_types: Sequence[ElemType],
    instances: Sequence[Instance],
    attachments: Sequence[Attachment] = (),
    const_params: Sequence[ConstParam] = (),
) -> ArchiType:
    """Assemble and statically check a complete architecture."""
    return ArchiType(
        name,
        tuple(elem_types),
        tuple(instances),
        tuple(attachments),
        tuple(const_params),
    )

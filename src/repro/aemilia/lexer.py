"""Tokenizer for the architectural description language.

The concrete syntax follows the paper's listings::

    ARCHI_TYPE RPC_DPM_Untimed(void)
    ARCHI_ELEM_TYPES
      ELEM_TYPE Server_Type(void)
        BEHAVIOR
          Idle_Server(void; void) = choice { <receive_rpc_packet, _> . ... }
        INPUT_INTERACTIONS UNI receive_rpc_packet; receive_shutdown
        OUTPUT_INTERACTIONS UNI send_result_packet
    ARCHI_TOPOLOGY
      ARCHI_ELEM_INSTANCES S : Server_Type(); ...
      ARCHI_ATTACHMENTS FROM C.send_rpc_packet TO RCS.get_packet; ...
    END

Comments: ``//`` to end of line and ``/* ... */`` blocks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..errors import LexerError

#: Token kinds with fixed text are identified by that text; the variable
#: ones use these kind names.
IDENT = "IDENT"
NUMBER = "NUMBER"
EOF = "EOF"

#: Multi-character symbols, longest first so maximal munch works.
_SYMBOLS = [
    ":=",
    "->",
    "<=",
    ">=",
    "!=",
    "<",
    ">",
    "=",
    "(",
    ")",
    "{",
    "}",
    ",",
    ";",
    ".",
    ":",
    "_",
    "+",
    "-",
    "*",
    "/",
    "%",
    "#",
]

#: Reserved words (case sensitive).  Section keywords are upper case,
#: language keywords lower case; they are returned as their own token kind.
KEYWORDS = {
    "ARCHI_TYPE",
    "ARCHI_ELEM_TYPES",
    "ELEM_TYPE",
    "BEHAVIOR",
    "INPUT_INTERACTIONS",
    "OUTPUT_INTERACTIONS",
    "ARCHI_TOPOLOGY",
    "ARCHI_ELEM_INSTANCES",
    "ARCHI_ATTACHMENTS",
    "FROM",
    "TO",
    "END",
    "UNI",
    "OR",
    "AND",
    "const",
    "void",
    "choice",
    "cond",
    "stop",
    "true",
    "false",
    "bool",
    "int",
    "real",
    "and",
    "or",
    "not",
}


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position."""

    kind: str
    text: str
    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.kind}({self.text!r}) at {self.line}:{self.column}"


class Lexer:
    """Single-pass tokenizer."""

    def __init__(self, source: str):
        self.source = source
        self.position = 0
        self.line = 1
        self.column = 1

    def _error(self, message: str) -> LexerError:
        return LexerError(message, self.line, self.column)

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.position < len(self.source):
                if self.source[self.position] == "\n":
                    self.line += 1
                    self.column = 1
                else:
                    self.column += 1
                self.position += 1

    def _peek(self, offset: int = 0) -> str:
        index = self.position + offset
        return self.source[index] if index < len(self.source) else ""

    def _skip_trivia(self) -> None:
        while self.position < len(self.source):
            char = self._peek()
            if char in " \t\r\n":
                self._advance()
            elif char == "/" and self._peek(1) == "/":
                while self.position < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif char == "/" and self._peek(1) == "*":
                start_line, start_col = self.line, self.column
                self._advance(2)
                while not (self._peek() == "*" and self._peek(1) == "/"):
                    if self.position >= len(self.source):
                        raise LexerError(
                            "unterminated block comment", start_line, start_col
                        )
                    self._advance()
                self._advance(2)
            else:
                return

    def _lex_number(self) -> Token:
        line, column = self.line, self.column
        start = self.position
        while self._peek().isdigit():
            self._advance()
        is_real = False
        if self._peek() == "." and self._peek(1).isdigit():
            is_real = True
            self._advance()
            while self._peek().isdigit():
                self._advance()
        if self._peek() in "eE" and (
            self._peek(1).isdigit()
            or (self._peek(1) in "+-" and self._peek(2).isdigit())
        ):
            is_real = True
            self._advance()
            if self._peek() in "+-":
                self._advance()
            while self._peek().isdigit():
                self._advance()
        text = self.source[start:self.position]
        del is_real  # kept in text; the parser decides int vs real
        return Token(NUMBER, text, line, column)

    def _lex_word(self) -> Token:
        line, column = self.line, self.column
        start = self.position
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self.source[start:self.position]
        kind = text if text in KEYWORDS else IDENT
        return Token(kind, text, line, column)

    def tokens(self) -> List[Token]:
        """Tokenize the whole source, ending with an EOF token."""
        result: List[Token] = []
        while True:
            self._skip_trivia()
            if self.position >= len(self.source):
                result.append(Token(EOF, "", self.line, self.column))
                return result
            char = self._peek()
            if char.isdigit():
                result.append(self._lex_number())
                continue
            if char.isalpha():
                result.append(self._lex_word())
                continue
            if char == "_" and (self._peek(1).isalnum() or self._peek(1) == "_"):
                # Identifiers may not start with '_' in this language; a
                # lone '_' is the passive rate.  Reject to catch typos.
                raise self._error("identifiers cannot start with '_'")
            for symbol in _SYMBOLS:
                if self.source.startswith(symbol, self.position):
                    token = Token(symbol, symbol, self.line, self.column)
                    self._advance(len(symbol))
                    result.append(token)
                    break
            else:
                raise self._error(f"unexpected character {char!r}")


def tokenize(source: str) -> List[Token]:
    """Tokenize *source* (convenience wrapper)."""
    return Lexer(source).tokens()

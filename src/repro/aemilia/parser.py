"""Recursive-descent parser for the architectural description language.

:func:`parse_architecture` turns a textual specification (the syntax used in
the paper's listings) into an :class:`~repro.aemilia.architecture.ArchiType`,
running all static checks on the way.  Experiments typically load one
specification and instantiate it many times with different ``const``
overrides (DPM operation rates).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..errors import ParseError
from .architecture import ArchiType, Attachment, ConstParam, Instance
from .ast import (
    ActionPrefix,
    Behavior,
    Choice,
    Formal,
    Guarded,
    ProcessCall,
    ProcessDef,
    Stop,
)
from .elemtypes import Direction, ElemType, Interaction, Multiplicity
from .expressions import (
    BinaryOp,
    DataType,
    Expr,
    FunctionCall,
    Literal,
    UnaryOp,
    Variable,
)
from .lexer import EOF, IDENT, NUMBER, Token, tokenize
from .rates import (
    ExpSpec,
    GeneralSpec,
    ImmediateSpec,
    PassiveSpec,
    RateSpec,
)
from ..distributions import DISTRIBUTION_KEYWORDS

_MULTIPLICITY_TOKENS = ("UNI", "OR", "AND")
_TYPE_TOKENS = {"bool": DataType.BOOL, "int": DataType.INT, "real": DataType.REAL}
_COMPARISON_OPS = ("<", "<=", ">", ">=", "=", "!=")


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.position = 0

    # -- token plumbing ----------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        index = min(self.position + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.tokens[self.position]
        if token.kind != EOF:
            self.position += 1
        return token

    def accept(self, kind: str) -> Optional[Token]:
        if self.peek().kind == kind:
            return self.advance()
        return None

    def expect(self, kind: str, context: str = "") -> Token:
        token = self.peek()
        if token.kind != kind:
            suffix = f" while parsing {context}" if context else ""
            raise ParseError(
                f"expected {kind!r}, found {token.kind!r} "
                f"({token.text!r}){suffix}",
                token.line,
                token.column,
            )
        return self.advance()

    def error(self, message: str) -> ParseError:
        token = self.peek()
        return ParseError(message, token.line, token.column)

    # -- expressions --------------------------------------------------------

    def parse_expression(self) -> Expr:
        return self._parse_or()

    def _parse_or(self) -> Expr:
        expr = self._parse_and()
        while self.accept("or"):
            expr = BinaryOp("or", expr, self._parse_and())
        return expr

    def _parse_and(self) -> Expr:
        expr = self._parse_not()
        while self.accept("and"):
            expr = BinaryOp("and", expr, self._parse_not())
        return expr

    def _parse_not(self) -> Expr:
        if self.accept("not"):
            return UnaryOp("not", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> Expr:
        expr = self._parse_additive()
        if self.peek().kind in _COMPARISON_OPS:
            op = self.advance().kind
            expr = BinaryOp(op, expr, self._parse_additive())
        return expr

    def _parse_additive(self) -> Expr:
        expr = self._parse_multiplicative()
        while self.peek().kind in ("+", "-"):
            op = self.advance().kind
            expr = BinaryOp(op, expr, self._parse_multiplicative())
        return expr

    def _parse_multiplicative(self) -> Expr:
        expr = self._parse_unary()
        while self.peek().kind in ("*", "/", "%"):
            op = self.advance().kind
            expr = BinaryOp(op, expr, self._parse_unary())
        return expr

    def _parse_unary(self) -> Expr:
        if self.accept("-"):
            return UnaryOp("-", self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> Expr:
        token = self.peek()
        if token.kind == NUMBER:
            self.advance()
            if any(c in token.text for c in ".eE"):
                return Literal(float(token.text))
            return Literal(int(token.text))
        if token.kind == "true":
            self.advance()
            return Literal(True)
        if token.kind == "false":
            self.advance()
            return Literal(False)
        if token.kind == IDENT:
            self.advance()
            if self.peek().kind == "(":
                self.advance()
                args = self._parse_expression_list(")")
                self.expect(")", "function call")
                return FunctionCall(token.text, tuple(args))
            return Variable(token.text)
        if token.kind == "(":
            self.advance()
            expr = self.parse_expression()
            self.expect(")", "parenthesised expression")
            return expr
        raise self.error(
            f"expected an expression, found {token.kind!r} ({token.text!r})"
        )

    def _parse_expression_list(self, closing: str) -> List[Expr]:
        args: List[Expr] = []
        if self.peek().kind == closing:
            return args
        args.append(self.parse_expression())
        while self.accept(","):
            args.append(self.parse_expression())
        return args

    # -- rates ---------------------------------------------------------------

    def parse_rate(self) -> RateSpec:
        token = self.peek()
        if token.kind == "_":
            self.advance()
            if self.accept("("):
                priority = self.parse_expression()
                self.expect(",", "passive rate")
                weight = self.parse_expression()
                self.expect(")", "passive rate")
                return PassiveSpec(priority, weight)
            return PassiveSpec()
        if token.kind == IDENT and token.text == "exp":
            self.advance()
            self.expect("(", "exponential rate")
            rate = self.parse_expression()
            self.expect(")", "exponential rate")
            return ExpSpec(rate)
        if token.kind == IDENT and token.text == "inf":
            self.advance()
            if self.accept("("):
                priority = self.parse_expression()
                self.expect(",", "immediate rate")
                weight = self.parse_expression()
                self.expect(")", "immediate rate")
                return ImmediateSpec(priority, weight)
            return ImmediateSpec()
        if token.kind == IDENT and token.text in DISTRIBUTION_KEYWORDS:
            self.advance()
            self.expect("(", f"{token.text} rate")
            args = self._parse_expression_list(")")
            self.expect(")", f"{token.text} rate")
            return GeneralSpec(token.text, tuple(args))
        raise self.error(
            f"expected a rate (_, exp, inf or a distribution), found "
            f"{token.kind!r} ({token.text!r})"
        )

    # -- behaviours ------------------------------------------------------------

    def parse_behavior(self) -> Behavior:
        token = self.peek()
        if token.kind == "stop":
            self.advance()
            return Stop()
        if token.kind == "<":
            self.advance()
            action = self.expect(IDENT, "action prefix").text
            self.expect(",", "action prefix")
            rate = self.parse_rate()
            self.expect(">", "action prefix")
            self.expect(".", "action prefix")
            continuation = self.parse_behavior()
            return ActionPrefix(action, rate, continuation)
        if token.kind == "choice":
            self.advance()
            self.expect("{", "choice")
            alternatives = [self.parse_behavior()]
            while self.accept(","):
                alternatives.append(self.parse_behavior())
            self.expect("}", "choice")
            return Choice(tuple(alternatives))
        if token.kind == "cond":
            self.advance()
            self.expect("(", "cond guard")
            condition = self.parse_expression()
            self.expect(")", "cond guard")
            self.expect("->", "cond guard")
            return Guarded(condition, self.parse_behavior())
        if token.kind == IDENT:
            name = self.advance().text
            self.expect("(", "process call")
            args = self._parse_expression_list(")")
            self.expect(")", "process call")
            return ProcessCall(name, tuple(args))
        raise self.error(
            f"expected a behaviour, found {token.kind!r} ({token.text!r})"
        )

    # -- process definitions -----------------------------------------------------

    def parse_formals(self) -> Tuple[Formal, ...]:
        """Parse ``(void; void)`` or ``(int n := 0, ...; void)``."""
        self.expect("(", "behaviour header")
        formals: List[Formal] = []
        if not self.accept("void"):
            while True:
                type_token = self.peek()
                if type_token.kind not in _TYPE_TOKENS:
                    raise self.error(
                        f"expected a parameter type (bool/int/real), found "
                        f"{type_token.kind!r}"
                    )
                self.advance()
                name = self.expect(IDENT, "behaviour parameter").text
                default: Optional[Expr] = None
                if self.accept(":="):
                    default = self.parse_expression()
                formals.append(
                    Formal(name, _TYPE_TOKENS[type_token.kind], default)
                )
                if not self.accept(","):
                    break
        self.expect(";", "behaviour header")
        self.expect("void", "behaviour header")
        self.expect(")", "behaviour header")
        return tuple(formals)

    def parse_process_def(self) -> ProcessDef:
        name = self.expect(IDENT, "behaviour equation").text
        formals = self.parse_formals()
        self.expect("=", "behaviour equation")
        body = self.parse_behavior()
        return ProcessDef(name, formals, body)

    # -- element types ---------------------------------------------------------

    def parse_interaction_group(
        self, direction: Direction
    ) -> List[Interaction]:
        """Parse ``void`` or ``UNI a; b; OR c`` style declarations."""
        if self.accept("void"):
            return []
        interactions: List[Interaction] = []
        while self.peek().kind in _MULTIPLICITY_TOKENS:
            multiplicity = Multiplicity(self.advance().kind)
            while True:
                name = self.expect(IDENT, "interaction declaration").text
                interactions.append(
                    Interaction(name, direction, multiplicity)
                )
                if self.peek().kind == ";":
                    following = self.peek(1).kind
                    if following == IDENT:
                        self.advance()
                        continue
                    if following in _MULTIPLICITY_TOKENS:
                        self.advance()
                        break
                    self.advance()  # trailing semicolon
                    break
                break
        return interactions

    def parse_elem_type(self) -> ElemType:
        self.expect("ELEM_TYPE")
        name = self.expect(IDENT, "element type").text
        self.expect("(", "element type header")
        self.expect("void", "element type header")
        self.expect(")", "element type header")
        self.expect("BEHAVIOR", "element type")
        definitions = [self.parse_process_def()]
        while self.accept(";"):
            if self.peek().kind != IDENT:
                break
            definitions.append(self.parse_process_def())
        self.expect("INPUT_INTERACTIONS", "element type")
        inputs = self.parse_interaction_group(Direction.INPUT)
        self.expect("OUTPUT_INTERACTIONS", "element type")
        outputs = self.parse_interaction_group(Direction.OUTPUT)
        return ElemType(name, tuple(definitions), tuple(inputs + outputs))

    # -- topology ----------------------------------------------------------------

    def parse_instance(self) -> Instance:
        name = self.expect(IDENT, "instance declaration").text
        self.expect(":", "instance declaration")
        type_name = self.expect(IDENT, "instance declaration").text
        self.expect("(", "instance declaration")
        args = self._parse_expression_list(")")
        self.expect(")", "instance declaration")
        return Instance(name, type_name, tuple(args))

    def parse_attachment(self) -> Attachment:
        self.expect("FROM", "attachment")
        from_instance = self.expect(IDENT, "attachment").text
        self.expect(".", "attachment")
        from_interaction = self.expect(IDENT, "attachment").text
        self.expect("TO", "attachment")
        to_instance = self.expect(IDENT, "attachment").text
        self.expect(".", "attachment")
        to_interaction = self.expect(IDENT, "attachment").text
        return Attachment(
            from_instance, from_interaction, to_instance, to_interaction
        )

    def parse_const_params(self) -> Tuple[ConstParam, ...]:
        """Parse the ARCHI_TYPE header parameter list."""
        self.expect("(", "architecture header")
        params: List[ConstParam] = []
        if not self.accept("void"):
            while True:
                self.expect("const", "const parameter")
                type_token = self.peek()
                if type_token.kind not in _TYPE_TOKENS:
                    raise self.error(
                        f"expected a const type (bool/int/real), found "
                        f"{type_token.kind!r}"
                    )
                self.advance()
                name = self.expect(IDENT, "const parameter").text
                self.expect(":=", "const parameter")
                default = self.parse_expression()
                params.append(
                    ConstParam(name, _TYPE_TOKENS[type_token.kind], default)
                )
                if not self.accept(","):
                    break
        self.expect(")", "architecture header")
        return tuple(params)

    # -- top level ------------------------------------------------------------------

    def parse_archi_type(self) -> ArchiType:
        self.expect("ARCHI_TYPE", "architecture")
        name = self.expect(IDENT, "architecture").text
        const_params = self.parse_const_params()
        self.expect("ARCHI_ELEM_TYPES", "architecture")
        elem_types = [self.parse_elem_type()]
        while self.peek().kind == "ELEM_TYPE":
            elem_types.append(self.parse_elem_type())
        self.expect("ARCHI_TOPOLOGY", "architecture")
        self.expect("ARCHI_ELEM_INSTANCES", "architecture")
        instances = [self.parse_instance()]
        while self.accept(";"):
            if self.peek().kind != IDENT:
                break
            instances.append(self.parse_instance())
        attachments: List[Attachment] = []
        if self.accept("ARCHI_ATTACHMENTS"):
            attachments.append(self.parse_attachment())
            while self.accept(";"):
                if self.peek().kind != "FROM":
                    break
                attachments.append(self.parse_attachment())
        self.expect("END", "architecture")
        self.expect(EOF, "architecture")
        return ArchiType(
            name,
            tuple(elem_types),
            tuple(instances),
            tuple(attachments),
            const_params,
        )


def parse_architecture(source: str) -> ArchiType:
    """Parse a textual architectural description into an :class:`ArchiType`."""
    parser = _Parser(tokenize(source))
    return parser.parse_archi_type()

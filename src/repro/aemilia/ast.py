"""Abstract syntax of behaviour terms.

A behaviour describes the sequential process executed by one architectural
element instance.  The grammar mirrors the paper's concrete syntax::

    behaviour ::= stop
                | <action, rate> . behaviour
                | choice { alternative, ... }
                | cond(expr) -> behaviour
                | ProcessName(expr, ...)

Choice alternatives must be *action guarded*: after peeling guards, every
alternative must begin with an action prefix (this is the usual process
algebra restriction that makes choice well defined and recursion
well-founded).

All nodes are immutable and hashable; a pair (behaviour term, data
environment) identifies the local state of an instance during state-space
generation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..errors import SpecificationError, TypeCheckError
from .expressions import DataType, Expr
from .rates import RateSpec


class Behavior:
    """Base class of behaviour terms."""

    def free_variables(self) -> frozenset:
        """Variable names occurring free in the term."""
        raise NotImplementedError

    def called_processes(self) -> frozenset:
        """Names of processes referenced anywhere in the term."""
        raise NotImplementedError

    def unguarded_calls(self) -> frozenset:
        """Process names reachable without crossing an action prefix.

        Used to detect unguarded recursion statically: if ``P`` can reach a
        call to ``P`` through terms whose :meth:`unguarded_calls` contain
        ``P``, the specification is rejected.
        """
        raise NotImplementedError


@dataclass(frozen=True)
class Stop(Behavior):
    """The inert behaviour: no actions, ever."""

    def free_variables(self) -> frozenset:
        return frozenset()

    def called_processes(self) -> frozenset:
        return frozenset()

    def unguarded_calls(self) -> frozenset:
        return frozenset()

    def __str__(self) -> str:
        return "stop"


@dataclass(frozen=True)
class ActionPrefix(Behavior):
    """``<action, rate> . continuation``."""

    action: str
    rate: RateSpec
    continuation: Behavior

    def __post_init__(self):
        if not self.action or not self.action.isidentifier():
            raise SpecificationError(
                f"invalid action name {self.action!r}"
            )

    def free_variables(self) -> frozenset:
        return self.rate.free_variables() | self.continuation.free_variables()

    def called_processes(self) -> frozenset:
        return self.continuation.called_processes()

    def unguarded_calls(self) -> frozenset:
        return frozenset()

    def __str__(self) -> str:
        return f"<{self.action}, {self.rate}> . {self.continuation}"


@dataclass(frozen=True)
class Choice(Behavior):
    """``choice { alt_1, ..., alt_n }`` with action-guarded alternatives."""

    alternatives: Tuple[Behavior, ...]

    def __post_init__(self):
        if len(self.alternatives) < 2:
            raise SpecificationError(
                "choice needs at least two alternatives"
            )
        for alt in self.alternatives:
            _check_action_guarded(alt)

    def free_variables(self) -> frozenset:
        result: frozenset = frozenset()
        for alt in self.alternatives:
            result |= alt.free_variables()
        return result

    def called_processes(self) -> frozenset:
        result: frozenset = frozenset()
        for alt in self.alternatives:
            result |= alt.called_processes()
        return result

    def unguarded_calls(self) -> frozenset:
        result: frozenset = frozenset()
        for alt in self.alternatives:
            result |= alt.unguarded_calls()
        return result

    def __str__(self) -> str:
        body = ", ".join(str(a) for a in self.alternatives)
        return f"choice {{ {body} }}"


@dataclass(frozen=True)
class Guarded(Behavior):
    """``cond(expr) -> behaviour``: enabled only when the guard holds."""

    condition: Expr
    behavior: Behavior

    def free_variables(self) -> frozenset:
        return self.condition.free_variables() | self.behavior.free_variables()

    def called_processes(self) -> frozenset:
        return self.behavior.called_processes()

    def unguarded_calls(self) -> frozenset:
        return self.behavior.unguarded_calls()

    def __str__(self) -> str:
        return f"cond({self.condition}) -> {self.behavior}"


@dataclass(frozen=True)
class ProcessCall(Behavior):
    """Invocation of a behaviour equation, possibly with data arguments."""

    name: str
    args: Tuple[Expr, ...] = ()

    def __post_init__(self):
        if not self.name or not self.name.isidentifier():
            raise SpecificationError(f"invalid process name {self.name!r}")

    def free_variables(self) -> frozenset:
        result: frozenset = frozenset()
        for arg in self.args:
            result |= arg.free_variables()
        return result

    def called_processes(self) -> frozenset:
        return frozenset({self.name})

    def unguarded_calls(self) -> frozenset:
        return frozenset({self.name})

    def __str__(self) -> str:
        return f"{self.name}({', '.join(str(a) for a in self.args)})"


def _check_action_guarded(term: Behavior) -> None:
    """Reject choice alternatives that do not start with an action prefix.

    Guards may wrap the prefix; nested choices are also accepted since their
    own alternatives are checked recursively on construction.
    """
    while isinstance(term, Guarded):
        term = term.behavior
    if not isinstance(term, (ActionPrefix, Choice)):
        raise SpecificationError(
            f"choice alternative must be action guarded, got {term}"
        )


@dataclass(frozen=True)
class Formal:
    """A typed formal data parameter of a behaviour equation."""

    name: str
    type: DataType
    default: Expr = None

    def __post_init__(self):
        if not self.name.isidentifier():
            raise SpecificationError(f"invalid parameter name {self.name!r}")


@dataclass(frozen=True)
class ProcessDef:
    """A behaviour equation ``Name(formals; void) = body``."""

    name: str
    formals: Tuple[Formal, ...]
    body: Behavior

    def __post_init__(self):
        if not self.name.isidentifier():
            raise SpecificationError(f"invalid process name {self.name!r}")
        names = [formal.name for formal in self.formals]
        if len(names) != len(set(names)):
            raise SpecificationError(
                f"duplicate parameter name in process {self.name!r}"
            )

    def check_closed(self, constants: frozenset) -> None:
        """Verify the body only uses formals and architectural constants."""
        bound = frozenset(f.name for f in self.formals) | constants
        extra = self.body.free_variables() - bound
        if extra:
            names = ", ".join(sorted(extra))
            raise TypeCheckError(
                f"unbound variable(s) {names} in process {self.name!r}"
            )

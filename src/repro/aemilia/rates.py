"""Action rates of the specification language.

Following the stochastic process algebra underlying the paper's ADL, every
action carries a *rate* that determines its timing:

* **passive** (written ``_`` or ``_(priority, weight)``) — the action has no
  timing of its own; it either synchronises with an active partner (input
  interactions) or is a pure *observability marker* (monitor self-loops used
  by reward measures).  Functional (untimed) models use passive rates
  everywhere.
* **exponential** (``exp(lambda)``) — duration exponentially distributed with
  rate ``lambda``; the Markovian models of Sect. 4 use these.
* **immediate** (``inf(priority, weight)``) — zero duration; among enabled
  immediate actions, the highest priority wins and equal priorities are
  resolved probabilistically by weight.  Immediate actions preempt timed
  ones.
* **general** (``det(v)``, ``normal(mu, sigma)``, ...) — generally
  distributed duration; the general models of Sect. 5 use these and are
  analysed by simulation.

Rates in behaviour syntax may contain expressions over ``const`` parameters
(e.g. ``exp(1 / service_time)``).  :class:`RateSpec` is the syntactic form;
:meth:`RateSpec.evaluate` produces the concrete :class:`Rate` used by the
semantics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Tuple

from ..errors import SpecificationError
from ..distributions import (
    DISTRIBUTION_KEYWORDS,
    Distribution,
    Exponential,
    make_distribution,
)
from .expressions import Env, Expr, Literal


# ---------------------------------------------------------------------------
# Concrete (evaluated) rates.
# ---------------------------------------------------------------------------

class Rate:
    """Base class of concrete rates attached to LTS transitions."""

    #: True for rates that let their transition fire spontaneously.
    is_active = True

    def __str__(self) -> str:  # pragma: no cover - overridden
        raise NotImplementedError


@dataclass(frozen=True)
class PassiveRate(Rate):
    """Passive rate: synchronises with an active partner or marks a state."""

    priority: int = 0
    weight: float = 1.0
    is_active = False

    def __post_init__(self):
        if self.weight <= 0:
            raise SpecificationError(
                f"passive weight must be positive, got {self.weight}"
            )
        if self.priority < 0:
            raise SpecificationError(
                f"passive priority must be >= 0, got {self.priority}"
            )

    def __str__(self) -> str:
        if self.priority == 0 and self.weight == 1.0:
            return "_"
        return f"_({self.priority}, {self.weight:g})"


@dataclass(frozen=True)
class ExpRate(Rate):
    """Exponentially distributed duration with parameter ``rate``."""

    rate: float

    def __post_init__(self):
        if not (self.rate > 0) or not math.isfinite(self.rate):
            raise SpecificationError(
                f"exponential rate must be positive and finite, got {self.rate}"
            )

    def __str__(self) -> str:
        return f"exp({self.rate:g})"


@dataclass(frozen=True)
class ImmediateRate(Rate):
    """Immediate (zero-duration) rate with priority and weight."""

    priority: int = 1
    weight: float = 1.0

    def __post_init__(self):
        if self.priority < 1:
            raise SpecificationError(
                f"immediate priority must be >= 1, got {self.priority}"
            )
        if self.weight <= 0:
            raise SpecificationError(
                f"immediate weight must be positive, got {self.weight}"
            )

    def __str__(self) -> str:
        return f"inf({self.priority}, {self.weight:g})"


@dataclass(frozen=True)
class GeneralRate(Rate):
    """Generally distributed duration (phase-3 models)."""

    distribution: Distribution

    def __str__(self) -> str:
        return str(self.distribution)

    def exponential_equivalent(self) -> "ExpRate":
        """Exponential rate with the same mean (validation plug-in)."""
        return ExpRate(self.distribution.exponential_equivalent().rate)


def rate_as_distribution(rate: Rate) -> Distribution:
    """Return the duration distribution of an active timed rate."""
    if isinstance(rate, ExpRate):
        return Exponential(rate.rate)
    if isinstance(rate, GeneralRate):
        return rate.distribution
    raise SpecificationError(f"rate {rate} has no duration distribution")


# ---------------------------------------------------------------------------
# Syntactic rate specifications (may contain const-parameter expressions).
# ---------------------------------------------------------------------------

class RateSpec:
    """Base class of syntactic rates appearing in behaviour terms."""

    def evaluate(self, env: Env) -> Rate:
        """Evaluate parameter expressions, producing a concrete rate."""
        raise NotImplementedError

    def free_variables(self) -> frozenset:
        """Variables the rate depends on (const parameters)."""
        raise NotImplementedError


def _numeric(value, what: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise SpecificationError(f"{what} must be numeric, got {value!r}")
    return float(value)


@dataclass(frozen=True)
class PassiveSpec(RateSpec):
    """Syntactic passive rate ``_`` / ``_(priority, weight)``."""

    priority: Expr = field(default_factory=lambda: Literal(0))
    weight: Expr = field(default_factory=lambda: Literal(1.0))

    def evaluate(self, env: Env) -> PassiveRate:
        priority = self.priority.evaluate(env)
        weight = _numeric(self.weight.evaluate(env), "passive weight")
        if isinstance(priority, bool) or not isinstance(priority, int):
            raise SpecificationError(
                f"passive priority must be an integer, got {priority!r}"
            )
        return PassiveRate(priority, weight)

    def free_variables(self) -> frozenset:
        return self.priority.free_variables() | self.weight.free_variables()

    def __str__(self) -> str:
        return "_"


@dataclass(frozen=True)
class ExpSpec(RateSpec):
    """Syntactic exponential rate ``exp(expr)``."""

    rate: Expr

    def evaluate(self, env: Env) -> ExpRate:
        return ExpRate(_numeric(self.rate.evaluate(env), "exp rate"))

    def free_variables(self) -> frozenset:
        return self.rate.free_variables()

    def __str__(self) -> str:
        return f"exp({self.rate})"


@dataclass(frozen=True)
class ImmediateSpec(RateSpec):
    """Syntactic immediate rate ``inf`` / ``inf(priority, weight)``."""

    priority: Expr = field(default_factory=lambda: Literal(1))
    weight: Expr = field(default_factory=lambda: Literal(1.0))

    def evaluate(self, env: Env) -> ImmediateRate:
        priority = self.priority.evaluate(env)
        weight = _numeric(self.weight.evaluate(env), "immediate weight")
        if isinstance(priority, bool) or not isinstance(priority, int):
            raise SpecificationError(
                f"immediate priority must be an integer, got {priority!r}"
            )
        return ImmediateRate(priority, weight)

    def free_variables(self) -> frozenset:
        return self.priority.free_variables() | self.weight.free_variables()

    def __str__(self) -> str:
        return f"inf({self.priority}, {self.weight})"


@dataclass(frozen=True)
class GeneralSpec(RateSpec):
    """Syntactic general-distribution rate, e.g. ``normal(mu, sigma)``."""

    keyword: str
    args: Tuple[Expr, ...]

    def __post_init__(self):
        if self.keyword not in DISTRIBUTION_KEYWORDS:
            known = ", ".join(sorted(DISTRIBUTION_KEYWORDS))
            raise SpecificationError(
                f"unknown distribution {self.keyword!r} (known: {known})"
            )

    def evaluate(self, env: Env) -> Rate:
        values = [
            _numeric(arg.evaluate(env), f"{self.keyword} argument")
            for arg in self.args
        ]
        if self.keyword == "exp":
            # exp(...) written in a general model is still a plain
            # exponential rate; keeping it as ExpRate lets the Markovian
            # builder accept mixed models.
            return ExpRate(values[0])
        return GeneralRate(make_distribution(self.keyword, values))

    def free_variables(self) -> frozenset:
        result: frozenset = frozenset()
        for arg in self.args:
            result |= arg.free_variables()
        return result

    def __str__(self) -> str:
        return f"{self.keyword}({', '.join(str(a) for a in self.args)})"

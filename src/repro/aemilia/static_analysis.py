"""Static diagnostics for architectural descriptions.

The parser enforces hard well-formedness; this module adds the *lint*
layer a production front-end needs — findings that are legal but usually
wrong:

* unreachable behaviour equations (never called from the initial one);
* unattached interactions (legal open ends, but typically oversights in a
  closed system model);
* guards that are constant under the declared ``const`` defaults (dead
  alternatives or tautologies);
* unsynchronisable attachments — an output whose partner input never
  appears in a reachable behaviour of the target instance;
* components that can never move (no actions at all).

Each finding carries a severity and a location string; `analyze` returns
them all, and `report` renders a human-readable summary.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Mapping, Optional, Set

from .architecture import ArchiType
from .ast import (
    ActionPrefix,
    Behavior,
    Choice,
    Guarded,
    Stop,
)
from .elemtypes import ElemType


class Severity(enum.Enum):
    """How suspicious a finding is."""

    WARNING = "warning"
    INFO = "info"


@dataclass(frozen=True)
class Finding:
    """One diagnostic result."""

    severity: Severity
    code: str
    location: str
    message: str

    def __str__(self) -> str:
        return f"[{self.severity.value}] {self.code} at {self.location}: {self.message}"


def _reachable_definitions(elem_type: ElemType) -> Set[str]:
    reached = {elem_type.initial_definition.name}
    frontier = [elem_type.initial_definition.name]
    while frontier:
        name = frontier.pop()
        for called in elem_type.definition(name).body.called_processes():
            if called not in reached:
                reached.add(called)
                frontier.append(called)
    return reached


def _constant_guards(
    term: Behavior, env: Mapping[str, object], where: str, out: List[Finding]
) -> None:
    if isinstance(term, Guarded):
        if not term.condition.free_variables() - set(env):
            try:
                value = term.condition.evaluate(env)
            except Exception:
                value = None
            if value is True:
                out.append(
                    Finding(
                        Severity.INFO,
                        "constant-guard",
                        where,
                        f"guard {term.condition} is always true under the "
                        f"const defaults",
                    )
                )
            elif value is False:
                out.append(
                    Finding(
                        Severity.WARNING,
                        "dead-guard",
                        where,
                        f"guard {term.condition} is always false under the "
                        f"const defaults: the alternative is dead",
                    )
                )
        _constant_guards(term.behavior, env, where, out)
    elif isinstance(term, ActionPrefix):
        _constant_guards(term.continuation, env, where, out)
    elif isinstance(term, Choice):
        for alternative in term.alternatives:
            _constant_guards(alternative, env, where, out)


def analyze(
    archi: ArchiType,
    const_overrides: Optional[Mapping[str, object]] = None,
) -> List[Finding]:
    """Run every diagnostic on *archi*."""
    findings: List[Finding] = []
    env = archi.bind_constants(const_overrides)

    used_types = {instance.type_name for instance in archi.instances}
    for elem_type in archi.elem_types.values():
        if elem_type.name not in used_types:
            findings.append(
                Finding(
                    Severity.WARNING,
                    "unused-elem-type",
                    elem_type.name,
                    "element type is never instantiated",
                )
            )

    for elem_type in archi.elem_types.values():
        reachable = _reachable_definitions(elem_type)
        for definition in elem_type.definitions:
            where = f"{elem_type.name}.{definition.name}"
            if definition.name not in reachable:
                findings.append(
                    Finding(
                        Severity.WARNING,
                        "unreachable-behaviour",
                        where,
                        "behaviour equation is never reached from the "
                        "initial one",
                    )
                )
            # Guard analysis only for parameterless definitions (data
            # parameters make guards genuinely dynamic).
            if not definition.formals:
                _constant_guards(definition.body, env, where, findings)
            if isinstance(definition.body, Stop):
                findings.append(
                    Finding(
                        Severity.INFO,
                        "inert-behaviour",
                        where,
                        "behaviour is 'stop': instances entering it "
                        "deadlock",
                    )
                )

    # Interaction wiring diagnostics.
    attached_ends = set()
    for attachment in archi.attachments:
        attached_ends.add((attachment.from_instance, attachment.from_interaction))
        attached_ends.add((attachment.to_instance, attachment.to_interaction))
    for instance in archi.instances:
        elem_type = archi.elem_types[instance.type_name]
        for interaction in elem_type.interactions:
            end = (instance.name, interaction.name)
            if end not in attached_ends:
                findings.append(
                    Finding(
                        Severity.WARNING,
                        "open-interaction",
                        f"{instance.name}.{interaction.name}",
                        f"{interaction.direction.value} interaction is not "
                        f"attached: it stays an open end of the "
                        f"architecture",
                    )
                )
    return findings


def report(
    archi: ArchiType,
    const_overrides: Optional[Mapping[str, object]] = None,
) -> str:
    """Human-readable diagnostics summary."""
    findings = analyze(archi, const_overrides)
    if not findings:
        return f"{archi.name}: no findings"
    lines = [f"{archi.name}: {len(findings)} finding(s)"]
    lines.extend(f"  {finding}" for finding in findings)
    return "\n".join(lines)

"""State-space generation: from an architecture to a labelled transition system.

The composed semantics follows the stochastic process algebra underlying the
paper's ADL:

* internal actions of an instance fire on their own, labelled
  ``Inst.action``;
* an **output** interaction synchronises with the **input** interaction(s)
  it is attached to.  The output side is *active* (it carries the timing),
  the input side must be *passive*; the synchronisation is labelled
  ``Out.o#In.i`` exactly as printed by the paper's equivalence checker;
* when one activity can complete in several ways (several passive moves of
  the partner, or an ``OR`` output attached to several ready inputs), the
  branches are selected probabilistically by passive weights;
* **immediate** actions (``inf``) preempt timed and passive ones; among
  enabled immediates only the highest priority survives;
* unattached interactions stay observable at the architecture level.

Global states are tuples of per-instance local states; a local state is a
behaviour term of the original AST plus an environment for its data
parameters (terms are never rewritten, so object identity keys the caches).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import (
    SemanticsError,
    SpecificationError,
    StateSpaceLimitError,
    UnguardedRecursionError,
)
from ..lts.labels import local_label, sync_label
from ..lts.lts import LTS
from .architecture import ArchiType, Attachment
from .ast import (
    ActionPrefix,
    Behavior,
    Choice,
    Guarded,
    ProcessCall,
    Stop,
)
from .elemtypes import Direction, ElemType, Multiplicity
from .expressions import DataType, Value, evaluate_guard
from .rates import ExpRate, ImmediateRate, PassiveRate, Rate, RateSpec

EnvTuple = Tuple[Tuple[str, Value], ...]


@dataclass(frozen=True)
class RateProvenance:
    """How one transition's rate was computed, for parametric relabeling.

    A transition's rate is the value of a syntactic :class:`RateSpec` under
    ``{**const_env, **local_env}``, optionally split by a branch
    ``fraction`` (probabilistic delivery to one of several passive
    partners).  The local environment and the fraction are *structural* —
    they only depend on data values and passive weights — so a sweep over a
    parameter that appears exclusively in rate expressions can re-evaluate
    ``spec`` under a new constant environment and reuse everything else.
    """

    spec: RateSpec
    #: Local data environment at evaluation time, projected onto the
    #: spec's free variables (local names shadow constants).
    env: EnvTuple
    #: Constant parameters the spec actually reads (free vars not shadowed
    #: by the local environment).
    free_consts: frozenset
    #: Branch probability applied by the generator, or ``None`` when the
    #: move was not split.
    fraction: Optional[float] = None

    def evaluate(self, const_env: Mapping[str, Value]) -> Rate:
        """Recompute the concrete rate under a new constant environment."""
        env = dict(const_env)
        env.update(self.env)
        rate = self.spec.evaluate(env)
        return apply_branch_fraction(rate, self.fraction)


def apply_branch_fraction(rate: Rate, fraction: Optional[float]) -> Rate:
    """Apply the generator's branch split to a freshly evaluated rate.

    Mirrors :meth:`StateSpaceGenerator._branch` exactly so relabeled rates
    are bit-identical to freshly generated ones.
    """
    if fraction is None:
        return rate
    if isinstance(rate, ExpRate):
        return ExpRate(rate.rate * fraction)
    if isinstance(rate, ImmediateRate):
        return ImmediateRate(rate.priority, rate.weight * fraction)
    return rate


@dataclass(frozen=True)
class LocalMove:
    """One enabled action of an instance: action name, rate, next state."""

    action: str
    rate: Rate
    target: int  # index into the instance's local-state table
    #: Provenance of the rate (spec + projected env), recorded only when
    #: the generator runs in parametric mode.
    spec: Optional[RateSpec] = None
    spec_env: EnvTuple = ()
    free_consts: frozenset = frozenset()


class _InstanceSemantics:
    """Per-instance unfolding machinery with memoised local states/moves."""

    def __init__(
        self,
        name: str,
        elem_type: ElemType,
        initial_args: Sequence[Value],
        const_env: Mapping[str, Value],
        record_provenance: bool = False,
    ):
        self.name = name
        self.elem_type = elem_type
        self.const_env = dict(const_env)
        self.record_provenance = record_provenance
        self._states: List[Tuple[Behavior, EnvTuple]] = []
        self._state_index: Dict[Tuple[int, EnvTuple], int] = {}
        self._moves: List[Optional[List[LocalMove]]] = []
        self._fv_cache: Dict[int, frozenset] = {}
        self._rate_fv_cache: Dict[int, frozenset] = {}
        initial = elem_type.initial_definition
        env: Dict[str, Value] = {}
        values = list(initial_args)
        for position, formal in enumerate(initial.formals):
            if position < len(values):
                value = values[position]
            else:
                value = formal.default.evaluate({**self.const_env, **env})
            env[formal.name] = self._coerce(value, formal.type)
        self.initial_state = self._intern(initial.body, env)

    @staticmethod
    def _coerce(value: Value, target: DataType) -> Value:
        if target is DataType.REAL and isinstance(value, int):
            return float(value)
        return value

    def _free_vars(self, term: Behavior) -> frozenset:
        cached = self._fv_cache.get(id(term))
        if cached is None:
            cached = term.free_variables()
            self._fv_cache[id(term)] = cached
        return cached

    def _rate_free_vars(self, spec: RateSpec) -> frozenset:
        cached = self._rate_fv_cache.get(id(spec))
        if cached is None:
            cached = spec.free_variables()
            self._rate_fv_cache[id(spec)] = cached
        return cached

    def _intern(self, term: Behavior, env: Mapping[str, Value]) -> int:
        # Canonicalise through process calls: a call with concrete
        # arguments denotes the same local state as the called body under
        # the corresponding environment.  This collapses e.g. the target
        # of a recursive monitor branch onto the state it loops on.
        depth = 0
        while isinstance(term, ProcessCall):
            depth += 1
            if depth > 10_000:
                raise UnguardedRecursionError(
                    f"instance {self.name!r}: process call chain through "
                    f"{term.name!r} never reaches an action"
                )
            definition = self.elem_type.definition(term.name)
            full_env = {**self.const_env, **env}
            values = [arg.evaluate(full_env) for arg in term.args]
            new_env: Dict[str, Value] = {}
            for position, formal in enumerate(definition.formals):
                if position < len(values):
                    value = values[position]
                else:
                    if formal.default is None:
                        raise SpecificationError(
                            f"call {term} misses argument "
                            f"{formal.name!r} (no default)"
                        )
                    value = formal.default.evaluate(
                        {**self.const_env, **new_env}
                    )
                new_env[formal.name] = self._coerce(value, formal.type)
            term, env = definition.body, new_env
        relevant = self._free_vars(term)
        env_tuple = tuple(
            sorted((k, v) for k, v in env.items() if k in relevant)
        )
        key = (id(term), env_tuple)
        index = self._state_index.get(key)
        if index is None:
            index = len(self._states)
            self._state_index[key] = index
            self._states.append((term, env_tuple))
            self._moves.append(None)
        return index

    def moves(self, state: int) -> List[LocalMove]:
        """Enabled local moves of the given local state (memoised)."""
        cached = self._moves[state]
        if cached is None:
            term, env_tuple = self._states[state]
            cached = []
            self._collect(term, dict(env_tuple), cached, [])
            self._moves[state] = cached
        return cached

    def _collect(
        self,
        term: Behavior,
        env: Dict[str, Value],
        out: List[LocalMove],
        unfold_stack: List[Tuple[str, Tuple[Value, ...]]],
    ) -> None:
        if isinstance(term, Stop):
            return
        if isinstance(term, ActionPrefix):
            full_env = {**self.const_env, **env}
            rate = term.rate.evaluate(full_env)
            target = self._intern(term.continuation, env)
            if self.record_provenance:
                spec_fv = self._rate_free_vars(term.rate)
                spec_env = tuple(
                    sorted(
                        (name, value)
                        for name, value in env.items()
                        if name in spec_fv
                    )
                )
                free_consts = spec_fv - {name for name, _ in spec_env}
                out.append(
                    LocalMove(
                        term.action, rate, target,
                        term.rate, spec_env, free_consts,
                    )
                )
            else:
                out.append(LocalMove(term.action, rate, target))
            return
        if isinstance(term, Choice):
            for alternative in term.alternatives:
                self._collect(alternative, env, out, unfold_stack)
            return
        if isinstance(term, Guarded):
            full_env = {**self.const_env, **env}
            if evaluate_guard(term.condition, full_env):
                self._collect(term.behavior, env, out, unfold_stack)
            return
        if isinstance(term, ProcessCall):
            definition = self.elem_type.definition(term.name)
            full_env = {**self.const_env, **env}
            values = tuple(arg.evaluate(full_env) for arg in term.args)
            frame = (term.name, values)
            if frame in unfold_stack:
                raise UnguardedRecursionError(
                    f"instance {self.name!r}: behaviour {term.name!r} "
                    f"with arguments {values} recurses without an action"
                )
            new_env: Dict[str, Value] = {}
            for position, formal in enumerate(definition.formals):
                if position < len(values):
                    value = values[position]
                else:
                    if formal.default is None:
                        raise SpecificationError(
                            f"call {term} misses argument "
                            f"{formal.name!r} (no default)"
                        )
                    value = formal.default.evaluate(
                        {**self.const_env, **new_env}
                    )
                new_env[formal.name] = self._coerce(value, formal.type)
            unfold_stack.append(frame)
            try:
                self._collect(definition.body, new_env, out, unfold_stack)
            finally:
                unfold_stack.pop()
            return
        raise SemanticsError(f"unknown behaviour node {term!r}")

    def state_summary(self, state: int) -> str:
        """Compact human-readable description of a local state."""
        term, env_tuple = self._states[state]
        if isinstance(term, ProcessCall):
            head = term.name
        elif isinstance(term, ActionPrefix):
            head = f"<{term.action}>"
        elif isinstance(term, Choice):
            heads = []
            for alternative in term.alternatives[:2]:
                inner = alternative
                while isinstance(inner, Guarded):
                    inner = inner.behavior
                if isinstance(inner, ActionPrefix):
                    heads.append(inner.action)
            head = "choice{" + ",".join(heads) + ",..}"
        elif isinstance(term, Stop):
            head = "stop"
        else:
            head = type(term).__name__
        if env_tuple:
            assignments = ",".join(f"{k}={v}" for k, v in env_tuple)
            return f"{head}[{assignments}]"
        return head


@dataclass(frozen=True)
class _GlobalMove:
    """A candidate global transition before preemption filtering."""

    label: str
    rate: Rate
    event: str
    weight: float
    targets: Tuple[Tuple[int, int], ...]  # (instance index, new local state)
    provenance: Optional[RateProvenance] = None


class StateSpaceGenerator:
    """Exhaustive generator of the composed state space of an architecture."""

    def __init__(
        self,
        archi: ArchiType,
        const_overrides: Optional[Mapping[str, Value]] = None,
        max_states: int = 200_000,
        apply_preemption: bool = True,
        record_provenance: bool = False,
    ):
        self.archi = archi
        self.const_env = archi.bind_constants(const_overrides)
        self.max_states = max_states
        self.apply_preemption = apply_preemption
        self.record_provenance = record_provenance
        #: Per-transition rate provenance, parallel to the generated LTS's
        #: transition list (filled only when ``record_provenance``).
        self.provenance: List[RateProvenance] = []
        self._instances: List[_InstanceSemantics] = []
        self._index_of_instance: Dict[str, int] = {}
        for position, instance in enumerate(archi.instances):
            elem_type = archi.elem_types[instance.type_name]
            args = [arg.evaluate(self.const_env) for arg in instance.args]
            self._instances.append(
                _InstanceSemantics(
                    instance.name, elem_type, args, self.const_env,
                    record_provenance,
                )
            )
            self._index_of_instance[instance.name] = position
        # Precompute attachment lookup tables.
        self._attachments_from: Dict[Tuple[int, str], List[Attachment]] = {}
        self._attached_inputs: Dict[Tuple[int, str], Attachment] = {}
        for attachment in archi.attachments:
            src = self._index_of_instance[attachment.from_instance]
            dst = self._index_of_instance[attachment.to_instance]
            self._attachments_from.setdefault(
                (src, attachment.from_interaction), []
            ).append(attachment)
            self._attached_inputs[(dst, attachment.to_interaction)] = attachment

    # -- classification helpers -------------------------------------------

    def _direction(self, instance_index: int, action: str) -> Optional[Direction]:
        elem_type = self._instances[instance_index].elem_type
        if elem_type.has_interaction(action):
            return elem_type.interaction(action).direction
        return None

    def _is_attached_input(self, instance_index: int, action: str) -> bool:
        return (instance_index, action) in self._attached_inputs

    # -- move computation --------------------------------------------------

    @staticmethod
    def _move_provenance(
        move: LocalMove, fraction: Optional[float] = None
    ) -> Optional[RateProvenance]:
        if move.spec is None:
            return None
        return RateProvenance(
            move.spec, move.spec_env, move.free_consts, fraction
        )

    def _global_moves(self, state: Tuple[int, ...]) -> List[_GlobalMove]:
        moves: List[_GlobalMove] = []
        for index, semantics in enumerate(self._instances):
            instance_name = semantics.name
            for move in semantics.moves(state[index]):
                direction = self._direction(index, move.action)
                if direction is Direction.INPUT:
                    if self._is_attached_input(index, move.action):
                        continue  # fires only through its output partner
                    # Open input: observable passive action.
                    moves.append(
                        _GlobalMove(
                            label=local_label(instance_name, move.action),
                            rate=move.rate,
                            event=local_label(instance_name, move.action),
                            weight=1.0,
                            targets=((index, move.target),),
                            provenance=self._move_provenance(move),
                        )
                    )
                    continue
                if direction is Direction.OUTPUT:
                    attachments = self._attachments_from.get(
                        (index, move.action), []
                    )
                    if attachments:
                        moves.extend(
                            self._sync_moves(state, index, move, attachments)
                        )
                        continue
                # Internal action or open output: autonomous move.
                moves.append(
                    _GlobalMove(
                        label=local_label(instance_name, move.action),
                        rate=move.rate,
                        event=local_label(instance_name, move.action),
                        weight=1.0,
                        targets=((index, move.target),),
                        provenance=self._move_provenance(move),
                    )
                )
        return moves

    def _sync_moves(
        self,
        state: Tuple[int, ...],
        out_index: int,
        out_move: LocalMove,
        attachments: List[Attachment],
    ) -> List[_GlobalMove]:
        out_semantics = self._instances[out_index]
        out_name = out_semantics.name
        interaction = out_semantics.elem_type.interaction(out_move.action)
        event = local_label(out_name, out_move.action)
        # Note: in *timed* models the output side must be active; untimed
        # (functional) models use passive rates everywhere.  A passive
        # output is therefore accepted here and the Markovian builder
        # rejects any passive transition that survives into a CTMC.
        partner_options: List[List[Tuple[int, LocalMove, str]]] = []
        for attachment in attachments:
            in_index = self._index_of_instance[attachment.to_instance]
            in_semantics = self._instances[in_index]
            options: List[Tuple[int, LocalMove, str]] = []
            for move in in_semantics.moves(state[in_index]):
                if move.action != attachment.to_interaction:
                    continue
                if not isinstance(move.rate, PassiveRate):
                    raise SpecificationError(
                        f"input interaction "
                        f"{attachment.to_instance}.{attachment.to_interaction}"
                        f" must be passive, found {move.rate}"
                    )
                options.append(
                    (
                        in_index,
                        move,
                        local_label(
                            attachment.to_instance, attachment.to_interaction
                        ),
                    )
                )
            partner_options.append(options)

        if interaction.multiplicity is Multiplicity.AND:
            # Broadcast: every attached partner must be ready.
            if any(not options for options in partner_options):
                return []
            branches: List[_GlobalMove] = []
            combos = list(itertools.product(*partner_options))
            total_weight = sum(
                self._combo_weight(combo) for combo in combos
            )
            for combo in combos:
                weight = self._combo_weight(combo)
                label = sync_label(
                    event, *[part_label for _, _, part_label in combo]
                )
                targets = ((out_index, out_move.target),) + tuple(
                    (in_index, move.target) for in_index, move, _ in combo
                )
                branches.append(
                    self._branch(
                        out_move, label, event, weight, total_weight,
                        targets,
                    )
                )
            return branches

        # UNI / OR: exactly one ready partner move synchronises per firing.
        flat = [option for options in partner_options for option in options]
        if not flat:
            return []
        total_weight = sum(move.rate.weight for _, move, _ in flat)
        branches = []
        for in_index, move, part_label in flat:
            label = sync_label(event, part_label)
            targets = (
                (out_index, out_move.target),
                (in_index, move.target),
            )
            branches.append(
                self._branch(
                    out_move, label, event, move.rate.weight,
                    total_weight, targets,
                )
            )
        return branches

    @staticmethod
    def _combo_weight(combo) -> float:
        weight = 1.0
        for _, move, _ in combo:
            weight *= move.rate.weight
        return weight

    @classmethod
    def _branch(
        cls,
        out_move: LocalMove,
        label: str,
        event: str,
        weight: float,
        total_weight: float,
        targets: Tuple[Tuple[int, int], ...],
    ) -> _GlobalMove:
        rate = out_move.rate
        fraction = weight / total_weight
        provenance = cls._move_provenance(out_move, fraction)
        if isinstance(rate, ExpRate):
            # Splitting an exponential race by branch probability is exact.
            return _GlobalMove(
                label, ExpRate(rate.rate * fraction), event, fraction,
                targets, provenance,
            )
        if isinstance(rate, ImmediateRate):
            return _GlobalMove(
                label,
                ImmediateRate(rate.priority, rate.weight * fraction),
                event,
                fraction,
                targets,
                provenance,
            )
        # General (and passive, for untimed models) rates cannot be split:
        # branches share the event and carry the selection probability.
        return _GlobalMove(label, rate, event, fraction, targets, provenance)

    @staticmethod
    def _filter_preemption(moves: List[_GlobalMove]) -> List[_GlobalMove]:
        """Immediate actions preempt timed/passive ones; keep max priority."""
        immediates = [
            m for m in moves if isinstance(m.rate, ImmediateRate)
        ]
        if not immediates:
            return moves
        top = max(m.rate.priority for m in immediates)
        return [m for m in immediates if m.rate.priority == top]

    # -- main entry ---------------------------------------------------------

    def generate(self) -> LTS:
        """Generate the reachable state space as an LTS."""
        initial = tuple(s.initial_state for s in self._instances)
        lts = LTS(0)
        index: Dict[Tuple[int, ...], int] = {initial: lts.add_state()}
        lts.set_state_info(0, self._describe(initial))
        frontier = [initial]
        while frontier:
            state = frontier.pop()
            source = index[state]
            moves = self._global_moves(state)
            if self.apply_preemption:
                moves = self._filter_preemption(moves)
            for move in moves:
                successor = list(state)
                for instance_index, local_state in move.targets:
                    successor[instance_index] = local_state
                successor_tuple = tuple(successor)
                target = index.get(successor_tuple)
                if target is None:
                    if len(index) >= self.max_states:
                        raise StateSpaceLimitError(
                            f"state space of {self.archi.name!r} exceeds "
                            f"{self.max_states} states"
                        )
                    target = lts.add_state()
                    index[successor_tuple] = target
                    lts.set_state_info(
                        target, self._describe(successor_tuple)
                    )
                    frontier.append(successor_tuple)
                lts.add_transition(
                    source, move.label, target, move.rate, move.event,
                    move.weight,
                )
                if self.record_provenance:
                    self.provenance.append(move.provenance)
        return lts

    def _describe(self, state: Tuple[int, ...]) -> str:
        parts = []
        for semantics, local_state in zip(self._instances, state):
            parts.append(
                f"{semantics.name}:{semantics.state_summary(local_state)}"
            )
        return " | ".join(parts)


def generate_lts(
    archi: ArchiType,
    const_overrides: Optional[Mapping[str, Value]] = None,
    max_states: int = 200_000,
    apply_preemption: bool = True,
) -> LTS:
    """Generate the state space of *archi* (convenience wrapper)."""
    generator = StateSpaceGenerator(
        archi, const_overrides, max_states, apply_preemption
    )
    return generator.generate()

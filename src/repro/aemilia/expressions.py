"""Typed expression language used throughout the specification language.

Expressions appear in three places of an architectural description:

* **guards** of behaviour alternatives (``cond(n < capacity) -> ...``),
* **data arguments** of process calls (``Buffer(n + 1)``),
* **rate arguments** (``exp(1 / service_time)``).

The language is deliberately small: boolean, integer and real literals,
variables, arithmetic, comparisons, boolean connectives and a handful of
builtin functions (``min``, ``max``, ``abs``, ``floor``, ``ceil``).

All nodes are immutable and hashable so that behaviour terms containing
expressions can be used as dictionary keys during state-space generation.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, Mapping, Tuple, Union

from ..errors import EvaluationError, TypeCheckError

Value = Union[bool, int, float]

#: Environment binding variable names to values.
Env = Mapping[str, Value]


class DataType(enum.Enum):
    """Static types of the expression language."""

    BOOL = "bool"
    INT = "int"
    REAL = "real"

    def accepts(self, other: "DataType") -> bool:
        """Return True when a value of type *other* can be used as *self*.

        The only implicit widening is ``int`` → ``real``.
        """
        if self is other:
            return True
        return self is DataType.REAL and other is DataType.INT

    @staticmethod
    def of_value(value: Value) -> "DataType":
        """Return the static type of a Python runtime value."""
        if isinstance(value, bool):
            return DataType.BOOL
        if isinstance(value, int):
            return DataType.INT
        if isinstance(value, float):
            return DataType.REAL
        raise TypeCheckError(f"unsupported runtime value {value!r}")

    @staticmethod
    def parse(name: str) -> "DataType":
        """Parse a type keyword (``bool`` / ``int`` / ``real``)."""
        try:
            return DataType(name)
        except ValueError:
            raise TypeCheckError(f"unknown data type {name!r}") from None


class Expr:
    """Base class of all expression nodes."""

    def evaluate(self, env: Env) -> Value:
        """Evaluate the expression under the environment *env*."""
        raise NotImplementedError

    def free_variables(self) -> frozenset:
        """Return the set of variable names occurring in the expression."""
        raise NotImplementedError

    def infer_type(self, scope: Mapping[str, DataType]) -> DataType:
        """Infer the static type of the expression under *scope*."""
        raise NotImplementedError


@dataclass(frozen=True)
class Literal(Expr):
    """A boolean, integer or real constant."""

    value: Value

    def evaluate(self, env: Env) -> Value:
        return self.value

    def free_variables(self) -> frozenset:
        return frozenset()

    def infer_type(self, scope: Mapping[str, DataType]) -> DataType:
        return DataType.of_value(self.value)

    def __str__(self) -> str:
        if isinstance(self.value, bool):
            return "true" if self.value else "false"
        return repr(self.value)


@dataclass(frozen=True)
class Variable(Expr):
    """A reference to a data parameter or architectural constant."""

    name: str

    def evaluate(self, env: Env) -> Value:
        try:
            return env[self.name]
        except KeyError:
            raise EvaluationError(f"unbound variable {self.name!r}") from None

    def free_variables(self) -> frozenset:
        return frozenset({self.name})

    def infer_type(self, scope: Mapping[str, DataType]) -> DataType:
        try:
            return scope[self.name]
        except KeyError:
            raise TypeCheckError(f"undeclared variable {self.name!r}") from None

    def __str__(self) -> str:
        return self.name


_ARITHMETIC = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
    "%": lambda a, b: a % b,
}

_COMPARISON = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}

_BOOLEAN = {
    "and": lambda a, b: a and b,
    "or": lambda a, b: a or b,
}


@dataclass(frozen=True)
class BinaryOp(Expr):
    """A binary operation: arithmetic, comparison or boolean connective."""

    op: str
    left: Expr
    right: Expr

    def evaluate(self, env: Env) -> Value:
        if self.op in _BOOLEAN:
            # Short-circuit evaluation mirrors conventional languages.
            left = self.left.evaluate(env)
            if not isinstance(left, bool):
                raise EvaluationError(f"'{self.op}' needs boolean operands")
            if self.op == "and" and not left:
                return False
            if self.op == "or" and left:
                return True
            right = self.right.evaluate(env)
            if not isinstance(right, bool):
                raise EvaluationError(f"'{self.op}' needs boolean operands")
            return right
        left = self.left.evaluate(env)
        right = self.right.evaluate(env)
        if self.op in _COMPARISON:
            self._check_comparable(left, right)
            return _COMPARISON[self.op](left, right)
        if self.op in _ARITHMETIC:
            if isinstance(left, bool) or isinstance(right, bool):
                raise EvaluationError(f"'{self.op}' needs numeric operands")
            try:
                result = _ARITHMETIC[self.op](left, right)
            except ZeroDivisionError:
                raise EvaluationError("division by zero") from None
            if self.op == "/" and isinstance(left, int) and isinstance(right, int):
                # '/' is real division; keep ints only when exact.
                return result if isinstance(result, int) else float(result)
            return result
        raise EvaluationError(f"unknown operator {self.op!r}")

    def _check_comparable(self, left: Value, right: Value) -> None:
        left_is_bool = isinstance(left, bool)
        right_is_bool = isinstance(right, bool)
        if left_is_bool != right_is_bool:
            raise EvaluationError(
                f"cannot compare {type(left).__name__} with {type(right).__name__}"
            )
        if left_is_bool and self.op not in ("=", "!="):
            raise EvaluationError(f"'{self.op}' is not defined on booleans")

    def free_variables(self) -> frozenset:
        return self.left.free_variables() | self.right.free_variables()

    def infer_type(self, scope: Mapping[str, DataType]) -> DataType:
        left = self.left.infer_type(scope)
        right = self.right.infer_type(scope)
        if self.op in _BOOLEAN:
            if left is not DataType.BOOL or right is not DataType.BOOL:
                raise TypeCheckError(f"'{self.op}' needs boolean operands")
            return DataType.BOOL
        if self.op in _COMPARISON:
            numeric = (DataType.INT, DataType.REAL)
            if self.op in ("=", "!="):
                if (left is DataType.BOOL) != (right is DataType.BOOL):
                    raise TypeCheckError("cannot compare booleans with numbers")
            elif left not in numeric or right not in numeric:
                raise TypeCheckError(f"'{self.op}' needs numeric operands")
            return DataType.BOOL
        if self.op in _ARITHMETIC:
            numeric = (DataType.INT, DataType.REAL)
            if left not in numeric or right not in numeric:
                raise TypeCheckError(f"'{self.op}' needs numeric operands")
            if self.op == "/":
                return DataType.REAL
            if DataType.REAL in (left, right):
                return DataType.REAL
            return DataType.INT
        raise TypeCheckError(f"unknown operator {self.op!r}")

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class UnaryOp(Expr):
    """Unary minus or boolean negation."""

    op: str  # '-' or 'not'
    operand: Expr

    def evaluate(self, env: Env) -> Value:
        value = self.operand.evaluate(env)
        if self.op == "-":
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise EvaluationError("unary '-' needs a numeric operand")
            return -value
        if self.op == "not":
            if not isinstance(value, bool):
                raise EvaluationError("'not' needs a boolean operand")
            return not value
        raise EvaluationError(f"unknown unary operator {self.op!r}")

    def free_variables(self) -> frozenset:
        return self.operand.free_variables()

    def infer_type(self, scope: Mapping[str, DataType]) -> DataType:
        inner = self.operand.infer_type(scope)
        if self.op == "-":
            if inner not in (DataType.INT, DataType.REAL):
                raise TypeCheckError("unary '-' needs a numeric operand")
            return inner
        if self.op == "not":
            if inner is not DataType.BOOL:
                raise TypeCheckError("'not' needs a boolean operand")
            return DataType.BOOL
        raise TypeCheckError(f"unknown unary operator {self.op!r}")

    def __str__(self) -> str:
        return f"{self.op}({self.operand})"


def _builtin_floor(value: Value) -> int:
    return math.floor(value)


def _builtin_ceil(value: Value) -> int:
    return math.ceil(value)


_FUNCTIONS = {
    "min": (2, min),
    "max": (2, max),
    "abs": (1, abs),
    "floor": (1, _builtin_floor),
    "ceil": (1, _builtin_ceil),
}


@dataclass(frozen=True)
class FunctionCall(Expr):
    """Call to a builtin numeric function."""

    name: str
    args: Tuple[Expr, ...]

    def evaluate(self, env: Env) -> Value:
        try:
            arity, fn = _FUNCTIONS[self.name]
        except KeyError:
            raise EvaluationError(f"unknown function {self.name!r}") from None
        if len(self.args) != arity:
            raise EvaluationError(
                f"function {self.name!r} expects {arity} argument(s), "
                f"got {len(self.args)}"
            )
        values = [arg.evaluate(env) for arg in self.args]
        for value in values:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise EvaluationError(
                    f"function {self.name!r} needs numeric arguments"
                )
        return fn(*values)

    def free_variables(self) -> frozenset:
        result: frozenset = frozenset()
        for arg in self.args:
            result |= arg.free_variables()
        return result

    def infer_type(self, scope: Mapping[str, DataType]) -> DataType:
        try:
            arity, _ = _FUNCTIONS[self.name]
        except KeyError:
            raise TypeCheckError(f"unknown function {self.name!r}") from None
        if len(self.args) != arity:
            raise TypeCheckError(
                f"function {self.name!r} expects {arity} argument(s), "
                f"got {len(self.args)}"
            )
        arg_types = [arg.infer_type(scope) for arg in self.args]
        for arg_type in arg_types:
            if arg_type not in (DataType.INT, DataType.REAL):
                raise TypeCheckError(
                    f"function {self.name!r} needs numeric arguments"
                )
        if self.name in ("floor", "ceil"):
            return DataType.INT
        if DataType.REAL in arg_types:
            return DataType.REAL
        return DataType.INT

    def __str__(self) -> str:
        return f"{self.name}({', '.join(str(a) for a in self.args)})"


# ---------------------------------------------------------------------------
# Convenience constructors used by the programmatic builder API.
# ---------------------------------------------------------------------------

def lit(value: Value) -> Literal:
    """Build a literal expression from a Python value."""
    return Literal(value)


def var(name: str) -> Variable:
    """Build a variable reference."""
    return Variable(name)


def _coerce(value) -> Expr:
    if isinstance(value, Expr):
        return value
    return Literal(value)


def binop(op: str, left, right) -> BinaryOp:
    """Build a binary operation, coercing Python values to literals."""
    return BinaryOp(op, _coerce(left), _coerce(right))


def evaluate_constant(expr: Expr, env: Env = None) -> Value:
    """Evaluate *expr*, defaulting to an empty environment."""
    return expr.evaluate(env if env is not None else {})


def check_closed(expr: Expr, bound: frozenset, context: str) -> None:
    """Raise :class:`TypeCheckError` when *expr* has variables outside *bound*."""
    extra = expr.free_variables() - bound
    if extra:
        names = ", ".join(sorted(extra))
        raise TypeCheckError(f"unbound variable(s) {names} in {context}")


def substitute_env(env: Env) -> Dict[str, Value]:
    """Return a plain dict copy of an environment (defensive copy helper)."""
    return dict(env)


# ---------------------------------------------------------------------------
# Memoised evaluation for the state-space generation hot path.
#
# Guards and rate expressions are evaluated enormous numbers of times during
# generation and sweep relabeling, almost always over a handful of distinct
# (expression, relevant-environment) pairs: the same ``cond(n < capacity)``
# re-appears in every local state of every sweep point.  Expression nodes are
# immutable, so the value only depends on the expression identity and the
# values of its free variables.
# ---------------------------------------------------------------------------

#: Sentinel marking a free variable absent from the environment (so two
#: environments binding *different* subsets of the free variables never
#: collide on the same signature).
_UNBOUND = object()


class EvaluationCache:
    """Memo for expression evaluation keyed by (expr identity, env signature).

    The cache holds a reference to every memoised expression, so ``id()``
    keys stay valid for the lifetime of the entry (no aliasing after GC).
    When the cache exceeds ``maxsize`` entries it is cleared wholesale —
    the working set of a generation run is tiny compared to the cap.
    """

    def __init__(self, maxsize: int = 1 << 16):
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._entries: Dict[tuple, Tuple[Expr, Value]] = {}
        self._free_vars: Dict[int, Tuple[Expr, Tuple[str, ...]]] = {}

    def _signature(self, expr: Expr, env: Env) -> tuple:
        cached = self._free_vars.get(id(expr))
        if cached is None or cached[0] is not expr:
            names = tuple(sorted(expr.free_variables()))
            self._free_vars[id(expr)] = (expr, names)
        else:
            names = cached[1]
        # The value's class is part of the signature: 1, 1.0 and True are
        # equal (and hash alike) but evaluate differently under the typed
        # expression language.
        return (id(expr),) + tuple(
            (value.__class__, value)
            for value in (env.get(name, _UNBOUND) for name in names)
        )

    def evaluate(self, expr: Expr, env: Env) -> Value:
        """Evaluate *expr* under *env*, memoising closed sub-environments."""
        key = self._signature(expr, env)
        entry = self._entries.get(key)
        if entry is not None and entry[0] is expr:
            self.hits += 1
            return entry[1]
        self.misses += 1
        value = expr.evaluate(env)
        if len(self._entries) >= self.maxsize:
            self._entries.clear()
        self._entries[key] = (expr, value)
        return value

    def clear(self) -> None:
        """Drop all memoised entries and statistics."""
        self._entries.clear()
        self._free_vars.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)


#: Process-wide cache used by the state-space generator for guard conditions.
GUARD_CACHE = EvaluationCache()


def evaluate_guard(expr: Expr, env: Env) -> Value:
    """Memoised guard evaluation (the generation hot path)."""
    return GUARD_CACHE.evaluate(expr, env)

"""The architectural description language (Æmilia-like front-end).

Public surface:

* :func:`parse_architecture` — parse the paper's concrete syntax;
* :mod:`repro.aemilia.builder` — programmatic constructors;
* :func:`generate_lts` / :class:`StateSpaceGenerator` — state-space
  semantics;
* the AST / rate / expression node classes for advanced manipulation.
"""

from .architecture import ArchiType, Attachment, ConstParam, Instance
from .ast import (
    ActionPrefix,
    Behavior,
    Choice,
    Formal,
    Guarded,
    ProcessCall,
    ProcessDef,
    Stop,
)
from .elemtypes import Direction, ElemType, Interaction, Multiplicity
from .expressions import (
    BinaryOp,
    DataType,
    Expr,
    FunctionCall,
    Literal,
    UnaryOp,
    Variable,
)
from .parser import parse_architecture
from .pretty import print_architecture
from .static_analysis import analyze as lint_architecture
from .rates import (
    ExpRate,
    ExpSpec,
    GeneralRate,
    GeneralSpec,
    ImmediateRate,
    ImmediateSpec,
    PassiveRate,
    PassiveSpec,
    Rate,
    RateSpec,
)
from .semantics import StateSpaceGenerator, generate_lts

__all__ = [
    "ArchiType",
    "Attachment",
    "ConstParam",
    "Instance",
    "ActionPrefix",
    "Behavior",
    "Choice",
    "Formal",
    "Guarded",
    "ProcessCall",
    "ProcessDef",
    "Stop",
    "Direction",
    "ElemType",
    "Interaction",
    "Multiplicity",
    "BinaryOp",
    "DataType",
    "Expr",
    "FunctionCall",
    "Literal",
    "UnaryOp",
    "Variable",
    "parse_architecture",
    "print_architecture",
    "lint_architecture",
    "ExpRate",
    "ExpSpec",
    "GeneralRate",
    "GeneralSpec",
    "ImmediateRate",
    "ImmediateSpec",
    "PassiveRate",
    "PassiveSpec",
    "Rate",
    "RateSpec",
    "StateSpaceGenerator",
    "generate_lts",
]

"""Pretty-printer: emit the concrete textual syntax of an architecture.

The printer is the inverse of :mod:`repro.aemilia.parser`:
``parse_architecture(pretty(archi))`` yields an architecture with the same
semantics (asserted by round-trip tests on every case-study model).  It is
useful for exporting programmatically built models, for diffing model
variants, and as a debugging aid.
"""

from __future__ import annotations

from typing import List

from .architecture import ArchiType
from .ast import (
    ActionPrefix,
    Behavior,
    Choice,
    Guarded,
    ProcessCall,
    Stop,
)
from .elemtypes import Direction, ElemType, Interaction
from .expressions import (
    BinaryOp,
    Expr,
    FunctionCall,
    Literal,
    UnaryOp,
    Variable,
)
from .rates import (
    ExpSpec,
    GeneralSpec,
    ImmediateSpec,
    PassiveSpec,
    RateSpec,
)


def print_expression(expr: Expr) -> str:
    """Render an expression in parseable concrete syntax."""
    if isinstance(expr, Literal):
        if isinstance(expr.value, bool):
            return "true" if expr.value else "false"
        return repr(expr.value)
    if isinstance(expr, Variable):
        return expr.name
    if isinstance(expr, BinaryOp):
        left = print_expression(expr.left)
        right = print_expression(expr.right)
        return f"({left} {expr.op} {right})"
    if isinstance(expr, UnaryOp):
        if expr.op == "not":
            return f"not ({print_expression(expr.operand)})"
        return f"(-{print_expression(expr.operand)})"
    if isinstance(expr, FunctionCall):
        args = ", ".join(print_expression(a) for a in expr.args)
        return f"{expr.name}({args})"
    raise TypeError(f"cannot print expression {expr!r}")


def print_rate(rate: RateSpec) -> str:
    """Render a rate specification in parseable concrete syntax."""
    if isinstance(rate, PassiveSpec):
        priority = print_expression(rate.priority)
        weight = print_expression(rate.weight)
        if priority == "0" and weight in ("1.0", "1"):
            return "_"
        return f"_({priority}, {weight})"
    if isinstance(rate, ExpSpec):
        return f"exp({print_expression(rate.rate)})"
    if isinstance(rate, ImmediateSpec):
        priority = print_expression(rate.priority)
        weight = print_expression(rate.weight)
        return f"inf({priority}, {weight})"
    if isinstance(rate, GeneralSpec):
        args = ", ".join(print_expression(a) for a in rate.args)
        return f"{rate.keyword}({args})"
    raise TypeError(f"cannot print rate {rate!r}")


def print_behavior(term: Behavior, indent: int = 6) -> str:
    """Render a behaviour term, with choices split over lines."""
    pad = " " * indent
    if isinstance(term, Stop):
        return "stop"
    if isinstance(term, ActionPrefix):
        head = f"<{term.action}, {print_rate(term.rate)}>"
        continuation = print_behavior(term.continuation, indent)
        return f"{head} . {continuation}"
    if isinstance(term, Choice):
        inner_pad = " " * (indent + 2)
        alternatives = (",\n" + inner_pad).join(
            print_behavior(alt, indent + 2) for alt in term.alternatives
        )
        return f"choice {{\n{inner_pad}{alternatives}\n{pad}}}"
    if isinstance(term, Guarded):
        condition = print_expression(term.condition)
        return f"cond({condition}) -> {print_behavior(term.behavior, indent)}"
    if isinstance(term, ProcessCall):
        args = ", ".join(print_expression(a) for a in term.args)
        return f"{term.name}({args})"
    raise TypeError(f"cannot print behaviour {term!r}")


def print_formals(formals: tuple) -> str:
    """Render a behaviour header's formal parameter list."""
    if not formals:
        return "(void; void)"
    parts: List[str] = []
    for formal in formals:
        text = f"{formal.type.value} {formal.name}"
        if formal.default is not None:
            text += f" := {print_expression(formal.default)}"
        parts.append(text)
    return f"({', '.join(parts)}; void)"


def _print_interactions(
    interactions: List[Interaction],
) -> str:
    if not interactions:
        return "void"
    groups: List[str] = []
    current_multiplicity = None
    for interaction in interactions:
        if interaction.multiplicity is not current_multiplicity:
            groups.append(
                f"{interaction.multiplicity.value} {interaction.name}"
            )
            current_multiplicity = interaction.multiplicity
        else:
            groups[-1] += f"; {interaction.name}"
    return "; ".join(groups)


def print_elem_type(elem_type: ElemType) -> str:
    """Render one ELEM_TYPE block."""
    lines = [f"ELEM_TYPE {elem_type.name}(void)", "  BEHAVIOR"]
    bodies = []
    for definition in elem_type.definitions:
        header = f"    {definition.name}{print_formals(definition.formals)} ="
        body = print_behavior(definition.body, indent=6)
        bodies.append(f"{header}\n      {body}")
    lines.append(";\n".join(bodies))
    inputs = [
        i for i in elem_type.interactions if i.direction is Direction.INPUT
    ]
    outputs = [
        i for i in elem_type.interactions if i.direction is Direction.OUTPUT
    ]
    lines.append(f"  INPUT_INTERACTIONS {_print_interactions(inputs)}")
    lines.append(f"  OUTPUT_INTERACTIONS {_print_interactions(outputs)}")
    return "\n".join(lines)


def print_architecture(archi: ArchiType) -> str:
    """Render a complete, re-parseable architectural description."""
    if archi.const_params:
        params = ",\n    ".join(
            f"const {p.type.value} {p.name} := "
            f"{print_expression(p.default)}"
            for p in archi.const_params
        )
        header = f"ARCHI_TYPE {archi.name}(\n    {params})"
    else:
        header = f"ARCHI_TYPE {archi.name}(void)"
    blocks = [header, "", "ARCHI_ELEM_TYPES", ""]
    for elem_type in archi.elem_types.values():
        blocks.append(print_elem_type(elem_type))
        blocks.append("")
    blocks.append("ARCHI_TOPOLOGY")
    blocks.append("  ARCHI_ELEM_INSTANCES")
    instance_lines = []
    for instance in archi.instances:
        args = ", ".join(print_expression(a) for a in instance.args)
        instance_lines.append(f"    {instance.name} : {instance.type_name}({args})")
    blocks.append(";\n".join(instance_lines))
    if archi.attachments:
        blocks.append("  ARCHI_ATTACHMENTS")
        attachment_lines = [
            f"    FROM {a.from_instance}.{a.from_interaction} "
            f"TO {a.to_instance}.{a.to_interaction}"
            for a in archi.attachments
        ]
        blocks.append(";\n".join(attachment_lines))
    blocks.append("END")
    return "\n".join(blocks)

"""Architectural types: instances of element types plus attachments.

An :class:`ArchiType` is the top-level description of a system: a set of
``const`` parameters (overridable when the model is instantiated, which is
how experiments sweep DPM operation rates), the element types, the declared
instances and the attachments wiring output interactions to input
interactions.

Static well-formedness rules enforced here:

* attachments go from a declared **output** interaction to a declared
  **input** interaction of *different* instances;
* a ``UNI`` interaction takes part in at most one attachment;
* ``OR``/``AND`` outputs may take part in several attachments, but every
  input end keeps its own multiplicity constraint;
* instance initial arguments match the formals of the type's first
  behaviour equation (defaults fill missing trailing arguments).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from ..errors import SpecificationError, TypeCheckError
from .ast import ProcessDef
from .elemtypes import Direction, ElemType, Interaction, Multiplicity
from .expressions import DataType, Expr, Value


@dataclass(frozen=True)
class ConstParam:
    """An architectural ``const`` parameter with a typed default."""

    name: str
    type: DataType
    default: Expr

    def __post_init__(self):
        if not self.name.isidentifier():
            raise SpecificationError(f"invalid const name {self.name!r}")


@dataclass(frozen=True)
class Instance:
    """A declared instance ``Name : Type(args...)``."""

    name: str
    type_name: str
    args: Tuple[Expr, ...] = ()

    def __post_init__(self):
        if not self.name.isidentifier():
            raise SpecificationError(f"invalid instance name {self.name!r}")


@dataclass(frozen=True)
class Attachment:
    """``FROM inst.output TO inst.input``."""

    from_instance: str
    from_interaction: str
    to_instance: str
    to_interaction: str

    def __str__(self) -> str:
        return (
            f"FROM {self.from_instance}.{self.from_interaction} "
            f"TO {self.to_instance}.{self.to_interaction}"
        )


class ArchiType:
    """A complete architectural description.

    Parameters
    ----------
    name:
        Name of the architectural type.
    const_params:
        Overridable constants visible in rates, guards and instance
        arguments.
    elem_types:
        The element types used by the instances.
    instances:
        Ordered instance declarations (the order fixes the component index
        used in global states).
    attachments:
        Wiring between output and input interactions.
    """

    def __init__(
        self,
        name: str,
        elem_types: Tuple[ElemType, ...],
        instances: Tuple[Instance, ...],
        attachments: Tuple[Attachment, ...],
        const_params: Tuple[ConstParam, ...] = (),
    ):
        if not name.isidentifier():
            raise SpecificationError(f"invalid architecture name {name!r}")
        self.name = name
        self.const_params = tuple(const_params)
        self.elem_types: Dict[str, ElemType] = {}
        for elem_type in elem_types:
            if elem_type.name in self.elem_types:
                raise SpecificationError(
                    f"element type {elem_type.name!r} declared twice"
                )
            self.elem_types[elem_type.name] = elem_type
        self.instances = tuple(instances)
        self.attachments = tuple(attachments)
        self._instances_by_name: Dict[str, Instance] = {}
        for instance in self.instances:
            if instance.name in self._instances_by_name:
                raise SpecificationError(
                    f"instance {instance.name!r} declared twice"
                )
            self._instances_by_name[instance.name] = instance
        self._const_types: Dict[str, DataType] = {}
        for param in self.const_params:
            if param.name in self._const_types:
                raise SpecificationError(
                    f"const parameter {param.name!r} declared twice"
                )
            self._const_types[param.name] = param.type
        self._validate()

    # -- lookups ----------------------------------------------------------

    def instance(self, name: str) -> Instance:
        """Return the instance declaration called *name*."""
        try:
            return self._instances_by_name[name]
        except KeyError:
            raise SpecificationError(f"no instance named {name!r}") from None

    def type_of(self, instance_name: str) -> ElemType:
        """Return the element type of the named instance."""
        return self.elem_types[self.instance(instance_name).type_name]

    def attachments_from(
        self, instance_name: str, interaction_name: str
    ) -> List[Attachment]:
        """All attachments whose output end is the given interaction."""
        return [
            a
            for a in self.attachments
            if a.from_instance == instance_name
            and a.from_interaction == interaction_name
        ]

    def attachment_to(
        self, instance_name: str, interaction_name: str
    ) -> Optional[Attachment]:
        """The attachment whose input end is the given interaction, if any."""
        for attachment in self.attachments:
            if (
                attachment.to_instance == instance_name
                and attachment.to_interaction == interaction_name
            ):
                return attachment
        return None

    # -- constants --------------------------------------------------------

    def bind_constants(
        self, overrides: Optional[Mapping[str, Value]] = None
    ) -> Dict[str, Value]:
        """Evaluate const defaults, applying *overrides*, into an env."""
        overrides = dict(overrides or {})
        unknown = set(overrides) - set(self._const_types)
        if unknown:
            names = ", ".join(sorted(unknown))
            raise SpecificationError(
                f"unknown const parameter(s) {names} for architecture "
                f"{self.name!r}"
            )
        env: Dict[str, Value] = {}
        for param in self.const_params:
            if param.name in overrides:
                value = overrides[param.name]
                value_type = DataType.of_value(value)
                if not param.type.accepts(value_type):
                    raise TypeCheckError(
                        f"override for const {param.name!r} has type "
                        f"{value_type.value}, expected {param.type.value}"
                    )
                if param.type is DataType.REAL:
                    value = float(value)
                env[param.name] = value
            else:
                env[param.name] = param.default.evaluate(env)
        return env

    # -- validation -------------------------------------------------------

    def _validate(self) -> None:
        self._validate_const_defaults()
        for elem_type in self.elem_types.values():
            elem_type.validate(self._const_types)
        self._validate_instances()
        self._validate_attachments()

    def _validate_const_defaults(self) -> None:
        scope: Dict[str, DataType] = {}
        for param in self.const_params:
            default_type = param.default.infer_type(scope)
            if not param.type.accepts(default_type):
                raise TypeCheckError(
                    f"default of const {param.name!r} has type "
                    f"{default_type.value}, expected {param.type.value}"
                )
            scope[param.name] = param.type

    def _validate_instances(self) -> None:
        if not self.instances:
            raise SpecificationError(
                f"architecture {self.name!r} declares no instances"
            )
        for instance in self.instances:
            if instance.type_name not in self.elem_types:
                raise SpecificationError(
                    f"instance {instance.name!r} has unknown type "
                    f"{instance.type_name!r}"
                )
            initial = self.elem_types[instance.type_name].initial_definition
            self._check_instance_args(instance, initial)

    def _check_instance_args(
        self, instance: Instance, initial: ProcessDef
    ) -> None:
        formals = initial.formals
        if len(instance.args) > len(formals):
            raise SpecificationError(
                f"instance {instance.name!r} passes {len(instance.args)} "
                f"argument(s); behaviour {initial.name!r} declares "
                f"{len(formals)}"
            )
        for formal in formals[len(instance.args):]:
            if formal.default is None:
                raise SpecificationError(
                    f"instance {instance.name!r} misses a value for "
                    f"parameter {formal.name!r} of behaviour "
                    f"{initial.name!r} (no default)"
                )
        scope = dict(self._const_types)
        for arg, formal in zip(instance.args, formals):
            arg_type = arg.infer_type(scope)
            if not formal.type.accepts(arg_type):
                raise TypeCheckError(
                    f"argument {arg} of instance {instance.name!r} has "
                    f"type {arg_type.value}, expected {formal.type.value}"
                )

    def _validate_attachments(self) -> None:
        uni_ends: Dict[Tuple[str, str], Attachment] = {}
        for attachment in self.attachments:
            out_interaction = self._interaction_end(
                attachment.from_instance,
                attachment.from_interaction,
                Direction.OUTPUT,
                attachment,
            )
            in_interaction = self._interaction_end(
                attachment.to_instance,
                attachment.to_interaction,
                Direction.INPUT,
                attachment,
            )
            if attachment.from_instance == attachment.to_instance:
                raise SpecificationError(
                    f"attachment {attachment} connects an instance to itself"
                )
            for end, interaction in (
                ((attachment.from_instance, attachment.from_interaction),
                 out_interaction),
                ((attachment.to_instance, attachment.to_interaction),
                 in_interaction),
            ):
                if interaction.multiplicity is Multiplicity.UNI:
                    previous = uni_ends.get(end)
                    if previous is not None and previous is not attachment:
                        raise SpecificationError(
                            f"UNI interaction {end[0]}.{end[1]} takes part "
                            f"in two attachments ({previous} and "
                            f"{attachment})"
                        )
                    uni_ends[end] = attachment

    def _interaction_end(
        self,
        instance_name: str,
        interaction_name: str,
        expected: Direction,
        attachment: Attachment,
    ) -> Interaction:
        if instance_name not in self._instances_by_name:
            raise SpecificationError(
                f"attachment {attachment} names unknown instance "
                f"{instance_name!r}"
            )
        elem_type = self.type_of(instance_name)
        interaction = elem_type.interaction(interaction_name)
        if interaction.direction is not expected:
            raise SpecificationError(
                f"attachment {attachment}: {instance_name}."
                f"{interaction_name} is not an {expected.value} interaction"
            )
        return interaction

    # -- introspection ----------------------------------------------------

    def describe(self) -> str:
        """One-paragraph human-readable summary of the architecture."""
        lines = [f"ARCHI_TYPE {self.name}"]
        if self.const_params:
            consts = ", ".join(
                f"{p.type.value} {p.name} := {p.default}"
                for p in self.const_params
            )
            lines.append(f"  const: {consts}")
        for instance in self.instances:
            lines.append(f"  {instance.name} : {instance.type_name}")
        for attachment in self.attachments:
            lines.append(f"  {attachment}")
        return "\n".join(lines)

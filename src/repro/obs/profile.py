"""Low-overhead profiling hooks: span timing and iteration observers.

Two opt-in instruments on top of the metrics registry:

* :func:`observe` — a context manager timing one block into a labelled
  histogram (and, optionally, a same-named ``_last_seconds`` gauge).
  One ``perf_counter`` pair per block; nothing else.
* :class:`IterationSeries` — the reference implementation of the
  **per-iteration callback protocol**: any callable
  ``(iteration, residual, relative_change)`` can be handed to the
  iterative steady-state solvers (``solve_steady_state(...,
  iteration_callback=...)``) to watch convergence live;
  ``IterationSeries`` just records the triples.  The solvers also
  accept ``track_iterations=True`` to get the same series attached to
  the returned :class:`~repro.ctmc.solvers.SolverReport` without
  writing a callback.

Neither hook ever touches the computation it observes — values are read
after they are produced, so results are bit-identical with profiling on
or off (asserted in ``tests/test_obs.py``).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Protocol

from .metrics import MetricRegistry, get_registry


class IterationCallback(Protocol):
    """Per-iteration observer protocol of the iterative solvers."""

    def __call__(
        self,
        iteration: int,
        residual: float,
        relative_change: Optional[float],
    ) -> None:
        """Called once per iteration; must not mutate solver state."""


class IterationSeries:
    """Collects ``(iteration, residual, relative_change)`` triples."""

    def __init__(self) -> None:
        self.entries: List[Dict[str, object]] = []

    def __call__(
        self,
        iteration: int,
        residual: float,
        relative_change: Optional[float],
    ) -> None:
        self.entries.append(
            {
                "iteration": iteration,
                "residual": residual,
                "relative_change": relative_change,
            }
        )

    def __len__(self) -> int:
        return len(self.entries)


@contextmanager
def observe(
    name: str,
    registry: Optional[MetricRegistry] = None,
    help_text: str = "",
    **labels: str,
) -> Iterator[None]:
    """Time the enclosed block into the histogram *name*.

    ``with observe("repro_sim_run_seconds"): ...`` is the one-liner the
    instrumented hot paths use; labels must match the metric's schema.
    """
    registry = registry if registry is not None else get_registry()
    histogram = registry.histogram(
        name, help_text, tuple(sorted(labels))
    )
    started = time.perf_counter()
    try:
        yield
    finally:
        elapsed = time.perf_counter() - started
        target = histogram.labels(**labels) if labels else histogram
        target.observe(elapsed)

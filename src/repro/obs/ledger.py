"""Persistent run ledger: an append-only registry of top-level runs.

Every ``repro-experiments`` invocation that computes something appends
one JSONL entry describing *what ran and what came out*: the command
line, the resolved configuration (case, phase, parameter, workers,
solver backends, engine, workload), fingerprints (checkpoint journal,
resumed-from trace), wall/cpu totals, per-phase timings, a condensed
scalar-metric snapshot, and the trace file path when tracing was on.
``repro-experiments runs list|show|diff`` reads it back — ``diff``
compares two runs' phase timings and metric deltas, which answers "why
was this sweep slower than yesterday's" from artifacts alone.

Entries are appended with a single ``os.write`` on an ``O_APPEND``
descriptor (the same atomicity argument as the trace sink), and reads
tolerate a torn final line, so concurrent and killed runs cannot
corrupt the ledger.

The ledger lives at ``$REPRO_LEDGER`` or ``.repro-runs.jsonl`` in the
working directory; ``--ledger PATH`` overrides per run.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, List, Optional

#: Bump when the entry schema changes incompatibly.
LEDGER_VERSION = 1

LEDGER_ENV_VAR = "REPRO_LEDGER"
DEFAULT_LEDGER_PATH = ".repro-runs.jsonl"


class LedgerError(RuntimeError):
    """Raised for unresolvable run lookups."""


def default_ledger_path() -> str:
    return os.environ.get(LEDGER_ENV_VAR, DEFAULT_LEDGER_PATH)


class RunLedger:
    """Append-only JSONL registry of top-level runs."""

    def __init__(self, path: Optional[str] = None):
        self.path = path or default_ledger_path()
        self._fd: Optional[int] = None

    def append(self, entry: Dict[str, Any]) -> Dict[str, Any]:
        """Record one run; stamps ``run_id`` / ``ts`` / ``version``."""
        record = {
            "run_id": os.urandom(8).hex(),
            "ts": time.time(),
            "version": LEDGER_VERSION,
        }
        record.update(entry)
        if self._fd is None:
            self._fd = os.open(
                self.path,
                os.O_WRONLY | os.O_CREAT | os.O_APPEND,
                0o644,
            )
        line = json.dumps(record, sort_keys=True) + "\n"
        os.write(self._fd, line.encode("utf-8"))
        return record

    def entries(self) -> List[Dict[str, Any]]:
        """All entries, oldest first (torn final line tolerated)."""
        if not os.path.exists(self.path):
            return []
        with open(self.path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        entries: List[Dict[str, Any]] = []
        for position, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                entries.append(json.loads(line))
            except json.JSONDecodeError:
                if position == len(lines) - 1:
                    continue
                raise
        return entries

    def get(self, ref: str) -> Dict[str, Any]:
        """Resolve a run by id prefix, or ``last`` / ``last~N``."""
        entries = self.entries()
        if not entries:
            raise LedgerError(f"ledger {self.path} is empty")
        if ref == "last" or ref.startswith("last~"):
            back = 0 if ref == "last" else int(ref.split("~", 1)[1])
            if back >= len(entries):
                raise LedgerError(
                    f"{ref}: only {len(entries)} runs in {self.path}"
                )
            return entries[-1 - back]
        matches = [
            entry for entry in entries
            if entry.get("run_id", "").startswith(ref)
        ]
        if not matches:
            raise LedgerError(f"no run matching {ref!r} in {self.path}")
        if len(matches) > 1:
            raise LedgerError(f"run prefix {ref!r} is ambiguous ({len(matches)})")
        return matches[0]

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None


def diff_entries(a: Dict[str, Any], b: Dict[str, Any]) -> Dict[str, Any]:
    """Structured comparison of two ledger entries.

    Returns the changed configuration keys, wall/cpu deltas, per-phase
    timing deltas (union of both runs' phases), and scalar metric deltas
    where the value moved.
    """
    config_keys = (
        "command", "case", "phase", "parameter", "workers",
        "solver", "engine", "workload", "checkpoint", "trace",
    )
    config = {}
    for key in config_keys:
        left, right = a.get(key), b.get(key)
        if left != right:
            config[key] = {"a": left, "b": right}
    phases = {}
    for name in sorted(set(a.get("phases", {})) | set(b.get("phases", {}))):
        left = a.get("phases", {}).get(name, 0.0)
        right = b.get("phases", {}).get(name, 0.0)
        phases[name] = {"a": left, "b": right, "delta": right - left}
    metrics = {}
    for name in sorted(set(a.get("metrics", {})) | set(b.get("metrics", {}))):
        left = a.get("metrics", {}).get(name)
        right = b.get("metrics", {}).get(name)
        if left != right:
            metrics[name] = {"a": left, "b": right}
    return {
        "a": a.get("run_id"),
        "b": b.get("run_id"),
        "config": config,
        "wall": {
            "a": a.get("wall", 0.0),
            "b": b.get("wall", 0.0),
            "delta": b.get("wall", 0.0) - a.get("wall", 0.0),
        },
        "phases": phases,
        "metrics": metrics,
    }


# -- rendering -------------------------------------------------------------


def _stamp(ts: Any) -> str:
    try:
        return time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(float(ts)))
    except (TypeError, ValueError):
        return "?"


def render_entries_table(entries: List[Dict[str, Any]]) -> str:
    """``runs list`` view, newest last."""
    from ..core.reporting import format_table

    rows = [
        [
            entry.get("run_id", "?")[:8],
            _stamp(entry.get("ts")),
            entry.get("command", "?"),
            entry.get("case", "-") or "-",
            str(entry.get("workers", "-")),
            f"{entry.get('wall', 0.0):.3f}",
            entry.get("trace", "-") or "-",
        ]
        for entry in entries
    ]
    return format_table(
        ["run", "when", "command", "case", "workers", "wall [s]", "trace"],
        rows,
    )


def render_entry(entry: Dict[str, Any]) -> str:
    """``runs show`` view: the full entry as key-sorted JSON."""
    return json.dumps(entry, sort_keys=True, indent=2)


def render_diff(diff: Dict[str, Any]) -> str:
    """``runs diff`` view: config changes, phase timings, metric deltas."""
    from ..core.reporting import format_table

    lines = [f"=== runs diff {diff['a'][:8]} -> {diff['b'][:8]} ==="]
    if diff["config"]:
        rows = [
            [key, str(change["a"]), str(change["b"])]
            for key, change in sorted(diff["config"].items())
        ]
        lines.append(format_table(["config", "a", "b"], rows))
        lines.append("")
    wall = diff["wall"]
    phase_rows = [
        [
            "total wall",
            f"{wall['a']:.3f}",
            f"{wall['b']:.3f}",
            f"{wall['delta']:+.3f}",
        ]
    ]
    phase_rows += [
        [
            name,
            f"{change['a']:.3f}",
            f"{change['b']:.3f}",
            f"{change['delta']:+.3f}",
        ]
        for name, change in diff["phases"].items()
    ]
    lines.append(
        format_table(["phase", "a [s]", "b [s]", "delta [s]"], phase_rows)
    )
    if diff["metrics"]:
        lines.append("")
        rows = [
            [name, str(change["a"]), str(change["b"])]
            for name, change in sorted(diff["metrics"].items())
        ]
        lines.append(format_table(["metric", "a", "b"], rows))
    return "\n".join(lines)


def condense_metrics(snapshot: Dict[str, Any]) -> Dict[str, float]:
    """Collapse a registry snapshot to scalar series for the ledger.

    Counters and gauges sum across label sets; histograms contribute
    their ``_count``.  Good enough for ``runs diff`` — the full snapshot
    belongs in ``--metrics-out`` exports, not in every ledger line.
    """
    condensed: Dict[str, float] = {}
    for name, family in sorted(snapshot.items()):
        kind = family.get("type")
        total = 0.0
        for entry in family.get("series", []):
            if kind == "histogram":
                total += float(entry.get("count", 0))
            else:
                total += float(entry.get("value", 0.0))
        condensed[name] = round(total, 6)
    return condensed

"""Logging setup for the repro stack (the ``repro.*`` logger hierarchy).

Diagnostics — progress notes, timing summaries, retry notices — go
through ordinary :mod:`logging` under the ``repro`` root logger and land
on **stderr**; the CLI's *products* (figure reports, JSON series,
rendered summaries) go to **stdout** via :func:`emit`, so piping a
report into a file or diff never captures log chatter.

The level is controlled by the ``REPRO_LOG`` environment variable
(``debug``/``info``/``warning``/``error`` or a numeric level) or the
CLI's ``--verbose`` flag (`-v` = info, `-vv` = debug); the default is
``warning`` — silent unless something is worth saying.
"""

from __future__ import annotations

import logging
import os
import sys
from typing import Optional, TextIO

#: Environment variable naming the default log level.
LOG_ENV_VAR = "REPRO_LOG"

_FORMAT = "[%(levelname)s %(name)s] %(message)s"

_configured = False


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """Logger under the ``repro`` hierarchy (``repro.<name>``)."""
    return logging.getLogger(f"repro.{name}" if name else "repro")


def _level_from_env(default: int = logging.WARNING) -> int:
    raw = os.environ.get(LOG_ENV_VAR, "").strip()
    if not raw:
        return default
    if raw.isdigit():
        return int(raw)
    level = logging.getLevelName(raw.upper())
    return level if isinstance(level, int) else default


def verbosity_level(verbose: int = 0) -> int:
    """Map a ``--verbose`` count to a level, honouring ``$REPRO_LOG``.

    The environment sets the baseline; ``-v`` flags only ever lower the
    threshold (more output), never raise it.
    """
    from_env = _level_from_env()
    if verbose >= 2:
        return min(from_env, logging.DEBUG)
    if verbose == 1:
        return min(from_env, logging.INFO)
    return from_env


def configure_logging(
    verbose: int = 0, stream: Optional[TextIO] = None, force: bool = False
) -> logging.Logger:
    """Attach a stderr handler to the ``repro`` logger (idempotent).

    Re-invocations only adjust the level unless *force* re-installs the
    handler (tests use *force* with a capture stream).
    """
    global _configured
    root = get_logger()
    if force:
        for handler in list(root.handlers):
            root.removeHandler(handler)
        _configured = False
    if not _configured:
        handler = logging.StreamHandler(stream or sys.stderr)
        handler.setFormatter(logging.Formatter(_FORMAT))
        root.addHandler(handler)
        root.propagate = False
        _configured = True
    root.setLevel(verbosity_level(verbose))
    return root


def emit(text: str = "", stream: Optional[TextIO] = None) -> None:
    """Write one line of CLI *product* output (stdout, not a log record).

    Reports, rendered tables and JSON payloads are the command's output
    contract, not diagnostics: they always print, regardless of log
    level, and must stay on stdout where pipes expect them.
    """
    print(text, file=stream if stream is not None else sys.stdout)

"""Metric exporters: Prometheus text format and structured JSON.

Both exporters render a :class:`~repro.obs.metrics.MetricRegistry`
snapshot — the same data model, two encodings:

* :func:`render_prometheus` — the Prometheus text exposition format
  (``# HELP`` / ``# TYPE`` headers, cumulative ``le`` histogram
  buckets), suitable for a node-exporter textfile collector or a
  pushgateway;
* :func:`render_json` — the snapshot as indented, key-sorted JSON for
  scripted comparison (``benchmarks/bench_regression.py`` diffs these).

:func:`write_exports` writes both next to each other
(``<prefix>.prom`` + ``<prefix>.json``) — what the CLI's
``--metrics-out`` flag and the CI metrics-artifact job call.
Formats and the metric catalog are documented in docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import json
from typing import Dict, Mapping, Tuple, Union

from .metrics import MetricRegistry

Snapshot = Mapping[str, Mapping[str, object]]


def _snapshot(source: Union[MetricRegistry, Snapshot]) -> Snapshot:
    if isinstance(source, MetricRegistry):
        return source.snapshot()
    return source


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", r"\\")
        .replace("\n", r"\n")
        .replace('"', r"\"")
    )


def _format_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{name}="{_escape_label(value)}"'
        for name, value in sorted(labels.items())
    )
    return "{" + body + "}"


def _format_value(value: object) -> str:
    number = float(value)  # type: ignore[arg-type]
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def render_prometheus(source: Union[MetricRegistry, Snapshot]) -> str:
    """Render a registry (or snapshot) in Prometheus text format."""
    lines = []
    snapshot = _snapshot(source)
    for name in sorted(snapshot):
        family = snapshot[name]
        if family.get("help"):
            lines.append(f"# HELP {name} {family['help']}")
        lines.append(f"# TYPE {name} {family['type']}")
        for entry in family.get("series", ()):
            labels = dict(entry.get("labels", {}))
            if family["type"] == "histogram":
                for bound, count in entry["buckets"].items():
                    bucket_labels = dict(labels)
                    bucket_labels["le"] = bound
                    lines.append(
                        f"{name}_bucket{_format_labels(bucket_labels)} "
                        f"{_format_value(count)}"
                    )
                lines.append(
                    f"{name}_sum{_format_labels(labels)} "
                    f"{_format_value(entry['sum'])}"
                )
                lines.append(
                    f"{name}_count{_format_labels(labels)} "
                    f"{_format_value(entry['count'])}"
                )
            else:
                lines.append(
                    f"{name}{_format_labels(labels)} "
                    f"{_format_value(entry['value'])}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def render_json(source: Union[MetricRegistry, Snapshot]) -> str:
    """Render a registry (or snapshot) as indented, key-sorted JSON."""
    return json.dumps(_snapshot(source), sort_keys=True, indent=2)


def write_exports(
    source: Union[MetricRegistry, Snapshot], prefix: str
) -> Tuple[str, str]:
    """Write ``<prefix>.prom`` and ``<prefix>.json``; returns the paths."""
    snapshot = _snapshot(source)
    prom_path = f"{prefix}.prom"
    json_path = f"{prefix}.json"
    with open(prom_path, "w", encoding="utf-8") as handle:
        handle.write(render_prometheus(snapshot))
    with open(json_path, "w", encoding="utf-8") as handle:
        handle.write(render_json(snapshot) + "\n")
    return prom_path, json_path


def load_json_export(path: str) -> Dict[str, Dict[str, object]]:
    """Load a ``--metrics-out`` JSON export (raises ValueError on junk)."""
    with open(path, "r", encoding="utf-8") as handle:
        content = handle.read()
    if not content.strip():
        raise ValueError(f"{path}: empty metrics export")
    data = json.loads(content)
    if not isinstance(data, dict):
        raise ValueError(f"{path}: not a metrics export (expected an object)")
    return data

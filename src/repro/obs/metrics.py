"""Lightweight thread-safe metrics: counters, gauges, histograms.

The registry follows Prometheus conventions without depending on any
client library: metric *families* are created get-or-create by name on a
:class:`MetricRegistry`, carry a fixed label schema, and hand out
per-label-set children.  Everything is aggregate-only — a counter is one
float, a histogram is a fixed bucket vector — so leaving metrics on
costs nanoseconds per update and the registry can stay enabled for every
run (time-series data, e.g. per-iteration solver residuals, is a
separate opt-in: see :class:`~repro.ctmc.solvers.SolverReport`).

Three registry flavours:

* the **process-default** registry (:func:`get_registry`) that all
  instrumented modules write to — Prometheus semantics: counters are
  cumulative over the process lifetime;
* explicit :class:`MetricRegistry` instances for isolation (tests,
  embedding), installed temporarily with :func:`use_registry`;
* the :class:`NullRegistry`, which turns every operation into a no-op —
  the "metrics off" mode that `tests/test_obs.py` proves is
  result-identical to metrics on.

Worker *processes* each have their own default registry; snapshots are
mergeable (:meth:`MetricRegistry.merge_snapshot`) so a parent can fold a
worker's counters in if it ships them back.  The serial execution paths
(the CI default) see every update in one registry.

The full metric catalog — every name, label schema and semantics the
instrumentation emits — lives in :data:`CATALOG` and is documented in
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import bisect
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "CATALOG",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "MetricSpec",
    "NullRegistry",
    "RESIDUAL_BUCKETS",
    "TIME_BUCKETS",
    "get_registry",
    "set_registry",
    "use_registry",
]

#: Default histogram bucket schema for wall-clock durations in seconds.
TIME_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
)

#: Bucket schema for solver residuals (``||pi Q||_inf``), log-spaced.
RESIDUAL_BUCKETS: Tuple[float, ...] = (
    1e-16, 1e-14, 1e-12, 1e-10, 1e-8, 1e-6,
)

_INF = float("inf")


class MetricError(ValueError):
    """Inconsistent metric declaration or label usage."""


def _label_key(
    labelnames: Tuple[str, ...], labels: Mapping[str, str]
) -> Tuple[str, ...]:
    if set(labels) != set(labelnames):
        raise MetricError(
            f"expected labels {list(labelnames)}, got {sorted(labels)}"
        )
    return tuple(str(labels[name]) for name in labelnames)


class _Child:
    """One (family, label-set) time series."""

    __slots__ = ("_lock",)

    def __init__(self, lock: threading.Lock):
        self._lock = lock


class _CounterChild(_Child):
    __slots__ = ("value",)

    def __init__(self, lock: threading.Lock):
        super().__init__(lock)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricError("counters only go up")
        with self._lock:
            self.value += amount


class _GaugeChild(_Child):
    __slots__ = ("value",)

    def __init__(self, lock: threading.Lock):
        super().__init__(lock)
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)


class _HistogramChild(_Child):
    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, lock: threading.Lock, buckets: Tuple[float, ...]):
        super().__init__(lock)
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)  # last = +Inf overflow
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        position = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self.counts[position] += 1
            self.sum += value
            self.count += 1

    def cumulative(self) -> List[Tuple[str, int]]:
        """Prometheus-style cumulative ``le`` buckets."""
        out: List[Tuple[str, int]] = []
        running = 0
        for bound, count in zip(self.buckets, self.counts):
            running += count
            out.append((repr(bound), running))
        out.append(("+Inf", self.count))
        return out


class _Family:
    """A named metric with a fixed label schema and per-label children."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str],
        lock: threading.Lock,
    ):
        self.name = name
        self.help = help_text
        self.labelnames = tuple(labelnames)
        self._lock = lock
        self._children: Dict[Tuple[str, ...], _Child] = {}

    def _make_child(self) -> _Child:
        raise NotImplementedError

    def labels(self, **labels: str) -> _Child:
        key = _label_key(self.labelnames, labels)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.setdefault(key, self._make_child())
        return child

    def _default_child(self) -> _Child:
        if self.labelnames:
            raise MetricError(
                f"{self.name} has labels {list(self.labelnames)}; "
                f"use .labels(...)"
            )
        return self.labels()

    def series(self) -> List[Tuple[Dict[str, str], _Child]]:
        """Stable (labels, child) listing for exporters."""
        return [
            (dict(zip(self.labelnames, key)), child)
            for key, child in sorted(self._children.items())
        ]


class Counter(_Family):
    """Monotonically increasing count (events, iterations, points)."""

    kind = "counter"

    def _make_child(self) -> _CounterChild:
        return _CounterChild(self._lock)

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    @property
    def value(self) -> float:
        return self._default_child().value


class Gauge(_Family):
    """A value that can go up and down (rates, utilization)."""

    kind = "gauge"

    def _make_child(self) -> _GaugeChild:
        return _GaugeChild(self._lock)

    def set(self, value: float) -> None:
        self._default_child().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default_child().dec(amount)

    @property
    def value(self) -> float:
        return self._default_child().value


class Histogram(_Family):
    """Distribution over a fixed bucket schema (durations, residuals)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str],
        lock: threading.Lock,
        buckets: Sequence[float] = TIME_BUCKETS,
    ):
        super().__init__(name, help_text, labelnames, lock)
        bucket_tuple = tuple(float(b) for b in buckets)
        if not bucket_tuple or list(bucket_tuple) != sorted(bucket_tuple):
            raise MetricError("histogram buckets must be sorted and non-empty")
        if bucket_tuple[-1] == _INF:
            bucket_tuple = bucket_tuple[:-1]  # +Inf is implicit
        self.buckets = bucket_tuple

    def _make_child(self) -> _HistogramChild:
        return _HistogramChild(self._lock, self.buckets)

    def observe(self, value: float) -> None:
        self._default_child().observe(value)


class MetricRegistry:
    """Get-or-create registry of metric families, keyed by name.

    Creation is idempotent: asking twice for the same name returns the
    same family, and asking with a conflicting type or label schema
    raises :class:`MetricError` instead of silently forking the metric.
    """

    #: Disabled registries short-circuit in instrumentation helpers.
    enabled = True

    def __init__(self):
        self._lock = threading.Lock()
        self._families: Dict[str, _Family] = {}

    def _get_or_create(self, cls, name, help_text, labelnames, **kwargs):
        family = self._families.get(name)
        if family is None:
            with self._lock:
                family = self._families.get(name)
                if family is None:
                    family = cls(
                        name, help_text, tuple(labelnames), self._lock,
                        **kwargs,
                    )
                    self._families[name] = family
        if not isinstance(family, cls):
            raise MetricError(
                f"{name} is a {family.kind}, not a {cls.kind}"
            )
        if family.labelnames != tuple(labelnames):
            raise MetricError(
                f"{name} declared with labels {list(family.labelnames)}, "
                f"requested {list(labelnames)}"
            )
        return family

    def counter(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help_text, labelnames)

    def gauge(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help_text, labelnames)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = TIME_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help_text, labelnames, buckets=buckets
        )

    def families(self) -> List[_Family]:
        """All registered families, sorted by name."""
        return [self._families[name] for name in sorted(self._families)]

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """JSON-serialisable dump of every family and series.

        Counters/gauges carry ``value``; histograms carry cumulative
        ``le`` buckets plus ``sum``/``count`` (the Prometheus data
        model, so the JSON and text exports agree).
        """
        out: Dict[str, Dict[str, object]] = {}
        for family in self.families():
            series = []
            for labels, child in family.series():
                entry: Dict[str, object] = {"labels": labels}
                if isinstance(child, _HistogramChild):
                    entry["buckets"] = dict(child.cumulative())
                    entry["sum"] = child.sum
                    entry["count"] = child.count
                else:
                    entry["value"] = child.value
                series.append(entry)
            out[family.name] = {
                "type": family.kind,
                "help": family.help,
                "labelnames": list(family.labelnames),
                "series": series,
            }
        return out

    def merge_snapshot(self, snapshot: Mapping[str, Mapping]) -> None:
        """Fold another registry's snapshot into this one.

        Counters and histogram counts/sums add; gauges merge as the
        element-wise **max** across snapshots (the first merge of a
        fresh series adopts the incoming value outright, so negative
        gauges like lag-1 autocorrelations are not clamped by the 0.0
        default).  Max is commutative, so the aggregate is independent
        of worker completion order — last-write-wins was not, which made
        multi-worker gauge values nondeterministic under pool
        scheduling.  Used to aggregate worker registries shipped back
        to the parent.
        """
        for name, family_snap in snapshot.items():
            kind = family_snap["type"]
            labelnames = tuple(family_snap.get("labelnames", ()))
            help_text = family_snap.get("help", "")
            for entry in family_snap.get("series", ()):
                labels = entry.get("labels", {})
                if kind == "counter":
                    self.counter(name, help_text, labelnames).labels(
                        **labels
                    ).inc(float(entry["value"]))
                elif kind == "gauge":
                    family = self.gauge(name, help_text, labelnames)
                    incoming = float(entry["value"])
                    key = _label_key(family.labelnames, labels)
                    existing = family._children.get(key)
                    if existing is None:
                        family.labels(**labels).set(incoming)
                    else:
                        existing.set(max(existing.value, incoming))
                elif kind == "histogram":
                    buckets = entry.get("buckets", {})
                    bounds = tuple(
                        float(bound)
                        for bound in buckets
                        if bound != "+Inf"
                    )
                    child = self.histogram(
                        name, help_text, labelnames,
                        buckets=bounds or TIME_BUCKETS,
                    ).labels(**labels)
                    previous = 0
                    for position, bound in enumerate(child.buckets):
                        cumulative = int(buckets.get(repr(bound), previous))
                        child.counts[position] += cumulative - previous
                        previous = cumulative
                    total = int(entry.get("count", previous))
                    child.counts[-1] += total - previous
                    child.count += total
                    child.sum += float(entry.get("sum", 0.0))

    def reset(self) -> None:
        """Drop every family (test isolation)."""
        with self._lock:
            self._families.clear()

    def value(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> float:
        """Current value of one counter/gauge series (0.0 if absent)."""
        family = self._families.get(name)
        if family is None or isinstance(family, Histogram):
            return 0.0
        key = tuple(
            str((labels or {}).get(label, "")) for label in family.labelnames
        )
        child = family._children.get(key)
        return child.value if child is not None else 0.0


class _NullMetric:
    """Absorbs every metric operation (shared singleton)."""

    def labels(self, **labels) -> "_NullMetric":
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    value = 0.0


_NULL_METRIC = _NullMetric()


class NullRegistry(MetricRegistry):
    """The "metrics off" registry: every operation is a no-op."""

    enabled = False

    def counter(self, name, help_text="", labelnames=()):  # noqa: D102
        return _NULL_METRIC

    def gauge(self, name, help_text="", labelnames=()):  # noqa: D102
        return _NULL_METRIC

    def histogram(  # noqa: D102
        self, name, help_text="", labelnames=(), buckets=TIME_BUCKETS
    ):
        return _NULL_METRIC

    def families(self):  # noqa: D102
        return []

    def snapshot(self):  # noqa: D102
        return {}


# ---------------------------------------------------------------------------
# Process-default registry.
# ---------------------------------------------------------------------------

_default_registry: MetricRegistry = MetricRegistry()


def get_registry() -> MetricRegistry:
    """The process-wide default registry all instrumentation writes to."""
    return _default_registry


def set_registry(registry: MetricRegistry) -> MetricRegistry:
    """Install *registry* as the default; returns the previous one."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous


@contextmanager
def use_registry(registry: MetricRegistry) -> Iterator[MetricRegistry]:
    """Temporarily install *registry* as the process default."""
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)


# ---------------------------------------------------------------------------
# Metric catalog — the contract docs/OBSERVABILITY.md and the tests pin.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MetricSpec:
    """Declaration of one metric family the instrumentation emits."""

    name: str
    kind: str
    help: str
    labelnames: Tuple[str, ...] = ()
    buckets: Tuple[float, ...] = field(default=())

    def on(self, registry: MetricRegistry):
        """Get-or-create this metric on *registry*."""
        if self.kind == "counter":
            return registry.counter(self.name, self.help, self.labelnames)
        if self.kind == "gauge":
            return registry.gauge(self.name, self.help, self.labelnames)
        return registry.histogram(
            self.name, self.help, self.labelnames,
            buckets=self.buckets or TIME_BUCKETS,
        )


SOLVER_SOLVES = MetricSpec(
    "repro_solver_solves_total", "counter",
    "Steady-state solves completed, by backend.", ("method",),
)
SOLVER_ITERATIONS = MetricSpec(
    "repro_solver_iterations_total", "counter",
    "Cumulative steady-state solver iterations, by backend.", ("method",),
)
SOLVER_FALLBACKS = MetricSpec(
    "repro_solver_fallbacks_total", "counter",
    "Backends that failed before auto selection fell back.", ("method",),
)
SOLVER_RESIDUAL = MetricSpec(
    "repro_solver_residual", "histogram",
    "Final residual ||pi Q||_inf per solve, by backend.", ("method",),
    RESIDUAL_BUCKETS,
)
SOLVER_SECONDS = MetricSpec(
    "repro_solver_seconds", "histogram",
    "Wall-clock seconds per steady-state solve, by backend.", ("method",),
    TIME_BUCKETS,
)
SIM_RUNS = MetricSpec(
    "repro_sim_runs_total", "counter",
    "Simulation trajectories completed.",
)
SIM_EVENTS = MetricSpec(
    "repro_sim_events_total", "counter",
    "Simulation events fired (immediate + timed).",
)
SIM_DEADLOCKS = MetricSpec(
    "repro_sim_deadlocks_total", "counter",
    "Simulation runs that ended in a deadlock state.",
)
SIM_CLOCK_CARRIES = MetricSpec(
    "repro_sim_clock_carries_total", "counter",
    "Residual event clocks carried into resumed runs (batch means).",
)
SIM_RUN_SECONDS = MetricSpec(
    "repro_sim_run_seconds", "histogram",
    "Wall-clock seconds per simulation run.", (), TIME_BUCKETS,
)
SIM_EVENT_RATE = MetricSpec(
    "repro_sim_event_rate", "gauge",
    "Events per wall-clock second of the most recent simulation run.",
)
SIM_BATCHES = MetricSpec(
    "repro_sim_batches_total", "counter",
    "Batch-means batches completed.",
)
SIM_BATCH_LAG1 = MetricSpec(
    "repro_sim_batch_lag1", "gauge",
    "Lag-1 autocorrelation of the latest batch-means run, by measure.",
    ("measure",),
)
FASTSIM_RUNS = MetricSpec(
    "repro_fastsim_runs_total", "counter",
    "Trajectories completed by the vectorized GSMP kernel.",
)
FASTSIM_EVENTS = MetricSpec(
    "repro_fastsim_events_total", "counter",
    "Events fired by the vectorized GSMP kernel (immediate + timed).",
)
FASTSIM_STEPS = MetricSpec(
    "repro_fastsim_steps_total", "counter",
    "Vectorized kernel sweep iterations (one timed step across all runs).",
)
FASTSIM_REFILLS = MetricSpec(
    "repro_fastsim_stream_refills_total", "counter",
    "Event-stream buffer rows refilled by the stream allocator.",
)
FASTSIM_BATCH_SECONDS = MetricSpec(
    "repro_fastsim_batch_seconds", "histogram",
    "Wall-clock seconds per vectorized run_many batch.", (), TIME_BUCKETS,
)
FASTSIM_EVENT_RATE = MetricSpec(
    "repro_fastsim_event_rate", "gauge",
    "Events per wall-clock second of the most recent run_many batch.",
)
RUNTIME_SPANS = MetricSpec(
    "repro_runtime_spans_total", "counter",
    "Runtime work spans, by phase and outcome status.",
    ("phase", "status"),
)
RUNTIME_SPAN_SECONDS = MetricSpec(
    "repro_runtime_span_seconds_total", "counter",
    "Cumulative wall-clock seconds of runtime spans, by phase.",
    ("phase",),
)
RUNTIME_WORKER_TASKS = MetricSpec(
    "repro_runtime_worker_tasks_total", "counter",
    "Completed task spans, by worker process id.", ("worker",),
)
EXECUTOR_TASKS = MetricSpec(
    "repro_executor_tasks_total", "counter",
    "Tasks mapped by the parallel executor, by execution mode.",
    ("mode",),
)
CACHE_EVENTS = MetricSpec(
    "repro_cache_events_total", "counter",
    "Structural state-space cache events (hit / miss / relabel).",
    ("kind",),
)
CHECKPOINT_EVENTS = MetricSpec(
    "repro_checkpoint_events_total", "counter",
    "Sweep checkpoint journal events (replayed / recorded).", ("kind",),
)
SWEEP_POINTS = MetricSpec(
    "repro_sweep_points_total", "counter",
    "Sweep points computed, by case study and phase kind.",
    ("case", "kind"),
)
PHASE_SECONDS = MetricSpec(
    "repro_phase_seconds_total", "counter",
    "Cumulative wall-clock seconds per methodology phase (Timer spans).",
    ("phase",),
)
WORKLOAD_TRACES = MetricSpec(
    "repro_workload_traces_total", "counter",
    "Workload traces materialised, by source (generated / file / fitted).",
    ("source",),
)
WORKLOAD_EVENTS_REPLAYED = MetricSpec(
    "repro_workload_events_replayed_total", "counter",
    "Trace events drawn by TraceReplay sampling, by replay mode.",
    ("mode",),
)
WORKLOAD_FIT_ITERATIONS = MetricSpec(
    "repro_workload_fit_iterations_total", "counter",
    "Numerical iterations spent fitting traces, by candidate family.",
    ("family",),
)
WORKLOAD_KS_STATISTIC = MetricSpec(
    "repro_workload_ks_statistic", "gauge",
    "KS statistic of the most recent fit, by candidate family.",
    ("family",),
)

SPLITTING_TREES = MetricSpec(
    "repro_splitting_trees_total", "counter",
    "Splitting trees (rare-event replications) completed.",
)
SPLITTING_CLONES = MetricSpec(
    "repro_splitting_clones_total", "counter",
    "Trajectories cloned by up-crossing resampling (weight halved).",
)
SPLITTING_MERGES = MetricSpec(
    "repro_splitting_merges_total", "counter",
    "Trajectories merged by weight-conserving roulette at boundaries.",
)
SPLITTING_EVENTS = MetricSpec(
    "repro_splitting_events_total", "counter",
    "Events fired across all trajectories of splitting trees.",
)

#: Bucket schema for parametric per-point evaluations (microseconds).
PARAMETRIC_EVAL_BUCKETS: Tuple[float, ...] = (
    1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 1e-2,
)

PARAMETRIC_ELIMINATIONS = MetricSpec(
    "repro_parametric_eliminations_total", "counter",
    "Parametric state eliminations attempted, by outcome status.",
    ("status",),
)
PARAMETRIC_ELIMINATION_SECONDS = MetricSpec(
    "repro_parametric_elimination_seconds", "histogram",
    "Wall-clock seconds per parametric elimination (build + fit).",
    (), TIME_BUCKETS,
)
PARAMETRIC_EVALUATIONS = MetricSpec(
    "repro_parametric_evaluations_total", "counter",
    "Sweep points evaluated through a parametric solution.",
)
PARAMETRIC_EVAL_SECONDS = MetricSpec(
    "repro_parametric_eval_seconds", "histogram",
    "Wall-clock seconds per parametric point evaluation.",
    (), PARAMETRIC_EVAL_BUCKETS,
)
PARAMETRIC_FALLBACKS = MetricSpec(
    "repro_parametric_fallbacks_total", "counter",
    "Falls back from the parametric path to per-point solves, by reason.",
    ("reason",),
)
FLEET_DEVICES = MetricSpec(
    "repro_fleet_devices", "gauge",
    "Device count N of the last fleet model solved.",
)
FLEET_PRODUCT_STATES = MetricSpec(
    "repro_fleet_product_states", "gauge",
    "Pre-lumping product-space size |C|*|S|^N of the last fleet solve.",
)
FLEET_LUMPED_STATES = MetricSpec(
    "repro_fleet_lumped_states", "gauge",
    "Multiset-lumped state count of the last fleet solve.",
)
FLEET_OPERATOR_NNZ = MetricSpec(
    "repro_fleet_operator_nnz_equivalent", "gauge",
    "Nonzero-equivalent entries of the last fleet operator, "
    "by representation.",
    ("representation",),
)
FLEET_MATVECS = MetricSpec(
    "repro_fleet_matvecs_total", "counter",
    "Matrix-free operator applications during fleet solves, "
    "by representation.",
    ("representation",),
)

#: Every metric the stack emits, in catalog order (docs/OBSERVABILITY.md).
CATALOG: Tuple[MetricSpec, ...] = (
    SOLVER_SOLVES,
    SOLVER_ITERATIONS,
    SOLVER_FALLBACKS,
    SOLVER_RESIDUAL,
    SOLVER_SECONDS,
    SIM_RUNS,
    SIM_EVENTS,
    SIM_DEADLOCKS,
    SIM_CLOCK_CARRIES,
    SIM_RUN_SECONDS,
    SIM_EVENT_RATE,
    SIM_BATCHES,
    SIM_BATCH_LAG1,
    FASTSIM_RUNS,
    FASTSIM_EVENTS,
    FASTSIM_STEPS,
    FASTSIM_REFILLS,
    FASTSIM_BATCH_SECONDS,
    FASTSIM_EVENT_RATE,
    RUNTIME_SPANS,
    RUNTIME_SPAN_SECONDS,
    RUNTIME_WORKER_TASKS,
    EXECUTOR_TASKS,
    CACHE_EVENTS,
    CHECKPOINT_EVENTS,
    SWEEP_POINTS,
    PHASE_SECONDS,
    WORKLOAD_TRACES,
    WORKLOAD_EVENTS_REPLAYED,
    WORKLOAD_FIT_ITERATIONS,
    WORKLOAD_KS_STATISTIC,
    SPLITTING_TREES,
    SPLITTING_CLONES,
    SPLITTING_MERGES,
    SPLITTING_EVENTS,
    PARAMETRIC_ELIMINATIONS,
    PARAMETRIC_ELIMINATION_SECONDS,
    PARAMETRIC_EVALUATIONS,
    PARAMETRIC_EVAL_SECONDS,
    PARAMETRIC_FALLBACKS,
    FLEET_DEVICES,
    FLEET_PRODUCT_STATES,
    FLEET_LUMPED_STATES,
    FLEET_OPERATOR_NNZ,
    FLEET_MATVECS,
)

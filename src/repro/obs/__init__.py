"""Unified observability for the repro stack (docs/OBSERVABILITY.md).

One subsystem, three concerns:

* **Metrics** (:mod:`repro.obs.metrics`) — a lightweight, thread-safe
  registry of counters, gauges and histograms with fixed bucket schemas,
  labelled by backend / phase / case study.  Instrumentation lives in
  the hot paths themselves (:mod:`repro.ctmc.solvers`,
  :mod:`repro.sim.engine`, :mod:`repro.runtime`,
  :mod:`repro.core.methodology`) and writes to the process-default
  registry; everything is aggregate-only so metrics stay on for every
  run without perturbing results.
* **Exporters** (:mod:`repro.obs.export`) — Prometheus text format and
  structured JSON, surfaced by the CLI's ``--metrics-out`` flag, the
  ``repro-experiments metrics`` command and the CI metrics-artifact
  job; ``benchmarks/bench_regression.py`` gates key metrics against the
  committed ``BENCH_*.json`` baselines.
* **Logging + profiling** (:mod:`repro.obs.log`,
  :mod:`repro.obs.profile`) — the ``repro.*`` stderr logger hierarchy
  (``$REPRO_LOG`` / ``--verbose``), the :func:`~repro.obs.profile.observe`
  span timer and the per-iteration solver callback protocol.
* **Tracing + run ledger** (:mod:`repro.obs.tracing`,
  :mod:`repro.obs.ledger`) — hierarchical causal spans with
  cross-process :class:`~repro.obs.tracing.TraceContext` propagation,
  Perfetto/OTLP exporters, and the append-only registry of top-level
  runs behind ``repro-experiments runs list|show|diff``.

The invariant the whole layer is built around: **observability never
perturbs numerics or seed derivation** — a sweep with metrics on is
bit-identical to one with the :class:`NullRegistry` installed
(``tests/test_obs.py`` pins this).
"""

from .export import (
    load_json_export,
    render_json,
    render_prometheus,
    write_exports,
)
from .log import LOG_ENV_VAR, configure_logging, emit, get_logger
from .metrics import (
    CATALOG,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    MetricSpec,
    NullRegistry,
    RESIDUAL_BUCKETS,
    TIME_BUCKETS,
    get_registry,
    set_registry,
    use_registry,
)
from .ledger import RunLedger, diff_entries
from .profile import IterationCallback, IterationSeries, observe
from .tracing import (
    Span,
    TraceContext,
    Tracer,
    add_attributes,
    add_event,
    current_context,
    export_otlp,
    export_perfetto,
    flatten_spans,
    get_tracer,
    read_spans,
    record_span,
    set_tracer,
    span,
    summarize_spans,
    use_tracer,
    validate_tree,
)

__all__ = [
    "CATALOG",
    "Counter",
    "Gauge",
    "Histogram",
    "IterationCallback",
    "IterationSeries",
    "LOG_ENV_VAR",
    "MetricRegistry",
    "MetricSpec",
    "NullRegistry",
    "RESIDUAL_BUCKETS",
    "RunLedger",
    "Span",
    "TIME_BUCKETS",
    "TraceContext",
    "Tracer",
    "add_attributes",
    "add_event",
    "current_context",
    "diff_entries",
    "export_otlp",
    "export_perfetto",
    "flatten_spans",
    "get_tracer",
    "read_spans",
    "record_span",
    "set_tracer",
    "span",
    "summarize_spans",
    "use_tracer",
    "validate_tree",
    "configure_logging",
    "emit",
    "get_logger",
    "get_registry",
    "load_json_export",
    "render_json",
    "render_prometheus",
    "set_registry",
    "use_registry",
    "write_exports",
    "observe",
]

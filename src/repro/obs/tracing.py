"""Hierarchical causal tracing with cross-process span propagation.

This module upgrades the flat span records of
:mod:`repro.runtime.trace` into a proper trace *tree*: every unit of
work is a :class:`Span` with a ``trace_id`` shared by the whole run, its
own ``span_id``, and a ``parent_id`` pointing at the span that caused
it.  A context-local "current span" (:func:`span`) nests automatically
within one process; :class:`TraceContext` carries the (trace, span)
identity across process boundaries so worker-side spans — solver calls,
fast-engine batches, splitting trees, retries — attach under the sweep
point that submitted them.

Design rules (all pinned by ``tests/test_tracing.py``):

* **Bit-identity** — tracing reads only wall clocks and draws span ids
  from :func:`os.urandom`; it never touches a seeded random stream, so a
  traced run produces byte-identical numeric output to an untraced one.
* **Crash safety** — like the legacy recorder, every finished span is
  appended to the JSONL sink with a single ``os.write`` on an
  ``O_APPEND`` descriptor; concurrent processes can never interleave
  partial lines, and a SIGKILL tears at most the final line.
* **Pre-allocated identity** — the submitting side may allocate a span
  id (:func:`new_span_id`), ship it to a worker inside a
  :class:`TraceContext`, and only *materialise* the span when the result
  comes back.  Worker spans therefore parent to an id that appears later
  in the file; consumers must treat the file as an unordered set.

Span record schema (one JSON object per line)::

    {"kind": "span", "trace": "4bf9...", "span": "00f0...",
     "parent": "77aa..." | null, "name": "execute",
     "start": 1722870000.123456, "end": 1722870000.345678,
     "status": "ok", "worker": 12345,
     "attrs": {"phase": "solve", "index": 3, "attempt": 0},
     "events": [{"name": "fallback", "ts": ..., "attrs": {...}}]}

Legacy flat records have no ``"kind"`` key — that is the discriminator
``repro-experiments trace-summary`` uses to support both formats.

Exporters: :func:`export_perfetto` (Chrome ``trace_event`` JSON, opens
in ``ui.perfetto.dev``) and :func:`export_otlp` (OTLP-shaped JSON).
:func:`flatten_spans` renders a span tree as legacy-shaped flat records
so existing aggregation keeps working (the compatibility view).
"""

from __future__ import annotations

import contextlib
import contextvars
import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, NamedTuple, Optional

#: Span statuses shared with :mod:`repro.runtime.trace`.
STATUS_OK = "ok"
STATUS_ERROR = "error"

RECORD_KIND = "span"


def new_trace_id() -> str:
    """A fresh 128-bit trace id (hex).  Never drawn from seeded RNGs."""
    return os.urandom(16).hex()


def new_span_id() -> str:
    """A fresh 64-bit span id (hex).  Never drawn from seeded RNGs."""
    return os.urandom(8).hex()


class TraceContext(NamedTuple):
    """Picklable (trace, parent span) identity shipped to workers."""

    trace_id: str
    span_id: str


@dataclass
class Span:
    """One unit of work in the trace tree (mutable while open)."""

    trace_id: str
    span_id: str
    parent_id: Optional[str]
    name: str
    start: float
    end: Optional[float] = None
    status: str = STATUS_OK
    attributes: Dict[str, Any] = field(default_factory=dict)
    events: List[Dict[str, Any]] = field(default_factory=list)
    worker: int = 0

    def set_attributes(self, **attrs: Any) -> None:
        self.attributes.update(attrs)

    def add_event(self, name: str, **attrs: Any) -> None:
        self.events.append({"name": name, "ts": time.time(), "attrs": attrs})

    def to_record(self) -> Dict[str, Any]:
        record = {
            "kind": RECORD_KIND,
            "trace": self.trace_id,
            "span": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start": round(self.start, 6),
            "end": round(self.end if self.end is not None else self.start, 6),
            "status": self.status,
            "worker": self.worker or os.getpid(),
        }
        if self.attributes:
            record["attrs"] = self.attributes
        if self.events:
            record["events"] = self.events
        return record


class Tracer:
    """Span collector with an optional crash-safe JSONL sink.

    ``path=None`` keeps records in memory only (the worker-side
    collector); with a path every finished span is also appended as one
    atomic ``os.write``.  A tracer owns the run's ``trace_id`` unless an
    explicit one is supplied (worker collectors adopt the parent's).
    """

    def __init__(self, path: Optional[str] = None, trace_id: Optional[str] = None):
        self.path = path
        self.trace_id = trace_id or new_trace_id()
        self._records: List[Dict[str, Any]] = []
        self._fd: Optional[int] = None

    # -- emission ----------------------------------------------------------

    def emit(self, record: Dict[str, Any]) -> Dict[str, Any]:
        """Append one finished-span record (memory + sink)."""
        self._records.append(record)
        if self.path is not None:
            if self._fd is None:
                self._fd = os.open(
                    self.path,
                    os.O_WRONLY | os.O_CREAT | os.O_APPEND,
                    0o644,
                )
            line = json.dumps(record, sort_keys=True) + "\n"
            os.write(self._fd, line.encode("utf-8"))
        return record

    def finish(self, span: Span) -> Dict[str, Any]:
        """Close an open span (stamping ``end`` if unset) and emit it."""
        if span.end is None:
            span.end = time.time()
        return self.emit(span.to_record())

    def add_span(
        self,
        name: str,
        parent_id: Optional[str],
        start: float,
        end: float,
        status: str = STATUS_OK,
        span_id: Optional[str] = None,
        trace_id: Optional[str] = None,
        worker: Optional[int] = None,
        events: Optional[List[Dict[str, Any]]] = None,
        **attrs: Any,
    ) -> str:
        """Manufacture an already-finished span (the executor primitive).

        Returns the span id so callers can parent further spans to it.
        """
        span = Span(
            trace_id=trace_id or self.trace_id,
            span_id=span_id or new_span_id(),
            parent_id=parent_id,
            name=name,
            start=start,
            end=end,
            status=status,
            attributes=dict(attrs),
            events=list(events) if events else [],
            worker=worker if worker is not None else os.getpid(),
        )
        self.emit(span.to_record())
        return span.span_id

    def ingest(self, records: Iterable[Dict[str, Any]]) -> None:
        """Adopt finished-span records produced by another process."""
        for record in records:
            self.emit(record)

    # -- views -------------------------------------------------------------

    def records(self) -> List[Dict[str, Any]]:
        return list(self._records)

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None


class _NullSpan:
    """What :func:`span` yields when tracing is off: every op a no-op.

    ``status`` is writable so callers can set outcomes unconditionally;
    the shared instance simply forgets the value.
    """

    __slots__ = ("status",)

    def __init__(self) -> None:
        self.status = STATUS_OK

    def set_attributes(self, **attrs: Any) -> None:
        pass

    def add_event(self, name: str, **attrs: Any) -> None:
        pass


NULL_SPAN = _NullSpan()

#: The process-wide active tracer (None = tracing off).  Mirrors the
#: ``get_registry`` idiom of :mod:`repro.obs.metrics`.
_ACTIVE: Optional[Tracer] = None

#: The context-local current span: (trace_id, span_id, Span-or-None).
#: The Span object is None when the parent lives in another process
#: (seeded from a TraceContext) — identity is known, mutation is not
#: possible.
_CURRENT: contextvars.ContextVar[Optional[tuple]] = contextvars.ContextVar(
    "repro_current_span", default=None
)


def get_tracer() -> Optional[Tracer]:
    return _ACTIVE


def set_tracer(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Install *tracer* as the active tracer; returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer
    return previous


def active() -> bool:
    return _ACTIVE is not None


@contextlib.contextmanager
def use_tracer(
    tracer: Optional[Tracer], context: Optional[TraceContext] = None
) -> Iterator[Optional[Tracer]]:
    """Scoped :func:`set_tracer`, optionally seeding the current span
    from a :class:`TraceContext` (the worker-side entry point)."""
    previous = set_tracer(tracer)
    token = None
    if context is not None:
        token = _CURRENT.set((context.trace_id, context.span_id, None))
    try:
        yield tracer
    finally:
        if token is not None:
            _CURRENT.reset(token)
        set_tracer(previous)


def current_context() -> Optional[TraceContext]:
    """The (trace, span) identity a submitted task should inherit."""
    current = _CURRENT.get()
    if current is not None:
        return TraceContext(current[0], current[1])
    if _ACTIVE is not None:
        return TraceContext(_ACTIVE.trace_id, "")
    return None


def current_trace_id() -> Optional[str]:
    context = current_context()
    return context.trace_id if context else None


def current_span_id() -> Optional[str]:
    current = _CURRENT.get()
    return current[1] if current else None


@contextlib.contextmanager
def span(name: str, **attrs: Any) -> Iterator[Any]:
    """Open a child of the current span for the duration of the block.

    Yields the mutable :class:`Span` (or a shared no-op span when
    tracing is off — callers never need to branch).  An exception
    escaping the block marks the span ``error`` with the exception type
    attached, then propagates.
    """
    tracer = _ACTIVE
    if tracer is None:
        yield NULL_SPAN
        return
    current = _CURRENT.get()
    trace_id = current[0] if current else tracer.trace_id
    parent_id = current[1] if current else None
    started_wall = time.time()
    started_perf = time.perf_counter()
    opened = Span(
        trace_id=trace_id,
        span_id=new_span_id(),
        parent_id=parent_id,
        name=name,
        start=started_wall,
        attributes=dict(attrs),
    )
    token = _CURRENT.set((trace_id, opened.span_id, opened))
    try:
        yield opened
    except BaseException as error:
        opened.status = STATUS_ERROR
        opened.attributes.setdefault("error", type(error).__name__)
        raise
    finally:
        _CURRENT.reset(token)
        opened.end = started_wall + (time.perf_counter() - started_perf)
        tracer.finish(opened)


def add_attributes(**attrs: Any) -> None:
    """Attach attributes to the innermost open span (no-op otherwise)."""
    current = _CURRENT.get()
    if current is not None and current[2] is not None:
        current[2].set_attributes(**attrs)


def add_event(name: str, **attrs: Any) -> None:
    """Attach a point-in-time event to the innermost open span."""
    current = _CURRENT.get()
    if current is not None and current[2] is not None:
        current[2].add_event(name, **attrs)


def record_span(name: str, elapsed: float, status: str = STATUS_OK, **attrs: Any) -> None:
    """Manufacture a finished child span ending now and lasting *elapsed*.

    The instrumentation primitive for code that already measured its own
    duration (solver reports, fast-engine batches): one call at the
    existing metrics funnel, zero overhead when tracing is off.
    """
    tracer = _ACTIVE
    if tracer is None:
        return
    current = _CURRENT.get()
    ended = time.time()
    tracer.add_span(
        name,
        parent_id=current[1] if current else None,
        start=ended - max(elapsed, 0.0),
        end=ended,
        status=status,
        trace_id=current[0] if current else tracer.trace_id,
        **attrs,
    )


# -- file handling ---------------------------------------------------------


def read_spans(path: str) -> List[Dict[str, Any]]:
    """Load span records from a JSONL trace file (torn tail tolerated).

    Non-span lines (legacy flat records in a mixed file) are skipped.
    """
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    for position, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            if position == len(lines) - 1:
                continue  # a kill mid-write tears at most the last line
            raise
        if isinstance(record, dict) and record.get("kind") == RECORD_KIND:
            records.append(record)
    return records


def build_tree(records: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Index a span set: by id, children lists, and the roots."""
    by_id: Dict[str, Dict[str, Any]] = {}
    children: Dict[str, List[Dict[str, Any]]] = {}
    for record in records:
        by_id[record["span"]] = record
    roots: List[Dict[str, Any]] = []
    for record in by_id.values():
        parent = record.get("parent")
        if parent is None:
            roots.append(record)
        else:
            children.setdefault(parent, []).append(record)
    return {"by_id": by_id, "children": children, "roots": roots}


def validate_tree(records: Iterable[Dict[str, Any]]) -> List[str]:
    """Well-formedness problems of a span set (empty list = valid).

    Checks: exactly one root, every parent id resolves (no orphans),
    every span reachable from the root, one trace id, sane timestamps.
    """
    records = list(records)
    problems: List[str] = []
    if not records:
        return ["no span records"]
    tree = build_tree(records)
    by_id, children, roots = tree["by_id"], tree["children"], tree["roots"]
    if len(by_id) != len(records):
        problems.append("duplicate span ids")
    if len(roots) != 1:
        names = sorted(record["name"] for record in roots)
        problems.append(f"expected one root span, found {len(roots)}: {names}")
    traces = {record["trace"] for record in by_id.values()}
    if len(traces) != 1:
        problems.append(f"expected one trace id, found {len(traces)}")
    for record in by_id.values():
        parent = record.get("parent")
        if parent is not None and parent not in by_id:
            problems.append(
                f"orphan span {record['name']} ({record['span']}): "
                f"parent {parent} not in trace"
            )
        if record["end"] < record["start"]:
            problems.append(f"span {record['name']} ends before it starts")
    if len(roots) == 1 and not problems:
        reachable = set()
        stack = [roots[0]["span"]]
        while stack:
            span_id = stack.pop()
            if span_id in reachable:
                continue
            reachable.add(span_id)
            stack.extend(child["span"] for child in children.get(span_id, []))
        unreachable = set(by_id) - reachable
        if unreachable:
            names = sorted(by_id[s]["name"] for s in unreachable)
            problems.append(f"{len(unreachable)} spans unreachable from root: {names}")
    return problems


# -- aggregation and compatibility ----------------------------------------


def flatten_spans(records: Iterable[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Render span records as legacy flat records (compatibility view).

    The span ``name`` becomes the legacy ``phase``; index / attempt /
    cpu are lifted out of the attributes when present, so
    :func:`repro.runtime.trace.summarize_events` aggregates a span tree
    exactly like it aggregates an old flat trace.
    """
    flat: List[Dict[str, Any]] = []
    for record in records:
        attrs = record.get("attrs", {})
        flat.append(
            {
                "phase": attrs.get("phase", record["name"]),
                "event": record["name"],
                "index": attrs.get("index", -1),
                "attempt": attrs.get("attempt", 0),
                "status": record.get("status", STATUS_OK),
                "worker": record.get("worker", 0),
                "wall": round(record["end"] - record["start"], 6),
                "cpu": attrs.get("cpu", 0.0),
                "ts": record["start"],
            }
        )
    return flat


def summarize_spans(records: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Per-name aggregate with the self-time vs cumulative-time split.

    ``cum`` is the wall duration of the span itself; ``self`` subtracts
    the durations of direct children, so a parent that merely waits on
    its children shows near-zero self-time.
    """
    records = list(records)
    child_seconds: Dict[str, float] = {}
    for record in records:
        parent = record.get("parent")
        if parent is not None:
            duration = record["end"] - record["start"]
            child_seconds[parent] = child_seconds.get(parent, 0.0) + duration
    names: Dict[str, Dict[str, float]] = {}
    statuses: Dict[str, int] = {}
    for record in records:
        duration = record["end"] - record["start"]
        own = max(duration - child_seconds.get(record["span"], 0.0), 0.0)
        stats = names.setdefault(
            record["name"], {"spans": 0, "cum": 0.0, "self": 0.0, "errors": 0}
        )
        stats["spans"] += 1
        stats["cum"] += duration
        stats["self"] += own
        status = record.get("status", STATUS_OK)
        statuses[status] = statuses.get(status, 0) + 1
        if status not in (STATUS_OK, "cache_hit", "checkpoint_hit"):
            stats["errors"] += 1
    return {
        "statuses": dict(sorted(statuses.items())),
        "names": {name: dict(stats) for name, stats in sorted(names.items())},
    }


def render_span_summary(
    summary: Dict[str, Any], title: str = "trace summary (spans)"
) -> str:
    """Plain-text report of :func:`summarize_spans` output."""
    from ..core.reporting import format_table

    lines = [f"=== {title} ==="]
    rows = [
        [
            name,
            int(stats["spans"]),
            f"{stats['self']:.3f}",
            f"{stats['cum']:.3f}",
        ]
        for name, stats in summary["names"].items()
    ]
    lines.append(
        format_table(["span", "count", "self [s]", "cum [s]"], rows)
    )
    status_rows = [
        [status, count] for status, count in summary["statuses"].items()
    ]
    lines.append("")
    lines.append(format_table(["status", "spans"], status_rows))
    return "\n".join(lines)


# -- exporters -------------------------------------------------------------


def export_perfetto(records: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Chrome/Perfetto ``trace_event`` JSON (complete ``"X"`` events).

    Timestamps are microseconds; each worker process becomes one
    pid/tid track, so pool execution renders as parallel lanes in
    ``ui.perfetto.dev``.
    """
    events: List[Dict[str, Any]] = []
    for record in sorted(records, key=lambda r: r["start"]):
        attrs = dict(record.get("attrs", {}))
        attrs["trace"] = record["trace"]
        attrs["span"] = record["span"]
        if record.get("parent"):
            attrs["parent"] = record["parent"]
        attrs["status"] = record.get("status", STATUS_OK)
        worker = record.get("worker", 0)
        events.append(
            {
                "name": record["name"],
                "ph": "X",
                "ts": round(record["start"] * 1e6, 3),
                "dur": round((record["end"] - record["start"]) * 1e6, 3),
                "pid": worker,
                "tid": worker,
                "cat": "repro",
                "args": attrs,
            }
        )
        for event in record.get("events", []):
            events.append(
                {
                    "name": event["name"],
                    "ph": "i",
                    "ts": round(event["ts"] * 1e6, 3),
                    "pid": worker,
                    "tid": worker,
                    "cat": "repro",
                    "s": "t",
                    "args": dict(event.get("attrs", {})),
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def _otlp_value(value: Any) -> Dict[str, Any]:
    if isinstance(value, bool):
        return {"boolValue": value}
    if isinstance(value, int):
        return {"intValue": str(value)}
    if isinstance(value, float):
        return {"doubleValue": value}
    return {"stringValue": str(value)}


def _otlp_attributes(attrs: Dict[str, Any]) -> List[Dict[str, Any]]:
    return [
        {"key": key, "value": _otlp_value(value)}
        for key, value in sorted(attrs.items())
    ]


def export_otlp(records: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """OTLP-shaped JSON dump (``resourceSpans``/``scopeSpans`` nesting,
    nanosecond unix timestamps, typed attribute values)."""
    spans: List[Dict[str, Any]] = []
    for record in sorted(records, key=lambda r: r["start"]):
        status_ok = record.get("status", STATUS_OK) not in ("failed", STATUS_ERROR)
        spans.append(
            {
                "traceId": record["trace"],
                "spanId": record["span"],
                "parentSpanId": record.get("parent") or "",
                "name": record["name"],
                "kind": 1,
                "startTimeUnixNano": str(int(record["start"] * 1e9)),
                "endTimeUnixNano": str(int(record["end"] * 1e9)),
                "status": {"code": 1 if status_ok else 2},
                "attributes": _otlp_attributes(
                    dict(
                        record.get("attrs", {}),
                        worker=record.get("worker", 0),
                        **{"repro.status": record.get("status", STATUS_OK)},
                    )
                ),
                "events": [
                    {
                        "name": event["name"],
                        "timeUnixNano": str(int(event["ts"] * 1e9)),
                        "attributes": _otlp_attributes(event.get("attrs", {})),
                    }
                    for event in record.get("events", [])
                ],
            }
        )
    return {
        "resourceSpans": [
            {
                "resource": {
                    "attributes": _otlp_attributes({"service.name": "repro"})
                },
                "scopeSpans": [
                    {
                        "scope": {"name": "repro.obs.tracing"},
                        "spans": spans,
                    }
                ],
            }
        ]
    }


def write_perfetto(records: Iterable[Dict[str, Any]], path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(export_perfetto(records), handle, sort_keys=True)
        handle.write("\n")


def write_otlp(records: Iterable[Dict[str, Any]], path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(export_otlp(records), handle, sort_keys=True)
        handle.write("\n")

"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch one type to handle any library failure.  The
sub-hierarchy mirrors the main subsystems: the Æmilia-like specification
language, the state-space semantics, the Markovian (CTMC) machinery and the
discrete-event simulator.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the library."""


class SpecificationError(ReproError):
    """A specification (text or programmatic) is malformed."""


class LexerError(SpecificationError):
    """The tokenizer met a character sequence it cannot tokenize."""

    def __init__(self, message: str, line: int, column: int):
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class ParseError(SpecificationError):
    """The parser met an unexpected token."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        location = f" (line {line}, column {column})" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class TypeCheckError(SpecificationError):
    """An expression or behaviour fails static type checking."""


class EvaluationError(ReproError):
    """An expression could not be evaluated (unbound name, bad operands)."""


class SemanticsError(ReproError):
    """State-space generation failed (e.g. unguarded recursion)."""


class UnguardedRecursionError(SemanticsError):
    """A process unfolds to itself without performing an action."""


class StateSpaceLimitError(SemanticsError):
    """State-space generation exceeded the configured state budget."""


class AnalysisError(ReproError):
    """An LTS analysis (bisimulation, model checking) failed."""


class MarkovianError(ReproError):
    """The Markovian model is not well formed (passive/general rates left)."""


class ImmediateCycleError(MarkovianError):
    """Vanishing-state elimination found a cycle of immediate transitions."""


class SolverError(ReproError):
    """A numerical solver failed to produce a solution.

    Carries the solver diagnostics when they are known: which backend
    failed, the residual ``||pi Q||_inf`` it reached, and how many
    iterations it spent — appended to the message so logs show them even
    through plain ``str(error)``.  *reason* is a machine-readable
    classification of the failure; ``matrix_free_unsupported`` marks a
    backend that requires a materialized sparse matrix rejecting a
    matrix-free :class:`~scipy.sparse.linalg.LinearOperator` operand (the
    ``auto`` fallback chain skips such backends instead of crashing).
    """

    def __init__(
        self,
        message: str,
        *,
        method: "str | None" = None,
        residual: "float | None" = None,
        iterations: "int | None" = None,
        reason: "str | None" = None,
    ):
        details = []
        if method is not None:
            details.append(f"method={method}")
        if residual is not None:
            details.append(f"residual={residual:.3e}")
        if iterations is not None:
            details.append(f"iterations={iterations}")
        if reason is not None:
            details.append(f"reason={reason}")
        if details:
            message = f"{message} [{' '.join(details)}]"
        super().__init__(message)
        self.method = method
        self.residual = residual
        self.iterations = iterations
        self.reason = reason


class ParametricError(SolverError):
    """A chain could not be solved parametrically (symbolically).

    Raised when rate expressions are not rational in the swept parameter,
    when the state-elimination fill-in or degree budgets are exceeded, or
    when the fitted rational functions fail validation (poles inside the
    sweep domain, residual above tolerance).  Always recoverable: callers
    fall back to the concrete per-point solvers of
    :mod:`repro.ctmc.solvers`.
    """

    def __init__(self, message: str, *, reason: str = "unsupported", **kwargs):
        #: Machine-readable fallback reason (metrics label):
        #: ``unsupported`` / ``budget`` / ``fit`` / ``structure``.
        super().__init__(message, method="parametric", reason=reason, **kwargs)


class SimulationError(ReproError):
    """The discrete-event simulator met an inconsistent model."""


class WorkloadError(ReproError):
    """A workload trace is malformed, unreadable, or cannot be fitted."""


class ValidationError(ReproError):
    """Cross-validation between general and Markovian models failed."""


class RuntimeExecutionError(ReproError):
    """The fault-tolerant execution layer could not complete a task set."""


class WorkerFaultError(RuntimeExecutionError):
    """A worker task failed (injected fault or real crash).

    Transient by design: the executor retries the task until the retry
    budget is exhausted.
    """

    def __init__(self, message: str, index: int = -1, attempt: int = 0):
        super().__init__(message)
        self.index = index
        self.attempt = attempt


class RetryBudgetExceededError(RuntimeExecutionError):
    """A task kept failing after every allowed retry.

    Carries the task index, how many attempts were made and the last
    underlying error so chaos tests (and operators) can see exactly what
    gave up where.
    """

    def __init__(self, index: int, attempts: int, last_error: Exception):
        super().__init__(
            f"task {index} failed after {attempts} attempt(s): "
            f"{last_error!r}"
        )
        self.index = index
        self.attempts = attempts
        self.last_error = last_error


class CheckpointError(RuntimeExecutionError):
    """A sweep checkpoint journal is unusable (wrong sweep or corrupt)."""

"""General (realistically timed) streaming models (the paper's Sect. 5.3).

Relative to the Markovian models:

* the video stream is constant bit rate — frame generation and rendering
  periods are **deterministic** (67 ms);
* the initial client delay, the NIC awaking and checking times, the DPM
  shutdown delay and the PSP awake period (beacon listen interval) are
  **deterministic**;
* the packet propagation time follows the same **Gaussian** channel model
  as the rpc benchmark (scaled to the 4 ms mean).

The paper parameterised these values from measurements on an HP iPAQ 3600
handheld with a CISCO Aironet 350 NIC and a CISCO 350 access point; the
published scalar values are used here (see
:mod:`repro.casestudies.streaming.parameters` and DESIGN.md for the
substitution note).
"""

from __future__ import annotations

from typing import List

from ...aemilia.architecture import ArchiType
from ...aemilia.parser import parse_architecture
from ...ctmc.measure_lang import parse_measures
from ...ctmc.measures import Measure
from .markovian import (
    MEASURE_SPEC,
    _AP_DPM,
    _AP_NODPM,
    _CHANNEL,
    _CLIENT,
    _CLIENT_BUFFER,
    _CONST_HEADER,
    _DPM,
    _NIC_DPM,
    _NIC_NODPM,
    _SERVER,
    _TOPOLOGY_DPM,
    _TOPOLOGY_NODPM,
)

_GENERAL_CONST_HEADER = _CONST_HEADER.replace(
    "const real monitor_rate := 1.0)",
    "const real monitor_rate := 1.0,\n    const real prop_sigma := 0.1725)",
)


def _generalize(spec: str) -> str:
    """Rewrite the Markovian rates into the general ones."""
    replacements = [
        ("exp(1 / frame_period)", "det(frame_period)"),
        ("exp(1 / render_period)", "det(render_period)"),
        ("exp(1 / init_delay)", "det(init_delay)"),
        ("exp(1 / nic_awake_time)", "det(nic_awake_time)"),
        ("exp(1 / check_time)", "det(check_time)"),
        ("exp(1 / shutdown_period)", "det(shutdown_period)"),
        ("exp(1 / awake_period)", "det(awake_period)"),
        ("exp(1 / prop_time)", "normal(prop_time, prop_sigma)"),
    ]
    for old, new in replacements:
        spec = spec.replace(old, new)
    return spec


GENERAL_DPM_SPEC = _generalize(
    "ARCHI_TYPE Streaming_General_Dpm" + _GENERAL_CONST_HEADER
    + "ARCHI_ELEM_TYPES"
    + _SERVER + _AP_DPM + _CHANNEL + _NIC_DPM + _CLIENT_BUFFER + _CLIENT
    + _DPM + _TOPOLOGY_DPM
)

GENERAL_NODPM_SPEC = _generalize(
    "ARCHI_TYPE Streaming_General_Nodpm" + _GENERAL_CONST_HEADER
    + "ARCHI_ELEM_TYPES"
    + _SERVER + _AP_NODPM + _CHANNEL + _NIC_NODPM + _CLIENT_BUFFER + _CLIENT
    + _TOPOLOGY_NODPM
)


def dpm_architecture() -> ArchiType:
    """General streaming model with the PSP DPM."""
    return parse_architecture(GENERAL_DPM_SPEC)


def nodpm_architecture() -> ArchiType:
    """General streaming model with an always-awake NIC."""
    return parse_architecture(GENERAL_NODPM_SPEC)


def measures() -> List[Measure]:
    """Same base reward structures as the Markovian phase."""
    return parse_measures(MEASURE_SPEC)

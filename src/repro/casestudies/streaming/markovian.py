"""Markovian models of the streaming case study (the paper's Sect. 4.2).

Topology (Fig. 2.b of the paper)::

    S --frame--> AP(buffer) --RSC channel--> NIC --> B(buffer) <--get-- C
                     |  empty/nonempty notices        ^
                     v                                | shutdown/wakeup
                    DPM ------------------------------+

* The server produces a frame every ``frame_period`` on average and pushes
  it into the access-point buffer (capacity ``ap_capacity``; overflow =
  ``lose_frame_ap``).
* The AP transmits buffered frames through the lossy radio channel; a
  frame in flight is delivered only when the NIC is awake (the channel
  blocks while the NIC dozes — the 802.11 PSP access point holds traffic
  for dozing stations).
* The NIC (IEEE 802.11b PSP): awake it forwards frames to the client
  buffer ``B`` (capacity ``b_capacity``; overflow = ``lose_frame_b``);
  a shutdown puts it in doze mode; a wakeup triggers the awaking
  (``nic_awake_time``) and AP-buffer check (``check_time``) sequence.
* The client renders a frame every ``render_period`` after an initial
  buffering delay; a fetch from an empty buffer is a real-time violation
  (``get_miss``).
* The DPM is modelled as an external component, as in the paper: it
  observes AP-buffer empty/nonempty edges, issues a shutdown an average
  ``shutdown_period`` after the buffer empties, and wakes the NIC up
  periodically (``awake_period`` — the PSP listen interval).

Base measures (ratios such as energy-per-frame, loss, miss and quality are
derived by :mod:`repro.experiments.streaming_figures`):

* ``nic_power`` — average NIC power draw (W);
* ``frames_received`` — NIC-to-buffer deliveries per ms;
* ``frames_produced`` — server frame generations per ms;
* ``frames_lost`` — buffer-overflow drops (AP + client side) per ms;
* ``frame_misses`` / ``frame_gets`` — real-time violations / fetches per ms.
"""

from __future__ import annotations

from typing import List

from ...aemilia.architecture import ArchiType
from ...aemilia.parser import parse_architecture
from ...ctmc.measure_lang import parse_measures
from ...ctmc.measures import Measure

_CONST_HEADER = """(
    const int ap_capacity := 10,
    const int b_capacity := 10,
    const real frame_period := 67.0,
    const real prop_time := 4.0,
    const real loss_prob := 0.02,
    const real check_time := 5.0,
    const real nic_awake_time := 15.0,
    const real init_delay := 684.0,
    const real render_period := 67.0,
    const real shutdown_period := 5.0,
    const real awake_period := 100.0,
    const real monitor_rate := 1.0)
"""

_SERVER = """
ELEM_TYPE Server_Type(void)
  BEHAVIOR
    Server(void; void) =
      <produce_frame, exp(1 / frame_period)> .
      <send_frame, inf(1, 1)> .
      Server()
  INPUT_INTERACTIONS void
  OUTPUT_INTERACTIONS UNI send_frame
"""

_AP_DPM = """
ELEM_TYPE AP_Buffer_Type(void)
  BEHAVIOR
    AP_Buffer(int n := 0; void) =
      choice {
        <receive_frame_ap, _> . AP_Arrived(n),
        cond(n > 0) -> <send_frame_rsc, inf(1, 1)> . AP_Departed(n - 1)
      };
    AP_Arrived(int n; void) =
      choice {
        cond(n > 0 and n < ap_capacity) -> <accept_frame, inf(1, 1)> . AP_Buffer(n + 1),
        cond(n = 0) -> <notify_nonempty, inf(1, 1)> . AP_Buffer(1),
        cond(n = ap_capacity) -> <lose_frame_ap, inf(1, 1)> . AP_Buffer(n)
      };
    AP_Departed(int n; void) =
      choice {
        cond(n = 0) -> <notify_empty, inf(1, 1)> . AP_Buffer(0),
        cond(n > 0) -> <continue_ap, inf(1, 1)> . AP_Buffer(n)
      }
  INPUT_INTERACTIONS UNI receive_frame_ap
  OUTPUT_INTERACTIONS UNI send_frame_rsc; notify_nonempty; notify_empty
"""

_AP_NODPM = """
ELEM_TYPE AP_Buffer_Type(void)
  BEHAVIOR
    AP_Buffer(int n := 0; void) =
      choice {
        <receive_frame_ap, _> . AP_Arrived(n),
        cond(n > 0) -> <send_frame_rsc, inf(1, 1)> . AP_Buffer(n - 1)
      };
    AP_Arrived(int n; void) =
      choice {
        cond(n < ap_capacity) -> <accept_frame, inf(1, 1)> . AP_Buffer(n + 1),
        cond(n = ap_capacity) -> <lose_frame_ap, inf(1, 1)> . AP_Buffer(n)
      }
  INPUT_INTERACTIONS UNI receive_frame_ap
  OUTPUT_INTERACTIONS UNI send_frame_rsc
"""

_CHANNEL = """
ELEM_TYPE Radio_Channel_Type(void)
  BEHAVIOR
    Radio_Channel(void; void) =
      <get_packet, _> .
      <propagate_packet, exp(1 / prop_time)> .
      choice {
        <keep_packet, inf(1, 1 - loss_prob)> . <deliver_packet, inf(1, 1)> . Radio_Channel(),
        <lose_packet, inf(1, loss_prob)> . Radio_Channel()
      }
  INPUT_INTERACTIONS UNI get_packet
  OUTPUT_INTERACTIONS UNI deliver_packet
"""

_NIC_DPM = """
ELEM_TYPE NIC_Type(void)
  BEHAVIOR
    NIC_Awake(void; void) =
      choice {
        <receive_frame_nic, _> . <store_frame, inf(1, 1)> . NIC_Awake(),
        <receive_shutdown, _> . NIC_Doze(),
        <monitor_nic_awake, exp(monitor_rate)> . NIC_Awake()
      };
    NIC_Doze(void; void) =
      choice {
        <receive_wakeup, _> . NIC_Awaking(),
        <monitor_nic_doze, exp(monitor_rate)> . NIC_Doze()
      };
    NIC_Awaking(void; void) =
      choice {
        <awake_nic, exp(1 / nic_awake_time)> . NIC_Checking(),
        <monitor_nic_awaking, exp(monitor_rate)> . NIC_Awaking()
      };
    NIC_Checking(void; void) =
      choice {
        <check_buffer, exp(1 / check_time)> . NIC_Awake(),
        <monitor_nic_checking, exp(monitor_rate)> . NIC_Checking()
      }
  INPUT_INTERACTIONS UNI receive_frame_nic; receive_shutdown; receive_wakeup
  OUTPUT_INTERACTIONS UNI store_frame
"""

_NIC_NODPM = """
ELEM_TYPE NIC_Type(void)
  BEHAVIOR
    NIC_Awake(void; void) =
      choice {
        <receive_frame_nic, _> . <store_frame, inf(1, 1)> . NIC_Awake(),
        <monitor_nic_awake, exp(monitor_rate)> . NIC_Awake()
      }
  INPUT_INTERACTIONS UNI receive_frame_nic
  OUTPUT_INTERACTIONS UNI store_frame
"""

_CLIENT_BUFFER = """
ELEM_TYPE Client_Buffer_Type(void)
  BEHAVIOR
    B_Buffer(int n := 0; void) =
      choice {
        <receive_frame_b, _> . B_Arrived(n),
        cond(n > 0) -> <serve_frame, _> . B_Buffer(n - 1),
        cond(n = 0) -> <report_empty, _> . B_Buffer(0)
      };
    B_Arrived(int n; void) =
      choice {
        cond(n < b_capacity) -> <accept_frame_b, inf(1, 1)> . B_Buffer(n + 1),
        cond(n = b_capacity) -> <lose_frame_b, inf(1, 1)> . B_Buffer(n)
      }
  INPUT_INTERACTIONS UNI receive_frame_b; serve_frame; report_empty
  OUTPUT_INTERACTIONS void
"""

_CLIENT = """
ELEM_TYPE Client_Type(void)
  BEHAVIOR
    Client_Init(void; void) =
      <initial_delay, exp(1 / init_delay)> . Client_Render();
    Client_Render(void; void) =
      <render_frame, exp(1 / render_period)> . Client_Fetch();
    Client_Fetch(void; void) =
      choice {
        <get_ok, inf(1, 1)> . Client_Render(),
        <get_miss, inf(1, 1)> . Client_Render()
      }
  INPUT_INTERACTIONS void
  OUTPUT_INTERACTIONS UNI get_ok; get_miss
"""

_DPM = """
ELEM_TYPE DPM_Type(void)
  BEHAVIOR
    DPM_Awake(bool empty := true; void) =
      choice {
        cond(empty) -> <send_shutdown, exp(1 / shutdown_period)> . DPM_Doze(true),
        <receive_empty_notice, _> . DPM_Awake(true),
        <receive_nonempty_notice, _> . DPM_Awake(false)
      };
    DPM_Doze(bool empty; void) =
      choice {
        <send_wakeup, exp(1 / awake_period)> . DPM_Awake(empty),
        <receive_empty_notice, _> . DPM_Doze(true),
        <receive_nonempty_notice, _> . DPM_Doze(false)
      }
  INPUT_INTERACTIONS UNI receive_empty_notice; receive_nonempty_notice
  OUTPUT_INTERACTIONS UNI send_shutdown; send_wakeup
"""

_TOPOLOGY_DPM = """
ARCHI_TOPOLOGY
  ARCHI_ELEM_INSTANCES
    S : Server_Type();
    AP : AP_Buffer_Type(0);
    RSC : Radio_Channel_Type();
    NIC : NIC_Type();
    B : Client_Buffer_Type(0);
    C : Client_Type();
    DPM : DPM_Type(true)
  ARCHI_ATTACHMENTS
    FROM S.send_frame TO AP.receive_frame_ap;
    FROM AP.send_frame_rsc TO RSC.get_packet;
    FROM RSC.deliver_packet TO NIC.receive_frame_nic;
    FROM NIC.store_frame TO B.receive_frame_b;
    FROM C.get_ok TO B.serve_frame;
    FROM C.get_miss TO B.report_empty;
    FROM AP.notify_empty TO DPM.receive_empty_notice;
    FROM AP.notify_nonempty TO DPM.receive_nonempty_notice;
    FROM DPM.send_shutdown TO NIC.receive_shutdown;
    FROM DPM.send_wakeup TO NIC.receive_wakeup
END
"""

_TOPOLOGY_NODPM = """
ARCHI_TOPOLOGY
  ARCHI_ELEM_INSTANCES
    S : Server_Type();
    AP : AP_Buffer_Type(0);
    RSC : Radio_Channel_Type();
    NIC : NIC_Type();
    B : Client_Buffer_Type(0);
    C : Client_Type()
  ARCHI_ATTACHMENTS
    FROM S.send_frame TO AP.receive_frame_ap;
    FROM AP.send_frame_rsc TO RSC.get_packet;
    FROM RSC.deliver_packet TO NIC.receive_frame_nic;
    FROM NIC.store_frame TO B.receive_frame_b;
    FROM C.get_ok TO B.serve_frame;
    FROM C.get_miss TO B.report_empty
END
"""

MARKOVIAN_DPM_SPEC = (
    "ARCHI_TYPE Streaming_Markov_Dpm" + _CONST_HEADER
    + "ARCHI_ELEM_TYPES"
    + _SERVER + _AP_DPM + _CHANNEL + _NIC_DPM + _CLIENT_BUFFER + _CLIENT
    + _DPM + _TOPOLOGY_DPM
)

MARKOVIAN_NODPM_SPEC = (
    "ARCHI_TYPE Streaming_Markov_Nodpm" + _CONST_HEADER
    + "ARCHI_ELEM_TYPES"
    + _SERVER + _AP_NODPM + _CHANNEL + _NIC_NODPM + _CLIENT_BUFFER + _CLIENT
    + _TOPOLOGY_NODPM
)

#: Base reward structures; ratios are derived in the experiment harness.
MEASURE_SPEC = """
MEASURE nic_power IS
  ENABLED(NIC.monitor_nic_awake)    -> STATE_REWARD(1.4)
  ENABLED(NIC.monitor_nic_checking) -> STATE_REWARD(1.4)
  ENABLED(NIC.monitor_nic_awaking)  -> STATE_REWARD(1.6)
  ENABLED(NIC.monitor_nic_doze)     -> STATE_REWARD(0.075);
MEASURE frames_received IS
  ENABLED(NIC.store_frame) -> TRANS_REWARD(1);
MEASURE frames_produced IS
  ENABLED(S.produce_frame) -> TRANS_REWARD(1);
MEASURE frames_lost IS
  ENABLED(AP.lose_frame_ap) -> TRANS_REWARD(1)
  ENABLED(B.lose_frame_b)   -> TRANS_REWARD(1);
MEASURE frame_misses IS
  ENABLED(C.get_miss) -> TRANS_REWARD(1);
MEASURE frame_gets IS
  ENABLED(C.get_ok)   -> TRANS_REWARD(1)
  ENABLED(C.get_miss) -> TRANS_REWARD(1);
"""


def dpm_architecture() -> ArchiType:
    """Markovian streaming model with the PSP DPM."""
    return parse_architecture(MARKOVIAN_DPM_SPEC)


def nodpm_architecture() -> ArchiType:
    """Markovian streaming model with an always-awake NIC."""
    return parse_architecture(MARKOVIAN_NODPM_SPEC)


def measures() -> List[Measure]:
    """The base reward structures of the streaming study."""
    return parse_measures(MEASURE_SPEC)

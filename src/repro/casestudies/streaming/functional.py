"""Functional (untimed) model of the streaming case study (Sect. 3.2).

Obtained from the Markovian description by erasing all timing: every rate
becomes passive (``_``).  The paper reports (Sect. 3.2) that the streaming
system *satisfies* noninterference: hiding the MAC-level DPM's shutdown and
wake-up commands is weakly bisimilar, from the client's standpoint, to
removing them — intuitively because a dozing NIC only *delays* frames,
which the untimed observation cannot distinguish from slow channels, and
every frame outcome (``get_ok`` / ``get_miss``) remains reachable either
way.

For the equivalence check the buffer capacities are reduced (defaults 2/2
here) — the functional verdict does not depend on the buffer depth, and
weak-bisimulation saturation on the full 10/10 space would be needlessly
expensive.  The capacities stay ``const`` parameters, so the claim can be
checked at any size.
"""

from __future__ import annotations

import re

from ...aemilia.architecture import ArchiType
from ...aemilia.parser import parse_architecture
from .markovian import MARKOVIAN_DPM_SPEC

#: High (DPM) action patterns for noninterference analysis.
HIGH_PATTERNS = ["DPM.send_shutdown", "DPM.send_wakeup"]

#: Low (client-observable) action patterns.
LOW_PATTERNS = ["C.get_ok", "C.get_miss"]

#: Buffer capacities used for the (exponentially harder) functional check.
FUNCTIONAL_CAPACITIES = {"ap_capacity": 2, "b_capacity": 2}


def _untimed(spec: str) -> str:
    """Erase all timing information: every rate becomes passive."""
    spec = re.sub(r"\b(exp|inf)\([^)]*\)", "_", spec)
    return spec.replace(
        "ARCHI_TYPE Streaming_Markov_Dpm",
        "ARCHI_TYPE Streaming_Untimed_Dpm",
    )


FUNCTIONAL_SPEC = _untimed(MARKOVIAN_DPM_SPEC)


def functional_architecture() -> ArchiType:
    """Parse the untimed streaming model (with DPM)."""
    return parse_architecture(FUNCTIONAL_SPEC)

"""Parameters of the streaming case study (the paper's Sect. 4.2 and 5.3).

All times in milliseconds, following the paper:

* access-point buffer size 10, client buffer size 10,
* average server service (frame generation) time 67 ms (≈15 fps video),
* average packet propagation time 4 ms, packet loss probability 0.02,
* average NIC checking time 5 ms, average NIC awaking time 15 ms,
* average initial client delay 684 ms, average client rendering time 67 ms,
* average DPM shutdown period 5 ms (delay between the AP buffer becoming
  empty and the shutdown command),
* DPM awake period swept between 0 and 800 ms (the PSP protocol's
  periodic wake-up; the CISCO Aironet 350 exposes 100 ms and 200 ms).

The paper parameterised its general model from measurements on an HP iPAQ
3600 with a CISCO Aironet 350 NIC; we use Aironet-350-class power levels
(in watts): receive/awake ≈ 1.4 W, wake-up transient ≈ 1.6 W, doze
≈ 0.075 W.  Energy per frame is then reported in mJ (W × ms / frame).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class StreamingParameters:
    """Parameter set of the streaming benchmark (times in ms, power in W)."""

    ap_capacity: int = 10
    b_capacity: int = 10
    frame_period: float = 67.0
    propagation_time: float = 4.0
    propagation_sigma: float = 0.1725
    loss_probability: float = 0.02
    check_time: float = 5.0
    nic_awake_time: float = 15.0
    initial_delay: float = 684.0
    render_period: float = 67.0
    shutdown_period: float = 5.0
    awake_period: float = 100.0
    power_awake: float = 1.4
    power_awaking: float = 1.6
    power_doze: float = 0.075
    monitor_rate: float = 1.0

    def const_overrides(self) -> Dict[str, float]:
        """Override map for the architectures' const parameters."""
        return {
            "ap_capacity": self.ap_capacity,
            "b_capacity": self.b_capacity,
            "frame_period": self.frame_period,
            "prop_time": self.propagation_time,
            "prop_sigma": self.propagation_sigma,
            "loss_prob": self.loss_probability,
            "check_time": self.check_time,
            "nic_awake_time": self.nic_awake_time,
            "init_delay": self.initial_delay,
            "render_period": self.render_period,
            "shutdown_period": self.shutdown_period,
            "awake_period": self.awake_period,
        }


#: Default parameter set (the paper's values).
DEFAULT_PARAMETERS = StreamingParameters()

#: Awake periods swept in Figs. 4 and 6 (ms).  An exact zero would be an
#: infinite wake-up rate; the sweep starts just above zero.
AWAKE_PERIOD_SWEEP: List[float] = [
    10.0, 25.0, 50.0, 100.0, 200.0, 400.0, 600.0, 800.0,
]

#: The two awake periods the CISCO Aironet 350 exposes (Sect. 5.3).
AIRONET_AWAKE_PERIODS: List[float] = [100.0, 200.0]

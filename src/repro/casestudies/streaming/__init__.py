"""The streaming case study: a video server, a PSP-managed 802.11b NIC,
and a rendering client (Fig. 2.b of the paper)."""

from ...core.methodology import ModelFamily
from . import functional, general, markovian
from .parameters import (
    AIRONET_AWAKE_PERIODS,
    AWAKE_PERIOD_SWEEP,
    DEFAULT_PARAMETERS,
    StreamingParameters,
)


def family() -> ModelFamily:
    """The streaming model family (functional + Markovian + general)."""
    return ModelFamily(
        name="streaming",
        functional_dpm=functional.functional_architecture(),
        markovian_dpm=markovian.dpm_architecture(),
        markovian_nodpm=markovian.nodpm_architecture(),
        general_dpm=general.dpm_architecture(),
        general_nodpm=general.nodpm_architecture(),
        high_patterns=functional.HIGH_PATTERNS,
        low_patterns=functional.LOW_PATTERNS,
        measures=markovian.measures(),
        # The server's frame production period is the workload knob of
        # this case study: a --workload replaces its duration
        # (docs/WORKLOADS.md).
        workload_pattern="S.produce_frame",
    )


__all__ = [
    "family",
    "functional",
    "markovian",
    "general",
    "DEFAULT_PARAMETERS",
    "AWAKE_PERIOD_SWEEP",
    "AIRONET_AWAKE_PERIODS",
    "StreamingParameters",
]

"""The paper's two case studies: rpc (Sect. 2.1) and streaming (Sect. 2.2)."""

from . import rpc, streaming

__all__ = ["rpc", "streaming"]

"""The case studies: rpc (Sect. 2.1), streaming (Sect. 2.2), and the
N-device fleet (docs/FLEET.md)."""

from . import fleet, rpc, streaming

__all__ = ["fleet", "rpc", "streaming"]

"""Parameters and coordinator policies of the fleet case study.

The fleet extends the paper's single-appliance assessment to N
power-managed devices sharing one channel / access point (the ROADMAP's
Kodikon-style two-level architecture): each device keeps the paper's
local timeout DPM (idle 2, busy 3, awaking 2, sleeping 0 power units;
service time 0.2 ms, awaking time 3 ms, shutdown timeout 5 ms) plus a
two-level battery (ok / low), while a network-level coordinator queues
arriving jobs and implements the collaborative policy:

* **load balancing** — jobs are dispatched to any idle device; sleeping
  devices are woken only once the queue reaches ``wake_threshold``
  (an *eager* policy wakes at threshold 1);
* **staggered wake-ups** — at most one device may be mid-wake-up at a
  time, bounding the fleet's inrush power draw;
* **battery-emergency handoff** — a busy device whose battery runs low
  returns its job to the coordinator's queue and goes to sleep to
  recharge instead of finishing the job.

Times are in milliseconds like the rpc study; battery dynamics are
slow relative to service (drain while busy, recharge while sleeping).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Mapping

from ...errors import SpecificationError


@dataclass(frozen=True)
class FleetParameters:
    """Rate parameters of the fleet benchmark (times in ms)."""

    service_time: float = 0.2
    awake_time: float = 3.0
    shutdown_timeout: float = 5.0
    arrival_rate: float = 1.5
    dispatch_time: float = 0.1
    wake_rate: float = 1.0
    drain_rate: float = 0.05
    recharge_rate: float = 0.2
    handoff_time: float = 0.5
    low_sleep_factor: float = 2.0
    monitor_rate: float = 1.0
    power_idle: float = 2.0
    power_busy: float = 3.0
    power_awaking: float = 2.0
    queue_capacity: int = 4

    def const_overrides(self) -> Dict[str, float]:
        """Override map for the generated architectures' rate consts.

        ``queue_capacity`` and the power levels are structural /
        measure-side, not Æmilia consts, so they are excluded.
        """
        return {
            "service_time": self.service_time,
            "awake_time": self.awake_time,
            "shutdown_timeout": self.shutdown_timeout,
            "arrival_rate": self.arrival_rate,
            "dispatch_time": self.dispatch_time,
            "wake_rate": self.wake_rate,
            "drain_rate": self.drain_rate,
            "recharge_rate": self.recharge_rate,
            "handoff_time": self.handoff_time,
            "low_sleep_factor": self.low_sleep_factor,
            "monitor_rate": self.monitor_rate,
        }

    def override(self, overrides: Mapping[str, float]) -> "FleetParameters":
        """A copy with the named parameters replaced (sweep points)."""
        unknown = set(overrides) - {
            f.name for f in dataclasses.fields(self)
        }
        if unknown:
            raise SpecificationError(
                f"unknown fleet parameter(s): {', '.join(sorted(unknown))}"
            )
        return dataclasses.replace(self, **dict(overrides))


@dataclass(frozen=True)
class CoordinatorPolicy:
    """One collaborative coordination policy of the fleet AP."""

    name: str
    #: Minimum queue length at which sleeping devices are woken.
    wake_threshold: int = 1
    #: At most one device mid-wake-up at a time (inrush bound).
    staggered: bool = False
    #: Busy low-battery devices hand their job back and sleep.
    handoff: bool = False


#: The shipped coordinator policies, by CLI name.
POLICIES: Dict[str, CoordinatorPolicy] = {
    "eager": CoordinatorPolicy("eager", wake_threshold=1),
    "balanced": CoordinatorPolicy("balanced", wake_threshold=2),
    "staggered": CoordinatorPolicy(
        "staggered", wake_threshold=2, staggered=True
    ),
    "emergency": CoordinatorPolicy(
        "emergency", wake_threshold=2, staggered=True, handoff=True
    ),
}


def policy(name: str) -> CoordinatorPolicy:
    try:
        return POLICIES[name]
    except KeyError:
        raise SpecificationError(
            f"unknown coordinator policy {name!r} "
            f"(have: {', '.join(sorted(POLICIES))})"
        ) from None


#: Default parameter set.
DEFAULT_PARAMETERS = FleetParameters()

#: Default fleet size for sweeps (small enough for quick lumped solves).
DEFAULT_FLEET_SIZE = 4

#: Arrival rates swept by the fleet experiment (jobs per ms).
ARRIVAL_RATE_SWEEP: List[float] = [
    0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0, 4.0,
]

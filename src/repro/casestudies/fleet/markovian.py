"""Generated Æmilia components and measures of the fleet case study.

The fleet composition never builds one flat Æmilia architecture — that
is exactly what explodes at scale.  Instead each component is written as
a *single-instance* architecture, its automaton is extracted with
:func:`repro.fleet.topology.automaton_from_architecture`, and the
compositional layer (:mod:`repro.fleet`) assembles the N-device SAN
generator from the parts.

**Device** (8 states = 4 power states x 2 battery levels): the paper's
timeout DPM — busy -> idle on ``serve``, idle -> sleeping after an
exponential shutdown timeout, sleeping -> awaking on a coordinator
wake-up, awaking -> busy after the wake-up latency — crossed with a
battery that drains while busy and recharges while sleeping.  A
low-battery idle device sleeps ``low_sleep_factor`` times sooner; under
the *emergency* policy a busy low-battery device hands its job back
(``return_job``) and sleeps to recharge.

**Coordinator** (queue of capacity K): accepts arrivals (lost when the
queue is full), dispatches queued jobs to idle devices
(``dispatch_job`` / ``receive_job``), and wakes sleeping devices once
the backlog reaches the policy's ``wake_threshold`` (``wake_device`` /
``receive_wake``, a wake-up hands the woken device a job).  Handoffs
re-enter the queue through ``accept_return``.

``monitor_*`` self-loops name the states, following the paper's
monitoring idiom; they are dynamically null.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ...errors import SpecificationError
from ...fleet.measures import FleetMeasure
from ...fleet.topology import (
    Automaton,
    FleetTopology,
    SyncEvent,
    automaton_from_architecture,
)
from .parameters import (
    DEFAULT_PARAMETERS,
    CoordinatorPolicy,
    FleetParameters,
    policy as resolve_policy,
)

#: One shared const header so a single override map fits both components.
_CONST_HEADER = """(
    const real service_time := 0.2,
    const real awake_time := 3.0,
    const real shutdown_timeout := 5.0,
    const real arrival_rate := 1.5,
    const real dispatch_time := 0.1,
    const real wake_rate := 1.0,
    const real drain_rate := 0.05,
    const real recharge_rate := 0.2,
    const real handoff_time := 0.5,
    const real low_sleep_factor := 2.0,
    const real monitor_rate := 1.0)
"""

#: Sync actions of the device side (``return_job`` only with handoff).
DEVICE_SYNC_ACTIONS = ("receive_job", "receive_wake")
#: Sync actions of the coordinator side.
COORDINATOR_SYNC_ACTIONS = ("dispatch_job", "wake_device")

#: Device states excluded by staggered wake-ups: no *other* device may
#: be mid-wake-up when a wake event fires.
AWAKING_STATES = frozenset({"awaking_ok", "awaking_low"})


def device_spec(handoff: bool) -> str:
    """Æmilia text of the 8-state device (single instance)."""
    handoff_branch = (
        "        <return_job, exp(1 / handoff_time)> . Sleeping_Low(),\n"
        if handoff
        else ""
    )
    handoff_output = "; return_job" if handoff else ""
    return (
        "ARCHI_TYPE Fleet_Device" + _CONST_HEADER + """
ARCHI_ELEM_TYPES
ELEM_TYPE Fleet_Device_Type(void)
  BEHAVIOR
    Idle_Ok(void; void) =
      choice {
        <receive_job, _> . Busy_Ok(),
        <go_sleep, exp(1 / shutdown_timeout)> . Sleeping_Ok(),
        <monitor_idle_ok, exp(monitor_rate)> . Idle_Ok()
      };
    Busy_Ok(void; void) =
      choice {
        <serve, exp(1 / service_time)> . Idle_Ok(),
        <drain, exp(drain_rate)> . Busy_Low(),
        <monitor_busy_ok, exp(monitor_rate)> . Busy_Ok()
      };
    Sleeping_Ok(void; void) =
      choice {
        <receive_wake, _> . Awaking_Ok(),
        <monitor_sleeping_ok, exp(monitor_rate)> . Sleeping_Ok()
      };
    Awaking_Ok(void; void) =
      choice {
        <awake, exp(1 / awake_time)> . Busy_Ok(),
        <monitor_awaking_ok, exp(monitor_rate)> . Awaking_Ok()
      };
    Idle_Low(void; void) =
      choice {
        <receive_job, _> . Busy_Low(),
        <go_sleep, exp(low_sleep_factor / shutdown_timeout)> . Sleeping_Low(),
        <monitor_idle_low, exp(monitor_rate)> . Idle_Low()
      };
    Busy_Low(void; void) =
      choice {
        <serve, exp(1 / service_time)> . Idle_Low(),
"""
        + handoff_branch
        + """        <monitor_busy_low, exp(monitor_rate)> . Busy_Low()
      };
    Sleeping_Low(void; void) =
      choice {
        <receive_wake, _> . Awaking_Low(),
        <recharge, exp(recharge_rate)> . Sleeping_Ok(),
        <monitor_sleeping_low, exp(monitor_rate)> . Sleeping_Low()
      };
    Awaking_Low(void; void) =
      choice {
        <awake, exp(1 / awake_time)> . Busy_Low(),
        <monitor_awaking_low, exp(monitor_rate)> . Awaking_Low()
      }
  INPUT_INTERACTIONS UNI receive_job; receive_wake
  OUTPUT_INTERACTIONS UNI serve"""
        + handoff_output
        + """

ARCHI_TOPOLOGY
  ARCHI_ELEM_INSTANCES
    D : Fleet_Device_Type()
END
"""
    )


def coordinator_spec(
    queue_capacity: int, wake_threshold: int, handoff: bool
) -> str:
    """Æmilia text of the (K+1)-state queue coordinator."""
    if queue_capacity < 1:
        raise SpecificationError(
            f"queue capacity must be >= 1, got {queue_capacity}"
        )
    if not 1 <= wake_threshold <= queue_capacity:
        raise SpecificationError(
            f"wake threshold must be in 1..{queue_capacity}, "
            f"got {wake_threshold}"
        )
    behaviors = []
    for level in range(queue_capacity + 1):
        branches = []
        if level < queue_capacity:
            branches.append(
                f"<accept_job, exp(arrival_rate)> . Queue_{level + 1}()"
            )
            if handoff:
                branches.append(
                    f"<accept_return, _> . Queue_{level + 1}()"
                )
        else:
            # Arrivals at a full queue are lost; the dynamically null
            # self-loop keeps the loss flow measurable.
            branches.append(
                f"<lose_job, exp(arrival_rate)> . Queue_{level}()"
            )
        if level >= 1:
            branches.append(
                f"<dispatch_job, exp(1 / dispatch_time)> . Queue_{level - 1}()"
            )
        if level >= wake_threshold:
            branches.append(
                f"<wake_device, exp(wake_rate)> . Queue_{level - 1}()"
            )
        branches.append(
            f"<monitor_queue_{level}, exp(monitor_rate)> . Queue_{level}()"
        )
        body = ",\n        ".join(branches)
        behaviors.append(
            f"    Queue_{level}(void; void) =\n"
            f"      choice {{\n        {body}\n      }}"
        )
    inputs = (
        "  INPUT_INTERACTIONS UNI accept_return\n"
        if handoff
        else "  INPUT_INTERACTIONS void\n"
    )
    return (
        "ARCHI_TYPE Fleet_Coordinator" + _CONST_HEADER + """
ARCHI_ELEM_TYPES
ELEM_TYPE Fleet_Coordinator_Type(void)
  BEHAVIOR
"""
        + ";\n".join(behaviors)
        + "\n"
        + inputs
        + """  OUTPUT_INTERACTIONS UNI dispatch_job; wake_device

ARCHI_TOPOLOGY
  ARCHI_ELEM_INSTANCES
    A : Fleet_Coordinator_Type()
END
"""
    )


def device_automaton(
    parameters: FleetParameters = DEFAULT_PARAMETERS,
    handoff: bool = False,
) -> Automaton:
    sync = DEVICE_SYNC_ACTIONS + (("return_job",) if handoff else ())
    return automaton_from_architecture(
        device_spec(handoff),
        sync,
        name="device",
        const_overrides=parameters.const_overrides(),
    )


def coordinator_automaton(
    parameters: FleetParameters = DEFAULT_PARAMETERS,
    policy: CoordinatorPolicy = None,
) -> Automaton:
    policy = policy or resolve_policy("balanced")
    sync = COORDINATOR_SYNC_ACTIONS + (
        ("accept_return",) if policy.handoff else ()
    )
    return automaton_from_architecture(
        coordinator_spec(
            parameters.queue_capacity, policy.wake_threshold, policy.handoff
        ),
        sync,
        name="coordinator",
        const_overrides=parameters.const_overrides(),
    )


def sync_events(policy: CoordinatorPolicy) -> Tuple[SyncEvent, ...]:
    events = [
        SyncEvent("dispatch", "dispatch_job", "receive_job"),
        SyncEvent(
            "wake",
            "wake_device",
            "receive_wake",
            exclusive_states=AWAKING_STATES if policy.staggered else None,
        ),
    ]
    if policy.handoff:
        events.append(SyncEvent("handoff", "accept_return", "return_job"))
    return tuple(events)


def measures(
    parameters: FleetParameters = DEFAULT_PARAMETERS,
) -> Tuple[FleetMeasure, ...]:
    """The fleet reward measures (paper power levels, fleet flows)."""
    power = {
        "idle_ok": parameters.power_idle,
        "idle_low": parameters.power_idle,
        "busy_ok": parameters.power_busy,
        "busy_low": parameters.power_busy,
        "awaking_ok": parameters.power_awaking,
        "awaking_low": parameters.power_awaking,
    }
    queue = {
        f"queue_{level}": float(level)
        for level in range(parameters.queue_capacity + 1)
    }
    return (
        FleetMeasure("power", device_weights=power),
        FleetMeasure("throughput", event_rewards={"serve": 1.0}),
        FleetMeasure("queue_length", coordinator_weights=queue),
        FleetMeasure("job_loss", event_rewards={"lose_job": 1.0}),
        FleetMeasure(
            "sleeping_devices",
            device_weights={"sleeping_ok": 1.0, "sleeping_low": 1.0},
        ),
        FleetMeasure(
            "low_battery",
            device_weights={
                "idle_low": 1.0,
                "busy_low": 1.0,
                "sleeping_low": 1.0,
                "awaking_low": 1.0,
            },
        ),
        FleetMeasure("wakeups", event_rewards={"wake": 1.0}),
        FleetMeasure("handoffs", event_rewards={"handoff": 1.0}),
    )


@dataclass(frozen=True)
class FleetModel:
    """A built fleet model: topology plus its reward measures."""

    topology: FleetTopology
    measures: Tuple[FleetMeasure, ...]
    parameters: FleetParameters
    policy: CoordinatorPolicy


def build_model(
    n: int,
    policy: str = "balanced",
    parameters: Optional[FleetParameters] = None,
) -> FleetModel:
    """Assemble the N-device fleet model under one coordinator policy."""
    parameters = parameters or DEFAULT_PARAMETERS
    chosen = resolve_policy(policy)
    device = device_automaton(parameters, handoff=chosen.handoff)
    coordinator = coordinator_automaton(parameters, chosen)
    topology = FleetTopology(
        coordinator=coordinator,
        device=device,
        n=n,
        events=sync_events(chosen),
        name=f"fleet[{chosen.name}]",
    )
    return FleetModel(
        topology=topology,
        measures=measures(parameters),
        parameters=parameters,
        policy=chosen,
    )

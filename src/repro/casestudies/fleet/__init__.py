"""The fleet case study: N power-managed devices behind one coordinator.

The third model family (after rpc and streaming): each device runs the
paper's local timeout DPM crossed with a two-level battery, while a
network-level coordinator implements the collaborative policies —
load balancing, staggered wake-ups and battery-emergency handoff
(docs/FLEET.md).  Unlike the other families this one is *compositional*:
:func:`build_model` assembles a :class:`~repro.fleet.FleetTopology`
from single-instance Æmilia components instead of one flat
architecture, and solves through :mod:`repro.fleet`.
"""

from .markovian import (
    FleetModel,
    build_model,
    coordinator_automaton,
    coordinator_spec,
    device_automaton,
    device_spec,
    measures,
    sync_events,
)
from .parameters import (
    ARRIVAL_RATE_SWEEP,
    DEFAULT_FLEET_SIZE,
    DEFAULT_PARAMETERS,
    POLICIES,
    CoordinatorPolicy,
    FleetParameters,
    policy,
)

__all__ = [
    "ARRIVAL_RATE_SWEEP",
    "DEFAULT_FLEET_SIZE",
    "DEFAULT_PARAMETERS",
    "POLICIES",
    "CoordinatorPolicy",
    "FleetModel",
    "FleetParameters",
    "build_model",
    "coordinator_automaton",
    "coordinator_spec",
    "device_automaton",
    "device_spec",
    "measures",
    "policy",
    "sync_events",
]

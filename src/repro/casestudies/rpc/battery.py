"""Battery-lifetime extension of the rpc case study.

The paper's evaluation reports steady-state energy *rates*; for a
battery-powered appliance the quantity a designer ultimately cares about
is the **battery lifetime**.  This module extends the Markovian rpc model
with an explicit battery:

* the server emits ``drain_tick`` pulses whose rate is proportional to its
  current power draw (idle 2, busy 3, awaking 2, sleeping 0 — the paper's
  reward structure turned into a phase-type energy quantisation);
* a ``Battery_Type`` component holds an integer charge and consumes one
  unit per pulse; at charge 0 it stops accepting pulses and exposes a
  ``monitor_battery_empty`` marker.

Expected lifetime is then a first-passage problem —
:func:`repro.ctmc.rewards.mean_time_to_absorption` to the empty-battery
states — and the DPM-vs-NO-DPM lifetime ratio quantifies what the paper's
energy-rate savings buy in operating time.
"""

from __future__ import annotations

from typing import List, Optional


from ...aemilia.architecture import ArchiType
from ...aemilia.parser import parse_architecture
from ...aemilia.semantics import generate_lts
from ...ctmc.build import build_ctmc
from ...ctmc.chain import CTMC
from ...ctmc.rewards import mean_time_to_absorption
from ...errors import AnalysisError
from ...lts.labels import matches
from .markovian import _CHANNEL, _CLIENT, _DPM

_BATTERY_CONST_HEADER = """(
    const real service_time := 0.2,
    const real awake_time := 3.0,
    const real prop_time := 0.8,
    const real loss_prob := 0.02,
    const real proc_time := 9.7,
    const real timeout_time := 2.0,
    const real shutdown_timeout := 5.0,
    const real monitor_rate := 1.0,
    const int battery_capacity := 25,
    const real drain_scale := 0.05)
"""

_SERVER_BATTERY_DPM = """
ELEM_TYPE Server_Type(void)
  BEHAVIOR
    Idle_Server(void; void) =
      choice {
        <receive_rpc_packet, _> . <notify_busy, inf(1, 1)> . Busy_Server(),
        <receive_shutdown, _> . Sleeping_Server(),
        <drain_tick, exp(2 * drain_scale)> . Idle_Server(),
        <monitor_idle_server, exp(monitor_rate)> . Idle_Server()
      };
    Busy_Server(void; void) =
      choice {
        <prepare_result_packet, exp(1 / service_time)> . Responding_Server(),
        <receive_rpc_packet, _> . <ignore_rpc_packet, inf(1, 1)> . Busy_Server(),
        <drain_tick, exp(3 * drain_scale)> . Busy_Server(),
        <monitor_busy_server, exp(monitor_rate)> . Busy_Server()
      };
    Responding_Server(void; void) =
      choice {
        <send_result_packet, inf(1, 1)> . <notify_idle, inf(1, 1)> . Idle_Server(),
        <receive_rpc_packet, _> . <ignore_rpc_packet, inf(1, 1)> . Responding_Server(),
        <drain_tick, exp(3 * drain_scale)> . Responding_Server(),
        <monitor_busy_server, exp(monitor_rate)> . Responding_Server()
      };
    Sleeping_Server(void; void) =
      <receive_rpc_packet, _> . Awaking_Server();
    Awaking_Server(void; void) =
      choice {
        <awake, exp(1 / awake_time)> . Busy_Server(),
        <receive_rpc_packet, _> . <ignore_rpc_packet, inf(1, 1)> . Awaking_Server(),
        <drain_tick, exp(2 * drain_scale)> . Awaking_Server(),
        <monitor_awaking_server, exp(monitor_rate)> . Awaking_Server()
      }
  INPUT_INTERACTIONS UNI receive_rpc_packet; receive_shutdown
  OUTPUT_INTERACTIONS UNI send_result_packet; notify_busy; notify_idle; drain_tick
"""

_SERVER_BATTERY_NODPM = """
ELEM_TYPE Server_Type(void)
  BEHAVIOR
    Idle_Server(void; void) =
      choice {
        <receive_rpc_packet, _> . Busy_Server(),
        <drain_tick, exp(2 * drain_scale)> . Idle_Server(),
        <monitor_idle_server, exp(monitor_rate)> . Idle_Server()
      };
    Busy_Server(void; void) =
      choice {
        <prepare_result_packet, exp(1 / service_time)> . Responding_Server(),
        <receive_rpc_packet, _> . <ignore_rpc_packet, inf(1, 1)> . Busy_Server(),
        <drain_tick, exp(3 * drain_scale)> . Busy_Server(),
        <monitor_busy_server, exp(monitor_rate)> . Busy_Server()
      };
    Responding_Server(void; void) =
      choice {
        <send_result_packet, inf(1, 1)> . Idle_Server(),
        <receive_rpc_packet, _> . <ignore_rpc_packet, inf(1, 1)> . Responding_Server(),
        <drain_tick, exp(3 * drain_scale)> . Responding_Server(),
        <monitor_busy_server, exp(monitor_rate)> . Responding_Server()
      }
  INPUT_INTERACTIONS UNI receive_rpc_packet
  OUTPUT_INTERACTIONS UNI send_result_packet; drain_tick
"""

_BATTERY = """
ELEM_TYPE Battery_Type(void)
  BEHAVIOR
    Battery(int charge := 25; void) =
      choice {
        cond(charge > 0) -> <consume_unit, _> . Battery(charge - 1),
        cond(charge = 0) -> <monitor_battery_empty, exp(monitor_rate)> . Battery(0)
      }
  INPUT_INTERACTIONS UNI consume_unit
  OUTPUT_INTERACTIONS void
"""

_TOPOLOGY_BATTERY_DPM = """
ARCHI_TOPOLOGY
  ARCHI_ELEM_INSTANCES
    S : Server_Type();
    RCS : Radio_Channel_Type();
    RSC : Radio_Channel_Type();
    C : Sync_Client_Type();
    DPM : DPM_Type();
    BAT : Battery_Type(battery_capacity)
  ARCHI_ATTACHMENTS
    FROM C.send_rpc_packet TO RCS.get_packet;
    FROM RCS.deliver_packet TO S.receive_rpc_packet;
    FROM S.send_result_packet TO RSC.get_packet;
    FROM RSC.deliver_packet TO C.receive_result_packet;
    FROM DPM.send_shutdown TO S.receive_shutdown;
    FROM S.notify_busy TO DPM.receive_busy_notice;
    FROM S.notify_idle TO DPM.receive_idle_notice;
    FROM S.drain_tick TO BAT.consume_unit
END
"""

_TOPOLOGY_BATTERY_NODPM = """
ARCHI_TOPOLOGY
  ARCHI_ELEM_INSTANCES
    S : Server_Type();
    RCS : Radio_Channel_Type();
    RSC : Radio_Channel_Type();
    C : Sync_Client_Type();
    BAT : Battery_Type(battery_capacity)
  ARCHI_ATTACHMENTS
    FROM C.send_rpc_packet TO RCS.get_packet;
    FROM RCS.deliver_packet TO S.receive_rpc_packet;
    FROM S.send_result_packet TO RSC.get_packet;
    FROM RSC.deliver_packet TO C.receive_result_packet;
    FROM S.drain_tick TO BAT.consume_unit
END
"""

BATTERY_DPM_SPEC = (
    "ARCHI_TYPE Rpc_Battery_Dpm" + _BATTERY_CONST_HEADER
    + "ARCHI_ELEM_TYPES"
    + _SERVER_BATTERY_DPM + _CHANNEL + _CLIENT + _DPM + _BATTERY
    + _TOPOLOGY_BATTERY_DPM
)

BATTERY_NODPM_SPEC = (
    "ARCHI_TYPE Rpc_Battery_Nodpm" + _BATTERY_CONST_HEADER
    + "ARCHI_ELEM_TYPES"
    + _SERVER_BATTERY_NODPM + _CHANNEL + _CLIENT + _BATTERY
    + _TOPOLOGY_BATTERY_NODPM
)

#: Marker label of the empty-battery states.
EMPTY_MARKER = "BAT.monitor_battery_empty"


def dpm_architecture() -> ArchiType:
    """Battery-extended Markovian rpc model with the DPM."""
    return parse_architecture(BATTERY_DPM_SPEC)


def nodpm_architecture() -> ArchiType:
    """Battery-extended Markovian rpc model without the DPM."""
    return parse_architecture(BATTERY_NODPM_SPEC)


def empty_battery_states(ctmc: CTMC) -> List[int]:
    """CTMC states in which the battery is empty."""
    return [
        state
        for state in range(ctmc.num_states)
        if any(
            matches(EMPTY_MARKER, label)
            for label in ctmc.enabled_labels(state)
        )
    ]


def expected_lifetime(
    archi: ArchiType,
    const_overrides: Optional[dict] = None,
    max_states: int = 200_000,
) -> float:
    """Expected time (ms) until the battery is drained."""
    lts = generate_lts(archi, const_overrides, max_states)
    ctmc = build_ctmc(lts)
    empty = empty_battery_states(ctmc)
    if not empty:
        raise AnalysisError(
            "no empty-battery states are reachable; "
            "is the battery capacity too large for the state budget?"
        )
    times = mean_time_to_absorption(ctmc, empty)
    return float(ctmc.initial_distribution @ times)

"""The rpc case study: a power-manageable server called by a blocking client.

See Fig. 2.a of the paper.  :func:`family` packages the six models for the
:class:`~repro.core.methodology.IncrementalMethodology`.
"""


from ...core.methodology import ModelFamily
from . import functional, general, markovian
from .parameters import (
    DEFAULT_PARAMETERS,
    SHUTDOWN_TIMEOUT_SWEEP,
    RpcParameters,
)


def family() -> ModelFamily:
    """The revised rpc model family (functional + Markovian + general)."""
    return ModelFamily(
        name="rpc",
        functional_dpm=functional.revised_architecture(),
        markovian_dpm=markovian.dpm_architecture(),
        markovian_nodpm=markovian.nodpm_architecture(),
        general_dpm=general.dpm_architecture(),
        general_nodpm=general.nodpm_architecture(),
        high_patterns=functional.HIGH_PATTERNS,
        low_patterns=functional.LOW_PATTERNS,
        measures=markovian.measures(),
        # The client's packet-processing time is the workload knob of
        # this case study: a --workload replaces its duration
        # (docs/WORKLOADS.md).
        workload_pattern="C.process_result_packet",
    )


__all__ = [
    "family",
    "functional",
    "markovian",
    "general",
    "DEFAULT_PARAMETERS",
    "SHUTDOWN_TIMEOUT_SWEEP",
    "RpcParameters",
]

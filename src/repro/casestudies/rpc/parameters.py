"""Parameters of the rpc case study (the paper's Sect. 4.1 and 5.2).

All times are in milliseconds, matching the paper:

* average server service time 0.2 ms,
* average server awaking time 3 ms,
* average packet propagation time 0.8 ms (std-dev 0.0345 ms in the
  general model's Gaussian channel),
* packet loss probability 0.02,
* average client processing time 9.7 ms,
* average client timeout 2 ms,
* DPM shutdown period swept between 0 and 25 ms.

Power levels follow the paper's energy reward structure: idle 2, busy 3,
awaking 2, sleeping 0 (arbitrary power units).

The mean idle period of the server — result propagation + client
processing + request propagation = 0.8 + 9.7 + 0.8 = 11.3 ms — is where
the general model's bimodal knee falls (Sect. 5.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class RpcParameters:
    """Parameter set of the rpc benchmark (times in ms)."""

    service_time: float = 0.2
    awake_time: float = 3.0
    propagation_time: float = 0.8
    propagation_sigma: float = 0.0345
    loss_probability: float = 0.02
    processing_time: float = 9.7
    timeout_time: float = 2.0
    shutdown_timeout: float = 5.0
    power_idle: float = 2.0
    power_busy: float = 3.0
    power_awaking: float = 2.0
    monitor_rate: float = 1.0

    @property
    def mean_idle_period(self) -> float:
        """Expected server idle period (the fig3-right knee location)."""
        return (
            self.propagation_time
            + self.processing_time
            + self.propagation_time
        )

    def const_overrides(self) -> Dict[str, float]:
        """Override map for the architectures' const parameters."""
        return {
            "service_time": self.service_time,
            "awake_time": self.awake_time,
            "prop_time": self.propagation_time,
            "prop_sigma": self.propagation_sigma,
            "loss_prob": self.loss_probability,
            "proc_time": self.processing_time,
            "timeout_time": self.timeout_time,
            "shutdown_timeout": self.shutdown_timeout,
        }


#: Default parameter set (the paper's values).
DEFAULT_PARAMETERS = RpcParameters()

#: Shutdown timeouts swept in Fig. 3 (ms).  The paper sweeps 0-25 ms; an
#: exact zero would be an infinite exponential rate, so the sweep starts
#: just above zero.
SHUTDOWN_TIMEOUT_SWEEP: List[float] = [
    0.5, 1.0, 2.0, 3.0, 5.0, 7.5, 10.0, 12.5, 15.0, 20.0, 25.0,
]

"""Functional (untimed) models of the rpc case study (Sect. 2.3 and 3.1).

Two specifications are provided:

* :data:`SIMPLIFIED_SPEC` — the paper's Sect. 2.3 model: ideal radio
  channels, a trivial DPM that shuts the server down regardless of its
  state, and a blocking client without timeouts.  This model **fails** the
  noninterference check; the equivalence checker's distinguishing formula
  (reproduced by our checker) shows a computation where the client waits
  forever after issuing an rpc.
* :data:`REVISED_SPEC` — the paper's Sect. 3.1 repaired model: lossy
  channels, a client with a timeout/resend mechanism that discards stale
  results, a server that ignores duplicate requests and notifies the DPM of
  its state, and a DPM that only shuts the server down when it is idle.
  This model **passes** the check.
"""

from __future__ import annotations

from ...aemilia.architecture import ArchiType
from ...aemilia.parser import parse_architecture

#: High (DPM) action patterns for noninterference analysis.
HIGH_PATTERNS = ["DPM.send_shutdown"]

#: Low (client-observable) action patterns.
LOW_PATTERNS = [
    "C.send_rpc_packet",
    "C.receive_result_packet",
    "C.process_result_packet",
]

SIMPLIFIED_SPEC = """
ARCHI_TYPE Rpc_Dpm_Untimed_Simplified(void)

ARCHI_ELEM_TYPES

ELEM_TYPE Server_Type(void)
  BEHAVIOR
    Idle_Server(void; void) =
      choice {
        <receive_rpc_packet, _> . Busy_Server(),
        <receive_shutdown, _> . Sleeping_Server()
      };
    Busy_Server(void; void) =
      choice {
        <prepare_result_packet, _> . Responding_Server(),
        <receive_shutdown, _> . Sleeping_Server()
      };
    Responding_Server(void; void) =
      choice {
        <send_result_packet, _> . Idle_Server(),
        <receive_shutdown, _> . Sleeping_Server()
      };
    Sleeping_Server(void; void) =
      <receive_rpc_packet, _> . Awaking_Server();
    Awaking_Server(void; void) =
      <awake, _> . Busy_Server()
  INPUT_INTERACTIONS UNI receive_rpc_packet; receive_shutdown
  OUTPUT_INTERACTIONS UNI send_result_packet

ELEM_TYPE Radio_Channel_Type(void)
  BEHAVIOR
    Radio_Channel(void; void) =
      <get_packet, _> .
      <propagate_packet, _> .
      <deliver_packet, _> .
      Radio_Channel()
  INPUT_INTERACTIONS UNI get_packet
  OUTPUT_INTERACTIONS UNI deliver_packet

ELEM_TYPE Sync_Client_Type(void)
  BEHAVIOR
    Sync_Client(void; void) =
      <send_rpc_packet, _> .
      <receive_result_packet, _> .
      <process_result_packet, _> .
      Sync_Client()
  INPUT_INTERACTIONS UNI receive_result_packet
  OUTPUT_INTERACTIONS UNI send_rpc_packet

ELEM_TYPE DPM_Type(void)
  BEHAVIOR
    DPM_Beh(void; void) =
      <send_shutdown, _> . DPM_Beh()
  INPUT_INTERACTIONS void
  OUTPUT_INTERACTIONS UNI send_shutdown

ARCHI_TOPOLOGY
  ARCHI_ELEM_INSTANCES
    S : Server_Type();
    RCS : Radio_Channel_Type();
    RSC : Radio_Channel_Type();
    C : Sync_Client_Type();
    DPM : DPM_Type()
  ARCHI_ATTACHMENTS
    FROM C.send_rpc_packet TO RCS.get_packet;
    FROM RCS.deliver_packet TO S.receive_rpc_packet;
    FROM S.send_result_packet TO RSC.get_packet;
    FROM RSC.deliver_packet TO C.receive_result_packet;
    FROM DPM.send_shutdown TO S.receive_shutdown
END
"""

REVISED_SPEC = """
ARCHI_TYPE Rpc_Dpm_Untimed_Revised(void)

ARCHI_ELEM_TYPES

ELEM_TYPE Server_Type(void)
  BEHAVIOR
    Idle_Server(void; void) =
      choice {
        <receive_rpc_packet, _> . <notify_busy, _> . Busy_Server(),
        <receive_shutdown, _> . Sleeping_Server()
      };
    Busy_Server(void; void) =
      choice {
        <prepare_result_packet, _> . Responding_Server(),
        <receive_rpc_packet, _> . <ignore_rpc_packet, _> . Busy_Server()
      };
    Responding_Server(void; void) =
      choice {
        <send_result_packet, _> . <notify_idle, _> . Idle_Server(),
        <receive_rpc_packet, _> . <ignore_rpc_packet, _> . Responding_Server()
      };
    Sleeping_Server(void; void) =
      <receive_rpc_packet, _> . Awaking_Server();
    Awaking_Server(void; void) =
      choice {
        <awake, _> . Busy_Server(),
        <receive_rpc_packet, _> . <ignore_rpc_packet, _> . Awaking_Server()
      }
  INPUT_INTERACTIONS UNI receive_rpc_packet; receive_shutdown
  OUTPUT_INTERACTIONS UNI send_result_packet; notify_busy; notify_idle

ELEM_TYPE Radio_Channel_Type(void)
  BEHAVIOR
    Radio_Channel(void; void) =
      <get_packet, _> .
      <propagate_packet, _> .
      choice {
        <keep_packet, _> . <deliver_packet, _> . Radio_Channel(),
        <lose_packet, _> . Radio_Channel()
      }
  INPUT_INTERACTIONS UNI get_packet
  OUTPUT_INTERACTIONS UNI deliver_packet

ELEM_TYPE Sync_Client_Type(void)
  BEHAVIOR
    Requesting_Client(void; void) =
      choice {
        <send_rpc_packet, _> . Waiting_Client(),
        <receive_result_packet, _> . <ignore_result_packet, _> . Requesting_Client()
      };
    Waiting_Client(void; void) =
      choice {
        <receive_result_packet, _> . Processing_Client(),
        <expire_timeout, _> . Resending_Client()
      };
    Processing_Client(void; void) =
      choice {
        <process_result_packet, _> . Requesting_Client(),
        <receive_result_packet, _> . <ignore_result_packet, _> . Processing_Client()
      };
    Resending_Client(void; void) =
      choice {
        <send_rpc_packet, _> . Waiting_Client(),
        <receive_result_packet, _> . Processing_Client()
      }
  INPUT_INTERACTIONS UNI receive_result_packet
  OUTPUT_INTERACTIONS UNI send_rpc_packet

ELEM_TYPE DPM_Type(void)
  BEHAVIOR
    Enabled_DPM(void; void) =
      choice {
        <send_shutdown, _> . Disabled_DPM(),
        <receive_busy_notice, _> . Disabled_DPM()
      };
    Disabled_DPM(void; void) =
      <receive_idle_notice, _> . Enabled_DPM()
  INPUT_INTERACTIONS UNI receive_busy_notice; receive_idle_notice
  OUTPUT_INTERACTIONS UNI send_shutdown

ARCHI_TOPOLOGY
  ARCHI_ELEM_INSTANCES
    S : Server_Type();
    RCS : Radio_Channel_Type();
    RSC : Radio_Channel_Type();
    C : Sync_Client_Type();
    DPM : DPM_Type()
  ARCHI_ATTACHMENTS
    FROM C.send_rpc_packet TO RCS.get_packet;
    FROM RCS.deliver_packet TO S.receive_rpc_packet;
    FROM S.send_result_packet TO RSC.get_packet;
    FROM RSC.deliver_packet TO C.receive_result_packet;
    FROM DPM.send_shutdown TO S.receive_shutdown;
    FROM S.notify_busy TO DPM.receive_busy_notice;
    FROM S.notify_idle TO DPM.receive_idle_notice
END
"""


def simplified_architecture() -> ArchiType:
    """Parse the Sect. 2.3 simplified model (fails noninterference)."""
    return parse_architecture(SIMPLIFIED_SPEC)


def revised_architecture() -> ArchiType:
    """Parse the Sect. 3.1 revised model (passes noninterference)."""
    return parse_architecture(REVISED_SPEC)

"""General (realistically timed) models of the rpc case study (Sect. 5.2).

Relative to the Markovian models, the general models make

* the server service time, server awaking time, client processing time,
  client timeout and DPM shutdown period **deterministic**, and
* the packet propagation time **normally distributed** (mean 0.8 ms,
  standard deviation 0.0345 ms — the paper's Gaussian channel),

while the loss probability stays an immediate probabilistic choice.  The
model is analysed by discrete-event simulation; plugging exponential
distributions back in (mean-preserving) must reproduce the Markovian
results — that is the Sect. 5.1 validation, automated by
:func:`repro.core.validation.cross_validate`.

The interesting phenomenon (Fig. 3, right): the three indices depend
bimodally on the (deterministic) shutdown timeout, with the knee at the
mean idle period 0.8 + 9.7 + 0.8 = 11.3 ms, and the DPM is
counterproductive for timeouts just below the idle period.
"""

from __future__ import annotations

from typing import List

from ...aemilia.architecture import ArchiType
from ...aemilia.parser import parse_architecture
from ...ctmc.measures import Measure
from .markovian import (
    MEASURE_SPEC,
    _CHANNEL,
    _CLIENT,
    _CONST_HEADER,
    _DPM,
    _SERVER_DPM,
    _SERVER_NODPM,
    _TOPOLOGY_DPM,
    _TOPOLOGY_NODPM,
)
from ...ctmc.measure_lang import parse_measures

_GENERAL_CONST_HEADER = _CONST_HEADER.replace(
    "const real monitor_rate := 1.0)",
    "const real monitor_rate := 1.0,\n    const real prop_sigma := 0.0345)",
)


def _generalize(spec: str) -> str:
    """Rewrite the Markovian rates into the general ones."""
    replacements = [
        # Deterministic activity durations.
        ("exp(1 / service_time)", "det(service_time)"),
        ("exp(1 / awake_time)", "det(awake_time)"),
        ("exp(1 / proc_time)", "det(proc_time)"),
        ("exp(1 / timeout_time)", "det(timeout_time)"),
        ("exp(1 / shutdown_timeout)", "det(shutdown_timeout)"),
        # Gaussian channel.
        ("exp(1 / prop_time)", "normal(prop_time, prop_sigma)"),
    ]
    for old, new in replacements:
        spec = spec.replace(old, new)
    return spec


GENERAL_DPM_SPEC = _generalize(
    "ARCHI_TYPE Rpc_General_Dpm" + _GENERAL_CONST_HEADER
    + "ARCHI_ELEM_TYPES"
    + _SERVER_DPM + _CHANNEL + _CLIENT + _DPM + _TOPOLOGY_DPM
)

GENERAL_NODPM_SPEC = _generalize(
    "ARCHI_TYPE Rpc_General_Nodpm" + _GENERAL_CONST_HEADER
    + "ARCHI_ELEM_TYPES"
    + _SERVER_NODPM + _CHANNEL + _CLIENT + _TOPOLOGY_NODPM
)


def dpm_architecture() -> ArchiType:
    """General rpc model with the DPM."""
    return parse_architecture(GENERAL_DPM_SPEC)


def nodpm_architecture() -> ArchiType:
    """General rpc model without the DPM."""
    return parse_architecture(GENERAL_NODPM_SPEC)


def measures() -> List[Measure]:
    """Same reward structures as the Markovian phase (required for
    validation to be like-for-like)."""
    return parse_measures(MEASURE_SPEC)

"""Markovian models of the rpc case study (the paper's Sect. 4.1).

The functional (revised) model is enriched with exponentially distributed
durations plus monitoring self-loops used by the reward measures:

* transport/notification/bookkeeping actions are immediate (``inf``);
* the lossy channel resolves keep/lose with immediate weights
  ``1 - loss_prob`` / ``loss_prob``;
* the DPM issues a shutdown an exponentially distributed time (mean
  ``shutdown_timeout``) after the server became idle, unless the server
  becomes busy first (the paper's *timeout policy*);
* ``monitor_*`` self-loops mark the states whose residence the measures
  observe, exactly as the paper describes ("further exponentially timed
  actions resulting in self-loops ... to monitor the residence in certain
  states").

Measures (from the paper, verbatim):

* ``throughput`` — rate of ``process_result_packet`` completions;
* ``waiting_time`` — probability mass of the client waiting for a result
  (``monitor_waiting_client``);
* ``energy`` — average power: idle 2, busy 3, awaking 2 (sleeping 0).

``energy / throughput`` gives the paper's *energy per request* and
``waiting_time / throughput`` the *average waiting time* via Little's law;
the experiment harness derives both.
"""

from __future__ import annotations

from typing import List

from ...aemilia.architecture import ArchiType
from ...aemilia.parser import parse_architecture
from ...ctmc.measure_lang import parse_measures
from ...ctmc.measures import Measure

_CONST_HEADER = """(
    const real service_time := 0.2,
    const real awake_time := 3.0,
    const real prop_time := 0.8,
    const real loss_prob := 0.02,
    const real proc_time := 9.7,
    const real timeout_time := 2.0,
    const real shutdown_timeout := 5.0,
    const real monitor_rate := 1.0)
"""

_SERVER_DPM = """
ELEM_TYPE Server_Type(void)
  BEHAVIOR
    Idle_Server(void; void) =
      choice {
        <receive_rpc_packet, _> . <notify_busy, inf(1, 1)> . Busy_Server(),
        <receive_shutdown, _> . Sleeping_Server(),
        <monitor_idle_server, exp(monitor_rate)> . Idle_Server()
      };
    Busy_Server(void; void) =
      choice {
        <prepare_result_packet, exp(1 / service_time)> . Responding_Server(),
        <receive_rpc_packet, _> . <ignore_rpc_packet, inf(1, 1)> . Busy_Server(),
        <monitor_busy_server, exp(monitor_rate)> . Busy_Server()
      };
    Responding_Server(void; void) =
      choice {
        <send_result_packet, inf(1, 1)> . <notify_idle, inf(1, 1)> . Idle_Server(),
        <receive_rpc_packet, _> . <ignore_rpc_packet, inf(1, 1)> . Responding_Server(),
        <monitor_busy_server, exp(monitor_rate)> . Responding_Server()
      };
    Sleeping_Server(void; void) =
      <receive_rpc_packet, _> . Awaking_Server();
    Awaking_Server(void; void) =
      choice {
        <awake, exp(1 / awake_time)> . Busy_Server(),
        <receive_rpc_packet, _> . <ignore_rpc_packet, inf(1, 1)> . Awaking_Server(),
        <monitor_awaking_server, exp(monitor_rate)> . Awaking_Server()
      }
  INPUT_INTERACTIONS UNI receive_rpc_packet; receive_shutdown
  OUTPUT_INTERACTIONS UNI send_result_packet; notify_busy; notify_idle
"""

_SERVER_NODPM = """
ELEM_TYPE Server_Type(void)
  BEHAVIOR
    Idle_Server(void; void) =
      choice {
        <receive_rpc_packet, _> . Busy_Server(),
        <monitor_idle_server, exp(monitor_rate)> . Idle_Server()
      };
    Busy_Server(void; void) =
      choice {
        <prepare_result_packet, exp(1 / service_time)> . Responding_Server(),
        <receive_rpc_packet, _> . <ignore_rpc_packet, inf(1, 1)> . Busy_Server(),
        <monitor_busy_server, exp(monitor_rate)> . Busy_Server()
      };
    Responding_Server(void; void) =
      choice {
        <send_result_packet, inf(1, 1)> . Idle_Server(),
        <receive_rpc_packet, _> . <ignore_rpc_packet, inf(1, 1)> . Responding_Server(),
        <monitor_busy_server, exp(monitor_rate)> . Responding_Server()
      }
  INPUT_INTERACTIONS UNI receive_rpc_packet
  OUTPUT_INTERACTIONS UNI send_result_packet
"""

_CHANNEL = """
ELEM_TYPE Radio_Channel_Type(void)
  BEHAVIOR
    Radio_Channel(void; void) =
      <get_packet, _> .
      <propagate_packet, exp(1 / prop_time)> .
      choice {
        <keep_packet, inf(1, 1 - loss_prob)> . <deliver_packet, inf(1, 1)> . Radio_Channel(),
        <lose_packet, inf(1, loss_prob)> . Radio_Channel()
      }
  INPUT_INTERACTIONS UNI get_packet
  OUTPUT_INTERACTIONS UNI deliver_packet
"""

_CLIENT = """
ELEM_TYPE Sync_Client_Type(void)
  BEHAVIOR
    Requesting_Client(void; void) =
      choice {
        <send_rpc_packet, inf(1, 1)> . Waiting_Client(),
        <receive_result_packet, _> . <ignore_result_packet, inf(1, 1)> . Requesting_Client()
      };
    Waiting_Client(void; void) =
      choice {
        <receive_result_packet, _> . Processing_Client(),
        <expire_timeout, exp(1 / timeout_time)> . Resending_Client(),
        <monitor_waiting_client, exp(monitor_rate)> . Waiting_Client()
      };
    Processing_Client(void; void) =
      choice {
        <process_result_packet, exp(1 / proc_time)> . Requesting_Client(),
        <receive_result_packet, _> . <ignore_result_packet, inf(1, 1)> . Processing_Client()
      };
    Resending_Client(void; void) =
      choice {
        <send_rpc_packet, inf(1, 1)> . Waiting_Client(),
        <receive_result_packet, _> . Processing_Client(),
        <monitor_waiting_client, exp(monitor_rate)> . Resending_Client()
      }
  INPUT_INTERACTIONS UNI receive_result_packet
  OUTPUT_INTERACTIONS UNI send_rpc_packet
"""

_DPM = """
ELEM_TYPE DPM_Type(void)
  BEHAVIOR
    Enabled_DPM(void; void) =
      choice {
        <send_shutdown, exp(1 / shutdown_timeout)> . Disabled_DPM(),
        <receive_busy_notice, _> . Disabled_DPM()
      };
    Disabled_DPM(void; void) =
      <receive_idle_notice, _> . Enabled_DPM()
  INPUT_INTERACTIONS UNI receive_busy_notice; receive_idle_notice
  OUTPUT_INTERACTIONS UNI send_shutdown
"""

_TOPOLOGY_DPM = """
ARCHI_TOPOLOGY
  ARCHI_ELEM_INSTANCES
    S : Server_Type();
    RCS : Radio_Channel_Type();
    RSC : Radio_Channel_Type();
    C : Sync_Client_Type();
    DPM : DPM_Type()
  ARCHI_ATTACHMENTS
    FROM C.send_rpc_packet TO RCS.get_packet;
    FROM RCS.deliver_packet TO S.receive_rpc_packet;
    FROM S.send_result_packet TO RSC.get_packet;
    FROM RSC.deliver_packet TO C.receive_result_packet;
    FROM DPM.send_shutdown TO S.receive_shutdown;
    FROM S.notify_busy TO DPM.receive_busy_notice;
    FROM S.notify_idle TO DPM.receive_idle_notice
END
"""

_TOPOLOGY_NODPM = """
ARCHI_TOPOLOGY
  ARCHI_ELEM_INSTANCES
    S : Server_Type();
    RCS : Radio_Channel_Type();
    RSC : Radio_Channel_Type();
    C : Sync_Client_Type()
  ARCHI_ATTACHMENTS
    FROM C.send_rpc_packet TO RCS.get_packet;
    FROM RCS.deliver_packet TO S.receive_rpc_packet;
    FROM S.send_result_packet TO RSC.get_packet;
    FROM RSC.deliver_packet TO C.receive_result_packet
END
"""

MARKOVIAN_DPM_SPEC = (
    "ARCHI_TYPE Rpc_Markov_Dpm" + _CONST_HEADER
    + "ARCHI_ELEM_TYPES"
    + _SERVER_DPM + _CHANNEL + _CLIENT + _DPM + _TOPOLOGY_DPM
)

MARKOVIAN_NODPM_SPEC = (
    "ARCHI_TYPE Rpc_Markov_Nodpm" + _CONST_HEADER
    + "ARCHI_ELEM_TYPES"
    + _SERVER_NODPM + _CHANNEL + _CLIENT + _TOPOLOGY_NODPM
)

#: The paper's measure definitions (Sect. 4.1), verbatim syntax.
MEASURE_SPEC = """
MEASURE throughput IS
  ENABLED(C.process_result_packet) -> TRANS_REWARD(1);
MEASURE waiting_time IS
  ENABLED(C.monitor_waiting_client) -> STATE_REWARD(1);
MEASURE energy IS
  ENABLED(S.monitor_idle_server) -> STATE_REWARD(2)
  ENABLED(S.monitor_busy_server) -> STATE_REWARD(3)
  ENABLED(S.monitor_awaking_server) -> STATE_REWARD(2);
"""


def dpm_architecture() -> ArchiType:
    """Markovian rpc model with the DPM."""
    return parse_architecture(MARKOVIAN_DPM_SPEC)


def nodpm_architecture() -> ArchiType:
    """Markovian rpc model without the DPM."""
    return parse_architecture(MARKOVIAN_NODPM_SPEC)


def measures() -> List[Measure]:
    """The throughput / waiting-time / energy reward structures."""
    return parse_measures(MEASURE_SPEC)

"""Fleet reward measures, evaluated on any of the three representations.

A :class:`FleetMeasure` is a linear reward over the fleet steady state:

* ``device_weights`` — per-device state rewards, summed over the fleet
  (total power draw, number of sleeping devices, ...);
* ``coordinator_weights`` — coordinator-state rewards (queue length,
  loss indicator, ...);
* ``event_rewards`` — per-firing rewards on action labels (throughput,
  wake-up frequency, handoff frequency, ...).  Labels absent from a
  model (a policy without handoff has no ``handoff`` flow) contribute
  zero, so one measure list serves every policy.

The same measure evaluates against the lumped chain
(:class:`~repro.fleet.lumping.LumpedFleet`), the product-space
Kronecker form (:class:`~repro.fleet.kron.FleetProduct`) and the flat
oracle (:class:`~repro.fleet.flat.FlatFleet`); the three paths share no
arithmetic, which is what makes the differential tests meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Sequence

import numpy as np

from .flat import FlatFleet
from .kron import FleetProduct
from .lumping import LumpedFleet
from .topology import Automaton


@dataclass(frozen=True)
class FleetMeasure:
    """One linear steady-state reward over a fleet."""

    name: str
    device_weights: Mapping[str, float] = field(default_factory=dict)
    coordinator_weights: Mapping[str, float] = field(default_factory=dict)
    event_rewards: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self):
        object.__setattr__(self, "device_weights", dict(self.device_weights))
        object.__setattr__(
            self, "coordinator_weights", dict(self.coordinator_weights)
        )
        object.__setattr__(self, "event_rewards", dict(self.event_rewards))


def _weight_vector(
    automaton: Automaton, weights: Mapping[str, float]
) -> np.ndarray:
    vector = np.zeros(automaton.num_states)
    for name, weight in weights.items():
        vector[automaton.state_index(name)] = weight
    return vector


def _combine(
    measure: FleetMeasure,
    device_value: float,
    coordinator_value: float,
    flows: Mapping[str, float],
) -> float:
    value = device_value + coordinator_value
    for label, reward in measure.event_rewards.items():
        value += reward * flows.get(label, 0.0)
    return value


def evaluate_lumped(
    measures: Sequence[FleetMeasure], pi: np.ndarray, lumped: LumpedFleet
) -> Dict[str, float]:
    """Evaluate *measures* against a lumped steady-state distribution."""
    pi = np.asarray(pi, float).reshape(-1)
    flows = lumped.flows(pi)
    coordinator_distribution = lumped.coordinator_distribution(pi)
    expected_counts = lumped.expected_device_counts(pi)
    results = {}
    for measure in measures:
        device_value = float(
            expected_counts
            @ _weight_vector(lumped.topology.device, measure.device_weights)
        )
        coordinator_value = float(
            coordinator_distribution
            @ _weight_vector(
                lumped.topology.coordinator, measure.coordinator_weights
            )
        )
        results[measure.name] = _combine(
            measure, device_value, coordinator_value, flows
        )
    return results


def evaluate_product(
    measures: Sequence[FleetMeasure], pi: np.ndarray, product: FleetProduct
) -> Dict[str, float]:
    """Evaluate *measures* against a product-space distribution."""
    pi = np.asarray(pi, float).reshape(-1)
    flows = product.flows(pi)
    coordinator_marginal = product.coordinator_marginal(pi)
    device_marginals = [
        product.device_marginal(pi, position)
        for position in range(product.n)
    ]
    results = {}
    for measure in measures:
        device_value = float(
            sum(
                marginal
                @ _weight_vector(device, measure.device_weights)
                for marginal, device in zip(
                    device_marginals, product.devices
                )
            )
        )
        coordinator_value = float(
            coordinator_marginal
            @ _weight_vector(
                product.coordinator, measure.coordinator_weights
            )
        )
        results[measure.name] = _combine(
            measure, device_value, coordinator_value, flows
        )
    return results


def evaluate_flat(
    measures: Sequence[FleetMeasure], pi: np.ndarray, flat: FlatFleet
) -> Dict[str, float]:
    """Evaluate *measures* against the flat oracle's distribution."""
    pi = np.asarray(pi, float).reshape(-1)
    flows = flat.flows(pi)
    device_vectors = {}
    results = {}
    for measure in measures:
        key = tuple(sorted(measure.device_weights.items()))
        if key not in device_vectors:
            per_state = np.zeros(len(flat.states))
            vectors = [
                _weight_vector(device, measure.device_weights)
                for device in flat.devices
            ]
            for position, (_c, device_states) in enumerate(flat.states):
                per_state[position] = sum(
                    vectors[i][s] for i, s in enumerate(device_states)
                )
            device_vectors[key] = per_state
        coordinator_vector = _weight_vector(
            flat.coordinator, measure.coordinator_weights
        )
        coordinator_value = float(
            sum(
                pi[position] * coordinator_vector[c]
                for position, (c, _d) in enumerate(flat.states)
            )
        )
        results[measure.name] = _combine(
            measure,
            float(pi @ device_vectors[key]),
            coordinator_value,
            flows,
        )
    return results

"""Fleet steady-state solving through the matrix-free solver registry.

``solve_fleet`` is the funnel every fleet consumer (methodology sweeps,
CLI, benchmarks, tests) goes through: it builds the requested
representation of the topology —

* ``"lumped"`` (default): the exchangeability-lumped chain as a
  matrix-free :class:`~repro.fleet.lumping.LumpedOperator`, the only
  representation that scales (|S|^N product collapses to multiset
  counting *before* any operator exists);
* ``"product"``: the full product-space
  :class:`~repro.ctmc.kronecker.KroneckerOperator` (differential tests,
  heterogeneous fleets);

hands the operator to :func:`repro.ctmc.solve_steady_state` (which
auto-selects a matrix-free backend and skips ``direct``/``sor``),
evaluates the fleet measures, and emits the ``repro_fleet_*`` metrics.
The flat generator is never materialized on either path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from ..ctmc.solvers import (
    DEFAULT_MAX_ITERATIONS,
    DEFAULT_RESIDUAL_TOLERANCE,
    DEFAULT_TOLERANCE,
    SolverReport,
    solve_steady_state,
)
from ..errors import SpecificationError
from ..obs import metrics as obs_metrics
from .kron import build_product
from .lumping import LumpedFleet
from .measures import FleetMeasure, evaluate_lumped, evaluate_product
from .topology import FleetTopology

#: Valid values of ``solve_fleet``'s *representation* argument.
REPRESENTATIONS = ("lumped", "product")


@dataclass
class FleetSolution:
    """Measures plus solver/operator diagnostics of one fleet solve."""

    measures: Dict[str, float]
    report: SolverReport
    n: int
    representation: str
    product_states: int
    lumped_states: int
    operator_states: int
    nnz_equivalent: int
    matvecs: int
    pi: object = field(repr=False, default=None)

    def payload(self) -> Dict[str, object]:
        """JSON-ready summary (the CLI / benchmark shape)."""
        return {
            "measures": dict(sorted(self.measures.items())),
            "fleet_size": self.n,
            "representation": self.representation,
            "product_states": self.product_states,
            "lumped_states": self.lumped_states,
            "operator_states": self.operator_states,
            "operator_nnz_equivalent": self.nnz_equivalent,
            "matvecs": self.matvecs,
            "solver": {
                "method": self.report.method,
                "iterations": self.report.iterations,
                "residual": self.report.residual,
                "fallbacks": list(self.report.fallbacks),
            },
        }


def _record_fleet_metrics(
    topology: FleetTopology,
    representation: str,
    nnz_equivalent: int,
    matvecs: int,
) -> None:
    registry = obs_metrics.get_registry()
    obs_metrics.FLEET_DEVICES.on(registry).set(float(topology.n))
    obs_metrics.FLEET_PRODUCT_STATES.on(registry).set(
        float(topology.product_states)
    )
    obs_metrics.FLEET_LUMPED_STATES.on(registry).set(
        float(topology.lumped_states)
    )
    obs_metrics.FLEET_OPERATOR_NNZ.on(registry).labels(
        representation=representation
    ).set(float(nnz_equivalent))
    obs_metrics.FLEET_MATVECS.on(registry).labels(
        representation=representation
    ).inc(float(matvecs))


def solve_fleet(
    topology: FleetTopology,
    measures: Sequence[FleetMeasure],
    representation: str = "lumped",
    method: Optional[str] = None,
    tolerance: float = DEFAULT_TOLERANCE,
    residual_tolerance: float = DEFAULT_RESIDUAL_TOLERANCE,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    keep_distribution: bool = False,
) -> FleetSolution:
    """Solve one fleet steady state and evaluate its measures."""
    if representation not in REPRESENTATIONS:
        raise SpecificationError(
            f"unknown fleet representation {representation!r} "
            f"(have: {', '.join(REPRESENTATIONS)})"
        )
    if representation == "lumped":
        lumped = LumpedFleet(topology)
        operator = lumped.operator()
    else:
        product = build_product(topology)
        operator = product.generator.operator()
    solution = solve_steady_state(
        operator,
        method=method,
        tolerance=tolerance,
        residual_tolerance=residual_tolerance,
        max_iterations=max_iterations,
    )
    if representation == "lumped":
        values = evaluate_lumped(measures, solution.pi, lumped)
    else:
        values = evaluate_product(measures, solution.pi, product)
    _record_fleet_metrics(
        topology,
        representation,
        operator.nnz_equivalent,
        operator.matvec_count,
    )
    return FleetSolution(
        measures=values,
        report=solution.report,
        n=topology.n,
        representation=representation,
        product_states=topology.product_states,
        lumped_states=topology.lumped_states,
        operator_states=operator.shape[0],
        nnz_equivalent=operator.nnz_equivalent,
        matvecs=operator.matvec_count,
        pi=solution.pi if keep_distribution else None,
    )

"""Fleet assessment: checkpointed, fault-tolerant parameter sweeps.

:class:`FleetAssessment` is the fleet counterpart of
:class:`repro.core.methodology.IncrementalMethodology`: one point solve
(:meth:`solve`) plus a parameter sweep (:meth:`sweep`) that distributes
points over the :class:`~repro.runtime.ParallelExecutor` — workers-N
bit-identical to serial — with the full reliability surface: bounded
retries, deterministic chaos injection, span tracing and fingerprinted
JSONL checkpoints with SIGKILL-safe resume (docs/RELIABILITY.md).

Each sweep point rebuilds the two *component* automata (a handful of
states each — milliseconds) and solves the lumped or product operator
through the matrix-free registry; nothing of product-space size is ever
constructed.  The checkpoint fingerprint embeds everything that
determines point results — case, fleet size, policy, representation,
parameter, values, overrides and the resolved solver method — and
nothing that doesn't (notably not the worker count).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from ..core.methodology import summarize_solver_records
from ..ctmc.solvers import resolve_method
from ..errors import SpecificationError
from ..obs import log as obs_log
from ..obs import metrics as obs_metrics
from ..obs import tracing
from ..runtime import (
    FaultInjector,
    ParallelExecutor,
    RetryPolicy,
    SweepCheckpoint,
    Timer,
    TraceRecorder,
    resolve_workers,
    sweep_fingerprint,
)
from .solve import REPRESENTATIONS, solve_fleet

_LOG = obs_log.get_logger("fleet")


def _fleet_point(shared: Any, value: float) -> Dict[str, object]:
    """Solve one fleet sweep point (executor task, must stay pickleable).

    Rebuilds the component automata with the point's parameter value
    folded into the Æmilia consts, then solves through
    :func:`repro.fleet.solve.solve_fleet`.
    """
    (n, policy, parameter, base_overrides, representation, method) = shared
    from ..casestudies.fleet import build_model, DEFAULT_PARAMETERS

    overrides = dict(base_overrides)
    overrides[parameter] = float(value)
    model = build_model(
        n, policy, DEFAULT_PARAMETERS.override(overrides)
    )
    with tracing.span(
        "fleet:solve", value=float(value), representation=representation
    ):
        solution = solve_fleet(
            model.topology,
            model.measures,
            representation=representation,
            method=method,
        )
    return {
        "measures": solution.measures,
        "solver": solution.report.as_dict(),
        "operator": {
            "representation": solution.representation,
            "states": solution.operator_states,
            "product_states": solution.product_states,
            "lumped_states": solution.lumped_states,
            "nnz_equivalent": solution.nnz_equivalent,
            "matvecs": solution.matvecs,
        },
    }


class FleetAssessment:
    """Drives fleet solves and sweeps for one (size, policy) setting."""

    def __init__(
        self,
        n: int,
        policy: str = "balanced",
        workers: Optional[int] = 1,
        representation: str = "lumped",
        retry: Optional[RetryPolicy] = None,
        faults: Optional[FaultInjector] = None,
        tracer: Optional[TraceRecorder] = None,
        solver: Optional[str] = None,
    ):
        from ..casestudies.fleet import policy as resolve_policy

        resolve_policy(policy)  # fail fast on unknown names
        if representation not in REPRESENTATIONS:
            raise SpecificationError(
                f"unknown fleet representation {representation!r} "
                f"(have: {', '.join(REPRESENTATIONS)})"
            )
        self.n = int(n)
        self.policy = policy
        self.workers = resolve_workers(workers)
        self.representation = representation
        self.retry = retry
        self.faults = faults
        self.tracer = tracer
        self.solver = solver
        self.timer = Timer()
        #: Per-point solver reports in execution order.
        self.solver_records: List[Dict[str, object]] = []
        #: Per-point operator diagnostics in execution order.
        self.operator_records: List[Dict[str, object]] = []

    # -- plumbing (mirrors IncrementalMethodology) -------------------------

    def _solver_method(self, method: Optional[str]) -> str:
        return resolve_method(method if method is not None else self.solver)

    def _executor(self, workers: Optional[int]) -> ParallelExecutor:
        return ParallelExecutor(
            self.workers if workers is None else workers
        )

    def _resilience(self, checkpoint: Optional[SweepCheckpoint], phase: str):
        if (
            self.retry is None
            and self.faults is None
            and self.tracer is None
            and checkpoint is None
        ):
            return {}
        if self.tracer is None:
            self.tracer = TraceRecorder()
        return {
            "retry": self.retry,
            "faults": self.faults,
            "tracer": self.tracer,
            "checkpoint": checkpoint,
            "phase": phase,
        }

    def runtime_stats(self) -> Dict[str, object]:
        stats: Dict[str, object] = {
            "workers": self.workers,
            "timings": self.timer.as_dict(),
        }
        if self.solver_records:
            stats["solver"] = summarize_solver_records(self.solver_records)
        if self.operator_records:
            last = self.operator_records[-1]
            stats["operator"] = dict(last)
        if self.tracer is not None:
            stats["retries"] = self.tracer.retries
            stats["checkpoint_hits"] = self.tracer.checkpoint_hits
            stats["trace"] = self.tracer.summary()
        return stats

    # -- solving -----------------------------------------------------------

    def solve(
        self,
        const_overrides: Optional[Dict[str, float]] = None,
        method: Optional[str] = None,
    ) -> Dict[str, object]:
        """Solve one fleet point; returns the worker payload shape."""
        from ..casestudies.fleet import DEFAULT_PARAMETERS, build_model

        parameters = DEFAULT_PARAMETERS.override(const_overrides or {})
        model = build_model(self.n, self.policy, parameters)
        with self.timer.span("solve"):
            solution = solve_fleet(
                model.topology,
                model.measures,
                representation=self.representation,
                method=self._solver_method(method),
            )
        result = {
            "measures": solution.measures,
            "solver": solution.report.as_dict(),
            "operator": solution.payload(),
        }
        self.solver_records.append(result["solver"])
        return result

    def sweep(
        self,
        parameter: str,
        values: Sequence[float],
        const_overrides: Optional[Dict[str, float]] = None,
        method: Optional[str] = None,
        workers: Optional[int] = None,
        checkpoint: Optional[str] = None,
    ) -> Dict[str, List[float]]:
        """Sweep one fleet parameter; series keyed by measure name."""
        from ..casestudies.fleet import DEFAULT_PARAMETERS

        method = self._solver_method(method)
        base_overrides = dict(const_overrides or {})
        # Validate the parameter names before any worker sees them.
        DEFAULT_PARAMETERS.override(
            {**base_overrides, parameter: float(values[0])}
        )
        _LOG.info(
            "fleet sweep: n=%d policy=%s over %s (%d points, %s, "
            "workers=%d)",
            self.n, self.policy, parameter, len(values),
            self.representation,
            self.workers if workers is None else resolve_workers(workers),
        )
        tracing.add_attributes(
            parameter=parameter, points=len(values),
            fleet_size=self.n, policy=self.policy,
            representation=self.representation, method=method,
        )
        executor = self._executor(workers)
        journal = None
        if checkpoint is not None:
            journal = SweepCheckpoint(
                checkpoint,
                sweep_fingerprint(
                    family="fleet",
                    kind="fleet",
                    fleet_size=self.n,
                    policy=self.policy,
                    representation=self.representation,
                    parameter=parameter,
                    values=[float(v) for v in values],
                    const_overrides=sorted(base_overrides.items()),
                    method=method,
                ),
            )
        resilience = self._resilience(journal, "solve")
        shared = (
            self.n, self.policy, parameter, base_overrides,
            self.representation, method,
        )
        try:
            with self.timer.span("solve"):
                results = executor.map(
                    _fleet_point,
                    [float(v) for v in values],
                    shared,
                    **resilience,
                )
        finally:
            if journal is not None:
                journal.close()
        registry = obs_metrics.get_registry()
        if registry.enabled and results:
            obs_metrics.SWEEP_POINTS.on(registry).labels(
                case="fleet", kind="fleet"
            ).inc(len(results))
        series: Dict[str, List[float]] = {}
        for point_result in results:
            self.solver_records.append(point_result["solver"])
            self.operator_records.append(point_result["operator"])
            for name, value in point_result["measures"].items():
                series.setdefault(name, []).append(value)
        return series

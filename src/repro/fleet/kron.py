"""Product-space Kronecker generator of a fleet (no lumping).

Axis layout: axis 0 is the coordinator, axes ``1..N`` are the devices.
The generator is the stochastic automata network sum

* one local term for the coordinator (its off-diagonal rate matrix),
* one local term per device axis,
* one term per (sync event, participating device): the coordinator's
  hook matrix on axis 0, the device's hook matrix on the participant's
  axis, and — for staggered events — a diagonal indicator guard on every
  *other* device axis zeroing states the event excludes.

Rates fold into the factor entries (active-side rate × passive-side
weight), so no scalar multipliers are needed.  Devices may be
heterogeneous (same state names, different rates) — that is what the
permutation-invariance property tests exercise — but must share the
device state-name alphabet so guards and measures stay well defined.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence, Tuple

import numpy as np

from ..ctmc.kronecker import KroneckerGenerator, KroneckerTerm
from ..errors import SpecificationError
from .topology import Automaton, FleetTopology, SyncEvent

#: Term labels for the unsynchronized parts of the composition.
COORDINATOR_LOCAL = "coordinator_local"


def device_local_label(position: int) -> str:
    return f"device_local[{position}]"


@dataclass
class FleetProduct:
    """A fleet's product-space generator plus enough context to measure.

    Wraps the :class:`KroneckerGenerator` with the component automata so
    reward evaluation can translate state names and local-action labels
    into marginals and flow vectors (see :mod:`repro.fleet.measures`).
    """

    coordinator: Automaton
    devices: Tuple[Automaton, ...]
    events: Tuple[SyncEvent, ...]
    generator: KroneckerGenerator

    @property
    def n(self) -> int:
        return len(self.devices)

    def coordinator_marginal(self, pi: np.ndarray) -> np.ndarray:
        return self.generator.marginal(pi, 0)

    def device_marginal(self, pi: np.ndarray, position: int) -> np.ndarray:
        return self.generator.marginal(pi, position + 1)

    def flows(self, pi: np.ndarray) -> Dict[str, float]:
        """Steady-state flow (firings per time unit) of every label.

        Sync events use the generator's Kronecker flow vectors (guards
        included); local labels use the exact marginal identity
        ``flow = sum_i marginal_i . rowsums_label`` — local transitions
        carry no guards, so the marginal form is exact, and it avoids
        splitting the local terms per label.
        """
        pi = np.asarray(pi, float).reshape(-1)
        flows: Dict[str, float] = {}
        for event in self.events:
            flows[event.name] = flows.get(event.name, 0.0) + float(
                pi @ self.generator.flow_vector(event.name)
            )
        coordinator_marginal = self.coordinator_marginal(pi)
        for label in self.coordinator.local_labels():
            flows[label] = flows.get(label, 0.0) + float(
                coordinator_marginal
                @ self.coordinator.local_label_rowsums(label)
            )
        for position, device in enumerate(self.devices):
            marginal = self.device_marginal(pi, position)
            for label in device.local_labels():
                flows[label] = flows.get(label, 0.0) + float(
                    marginal @ device.local_label_rowsums(label)
                )
        return flows


def product_generator(
    coordinator: Automaton,
    devices: Sequence[Automaton],
    events: Sequence[SyncEvent] = (),
) -> FleetProduct:
    """Build the product-space SAN generator of a (possibly
    heterogeneous) fleet.

    Every device must expose the same state names in the same order;
    sync-hook shapes are validated against the events.
    """
    devices = tuple(devices)
    if not devices:
        raise SpecificationError("a fleet needs at least one device")
    names = devices[0].state_names
    for device in devices[1:]:
        if device.state_names != names:
            raise SpecificationError(
                "heterogeneous fleet devices must share state names: "
                f"{device.state_names} != {names}"
            )
    dims = (coordinator.num_states,) + tuple(
        device.num_states for device in devices
    )
    terms = []
    coordinator_local = coordinator.local_matrix()
    if coordinator_local.nnz:
        terms.append(
            KroneckerTerm(COORDINATOR_LOCAL, {0: coordinator_local})
        )
    for position, device in enumerate(devices):
        local = device.local_matrix()
        if local.nnz:
            terms.append(
                KroneckerTerm(
                    device_local_label(position), {position + 1: local}
                )
            )
    for event in events:
        coordinator_hook = coordinator.sync_matrix(event.coordinator_action)
        for position, device in enumerate(devices):
            factors: Dict[int, np.ndarray] = {
                0: coordinator_hook,
                position + 1: device.sync_matrix(event.device_action),
            }
            if event.exclusive_states:
                guard = np.ones(len(names))
                for state in event.exclusive_states:
                    guard[device.state_index(state)] = 0.0
                for other in range(len(devices)):
                    if other != position:
                        factors[other + 1] = guard
            terms.append(KroneckerTerm(event.name, factors))
    generator = KroneckerGenerator(dims, terms)
    return FleetProduct(coordinator, devices, tuple(events), generator)


def build_product(topology: FleetTopology) -> FleetProduct:
    """Product generator of a homogeneous fleet topology."""
    return product_generator(
        topology.coordinator,
        (topology.device,) * topology.n,
        topology.events,
    )


def permuted_product(
    topology_devices: Sequence[Automaton],
    coordinator: Automaton,
    events: Sequence[SyncEvent],
    permutation: Sequence[int],
) -> FleetProduct:
    """The same fleet with device axes reassigned by *permutation*.

    Used by the exchangeability property tests: permuting which device
    sits on which axis must leave every fleet measure unchanged.
    """
    devices = tuple(topology_devices)
    if sorted(permutation) != list(range(len(devices))):
        raise SpecificationError(
            f"{permutation!r} is not a permutation of "
            f"0..{len(devices) - 1}"
        )
    return product_generator(
        coordinator, tuple(devices[p] for p in permutation), events
    )

"""Fleet-scale compositional engine (docs/FLEET.md).

Represents an N-device DPM fleet — per-device automata plus a
channel/AP coordinator, extracted from single-instance Æmilia
architectures — as a sum of Kronecker products
(:mod:`repro.ctmc.kronecker`), applies exchangeability lumping *before*
operator construction (|S|^N product space collapses to multiset
counting), and solves the steady state through the matrix-free solver
backends.  The flat generator is never materialized; an independent
flat-enumeration oracle (:mod:`repro.fleet.flat`) backs the ≤1e-9
differential tests at small N.
"""

from .flat import FlatFleet, build_flat, build_flat_topology
from .kron import (
    FleetProduct,
    build_product,
    permuted_product,
    product_generator,
)
from .lumping import LumpedFleet, LumpedOperator, multisets
from .measures import (
    FleetMeasure,
    evaluate_flat,
    evaluate_lumped,
    evaluate_product,
)
from .methodology import FleetAssessment
from .solve import REPRESENTATIONS, FleetSolution, solve_fleet
from .topology import (
    Automaton,
    FleetTopology,
    LocalTransition,
    SyncEvent,
    automaton_from_architecture,
)

__all__ = [
    "Automaton",
    "FlatFleet",
    "FleetAssessment",
    "FleetMeasure",
    "FleetProduct",
    "FleetSolution",
    "FleetTopology",
    "LocalTransition",
    "LumpedFleet",
    "LumpedOperator",
    "REPRESENTATIONS",
    "SyncEvent",
    "automaton_from_architecture",
    "build_flat",
    "build_flat_topology",
    "build_product",
    "evaluate_flat",
    "evaluate_lumped",
    "evaluate_product",
    "multisets",
    "permuted_product",
    "product_generator",
    "solve_fleet",
]

"""Exchangeability lumping: |S|^N device product → multiset counting.

Identical devices are exchangeable: the steady state depends only on
*how many* devices occupy each local state, never on *which* ones.  The
orbits of the device-permutation group acting on the product space are
the multisets of device states, so the lumped space has

    |C| * C(N + |S| - 1, |S| - 1)

states — e.g. 5 * C(14, 7) = 17 160 instead of 5 * 8^7 ≈ 8.4 * 10^6 for
the benchmark fleet.  The lumping is *exact* (strong lumpability): every
fleet construct is symmetric in the devices — local rates are shared,
sync events pick a participant uniformly by rate, and exclusivity guards
only read the multiset of the other devices.

Lumped rates, for a state ``(c, m)`` with ``m[s]`` devices in local
state ``s``:

* coordinator local ``c -> c'`` at rate ``q`` — unchanged;
* device local ``s -> s'`` at rate ``q`` — rate ``m[s] * q`` into
  ``(c, m - e_s + e_s')``;
* sync event with hooks ``Wc[c, c']`` and ``Wd[s, s']`` — rate
  ``m[s] * Wc * Wd`` into ``(c', m - e_s + e_s')``, blocked when the
  event's exclusive states intersect ``m - e_s`` (the other devices).

The lumped generator is kept as flat ``(src, dst, rate)`` arrays grouped
by label (so event flows stay measurable) and exposed through
:class:`LumpedOperator`, a matrix-free
:class:`~scipy.sparse.linalg.LinearOperator` whose matvec is two
``np.bincount`` passes — the same solver contract the Kronecker operator
implements, so ``power``/``gmres`` solve it unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations_with_replacement
from typing import Dict, List, Tuple

import numpy as np
from scipy.sparse import linalg as sparse_linalg

from ..errors import SpecificationError
from .topology import FleetTopology


def multisets(num_states: int, n: int) -> Tuple[Tuple[int, ...], ...]:
    """All count vectors of ``n`` devices over ``num_states`` states.

    Deterministic lexicographic order (the enumeration order is part of
    checkpoint fingerprints, so it must never change).
    """
    out = []
    for combo in combinations_with_replacement(range(num_states), n):
        counts = [0] * num_states
        for state in combo:
            counts[state] += 1
        out.append(tuple(counts))
    return tuple(out)


@dataclass
class _LabelEntries:
    sources: List[int]
    targets: List[int]
    rates: List[float]

    def add(self, source: int, target: int, rate: float) -> None:
        self.sources.append(source)
        self.targets.append(target)
        self.rates.append(rate)


class LumpedFleet:
    """The multiset-lumped CTMC of a homogeneous fleet.

    State ``c * M + j`` is coordinator state ``c`` with device multiset
    ``self.multisets[j]``; ``M = len(self.multisets)``.
    """

    def __init__(self, topology: FleetTopology):
        self.topology = topology
        coordinator = topology.coordinator
        device = topology.device
        self.multisets = multisets(device.num_states, topology.n)
        self._multiset_index = {
            counts: j for j, counts in enumerate(self.multisets)
        }
        self.counts_matrix = np.asarray(self.multisets, float)
        self.num_multisets = len(self.multisets)
        self.size = coordinator.num_states * self.num_multisets
        if self.size != topology.lumped_states:
            raise SpecificationError(
                f"lumped enumeration produced {self.size} states, "
                f"expected {topology.lumped_states}"
            )
        self._entries: Dict[str, _LabelEntries] = {}
        self._build()

    # -- construction ------------------------------------------------------

    def _state(self, coordinator_state: int, multiset_index: int) -> int:
        return coordinator_state * self.num_multisets + multiset_index

    def _shifted(self, counts, source, target) -> int:
        moved = list(counts)
        moved[source] -= 1
        moved[target] += 1
        return self._multiset_index[tuple(moved)]

    def _label(self, label: str) -> _LabelEntries:
        return self._entries.setdefault(label, _LabelEntries([], [], []))

    def _build(self) -> None:
        topology = self.topology
        coordinator = topology.coordinator
        device = topology.device
        num_coord = coordinator.num_states
        # Coordinator local moves: independent of the device multiset.
        for transition in coordinator.local:
            entries = self._label(transition.label)
            for j in range(self.num_multisets):
                entries.add(
                    self._state(transition.source, j),
                    self._state(transition.target, j),
                    transition.rate,
                )
        # Device local moves: one of the m[s] devices fires.
        for transition in device.local:
            entries = self._label(transition.label)
            for j, counts in enumerate(self.multisets):
                occupancy = counts[transition.source]
                if occupancy == 0:
                    continue
                target = self._shifted(
                    counts, transition.source, transition.target
                )
                for c in range(num_coord):
                    entries.add(
                        self._state(c, j),
                        self._state(c, target),
                        occupancy * transition.rate,
                    )
        # Synchronized events.
        for event in topology.events:
            entries = self._label(event.name)
            coordinator_hook = coordinator.sync_matrix(
                event.coordinator_action
            )
            device_hook = device.sync_matrix(event.device_action)
            exclusive = (
                tuple(
                    device.state_index(name)
                    for name in sorted(event.exclusive_states)
                )
                if event.exclusive_states
                else ()
            )
            coordinator_moves = list(zip(*np.nonzero(coordinator_hook)))
            device_moves = list(zip(*np.nonzero(device_hook)))
            for j, counts in enumerate(self.multisets):
                for s, s_next in device_moves:
                    occupancy = counts[s]
                    if occupancy == 0:
                        continue
                    if exclusive:
                        # Guard reads the *other* devices: the multiset
                        # minus the participant.
                        blocked = any(
                            counts[x] - (1 if x == s else 0) > 0
                            for x in exclusive
                        )
                        if blocked:
                            continue
                    weight = occupancy * device_hook[s, s_next]
                    target = self._shifted(counts, s, s_next)
                    for c, c_next in coordinator_moves:
                        entries.add(
                            self._state(c, j),
                            self._state(c_next, target),
                            weight * coordinator_hook[c, c_next],
                        )

    # -- views -------------------------------------------------------------

    def decode(self, state: int) -> Tuple[int, Tuple[int, ...]]:
        """``state -> (coordinator state, device multiset)``."""
        c, j = divmod(state, self.num_multisets)
        return c, self.multisets[j]

    def labels(self) -> Tuple[str, ...]:
        return tuple(self._entries)

    def label_arrays(
        self, label: str
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        entries = self._entries[label]
        return (
            np.asarray(entries.sources, int),
            np.asarray(entries.targets, int),
            np.asarray(entries.rates, float),
        )

    def flows(self, pi: np.ndarray) -> Dict[str, float]:
        """Steady-state flow of every label under distribution *pi*."""
        pi = np.asarray(pi, float).reshape(-1)
        return {
            label: float(
                pi[np.asarray(entries.sources, int)]
                @ np.asarray(entries.rates, float)
            )
            for label, entries in self._entries.items()
        }

    def coordinator_distribution(self, pi: np.ndarray) -> np.ndarray:
        return np.asarray(pi, float).reshape(
            self.topology.coordinator.num_states, self.num_multisets
        ).sum(axis=1)

    def expected_device_counts(self, pi: np.ndarray) -> np.ndarray:
        """Expected number of devices in each local state."""
        multiset_marginal = (
            np.asarray(pi, float)
            .reshape(
                self.topology.coordinator.num_states, self.num_multisets
            )
            .sum(axis=0)
        )
        return multiset_marginal @ self.counts_matrix

    def operator(self) -> "LumpedOperator":
        return LumpedOperator(self)

    def project(self, product_pi: np.ndarray) -> np.ndarray:
        """Aggregate a product-space distribution onto the lumped space.

        The differential tests use this: lumping is exact, so the
        product-space steady state must aggregate to the lumped one.
        """
        topology = self.topology
        dims = (topology.coordinator.num_states,) + (
            topology.device.num_states,
        ) * topology.n
        tensor = np.asarray(product_pi, float).reshape(dims)
        out = np.zeros(self.size)
        for flat_index, mass in np.ndenumerate(tensor):
            if mass == 0.0:
                continue
            counts = [0] * topology.device.num_states
            for device_state in flat_index[1:]:
                counts[device_state] += 1
            j = self._multiset_index[tuple(counts)]
            out[self._state(flat_index[0], j)] += mass
        return out


class LumpedOperator(sparse_linalg.LinearOperator):
    """Matrix-free view of a lumped fleet generator.

    Same solver contract as
    :class:`repro.ctmc.kronecker.KroneckerOperator`: ``matvec`` /
    ``rmatvec`` (two ``np.bincount`` passes over the flat entry arrays),
    exact ``diagonal()``, ``nnz_equivalent``, and a ``matvec_count``
    tally for the fleet metrics.
    """

    def __init__(self, lumped: LumpedFleet):
        self.lumped = lumped
        size = lumped.size
        sources = []
        targets = []
        rates = []
        for label in lumped.labels():
            src, dst, rate = lumped.label_arrays(label)
            sources.append(src)
            targets.append(dst)
            rates.append(rate)
        if sources:
            self._sources = np.concatenate(sources)
            self._targets = np.concatenate(targets)
            self._rates = np.concatenate(rates)
        else:  # pragma: no cover - degenerate single-state fleets
            self._sources = np.zeros(0, int)
            self._targets = np.zeros(0, int)
            self._rates = np.zeros(0)
        self._outflow = np.bincount(
            self._sources, weights=self._rates, minlength=size
        )
        self_loops = self._sources == self._targets
        self._diagonal = (
            np.bincount(
                self._sources[self_loops],
                weights=self._rates[self_loops],
                minlength=size,
            )
            - self._outflow
        )
        self.matvec_count = 0
        super().__init__(dtype=np.dtype(float), shape=(size, size))

    def _matvec(self, x: np.ndarray) -> np.ndarray:
        self.matvec_count += 1
        x = np.asarray(x, float).reshape(-1)
        return (
            np.bincount(
                self._sources,
                weights=self._rates * x[self._targets],
                minlength=self.shape[0],
            )
            - self._outflow * x
        )

    def _rmatvec(self, x: np.ndarray) -> np.ndarray:
        self.matvec_count += 1
        x = np.asarray(x, float).reshape(-1)
        return (
            np.bincount(
                self._targets,
                weights=self._rates * x[self._sources],
                minlength=self.shape[0],
            )
            - self._outflow * x
        )

    def diagonal(self) -> np.ndarray:
        return self._diagonal

    @property
    def nnz_equivalent(self) -> int:
        return int(self._sources.size) + int(self.shape[0])

"""Flat enumeration of a fleet — the differential-testing oracle.

This module deliberately shares *no* machinery with the Kronecker and
lumping paths: it explores the product state space one state at a time
(breadth-first over ``(coordinator state, device state vector)``
tuples), applying the composition rules directly — coordinator local
moves, per-device local moves, and synchronized events with the
exclusivity guard checked against the literal other-device states.  The
result is an ordinary :class:`repro.ctmc.CTMC` solved through the
standard registry, giving an independent oracle for the ≤1e-9 agreement
tests at N ∈ {2, 3, 4} (docs/FLEET.md).  Size-gated: flat enumeration
is exactly what the Kronecker subsystem exists to avoid.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..ctmc import CTMC
from ..errors import StateSpaceLimitError
from .topology import Automaton, FleetTopology, SyncEvent

#: Flat enumeration is for differential tests only; refuse past this.
DEFAULT_FLAT_LIMIT = 200_000

FlatState = Tuple[int, Tuple[int, ...]]


@dataclass
class FlatFleet:
    """The flat product CTMC plus decode tables and labelled flows."""

    coordinator: Automaton
    devices: Tuple[Automaton, ...]
    events: Tuple[SyncEvent, ...]
    ctmc: CTMC
    states: Tuple[FlatState, ...]
    index: Dict[FlatState, int]
    transitions: Tuple[Tuple[int, int, float, str], ...]

    def flows(self, pi: np.ndarray) -> Dict[str, float]:
        pi = np.asarray(pi, float).reshape(-1)
        flows: Dict[str, float] = {}
        for source, _target, rate, label in self.transitions:
            flows[label] = flows.get(label, 0.0) + float(pi[source]) * rate
        return flows


def build_flat(
    coordinator: Automaton,
    devices: Sequence[Automaton],
    events: Sequence[SyncEvent] = (),
    max_states: int = DEFAULT_FLAT_LIMIT,
) -> FlatFleet:
    """Enumerate the reachable flat product chain of a fleet."""
    devices = tuple(devices)
    exclusive_indices = {
        event.name: tuple(
            devices[0].state_index(name)
            for name in sorted(event.exclusive_states)
        )
        if event.exclusive_states
        else ()
        for event in events
    }
    initial: FlatState = (
        coordinator.initial,
        tuple(device.initial for device in devices),
    )
    index: Dict[FlatState, int] = {initial: 0}
    states: List[FlatState] = [initial]
    transitions: List[Tuple[int, int, float, str]] = []
    queue = deque([initial])

    def intern(state: FlatState) -> int:
        position = index.get(state)
        if position is None:
            if len(states) >= max_states:
                raise StateSpaceLimitError(
                    f"flat fleet enumeration exceeded {max_states} "
                    "states; use the Kronecker/lumped representations"
                )
            position = len(states)
            index[state] = position
            states.append(state)
            queue.append(state)
        return position

    while queue:
        state = queue.popleft()
        source = index[state]
        c, device_states = state

        for transition in coordinator.local:
            if transition.source == c:
                target = intern((transition.target, device_states))
                transitions.append(
                    (source, target, transition.rate, transition.label)
                )
        for position, device in enumerate(devices):
            local_state = device_states[position]
            for transition in device.local:
                if transition.source == local_state:
                    moved = list(device_states)
                    moved[position] = transition.target
                    target = intern((c, tuple(moved)))
                    transitions.append(
                        (source, target, transition.rate, transition.label)
                    )
        for event in events:
            coordinator_hook = coordinator.sync_matrix(
                event.coordinator_action
            )
            exclusive = exclusive_indices[event.name]
            for position, device in enumerate(devices):
                if exclusive and any(
                    device_states[other] in exclusive
                    for other in range(len(devices))
                    if other != position
                ):
                    continue
                device_hook = device.sync_matrix(event.device_action)
                local_state = device_states[position]
                for s_next in np.nonzero(device_hook[local_state])[0]:
                    device_weight = device_hook[local_state, s_next]
                    moved = list(device_states)
                    moved[position] = int(s_next)
                    for c_next in np.nonzero(coordinator_hook[c])[0]:
                        rate = device_weight * coordinator_hook[c, c_next]
                        target = intern((int(c_next), tuple(moved)))
                        transitions.append(
                            (source, target, float(rate), event.name)
                        )

    initial_distribution = np.zeros(len(states))
    initial_distribution[0] = 1.0
    ctmc = CTMC(len(states), initial_distribution)
    for source, target, rate, label in transitions:
        if source == target:
            continue  # dynamically null; kept in `transitions` for flows
        ctmc.add_transition(source, target, rate, {label: 1.0})
    for position, state in enumerate(states):
        c, device_states = state
        info = coordinator.state_names[c] + "|" + ",".join(
            devices[i].state_names[s]
            for i, s in enumerate(device_states)
        )
        ctmc.set_state_info(position, info)
    return FlatFleet(
        coordinator=coordinator,
        devices=devices,
        events=tuple(events),
        ctmc=ctmc,
        states=tuple(states),
        index=index,
        transitions=tuple(transitions),
    )


def build_flat_topology(
    topology: FleetTopology, max_states: int = DEFAULT_FLAT_LIMIT
) -> FlatFleet:
    return build_flat(
        topology.coordinator,
        (topology.device,) * topology.n,
        topology.events,
        max_states=max_states,
    )

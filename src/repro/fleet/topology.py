"""Fleet topology: per-component automata and synchronization events.

A fleet is a shared-resource composition in the Plateau SAN / Kronecker
style: one *coordinator* (the channel / access-point controller) and
``N`` power-managed *devices*.  Each component is described by a
single-instance Æmilia architecture; :func:`automaton_from_architecture`
generates its LTS once and splits the transitions into

* **local** transitions — exponentially timed actions that the component
  performs on its own (service completions, timeouts, battery drain);
* **synchronization hooks** — transitions whose action name appears in
  the declared sync alphabet.  For every sync action the automaton keeps
  a small matrix ``W`` over its local state space: the *active* side
  contributes rates, the *passive* side contributes weights, and the
  composed event rate for a joint move is the product of the entries
  (Plateau's generalized tensor algebra restricted to functional-free
  terms).

State names come from the paper's ``monitor_*`` idiom: an exponential
self-loop labelled ``monitor_<name>`` marks its state with ``<name>``.
Such self-loops are dynamically null in a CTMC (they cancel in the
generator) so they never perturb the model.

:class:`SyncEvent` pairs a coordinator action with a device action, with
an optional *exclusive-states* guard: the event is blocked while any
**other** device occupies one of the named states (the staggered
wake-up policy — at most one device may be mid-wake-up at a time).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Tuple

import numpy as np
from scipy import sparse

from ..aemilia import generate_lts, parse_architecture
from ..aemilia.rates import ExpRate, PassiveRate
from ..errors import SpecificationError

#: Prefix of exponential self-loops that name their state (paper idiom).
MONITOR_PREFIX = "monitor_"


@dataclass(frozen=True)
class LocalTransition:
    """One exponentially timed local transition of a component."""

    source: int
    target: int
    rate: float
    label: str


@dataclass(frozen=True)
class Automaton:
    """A component automaton: local generator plus sync-hook matrices.

    ``sync`` maps each sync action to a dense ``(d, d)`` array ``W``
    whose entry ``W[s, s']`` is the action's rate (active side) or
    weight (passive side) for the local move ``s -> s'``.
    ``sync_kinds`` records which side each action plays
    (``"active"`` / ``"passive"``).
    """

    name: str
    state_names: Tuple[str, ...]
    initial: int
    local: Tuple[LocalTransition, ...]
    sync: Mapping[str, np.ndarray]
    sync_kinds: Mapping[str, str]

    @property
    def num_states(self) -> int:
        return len(self.state_names)

    def state_index(self, name: str) -> int:
        try:
            return self.state_names.index(name)
        except ValueError:
            raise SpecificationError(
                f"automaton {self.name!r} has no state {name!r} "
                f"(states: {', '.join(self.state_names)})"
            ) from None

    def local_labels(self) -> Tuple[str, ...]:
        """Distinct local action labels, in first-appearance order."""
        seen = []
        for transition in self.local:
            if transition.label not in seen:
                seen.append(transition.label)
        return tuple(seen)

    def local_matrix(self) -> sparse.csr_matrix:
        """Off-diagonal local rate matrix (rates only, no diagonal)."""
        d = self.num_states
        matrix = sparse.lil_matrix((d, d))
        for transition in self.local:
            matrix[transition.source, transition.target] += transition.rate
        return matrix.tocsr()

    def local_label_rowsums(self, label: str) -> np.ndarray:
        """Per-state total rate of local transitions carrying *label*."""
        rowsums = np.zeros(self.num_states)
        for transition in self.local:
            if transition.label == label:
                rowsums[transition.source] += transition.rate
        return rowsums

    def sync_matrix(self, action: str) -> np.ndarray:
        if action not in self.sync:
            raise SpecificationError(
                f"automaton {self.name!r} declares no sync action "
                f"{action!r} (have: {', '.join(sorted(self.sync))})"
            )
        return self.sync[action]


def automaton_from_architecture(
    source: str,
    sync_actions: Iterable[str],
    name: Optional[str] = None,
    const_overrides: Optional[Mapping[str, object]] = None,
) -> Automaton:
    """Extract a component automaton from a single-instance architecture.

    *source* is Æmilia text whose topology declares exactly one
    instance; its LTS is generated with the library's usual semantics
    and re-read as an automaton:

    * ``monitor_*`` exponential self-loops name their state;
    * actions listed in *sync_actions* become sync-hook matrix entries
      (exponential rate on the active side, passive weight otherwise);
    * every other exponential transition is a local transition;
    * leftover passive or immediate transitions outside the sync
      alphabet are rejected — the composition has nothing to pair
      them with.
    """
    sync_set = frozenset(sync_actions)
    architecture = parse_architecture(source)
    if len(architecture.instances) != 1:
        raise SpecificationError(
            "component architectures must declare exactly one instance, "
            f"got {len(architecture.instances)}"
        )
    instance = architecture.instances[0].name
    prefix = f"{instance}."
    lts = generate_lts(architecture, const_overrides)

    names: Dict[int, str] = {}
    local = []
    sync_matrices: Dict[str, np.ndarray] = {}
    sync_kinds: Dict[str, str] = {}
    d = lts.num_states
    for transition in lts.transitions:
        action = transition.label
        if action.startswith(prefix):
            action = action[len(prefix):]
        rate = transition.rate
        if action in sync_set:
            if isinstance(rate, ExpRate):
                kind, value = "active", rate.rate
            elif isinstance(rate, PassiveRate):
                kind, value = "passive", rate.weight
            else:
                raise SpecificationError(
                    f"sync action {action!r} must be exponential or "
                    f"passive, got {rate!r}"
                )
            previous = sync_kinds.setdefault(action, kind)
            if previous != kind:
                raise SpecificationError(
                    f"sync action {action!r} mixes active and passive "
                    "transitions in one component"
                )
            matrix = sync_matrices.setdefault(action, np.zeros((d, d)))
            matrix[transition.source, transition.target] += value
        elif isinstance(rate, ExpRate):
            if (
                transition.source == transition.target
                and action.startswith(MONITOR_PREFIX)
            ):
                marker = action[len(MONITOR_PREFIX):]
                existing = names.setdefault(transition.source, marker)
                if existing != marker:
                    raise SpecificationError(
                        f"state {transition.source} carries two monitor "
                        f"names: {existing!r} and {marker!r}"
                    )
            else:
                # Non-monitor exponential self-loops are dynamically
                # null in a CTMC but carry measurable flows (e.g. the
                # coordinator's ``lose_job`` loss rate): kept.
                local.append(
                    LocalTransition(
                        transition.source,
                        transition.target,
                        rate.rate,
                        action,
                    )
                )
        else:
            raise SpecificationError(
                f"action {action!r} is {rate!r} but is not in the sync "
                "alphabet; the fleet composition cannot pair it"
            )

    state_names = tuple(
        names.get(state, f"s{state}") for state in range(d)
    )
    if len(set(state_names)) != d:
        raise SpecificationError(
            f"component {instance!r} has duplicate state names: "
            f"{state_names}"
        )
    missing = sync_set - set(sync_kinds)
    if missing:
        raise SpecificationError(
            f"sync actions never observed in component {instance!r}: "
            f"{', '.join(sorted(missing))}"
        )
    return Automaton(
        name=name or instance,
        state_names=state_names,
        initial=lts.initial,
        local=tuple(local),
        sync=sync_matrices,
        sync_kinds=sync_kinds,
    )


@dataclass(frozen=True)
class SyncEvent:
    """A coordinator/device synchronization with optional exclusivity.

    Exactly one side must be active (rate-bearing); the joint rate of a
    firing is ``W_coord[c, c'] * W_dev[s, s']``.  When
    ``exclusive_states`` is set, the event is guarded: it cannot fire
    for device ``i`` while any *other* device occupies one of the named
    states (staggered wake-ups).
    """

    name: str
    coordinator_action: str
    device_action: str
    exclusive_states: Optional[FrozenSet[str]] = None

    def __post_init__(self):
        if self.exclusive_states is not None:
            object.__setattr__(
                self, "exclusive_states", frozenset(self.exclusive_states)
            )


@dataclass(frozen=True)
class FleetTopology:
    """An N-device fleet: coordinator + identical devices + sync events."""

    coordinator: Automaton
    device: Automaton
    n: int
    events: Tuple[SyncEvent, ...] = ()
    name: str = "fleet"

    def __post_init__(self):
        if self.n < 1:
            raise SpecificationError(f"fleet size must be >= 1, got {self.n}")
        object.__setattr__(self, "events", tuple(self.events))
        for event in self.events:
            coordinator_kind = self.coordinator.sync_kinds.get(
                event.coordinator_action
            )
            device_kind = self.device.sync_kinds.get(event.device_action)
            if coordinator_kind is None:
                raise SpecificationError(
                    f"event {event.name!r}: coordinator has no sync "
                    f"action {event.coordinator_action!r}"
                )
            if device_kind is None:
                raise SpecificationError(
                    f"event {event.name!r}: device has no sync action "
                    f"{event.device_action!r}"
                )
            if {coordinator_kind, device_kind} != {"active", "passive"}:
                raise SpecificationError(
                    f"event {event.name!r} needs exactly one active side, "
                    f"got coordinator={coordinator_kind} "
                    f"device={device_kind}"
                )
            if event.exclusive_states:
                for state in event.exclusive_states:
                    self.device.state_index(state)

    @property
    def product_states(self) -> int:
        """Flat product-space size |C| * |S|^N (pre-lumping)."""
        return self.coordinator.num_states * self.device.num_states**self.n

    @property
    def lumped_states(self) -> int:
        """Lumped size |C| * C(N + |S| - 1, |S| - 1) (multiset counting)."""
        return self.coordinator.num_states * math.comb(
            self.n + self.device.num_states - 1, self.device.num_states - 1
        )

    def device_guard(self, event: SyncEvent) -> Optional[np.ndarray]:
        """Indicator over device states allowed for *non-participants*."""
        if not event.exclusive_states:
            return None
        guard = np.ones(self.device.num_states)
        for state in event.exclusive_states:
            guard[self.device.state_index(state)] = 0.0
        return guard

"""Transient solution of CTMCs by uniformisation (Jensen's method).

``pi(t) = sum_k PoissonPMF(Lambda t; k) * pi(0) P^k`` where ``P`` is the
uniformised DTMC.  The series is truncated adaptively once the accumulated
Poisson mass reaches ``1 - epsilon``.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..errors import SolverError
from .chain import CTMC


def transient_distribution(
    ctmc: CTMC,
    time: float,
    initial: Optional[np.ndarray] = None,
    epsilon: float = 1e-10,
    max_terms: int = 1_000_000,
) -> np.ndarray:
    """Distribution over states at the given *time*."""
    if time < 0:
        raise SolverError(f"time must be non-negative, got {time}")
    pi0 = (
        np.asarray(initial, float)
        if initial is not None
        else ctmc.initial_distribution.copy()
    )
    if pi0.shape != (ctmc.num_states,):
        raise SolverError("initial distribution has wrong length")
    if time == 0:
        return pi0
    max_exit = ctmc.max_exit_rate()
    if max_exit == 0:
        return pi0  # no activity: the chain never moves
    probability_matrix, uniformization_rate = ctmc.uniformized_matrix()
    poisson_rate = uniformization_rate * time

    # Accumulate the series with scaled Poisson weights to avoid overflow.
    log_weight = -poisson_rate  # log PoissonPMF(k=0)
    accumulated_mass = math.exp(log_weight)
    result = pi0 * accumulated_mass if accumulated_mass > 0 else pi0 * 0.0
    term = pi0.copy()
    k = 0
    while accumulated_mass < 1.0 - epsilon:
        k += 1
        if k > max_terms:
            raise SolverError(
                f"uniformisation did not converge within {max_terms} terms "
                f"(Lambda*t = {poisson_rate:.3g})"
            )
        term = term @ probability_matrix
        log_weight += math.log(poisson_rate) - math.log(k)
        weight = math.exp(log_weight)
        accumulated_mass += weight
        if weight > 0:
            result = result + term * weight
        if k > poisson_rate:
            # Past the mode the pmf decays geometrically with ratio
            # Lambda*t / (k+1) < 1, so the whole remaining tail is below
            # weight * r / (1 - r).  For large Lambda*t the accumulated
            # mass can round to just under 1 - epsilon and stall there
            # while the weights underflow; the analytic bound terminates
            # the series once the tail is provably negligible (the final
            # normalisation absorbs it).
            ratio = poisson_rate / (k + 1)
            if weight * ratio < epsilon * (1.0 - ratio):
                break
    # Normalise away the truncated tail.
    total = result.sum()
    if total <= 0:
        raise SolverError("transient solution lost all probability mass")
    return result / total


def expected_state_reward_at(
    ctmc: CTMC,
    time: float,
    rewards: np.ndarray,
    initial: Optional[np.ndarray] = None,
) -> float:
    """Expected instantaneous state reward at *time*."""
    distribution = transient_distribution(ctmc, time, initial)
    rewards = np.asarray(rewards, float)
    if rewards.shape != (ctmc.num_states,):
        raise SolverError("reward vector has wrong length")
    return float(distribution @ rewards)

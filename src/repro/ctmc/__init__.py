"""Continuous-time Markov chain machinery (the paper's Sect. 4 phase)."""

from .build import build_ctmc, classify_states
from .chain import CTMC, CTMCTransition
from .kronecker import (
    KroneckerGenerator,
    KroneckerOperator,
    KroneckerTerm,
    kron_vector,
)
from .lumping import lump, lumping_partition
from .measure_lang import parse_measures
from .measures import (
    Measure,
    RewardClause,
    RewardKind,
    evaluate_measure,
    evaluate_measures,
    measure,
    state_clause,
    state_reward_vector,
    trans_clause,
)
from .parametric import (
    ParametricOptions,
    ParametricSolution,
    build_parametric_solution,
)
from .ratfunc import BarycentricRational, Polynomial, RationalFunction, aaa_fit
from .rewards import (
    absorption_probability,
    accumulated_state_reward,
    mean_time_to_absorption,
)
from .solvers import (
    SolverReport,
    SteadyStateSolution,
    available_solvers,
    register_solver,
    resolve_method,
    select_method,
    solve_steady_state,
    solver_choices,
    unregister_solver,
)
from .steady_state import steady_state, steady_state_solution
from .transient import expected_state_reward_at, transient_distribution

__all__ = [
    "build_ctmc",
    "classify_states",
    "CTMC",
    "CTMCTransition",
    "KroneckerGenerator",
    "KroneckerOperator",
    "KroneckerTerm",
    "kron_vector",
    "lump",
    "lumping_partition",
    "parse_measures",
    "Measure",
    "RewardClause",
    "RewardKind",
    "evaluate_measure",
    "evaluate_measures",
    "measure",
    "state_clause",
    "state_reward_vector",
    "trans_clause",
    "ParametricOptions",
    "ParametricSolution",
    "build_parametric_solution",
    "BarycentricRational",
    "Polynomial",
    "RationalFunction",
    "aaa_fit",
    "absorption_probability",
    "accumulated_state_reward",
    "mean_time_to_absorption",
    "steady_state",
    "steady_state_solution",
    "SolverReport",
    "SteadyStateSolution",
    "available_solvers",
    "register_solver",
    "unregister_solver",
    "resolve_method",
    "select_method",
    "solve_steady_state",
    "solver_choices",
    "expected_state_reward_at",
    "transient_distribution",
]

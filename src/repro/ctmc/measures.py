"""Reward-based performance measures.

The paper expresses its performance indices in a companion language of
reward structures (Sect. 4), e.g.::

    MEASURE throughput IS
      ENABLED(C.process_result_packet) -> TRANS_REWARD(1);
    MEASURE energy IS
      ENABLED(S.monitor_idle_server)    -> STATE_REWARD(2)
      ENABLED(S.monitor_busy_server)    -> STATE_REWARD(3)
      ENABLED(S.monitor_awaking_server) -> STATE_REWARD(2)

Semantics (steady state ``pi``):

* ``STATE_REWARD(r)`` under ``ENABLED(pattern)`` adds ``r`` to the reward of
  every state in which a transition whose label matches ``pattern`` is
  enabled; the measure accumulates ``sum_s pi(s) * reward(s)``;
* ``TRANS_REWARD(r)`` adds an impulse ``r`` to every firing of a matching
  transition; at steady state this contributes
  ``sum pi(source) * rate * expected_label_count * r`` — a frequency.

The same :class:`Measure` objects are consumed by the discrete-event
simulator (time averages and firing rates), which is what makes the
general-vs-Markovian validation of Sect. 5.1 a like-for-like comparison.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, Tuple

import numpy as np

from ..errors import SpecificationError
from ..lts.labels import matches
from .chain import CTMC


class RewardKind(enum.Enum):
    """State (rate) reward or transition (impulse) reward."""

    STATE = "STATE_REWARD"
    TRANS = "TRANS_REWARD"


@dataclass(frozen=True)
class RewardClause:
    """``ENABLED(pattern) -> KIND(value)``."""

    pattern: str
    kind: RewardKind
    value: float

    def __str__(self) -> str:
        return f"ENABLED({self.pattern}) -> {self.kind.value}({self.value:g})"


@dataclass(frozen=True)
class Measure:
    """A named performance measure: an accumulation of reward clauses."""

    name: str
    clauses: Tuple[RewardClause, ...]

    def __post_init__(self):
        if not self.name.isidentifier():
            raise SpecificationError(f"invalid measure name {self.name!r}")
        if not self.clauses:
            raise SpecificationError(
                f"measure {self.name!r} has no reward clauses"
            )

    def state_reward(self, enabled_labels: Iterable[str]) -> float:
        """Instantaneous reward of a state with the given enabled labels."""
        labels = list(enabled_labels)
        reward = 0.0
        for clause in self.clauses:
            if clause.kind is not RewardKind.STATE:
                continue
            if any(matches(clause.pattern, label) for label in labels):
                reward += clause.value
        return reward

    def trans_reward(self, label: str) -> float:
        """Impulse reward collected when a *label* transition fires."""
        reward = 0.0
        for clause in self.clauses:
            if clause.kind is RewardKind.TRANS and matches(
                clause.pattern, label
            ):
                reward += clause.value
        return reward

    def has_state_clauses(self) -> bool:
        """True when any clause is a STATE_REWARD."""
        return any(c.kind is RewardKind.STATE for c in self.clauses)

    def has_trans_clauses(self) -> bool:
        """True when any clause is a TRANS_REWARD."""
        return any(c.kind is RewardKind.TRANS for c in self.clauses)

    def __str__(self) -> str:
        body = "\n  ".join(str(c) for c in self.clauses)
        return f"MEASURE {self.name} IS\n  {body}"


def state_reward_vector(ctmc: CTMC, measure: Measure) -> np.ndarray:
    """Per-state instantaneous rewards of *measure* over *ctmc*."""
    rewards = np.zeros(ctmc.num_states)
    for state in range(ctmc.num_states):
        rewards[state] = measure.state_reward(ctmc.enabled_labels(state))
    return rewards


def evaluate_measure(
    ctmc: CTMC, pi: np.ndarray, measure: Measure
) -> float:
    """Steady-state value of *measure* under distribution *pi*."""
    pi = np.asarray(pi, float)
    if pi.shape != (ctmc.num_states,):
        raise SpecificationError("pi has wrong length for this chain")
    value = 0.0
    if measure.has_state_clauses():
        value += float(pi @ state_reward_vector(ctmc, measure))
    if measure.has_trans_clauses():
        for transition in ctmc.transitions:
            weight = pi[transition.source] * transition.rate
            if weight == 0.0:
                continue
            for label, count in transition.label_counts.items():
                reward = measure.trans_reward(label)
                if reward:
                    value += weight * count * reward
    return value


def evaluate_measures(
    ctmc: CTMC, pi: np.ndarray, measures: Iterable[Measure]
) -> Dict[str, float]:
    """Evaluate several measures at once."""
    return {m.name: evaluate_measure(ctmc, pi, m) for m in measures}


def measure(name: str, *clauses: RewardClause) -> Measure:
    """Convenience constructor."""
    return Measure(name, tuple(clauses))


def state_clause(pattern: str, value: float) -> RewardClause:
    """``ENABLED(pattern) -> STATE_REWARD(value)``."""
    return RewardClause(pattern, RewardKind.STATE, float(value))


def trans_clause(pattern: str, value: float = 1.0) -> RewardClause:
    """``ENABLED(pattern) -> TRANS_REWARD(value)``."""
    return RewardClause(pattern, RewardKind.TRANS, float(value))

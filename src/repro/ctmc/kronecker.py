"""Compositional CTMC generators as sums of Kronecker products.

A fleet of ``M`` interacting components (a coordinator plus ``N``
devices, say) has a product state space of size ``prod(dims)`` — far too
large to materialize past a handful of devices.  Its generator, however,
has *structure*: every local move and every synchronized event is a
Kronecker product of small per-component matrices (the stochastic
automata network form of Plateau):

    Q  =  sum_t  A_t[0] (x) A_t[1] (x) ... (x) A_t[M-1]  -  diag(w)

where each term ``t`` touches only the components that participate in
the event (identity elsewhere), rates are folded into the matrix
entries, and ``w`` is the vector of total outflow rates making rows sum
to zero.  This module represents that sum symbolically
(:class:`KroneckerGenerator`) and exposes it as a matrix-free scipy
:class:`~scipy.sparse.linalg.LinearOperator`
(:class:`KroneckerOperator`) implementing the solver registry's
matrix-free contract (docs/SOLVERS.md): ``matvec``/``rmatvec`` via the
shuffle algorithm (one small sparse multiply per participating axis, one
elementwise multiply for the diagonal), ``diagonal()`` computed exactly
from factor diagonals and row sums, and ``nnz_equivalent`` for the
solver report — the flat matrix is never formed.

Factors are either small ``scipy.sparse`` matrices or 1-D arrays
(interpreted as diagonal factors — guards such as "no other device is
awaking" are diagonal indicators applied to non-participating axes).
Self-loops in a factor are harmless: their contribution to the term and
to the outflow vector cancel exactly in ``Q``.

Terms carry a *label* so reward measures can ask for the steady-state
flow of one event family (``pi . rowsum(term)``) without knowing the
Kronecker structure; see :meth:`KroneckerGenerator.flow_vector`.

The fleet layer (:mod:`repro.fleet`) builds these terms from the Æmilia
topology and applies exchangeability lumping *before* choosing between
this full product-space operator and the multiset-lumped one
(docs/FLEET.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence, Tuple, Union

import numpy as np
from scipy import sparse
from scipy.sparse import linalg as sparse_linalg

from ..errors import AnalysisError

#: A per-axis factor: a small sparse/dense matrix, or a 1-D array
#: standing for the diagonal matrix ``diag(vector)``.
Factor = Union[sparse.spmatrix, np.ndarray]

#: Refuse to materialize product spaces beyond this size by default.
DEFAULT_MATERIALIZE_LIMIT = 200_000


def _as_factor(factor: Factor) -> Factor:
    """Normalise a factor: CSR for matrices, float array for diagonals."""
    if isinstance(factor, np.ndarray) and factor.ndim == 1:
        return np.asarray(factor, float)
    if isinstance(factor, np.ndarray):
        return sparse.csr_matrix(np.asarray(factor, float))
    return sparse.csr_matrix(factor, dtype=float)


def _factor_dim(factor: Factor) -> int:
    if isinstance(factor, np.ndarray):
        return int(factor.shape[0])
    return int(factor.shape[0])


def _factor_diagonal(factor: Factor) -> np.ndarray:
    if isinstance(factor, np.ndarray):
        return factor
    return factor.diagonal()


def _factor_rowsums(factor: Factor) -> np.ndarray:
    if isinstance(factor, np.ndarray):
        return factor
    return np.asarray(factor.sum(axis=1), float).ravel()


def _factor_nnz(factor: Factor) -> int:
    if isinstance(factor, np.ndarray):
        return int(np.count_nonzero(factor))
    return int(factor.nnz)


def _factor_matrix(factor: Factor) -> sparse.spmatrix:
    """The factor as an explicit sparse matrix (materialize path only)."""
    if isinstance(factor, np.ndarray):
        return sparse.diags(factor).tocsr()
    return factor


def kron_vector(
    dims: Sequence[int], axis_vectors: Mapping[int, np.ndarray]
) -> np.ndarray:
    """The Kronecker product of per-axis vectors (ones where absent).

    This is how diagonals and row sums of a Kronecker term lift to the
    product space: ``diag((x) A_k) = (x) diag(A_k)`` and likewise for
    row sums, with identity factors contributing all-ones vectors.
    """
    out = np.ones(1)
    for axis, dim in enumerate(dims):
        vector = axis_vectors.get(axis)
        if vector is None:
            vector = np.ones(dim)
        out = np.multiply.outer(out, np.asarray(vector, float)).reshape(-1)
    return out


def _axis_apply(
    tensor: np.ndarray, axis: int, factor: Factor, transpose: bool
) -> np.ndarray:
    """Apply one factor along one axis of the state tensor.

    Applying ``A_k`` on the left of axis ``k`` for every factored axis
    realises ``((x)_k A_k) @ x`` — the shuffle algorithm: cost is one
    ``(d_k, n/d_k)`` sparse multiply per axis instead of anything
    proportional to the product matrix.
    """
    moved = np.moveaxis(tensor, axis, 0)
    head = moved.shape[0]
    flat = moved.reshape(head, -1)
    if isinstance(factor, np.ndarray):
        # Diagonal factor (guard): elementwise scaling, self-adjoint.
        out = flat * factor[:, None]
    else:
        matrix = factor.T if transpose else factor
        out = matrix @ flat
    out = out.reshape((head,) + moved.shape[1:])
    return np.moveaxis(out, 0, axis)


@dataclass(frozen=True)
class KroneckerTerm:
    """One event family: rate-weighted factors on participating axes.

    *factors* maps axis index to its factor; absent axes are identity.
    Rates are folded into the matrix entries (a synchronized event's
    rate is the product of its factors' entries), so a term needs no
    separate scalar.
    """

    label: str
    factors: Mapping[int, Factor]

    def __post_init__(self):
        object.__setattr__(
            self,
            "factors",
            {
                int(axis): _as_factor(factor)
                for axis, factor in dict(self.factors).items()
            },
        )

    def apply(
        self, tensor: np.ndarray, transpose: bool
    ) -> np.ndarray:
        for axis in sorted(self.factors):
            tensor = _axis_apply(
                tensor, axis, self.factors[axis], transpose
            )
        return tensor

    def diagonal_vector(self, dims: Sequence[int]) -> np.ndarray:
        return kron_vector(
            dims,
            {
                axis: _factor_diagonal(factor)
                for axis, factor in self.factors.items()
            },
        )

    def rowsum_vector(self, dims: Sequence[int]) -> np.ndarray:
        return kron_vector(
            dims,
            {
                axis: _factor_rowsums(factor)
                for axis, factor in self.factors.items()
            },
        )

    def nnz_equivalent(self, dims: Sequence[int]) -> int:
        """Entries the term would contribute if materialized."""
        count = 1
        for axis, dim in enumerate(dims):
            factor = self.factors.get(axis)
            count *= dim if factor is None else _factor_nnz(factor)
        return count


class KroneckerGenerator:
    """A CTMC generator held as a sum of Kronecker terms.

    The terms carry the off-diagonal (event) rates; the generator
    subtracts the total outflow ``w = sum_t rowsum(term_t)`` on the
    diagonal so rows sum to zero.  Nothing of product-space size is ever
    formed except O(size) vectors.
    """

    def __init__(
        self, dims: Sequence[int], terms: Sequence[KroneckerTerm]
    ):
        self.dims: Tuple[int, ...] = tuple(int(d) for d in dims)
        if not self.dims or any(d < 1 for d in self.dims):
            raise AnalysisError(
                f"Kronecker generator needs positive dims, got {self.dims}"
            )
        self.terms: Tuple[KroneckerTerm, ...] = tuple(terms)
        for term in self.terms:
            for axis, factor in term.factors.items():
                if axis < 0 or axis >= len(self.dims):
                    raise AnalysisError(
                        f"term {term.label!r} factors axis {axis} outside "
                        f"the {len(self.dims)}-component product"
                    )
                if _factor_dim(factor) != self.dims[axis]:
                    raise AnalysisError(
                        f"term {term.label!r} axis {axis} factor has "
                        f"dimension {_factor_dim(factor)}, expected "
                        f"{self.dims[axis]}"
                    )
        self.size = int(np.prod(self.dims))
        self._outflow: Optional[np.ndarray] = None
        self._diagonal: Optional[np.ndarray] = None

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.size, self.size)

    @property
    def outflow(self) -> np.ndarray:
        """Total event outflow per product state (the ``-diag`` part)."""
        if self._outflow is None:
            total = np.zeros(self.size)
            for term in self.terms:
                total += term.rowsum_vector(self.dims)
            self._outflow = total
        return self._outflow

    def diagonal(self) -> np.ndarray:
        """Exact diagonal of ``Q`` (term diagonals minus outflow)."""
        if self._diagonal is None:
            diag = -self.outflow.copy()
            for term in self.terms:
                diag += term.diagonal_vector(self.dims)
            self._diagonal = diag
        return self._diagonal

    @property
    def nnz_equivalent(self) -> int:
        """Entries a materialized CSR of ``Q`` would hold, at most."""
        return self.size + sum(
            term.nnz_equivalent(self.dims) for term in self.terms
        )

    def apply(self, x: np.ndarray, transpose: bool = False) -> np.ndarray:
        """``Q @ x`` (or ``Q.T @ x``) without materializing ``Q``."""
        x = np.asarray(x, float).reshape(-1)
        if x.shape[0] != self.size:
            raise AnalysisError(
                f"operand has {x.shape[0]} entries, product space has "
                f"{self.size}"
            )
        tensor = x.reshape(self.dims)
        result = np.zeros(self.size)
        for term in self.terms:
            result += term.apply(tensor, transpose).reshape(-1)
        result -= self.outflow * x
        return result

    def flow_vector(self, label: str) -> np.ndarray:
        """``v`` with ``pi . v`` = steady-state flow of *label* events.

        The flow of an event family is ``sum_x pi(x) * outflow_t(x)``
        summed over its terms — the reward side of transition-reward
        measures on the product space.
        """
        vector = np.zeros(self.size)
        found = False
        for term in self.terms:
            if term.label == label:
                vector += term.rowsum_vector(self.dims)
                found = True
        if not found:
            raise AnalysisError(
                f"no Kronecker term is labelled {label!r}"
            )
        return vector

    def marginal(self, pi: np.ndarray, axis: int) -> np.ndarray:
        """Marginal distribution of one component under *pi*."""
        tensor = np.asarray(pi, float).reshape(self.dims)
        other = tuple(k for k in range(len(self.dims)) if k != axis)
        return tensor.sum(axis=other)

    def operator(self) -> "KroneckerOperator":
        return KroneckerOperator(self)

    def materialize(
        self, max_size: int = DEFAULT_MATERIALIZE_LIMIT
    ) -> sparse.csr_matrix:
        """Explicit CSR of ``Q`` — differential tests only, size-gated."""
        if self.size > max_size:
            raise AnalysisError(
                f"refusing to materialize a {self.size}-state product "
                f"space (limit {max_size}); use the matrix-free operator"
            )
        total = sparse.csr_matrix((self.size, self.size))
        for term in self.terms:
            pieces = [
                _factor_matrix(term.factors[axis])
                if axis in term.factors
                else sparse.identity(dim, format="csr")
                for axis, dim in enumerate(self.dims)
            ]
            product = pieces[0]
            for piece in pieces[1:]:
                product = sparse.kron(product, piece, format="csr")
            total = total + product
        return (total - sparse.diags(self.outflow)).tocsr()


class KroneckerOperator(sparse_linalg.LinearOperator):
    """Matrix-free :class:`LinearOperator` view of a Kronecker generator.

    Implements the solver registry's matrix-free contract: ``matvec``
    and ``rmatvec`` (so ``.adjoint()`` works), an exact ``diagonal()``,
    and ``nnz_equivalent`` for reports.  ``matvec_count`` tallies every
    application (forward and adjoint) for the ``repro_fleet_matvecs``
    metric.
    """

    def __init__(self, generator: KroneckerGenerator):
        self.generator = generator
        self.matvec_count = 0
        super().__init__(dtype=np.dtype(float), shape=generator.shape)

    def _matvec(self, x: np.ndarray) -> np.ndarray:
        self.matvec_count += 1
        return self.generator.apply(np.asarray(x).reshape(-1))

    def _rmatvec(self, x: np.ndarray) -> np.ndarray:
        self.matvec_count += 1
        return self.generator.apply(
            np.asarray(x).reshape(-1), transpose=True
        )

    def diagonal(self) -> np.ndarray:
        return self.generator.diagonal()

    @property
    def nnz_equivalent(self) -> int:
        return self.generator.nnz_equivalent

"""Parametric steady-state evaluation: solve once, evaluate per point.

Every figure of the paper sweeps a DPM rate parameter (shutdown timeout,
awake period) and re-derives steady-state measures.  The chain *structure*
is invariant across such a sweep (see
:mod:`repro.runtime.statespace_cache`), so instead of paying a full CTMC
solve per point, this module computes each measure **once as a rational
function of the swept parameter** and then evaluates sweep points by
plugging in scalars — microseconds per point — following the fast
parametric model checking approach (arXiv:2208.12723).

Pipeline (:func:`build_parametric_solution`):

1. **Atoms** — transitions whose recorded
   :class:`~repro.aemilia.semantics.RateProvenance` reads the swept
   parameter (directly or through a derived constant) are *parametric*;
   each distinct ``(spec, local env)`` pair becomes one exact
   :class:`~repro.ctmc.ratfunc.RationalFunction` atom ``R(p)`` (e.g.
   ``exp(1/p)`` -> ``1/p``).  Non-rational expressions (``floor``,
   comparisons, ...) raise :class:`~repro.errors.ParametricError`.
2. **Node ring** — instead of eliminating states over symbolic rational
   functions (whose exact coefficients swell catastrophically), every
   rate is represented by its *values at Chebyshev nodes* spanning the
   sweep domain: a numpy vector.  Elementwise vector arithmetic is a
   commutative ring, so one elimination pass computes all nodes at once.
3. **GTH elimination** — states of the recurrent class are eliminated in
   Markowitz min-fill order by the Grassmann-Taksar-Heyman update
   ``q_ij += q_ik * q_kj / S_k``, which is subtraction-free and hence
   numerically benign; back-substitution recovers the (unnormalised)
   steady-state vector at every node.  Fill-in and size budgets abort
   oversized eliminations with a recoverable :class:`ParametricError`.
4. **Reconstruction** — each measure's per-node values are fitted by the
   AAA algorithm into a barycentric rational
   (:func:`~repro.ctmc.ratfunc.aaa_fit`); non-support nodes double as
   holdout validation, and a spectral pole check rejects fits with
   spurious poles inside the sweep domain.

The resulting :class:`ParametricSolution` is picklable (it ships to
sweep worker processes) and evaluates all measures at one parameter
value in microseconds.  Callers treat every :class:`ParametricError` as
"fall back to :mod:`repro.ctmc.solvers`".
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..aemilia.expressions import (
    BinaryOp,
    Expr,
    Literal,
    UnaryOp,
    Variable,
)
from ..aemilia.rates import ExpSpec
from ..errors import ParametricError
from ..obs import metrics as obs_metrics
from ..obs import tracing
from .build import _VanishingResolver, build_ctmc, classify_states
from .measures import Measure
from .ratfunc import BarycentricRational, RationalFunction, aaa_fit

@dataclass(frozen=True)
class ParametricOptions:
    """Budgets and tolerances of the parametric pipeline.

    The defaults are sized for the case-study chains (48 and 891
    recurrent states); anything beyond the budgets falls back to the
    concrete solvers rather than risking a slow or inaccurate
    elimination.
    """

    #: Chebyshev-Lobatto sample nodes spanning the sweep domain.
    nodes: int = 129
    #: AAA support budget — the degree guard of the reconstruction.
    max_support: int = 40
    #: Relative fit tolerance validated on the non-support nodes.
    fit_tolerance: float = 1e-11
    #: Largest recurrent class the elimination will attempt.
    max_states: int = 4_000
    #: Fill-in budget: total GTH update operations across the run.
    max_fill_ops: int = 2_000_000
    #: Degree budget for one rate atom's exact rational function.
    atom_degree_limit: int = 8

    def __post_init__(self):
        if self.nodes < 8:
            raise ParametricError(
                "parametric solving needs at least 8 sample nodes"
            )


# ---------------------------------------------------------------------------
# Symbolic layer: rate expressions -> exact rational atoms.
# ---------------------------------------------------------------------------


def dependent_consts(archi, parameter: str) -> frozenset:
    """Constants whose value changes when *parameter* changes.

    A constant's default may reference earlier constants, so dependence
    propagates along the declaration order (mirrors the root analysis of
    :func:`repro.runtime.statespace_cache.structural_params`).
    """
    dependent = {parameter}
    for param in archi.const_params:
        if param.name == parameter:
            continue
        if param.default.free_variables() & dependent:
            dependent.add(param.name)
    return frozenset(dependent - {parameter})


class _AtomBuilder:
    """Converts rate expressions into rational functions of the parameter."""

    def __init__(
        self,
        parameter: str,
        const_env: Mapping[str, object],
        defaults: Mapping[str, Expr],
        dependent: frozenset,
        degree_limit: int,
    ):
        self.parameter = parameter
        self.const_env = const_env
        self.defaults = defaults
        self.dependent = dependent
        self.degree_limit = degree_limit
        self._derived: Dict[str, RationalFunction] = {}

    def convert(
        self, expr: Expr, local_env: Mapping[str, object]
    ) -> RationalFunction:
        rational = self._convert(expr, local_env)
        if rational.degree > self.degree_limit:
            raise ParametricError(
                f"rate expression degree {rational.degree} exceeds the "
                f"atom budget {self.degree_limit}",
                reason="budget",
            )
        return rational

    def _constant(self, value: object) -> RationalFunction:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ParametricError(
                f"non-numeric value {value!r} in a rate expression",
                reason="unsupported",
            )
        return RationalFunction.constant(Fraction(value))

    def _convert(
        self, expr: Expr, local_env: Mapping[str, object]
    ) -> RationalFunction:
        if isinstance(expr, Literal):
            return self._constant(expr.value)
        if isinstance(expr, Variable):
            name = expr.name
            if name in local_env:
                # Local data bindings shadow constants (and the
                # parameter itself, in which case the transition is
                # simply not parametric through this occurrence).
                return self._constant(local_env[name])
            if name == self.parameter:
                return RationalFunction.x()
            if name in self.dependent:
                derived = self._derived.get(name)
                if derived is None:
                    derived = self._convert(self.defaults[name], {})
                    self._derived[name] = derived
                return derived
            if name in self.const_env:
                return self._constant(self.const_env[name])
            raise ParametricError(
                f"unbound name {name!r} in a rate expression",
                reason="unsupported",
            )
        if isinstance(expr, UnaryOp) and expr.op == "-":
            return -self._convert(expr.operand, local_env)
        if isinstance(expr, BinaryOp) and expr.op in {"+", "-", "*", "/"}:
            left = self._convert(expr.left, local_env)
            right = self._convert(expr.right, local_env)
            if expr.op == "+":
                return left + right
            if expr.op == "-":
                return left - right
            if expr.op == "*":
                return left * right
            if right.num.is_zero:
                raise ParametricError(
                    "division by zero in a rate expression",
                    reason="unsupported",
                )
            return left / right
        raise ParametricError(
            f"rate expression {expr} is not rational in "
            f"{self.parameter!r} (only +, -, *, / are)",
            reason="unsupported",
        )


# ---------------------------------------------------------------------------
# The parametric solution object.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ParametricSolution:
    """All steady-state measures of one chain as functions of a parameter.

    Produced once per (skeleton, parameter, domain) by
    :func:`build_parametric_solution`; evaluation at a sweep point costs
    one barycentric evaluation per measure.  Frozen and built from plain
    arrays/dicts, so it pickles to worker processes unchanged.
    """

    parameter: str
    domain: Tuple[float, float]
    measure_names: Tuple[str, ...]
    fits: Dict[str, BarycentricRational]
    fit_errors: Dict[str, float]
    #: Mirrors the SolverReport fields of a concrete solve.
    size: int
    nnz: int
    diagnostics: Dict[str, object] = field(default_factory=dict)

    @property
    def max_fit_error(self) -> float:
        return max(self.fit_errors.values(), default=0.0)

    def _check_domain(self, value: float) -> None:
        low, high = self.domain
        slack = 1e-9 * max(high - low, abs(high), 1.0)
        if not (low - slack <= value <= high + slack):
            raise ParametricError(
                f"sweep value {value} lies outside the fitted domain "
                f"[{low}, {high}]; rebuild the parametric solution",
                reason="fit",
            )

    def evaluate(self, value: float) -> Dict[str, float]:
        """All measures at one parameter value (microseconds)."""
        self._check_domain(float(value))
        started = time.perf_counter()
        out = {
            name: float(self.fits[name](float(value)))
            for name in self.measure_names
        }
        _record_evaluation(1, time.perf_counter() - started)
        return out

    def evaluate_many(
        self, values: Sequence[float]
    ) -> Dict[str, np.ndarray]:
        """Vectorized evaluation of a whole grid at once."""
        points = np.asarray(list(values), float)
        for value in (points.min(), points.max()) if points.size else ():
            self._check_domain(float(value))
        started = time.perf_counter()
        out = {
            name: np.asarray(self.fits[name](points), float)
            for name in self.measure_names
        }
        _record_evaluation(
            int(points.size), time.perf_counter() - started
        )
        return out

    def report_dict(self) -> Dict[str, object]:
        """Per-point solver record, shaped like ``SolverReport.as_dict``.

        ``residual`` carries the validated relative fit error — the
        quantity bounding how far a parametric point can drift from a
        concrete solve — so the sweep-level ``max_residual < 1e-8``
        acceptance contract keeps guarding parametric sweeps too.
        """
        return {
            "method": "parametric",
            "size": self.size,
            "nnz": self.nnz,
            "iterations": 0,
            "residual": self.max_fit_error,
            "mass_defect": 0.0,
            "fallbacks": [],
        }


# ---------------------------------------------------------------------------
# Metrics.
# ---------------------------------------------------------------------------


def _record_elimination(status: str, seconds: float) -> None:
    tracing.record_span(
        "parametric:build", seconds,
        status="ok" if status == "built" else "error",
        outcome=status,
    )
    registry = obs_metrics.get_registry()
    if not registry.enabled:
        return
    obs_metrics.PARAMETRIC_ELIMINATIONS.on(registry).labels(
        status=status
    ).inc()
    obs_metrics.PARAMETRIC_ELIMINATION_SECONDS.on(registry).observe(
        seconds
    )


def _record_evaluation(points: int, seconds: float) -> None:
    if points <= 0:
        return
    registry = obs_metrics.get_registry()
    if not registry.enabled:
        return
    obs_metrics.PARAMETRIC_EVALUATIONS.on(registry).inc(points)
    obs_metrics.PARAMETRIC_EVAL_SECONDS.on(registry).observe(
        seconds / points
    )


def record_parametric_fallback(reason: str) -> None:
    """Count one fall-back from the parametric path (docs/OBSERVABILITY.md)."""
    tracing.add_event("parametric:fallback", reason=reason)
    registry = obs_metrics.get_registry()
    if registry.enabled:
        obs_metrics.PARAMETRIC_FALLBACKS.on(registry).labels(
            reason=reason
        ).inc()


# ---------------------------------------------------------------------------
# Capture: LTS + provenance -> recurrent-class contributions.
# ---------------------------------------------------------------------------


@dataclass
class _Capture:
    """The chain over the node ring, ready for elimination."""

    recurrent: List[int]                      # CTMC state ids, sorted
    out_edges: Dict[int, Dict[int, np.ndarray]]   # position-indexed Q
    in_edges: Dict[int, set]
    atom_values: np.ndarray                   # (atoms, nodes)
    #: per-measure constant reward per position: state rewards plus
    #: constant-rate transition rewards (self-loops included).
    const_rewards: Dict[str, np.ndarray]
    #: per-measure parametric transition rewards:
    #: measure -> list of (position, atom, coefficient).
    param_rewards: Dict[str, List[Tuple[int, int, float]]]
    nnz: int
    parametric_transitions: int


def _capture_chain(
    lts,
    provenance,
    atom_builder: _AtomBuilder,
    dependent: frozenset,
    parameter: str,
    measures: Sequence[Measure],
    nodes: np.ndarray,
    options: ParametricOptions,
) -> _Capture:
    """Mirror ``build_ctmc``'s construction with symbolic parametric rates.

    Every CTMC-level transition contribution is split into a constant
    float part and a sum of ``coefficient * atom(p)`` parts; vanishing
    states are resolved exactly as :func:`repro.ctmc.build.build_ctmc`
    resolves them (their weights are structural, so the resolution is
    parameter-independent).
    """
    watched = dependent | {parameter}
    provenance_of = {
        id(transition): prov
        for transition, prov in zip(lts.transitions, provenance)
    }
    tangible, vanishing = classify_states(lts)
    tangible_index = {state: i for i, state in enumerate(tangible)}
    is_vanishing = {state: False for state in lts.states()}
    for state in vanishing:
        is_vanishing[state] = True
    resolver = _VanishingResolver(lts, is_vanishing)

    # The concrete CTMC (rates at the base point) supplies the recurrent
    # class and the enabled-label sets; both are parameter-independent.
    ctmc = build_ctmc(lts)
    bsccs = ctmc.bottom_strongly_connected_components()
    if len(bsccs) != 1:
        raise ParametricError(
            f"chain has {len(bsccs)} bottom strongly connected "
            f"components; parametric solving needs exactly one",
            reason="structure",
        )
    recurrent = sorted(bsccs[0])
    if len(recurrent) > options.max_states:
        raise ParametricError(
            f"recurrent class has {len(recurrent)} states, above the "
            f"parametric elimination budget {options.max_states}",
            reason="budget",
        )
    position_of = {state: i for i, state in enumerate(recurrent)}
    recurrent_lts_states = {
        state for state in tangible if tangible_index[state] in position_of
    }

    # Atom table: one exact rational function per distinct (spec, env).
    atom_index: Dict[tuple, int] = {}
    atom_functions: List[RationalFunction] = []

    def atom_for(prov) -> int:
        key = (id(prov.spec), prov.env)
        cached = atom_index.get(key)
        if cached is not None:
            return cached
        if not isinstance(prov.spec, ExpSpec):
            raise ParametricError(
                f"parametric transition has non-exponential rate spec "
                f"{prov.spec}; only exp(...) rates can be swept "
                f"symbolically",
                reason="unsupported",
            )
        rational = atom_builder.convert(
            prov.spec.rate, dict(prov.env)
        )
        atom_index[key] = len(atom_functions)
        atom_functions.append(rational)
        return atom_index[key]

    out_edges: Dict[int, Dict[int, List]] = {
        i: {} for i in range(len(recurrent))
    }
    in_edges: Dict[int, set] = {i: set() for i in range(len(recurrent))}
    #: measure -> position -> accumulated constant reward rate.
    const_trans: Dict[str, Dict[int, float]] = {
        m.name: {} for m in measures
    }
    param_rewards: Dict[str, Dict[Tuple[int, int], float]] = {
        m.name: {} for m in measures
    }
    parametric_transitions = 0

    def add_contribution(
        source_position: int,
        target_position: int,
        constant: float,
        atom: Optional[int],
        coefficient: float,
        counts: Mapping[str, float],
    ) -> None:
        """One CTMC transition contribution (already vanishing-resolved)."""
        for m in measures:
            if not m.has_trans_clauses():
                continue
            reward = sum(
                count * m.trans_reward(label)
                for label, count in counts.items()
            )
            if reward == 0.0:
                continue
            if atom is None:
                bucket = const_trans[m.name]
                bucket[source_position] = (
                    bucket.get(source_position, 0.0) + constant * reward
                )
            else:
                key = (source_position, atom)
                bucket = param_rewards[m.name]
                bucket[key] = (
                    bucket.get(key, 0.0) + coefficient * reward
                )
        if source_position == target_position:
            return  # self-loops never enter the generator
        row = out_edges[source_position]
        entry = row.get(target_position)
        if entry is None:
            entry = [0.0, {}]  # [constant, {atom: coefficient}]
            row[target_position] = entry
            in_edges[target_position].add(source_position)
        if atom is None:
            entry[0] += constant
        else:
            entry[1][atom] = entry[1].get(atom, 0.0) + coefficient

    for state in sorted(recurrent_lts_states):
        source_position = position_of[tangible_index[state]]
        for transition in lts.outgoing(state):
            prov = provenance_of[id(transition)]
            parametric = (
                prov is not None
                and not watched.isdisjoint(prov.free_consts)
            )
            if parametric:
                parametric_transitions += 1
                atom = atom_for(prov)
                multiplier = (
                    prov.fraction if prov.fraction is not None else 1.0
                )
                constant = 0.0
            else:
                atom = None
                multiplier = 0.0
                constant = transition.rate.rate
            base_counts = {transition.label: 1.0}
            if not is_vanishing[transition.target]:
                target_position = position_of[
                    tangible_index[transition.target]
                ]
                add_contribution(
                    source_position, target_position,
                    constant, atom, multiplier, base_counts,
                )
                continue
            for target, probability, counts in resolver.resolve(
                transition.target
            ):
                merged = {
                    label: count / probability
                    for label, count in counts.items()
                }
                merged[transition.label] = (
                    merged.get(transition.label, 0.0) + 1.0
                )
                add_contribution(
                    source_position,
                    position_of[tangible_index[target]],
                    constant * probability,
                    atom,
                    multiplier * probability,
                    merged,
                )

    # Evaluate the atoms on the node grid and validate they stay
    # positive, finite rates over the whole sweep domain (a pole or
    # sign change inside the domain would make some point's chain
    # ill-defined).
    dense = np.linspace(nodes[0], nodes[-1], 1025)
    atom_values = np.empty((len(atom_functions), nodes.size))
    for index, rational in enumerate(atom_functions):
        dense_values = rational.evaluate_nodes(dense)
        if not np.all(np.isfinite(dense_values)) or np.any(
            dense_values <= 0.0
        ):
            raise ParametricError(
                "a parametric rate atom is non-positive or has a pole "
                "inside the sweep domain",
                reason="structure",
            )
        atom_values[index] = rational.evaluate_nodes(nodes)

    # Materialise the node-ring generator entries.
    nnz = 0
    vector_out: Dict[int, Dict[int, np.ndarray]] = {}
    for source_position, row in out_edges.items():
        vector_row: Dict[int, np.ndarray] = {}
        for target_position, (constant, atoms) in sorted(row.items()):
            vector = np.full(nodes.size, constant)
            for atom, coefficient in sorted(atoms.items()):
                vector = vector + coefficient * atom_values[atom]
            vector_row[target_position] = vector
            nnz += 1
        vector_out[source_position] = vector_row

    # Constant reward per position: state rewards (enabled labels are
    # structural) plus the accumulated constant-rate transition rewards.
    const_rewards: Dict[str, np.ndarray] = {}
    for m in measures:
        rewards = np.zeros(len(recurrent))
        for position, ctmc_state in enumerate(recurrent):
            value = const_trans[m.name].get(position, 0.0)
            if m.has_state_clauses():
                value += m.state_reward(ctmc.enabled_labels(ctmc_state))
            rewards[position] = value
        const_rewards[m.name] = rewards

    return _Capture(
        recurrent=recurrent,
        out_edges=vector_out,
        in_edges=in_edges,
        atom_values=atom_values,
        const_rewards=const_rewards,
        param_rewards={
            name: [
                (position, atom, coefficient)
                for (position, atom), coefficient in sorted(
                    bucket.items()
                )
            ]
            for name, bucket in param_rewards.items()
        },
        nnz=nnz,
        parametric_transitions=parametric_transitions,
    )


# ---------------------------------------------------------------------------
# GTH elimination over the node ring.
# ---------------------------------------------------------------------------


def _eliminate(
    capture: _Capture, options: ParametricOptions
) -> Tuple[np.ndarray, int]:
    """GTH state elimination; returns (x matrix, fill ops used).

    ``x[i]`` is the unnormalised steady-state weight vector of position
    ``i`` over the sample nodes.  Elimination order is Markowitz
    min-fill (in-degree x out-degree product, smallest index as the
    deterministic tie-break); every update is the subtraction-free GTH
    rule, so no cancellation can occur at any node.
    """
    out_edges = capture.out_edges
    in_edges = capture.in_edges
    size = len(capture.recurrent)
    node_count = capture.atom_values.shape[1] if size else 0
    remaining = set(range(size))
    eliminations: List[Tuple[int, np.ndarray, Dict[int, np.ndarray]]] = []
    ops = 0
    while len(remaining) > 1:
        k = min(
            remaining,
            key=lambda s: (len(in_edges[s]) * len(out_edges[s]), s),
        )
        outs = out_edges.pop(k)
        sources = in_edges.pop(k)
        outs.pop(k, None)
        sources.discard(k)
        if not outs:
            raise ParametricError(
                "a recurrent state lost all outgoing rates during "
                "elimination (inconsistent chain)",
                reason="structure",
            )
        exit_total = np.add.reduce(list(outs.values()))
        saved: Dict[int, np.ndarray] = {}
        for i in sorted(sources):
            q_ik = out_edges[i].pop(k)
            saved[i] = q_ik
            factor = q_ik / exit_total
            row = out_edges[i]
            for j, q_kj in outs.items():
                if j == i:
                    continue  # the diagonal stays implicit in GTH
                ops += 1
                existing = row.get(j)
                if existing is None:
                    row[j] = factor * q_kj
                    in_edges[j].add(i)
                else:
                    row[j] = existing + factor * q_kj
            if ops > options.max_fill_ops:
                raise ParametricError(
                    f"GTH fill-in exceeded the budget of "
                    f"{options.max_fill_ops} update operations",
                    reason="budget",
                )
        for j in outs:
            in_edges[j].discard(k)
        remaining.discard(k)
        eliminations.append((k, exit_total, saved))
    x = np.zeros((size, node_count))
    if remaining:
        x[remaining.pop()] = 1.0
    for k, exit_total, saved in reversed(eliminations):
        acc = np.zeros(node_count)
        for i, q_ik in saved.items():
            acc += x[i] * q_ik
        x[k] = acc / exit_total
    return x, ops


# ---------------------------------------------------------------------------
# Driver.
# ---------------------------------------------------------------------------


def _chebyshev_nodes(low: float, high: float, count: int) -> np.ndarray:
    """Chebyshev-Lobatto points on [low, high], ascending, ends included."""
    angles = np.pi * np.arange(count) / (count - 1)
    return (low + high) / 2.0 - (high - low) / 2.0 * np.cos(
        np.pi - angles
    )


def build_parametric_solution(
    archi,
    skeleton,
    parameter: str,
    measures: Sequence[Measure],
    domain: Tuple[float, float],
    const_env: Mapping[str, object],
    options: ParametricOptions = ParametricOptions(),
) -> ParametricSolution:
    """Compute every measure of *skeleton* as a rational function.

    *skeleton* is a :class:`~repro.runtime.statespace_cache.ParametricLTS`
    (an LTS plus per-transition rate provenance); *const_env* is the
    fully bound constant environment of the sweep's base point
    (``archi.bind_constants(const_overrides)``) and *domain* the closed
    parameter interval the sweep covers.  Raises
    :class:`~repro.errors.ParametricError` — always recoverable by
    falling back to per-point solves — when the rates are not rational
    in the parameter, a budget is exceeded, or the reconstruction fails
    validation.
    """
    started = time.perf_counter()
    try:
        low, high = float(domain[0]), float(domain[1])
        if not (np.isfinite(low) and np.isfinite(high)) or not low < high:
            raise ParametricError(
                f"parametric sweep domain [{low}, {high}] must be a "
                f"finite non-degenerate interval",
                reason="unsupported",
            )
        lts = (
            skeleton.lts
            if dict(const_env) == dict(skeleton.const_env)
            else skeleton.relabel(const_env)
        )
        dependent = dependent_consts(archi, parameter)
        atom_builder = _AtomBuilder(
            parameter,
            const_env,
            {p.name: p.default for p in archi.const_params},
            dependent,
            options.atom_degree_limit,
        )
        nodes = _chebyshev_nodes(low, high, options.nodes)
        capture = _capture_chain(
            lts, skeleton.provenance, atom_builder, dependent,
            parameter, measures, nodes, options,
        )
        x, fill_ops = _eliminate(capture, options)
        total = x.sum(axis=0)
        fits: Dict[str, BarycentricRational] = {}
        fit_errors: Dict[str, float] = {}
        support: Dict[str, int] = {}
        for m in measures:
            values = capture.const_rewards[m.name] @ x
            for position, atom, coefficient in capture.param_rewards[
                m.name
            ]:
                values = values + coefficient * (
                    x[position] * capture.atom_values[atom]
                )
            values = values / total
            fit, error = aaa_fit(
                nodes,
                values,
                relative_tolerance=options.fit_tolerance,
                max_support=options.max_support,
            )
            spurious = fit.real_poles_in(low, high)
            if spurious.size:
                raise ParametricError(
                    f"fitted measure {m.name!r} has spurious poles "
                    f"inside the sweep domain (at {spurious[:3]})",
                    reason="fit",
                )
            fits[m.name] = fit
            fit_errors[m.name] = error
            support[m.name] = fit.nodes.size
        elapsed = time.perf_counter() - started
        solution = ParametricSolution(
            parameter=parameter,
            domain=(low, high),
            measure_names=tuple(m.name for m in measures),
            fits=fits,
            fit_errors=fit_errors,
            size=len(capture.recurrent),
            nnz=capture.nnz,
            diagnostics={
                "states": lts.num_states,
                "transitions": lts.num_transitions,
                "recurrent": len(capture.recurrent),
                "parametric_transitions": capture.parametric_transitions,
                "atoms": int(capture.atom_values.shape[0]),
                "nodes": int(nodes.size),
                "fill_ops": fill_ops,
                "support": support,
                "elimination_seconds": elapsed,
            },
        )
    except ParametricError:
        _record_elimination("failed", time.perf_counter() - started)
        raise
    _record_elimination("built", elapsed)
    return solution


__all__ = [
    "ParametricOptions",
    "ParametricSolution",
    "build_parametric_solution",
    "dependent_consts",
    "record_parametric_fallback",
]

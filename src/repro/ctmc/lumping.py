"""Ordinary lumping of CTMCs.

Large models often contain symmetric structure; *ordinary lumpability*
collapses states whose aggregate behaviour is indistinguishable, yielding
an exactly equivalent smaller chain.  The partition is computed by rate-
aware signature refinement (as in :func:`repro.lts.bisimulation` but on the
chain itself), with the initial partition separating states by their
enabled-label sets so that every ``ENABLED``-based measure keeps its exact
value on the quotient — asserted in tests against the case-study models.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Tuple

import numpy as np

from ..errors import MarkovianError
from .chain import CTMC


def lumping_partition(ctmc: CTMC) -> List[int]:
    """Block id per state of the coarsest measure-preserving lumping."""
    # Initial partition: states with the same enabled labels (so that
    # STATE_REWARD conditions stay constant within blocks).
    block_of: List[int] = [0] * ctmc.num_states
    signatures: Dict[FrozenSet[str], int] = {}
    for state in range(ctmc.num_states):
        key = ctmc.enabled_labels(state)
        if key not in signatures:
            signatures[key] = len(signatures)
        block_of[state] = signatures[key]

    while True:
        new_keys: Dict[Tuple, int] = {}
        new_block_of: List[int] = [0] * ctmc.num_states
        for state in range(ctmc.num_states):
            totals: Dict[Tuple[int, str], float] = {}
            for transition in ctmc.outgoing(state):
                if transition.target == state:
                    continue  # self-loops do not affect the dynamics
                target_block = block_of[transition.target]
                for label, count in transition.label_counts.items():
                    key = (target_block, label)
                    totals[key] = totals.get(key, 0.0) + (
                        transition.rate * count
                    )
                totals[(target_block, "")] = totals.get(
                    (target_block, ""), 0.0
                ) + transition.rate
            signature = (
                block_of[state],
                frozenset(
                    (block, label, round(total, 12))
                    for (block, label), total in totals.items()
                ),
            )
            if signature not in new_keys:
                new_keys[signature] = len(new_keys)
            new_block_of[state] = new_keys[signature]
        if len(new_keys) == len(set(block_of)):
            return block_of
        block_of = new_block_of


def lump(ctmc: CTMC) -> Tuple[CTMC, List[int]]:
    """Return the lumped quotient chain and the state->block map.

    The quotient preserves the steady-state value of every measure whose
    conditions the initial partition respects (all ``ENABLED``-based
    measures) — rates between blocks aggregate, label counts aggregate
    rate-weighted, and the initial distribution sums per block.
    """
    block_of = lumping_partition(ctmc)
    num_blocks = len(set(block_of))
    blocks: Dict[int, List[int]] = {}
    for state, block in enumerate(block_of):
        blocks.setdefault(block, []).append(state)

    initial = np.zeros(num_blocks)
    for state, block in enumerate(block_of):
        initial[block] += ctmc.initial_distribution[state]
    quotient = CTMC(num_blocks, initial)
    for block, members in blocks.items():
        representative = members[0]
        quotient.set_enabled_labels(
            block, ctmc.enabled_labels(representative)
        )
        quotient.set_state_info(
            block,
            "{" + "; ".join(
                ctmc.state_info(member) for member in members[:2]
            ) + ("; ...}" if len(members) > 2 else "}"),
        )
        for transition in ctmc.outgoing(representative):
            if transition.target == representative and len(members) == 1:
                # True self-loop on a singleton block: keep it (it may
                # carry TRANS_REWARD label counts).
                quotient.add_transition(
                    block, block, transition.rate, transition.label_counts
                )
                continue
            quotient.add_transition(
                block,
                block_of[transition.target],
                transition.rate,
                transition.label_counts,
            )
    return quotient, block_of


def lift_distribution(
    pi_quotient: np.ndarray, block_of: List[int]
) -> np.ndarray:
    """Aggregate check helper: block masses from a quotient solution."""
    if len(pi_quotient) != len(set(block_of)):
        raise MarkovianError("quotient distribution has wrong length")
    return np.asarray(pi_quotient, float)

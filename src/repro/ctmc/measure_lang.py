"""Parser for the MEASURE companion language.

Grammar::

    spec     := measure+
    measure  := 'MEASURE' IDENT 'IS' clause+ ';'?
    clause   := 'ENABLED' '(' pattern ')' '->' kind '(' number ')'
    kind     := 'STATE_REWARD' | 'TRANS_REWARD'
    pattern  := anything up to the matching ')' (label pattern, may contain
                dots and '#')

Comments starting with ``//`` run to the end of the line.
"""

from __future__ import annotations

import re
from typing import List

from ..errors import ParseError
from .measures import Measure, RewardClause, RewardKind

_TOKEN_RE = re.compile(
    r"""
    (?P<comment>//[^\n]*)
  | (?P<measure>\bMEASURE\b)
  | (?P<is>\bIS\b)
  | (?P<enabled>\bENABLED\b)
  | (?P<kind>\bSTATE_REWARD\b|\bTRANS_REWARD\b)
  | (?P<arrow>->)
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<semi>;)
  | (?P<number>-?\d+(?:\.\d+)?(?:[eE][+-]?\d+)?)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_.#*]*)
  | (?P<ws>\s+)
  | (?P<bad>.)
    """,
    re.VERBOSE,
)


class _Tokens:
    def __init__(self, source: str):
        self.items: List[tuple] = []
        line = 1
        for match in _TOKEN_RE.finditer(source):
            kind = match.lastgroup
            text = match.group()
            line += text.count("\n")
            if kind in ("ws", "comment"):
                continue
            if kind == "bad":
                raise ParseError(
                    f"unexpected character {text!r} in measure spec", line
                )
            self.items.append((kind, text, line))
        self.items.append(("eof", "", line))
        self.position = 0

    def peek(self):
        return self.items[self.position]

    def next(self):
        item = self.items[self.position]
        if item[0] != "eof":
            self.position += 1
        return item

    def expect(self, kind: str):
        item = self.peek()
        if item[0] != kind:
            raise ParseError(
                f"expected {kind!r} in measure spec, found {item[1]!r}",
                item[2],
            )
        return self.next()


def _parse_pattern(tokens: _Tokens) -> str:
    """Collect the raw label pattern inside ``ENABLED( ... )``."""
    tokens.expect("lparen")
    parts: List[str] = []
    depth = 1
    while True:
        kind, text, line = tokens.peek()
        if kind == "eof":
            raise ParseError("unterminated ENABLED(...) pattern", line)
        if kind == "lparen":
            depth += 1
        elif kind == "rparen":
            depth -= 1
            if depth == 0:
                tokens.next()
                break
        parts.append(text)
        tokens.next()
    pattern = "".join(parts)
    if not pattern:
        raise ParseError("empty ENABLED(...) pattern")
    return pattern


def parse_measures(source: str) -> List[Measure]:
    """Parse a measure specification into :class:`Measure` objects."""
    tokens = _Tokens(source)
    measures: List[Measure] = []
    while tokens.peek()[0] != "eof":
        tokens.expect("measure")
        name = tokens.expect("ident")[1]
        tokens.expect("is")
        clauses: List[RewardClause] = []
        while tokens.peek()[0] == "enabled":
            tokens.next()
            pattern = _parse_pattern(tokens)
            tokens.expect("arrow")
            kind_text = tokens.expect("kind")[1]
            tokens.expect("lparen")
            number = tokens.expect("number")[1]
            tokens.expect("rparen")
            clauses.append(
                RewardClause(pattern, RewardKind(kind_text), float(number))
            )
        if tokens.peek()[0] == "semi":
            tokens.next()
        if not clauses:
            kind, text, line = tokens.peek()
            raise ParseError(
                f"measure {name!r} has no clauses (next token {text!r})",
                line,
            )
        measures.append(Measure(name, tuple(clauses)))
    if not measures:
        raise ParseError("no MEASURE definitions found")
    return measures

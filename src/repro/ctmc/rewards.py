"""Accumulated rewards and absorption analysis.

Two natural extensions of the paper's steady-state measures, both useful
for battery-powered devices:

* :func:`accumulated_state_reward` — the expected reward accumulated over
  a finite horizon ``[0, t]`` (e.g. *energy drawn in the first second*),
  computed by integrating the uniformised transient series:

  .. math::
     E[Y(t)] = \\int_0^t \\pi(u) r \\, du
             = \\frac{1}{\\Lambda} \\sum_{k \\ge 0}
               \\bigl(1 - F_{\\Lambda t}(k)\\bigr) \\, \\pi_0 P^k r

  where ``F`` is the Poisson CDF — Jensen's method applied to the
  integral.

* :func:`mean_time_to_absorption` — for chains with absorbing states
  (e.g. *battery empty*), the expected time to reach them from each
  transient state, via the linear system ``Q_TT m = -1``.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional, Sequence

import numpy as np
from scipy import sparse
from scipy.sparse import linalg as sparse_linalg

from ..errors import SolverError
from .chain import CTMC


def accumulated_state_reward(
    ctmc: CTMC,
    time: float,
    rewards: Sequence[float],
    initial: Optional[np.ndarray] = None,
    epsilon: float = 1e-10,
    max_terms: int = 1_000_000,
) -> float:
    """Expected state reward accumulated over ``[0, time]``."""
    if time < 0:
        raise SolverError(f"time must be non-negative, got {time}")
    rewards = np.asarray(rewards, float)
    if rewards.shape != (ctmc.num_states,):
        raise SolverError("reward vector has wrong length")
    pi0 = (
        np.asarray(initial, float)
        if initial is not None
        else ctmc.initial_distribution.copy()
    )
    if pi0.shape != (ctmc.num_states,):
        raise SolverError("initial distribution has wrong length")
    if time == 0:
        return 0.0
    max_exit = ctmc.max_exit_rate()
    if max_exit == 0:
        # The chain never moves: reward accrues in the initial state.
        return float(pi0 @ rewards) * time
    probability_matrix, uniformization_rate = ctmc.uniformized_matrix()
    poisson_rate = uniformization_rate * time

    # Poisson CDF terms computed incrementally in log space.
    log_pmf = -poisson_rate  # log pmf(0)
    cdf = math.exp(log_pmf)
    term = pi0.copy()
    total = float(term @ rewards) * (1.0 - cdf)
    k = 0
    # Accumulate until the Poisson tail (and hence every remaining
    # contribution) is negligible.
    while 1.0 - cdf > epsilon:
        k += 1
        if k > max_terms:
            raise SolverError(
                f"accumulated-reward series did not converge within "
                f"{max_terms} terms (Lambda*t = {poisson_rate:.3g})"
            )
        term = term @ probability_matrix
        log_pmf += math.log(poisson_rate) - math.log(k)
        cdf += math.exp(log_pmf)
        total += float(term @ rewards) * max(0.0, 1.0 - cdf)
    return total / uniformization_rate


def mean_time_to_absorption(
    ctmc: CTMC,
    absorbing: Iterable[int],
) -> np.ndarray:
    """Expected time to hit the *absorbing* set from every state.

    Absorbing states get 0.  Raises :class:`SolverError` when some
    transient state cannot reach the absorbing set (its expectation would
    be infinite).
    """
    absorbing_set = set(absorbing)
    for state in absorbing_set:
        if not 0 <= state < ctmc.num_states:
            raise SolverError(f"absorbing state {state} out of range")
    if not absorbing_set:
        raise SolverError("need at least one absorbing state")
    transient = [
        s for s in range(ctmc.num_states) if s not in absorbing_set
    ]
    if not transient:
        return np.zeros(ctmc.num_states)
    index = {state: i for i, state in enumerate(transient)}

    # Check reachability of the absorbing set from every transient state.
    reaches = set(absorbing_set)
    changed = True
    while changed:
        changed = False
        for state in transient:
            if state in reaches:
                continue
            if any(
                t.target in reaches and t.target != state
                for t in ctmc.outgoing(state)
            ):
                reaches.add(state)
                changed = True
    unreachable = [s for s in transient if s not in reaches]
    if unreachable:
        names = ", ".join(ctmc.state_info(s) for s in unreachable[:3])
        raise SolverError(
            f"state(s) {names} cannot reach the absorbing set; "
            f"mean absorption time is infinite"
        )

    size = len(transient)
    rows, cols, data = [], [], []
    diagonal = np.zeros(size)
    for state in transient:
        for transition in ctmc.outgoing(state):
            if transition.target == state:
                continue
            diagonal[index[state]] -= transition.rate
            if transition.target in index:
                rows.append(index[state])
                cols.append(index[transition.target])
                data.append(transition.rate)
    for position in range(size):
        rows.append(position)
        cols.append(position)
        data.append(diagonal[position])
    q_tt = sparse.csr_matrix((data, (rows, cols)), shape=(size, size))
    rhs = -np.ones(size)
    try:
        times = sparse_linalg.spsolve(q_tt, rhs)
    except Exception as error:
        raise SolverError(f"absorption solve failed: {error}") from error
    if np.any(~np.isfinite(times)) or np.any(times < -1e-9):
        raise SolverError("absorption solve produced invalid times")
    result = np.zeros(ctmc.num_states)
    for state, position in index.items():
        result[state] = max(times[position], 0.0)
    return result


def absorption_probability(
    ctmc: CTMC,
    target: Iterable[int],
    avoid: Iterable[int] = (),
) -> np.ndarray:
    """Probability of hitting *target* before *avoid*, from every state.

    Target states get 1, avoid states 0; the rest solve the standard
    first-passage linear system.
    """
    target_set = set(target)
    avoid_set = set(avoid)
    if target_set & avoid_set:
        raise SolverError("target and avoid sets overlap")
    if not target_set:
        raise SolverError("need at least one target state")
    boundary = target_set | avoid_set
    transient = [
        s for s in range(ctmc.num_states) if s not in boundary
    ]
    index = {state: i for i, state in enumerate(transient)}
    size = len(transient)
    result = np.zeros(ctmc.num_states)
    for state in target_set:
        result[state] = 1.0
    if size == 0:
        return result
    rows, cols, data = [], [], []
    rhs = np.zeros(size)
    diagonal = np.zeros(size)
    for state in transient:
        for transition in ctmc.outgoing(state):
            if transition.target == state:
                continue
            diagonal[index[state]] -= transition.rate
            if transition.target in index:
                rows.append(index[state])
                cols.append(index[transition.target])
                data.append(transition.rate)
            elif transition.target in target_set:
                rhs[index[state]] -= transition.rate
    for position in range(size):
        rows.append(position)
        cols.append(position)
        data.append(diagonal[position])
    q_tt = sparse.csr_matrix((data, (rows, cols)), shape=(size, size))
    try:
        probabilities = sparse_linalg.spsolve(q_tt, rhs)
    except Exception as error:
        raise SolverError(f"first-passage solve failed: {error}") from error
    probabilities = np.clip(probabilities, 0.0, 1.0)
    for state, position in index.items():
        result[state] = probabilities[position]
    return result

"""Build a CTMC from the rate-labelled LTS of a Markovian model.

States whose enabled actions are immediate (``inf``) are *vanishing*: they
are left in zero time, so they do not appear in the CTMC.  Vanishing states
are eliminated by redistributing their outgoing probabilities (weights,
normalised per state) over the tangible states ultimately reached; the
action labels crossed along an eliminated path are preserved as expected
counts on the resulting CTMC transition, which keeps throughput measures of
immediate actions computable (see :mod:`repro.ctmc.chain`).

A cycle of immediate transitions is a timeless divergence and is rejected
(:class:`~repro.errors.ImmediateCycleError`), as in the underlying
stochastic process algebra.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..aemilia.rates import ExpRate, GeneralRate, ImmediateRate, PassiveRate
from ..errors import ImmediateCycleError, MarkovianError
from ..lts.lts import LTS
from .chain import CTMC

#: resolve() result: list of (tangible LTS state, probability, expected
#: label counts accumulated along the vanishing path).
_Resolution = List[Tuple[int, float, Dict[str, float]]]


def classify_states(lts: LTS) -> Tuple[List[int], List[int]]:
    """Split states into (tangible, vanishing) lists.

    A state is vanishing when its enabled transitions are immediate.  Mixed
    states (immediate next to timed) cannot arise from the generator, whose
    preemption rule filters them; they are rejected here for LTSs built by
    other means.
    """
    tangible: List[int] = []
    vanishing: List[int] = []
    for state in lts.states():
        transitions = lts.outgoing(state)
        immediate = [
            t for t in transitions if isinstance(t.rate, ImmediateRate)
        ]
        if immediate:
            if len(immediate) != len(transitions):
                raise MarkovianError(
                    f"state {lts.state_info(state)} mixes immediate and "
                    f"timed transitions; regenerate with preemption enabled"
                )
            vanishing.append(state)
        else:
            tangible.append(state)
    return tangible, vanishing


def _check_timed(lts: LTS, state: int) -> None:
    for transition in lts.outgoing(state):
        if isinstance(transition.rate, ExpRate):
            continue
        if isinstance(transition.rate, PassiveRate):
            raise MarkovianError(
                f"passive transition {transition.label!r} survives in state "
                f"{lts.state_info(state)}: the Markovian model must close "
                f"all passive actions (attach them or give them a rate)"
            )
        if isinstance(transition.rate, GeneralRate):
            raise MarkovianError(
                f"generally distributed transition {transition.label!r} in "
                f"state {lts.state_info(state)}: solve general models with "
                f"the simulator, or replace the distribution by exp()"
            )
        raise MarkovianError(
            f"transition {transition.label!r} in state "
            f"{lts.state_info(state)} has no rate; not a Markovian model"
        )


class _VanishingResolver:
    """Memoised elimination of vanishing states with cycle detection."""

    def __init__(self, lts: LTS, is_vanishing: Dict[int, bool]):
        self.lts = lts
        self.is_vanishing = is_vanishing
        self._memo: Dict[int, _Resolution] = {}
        self._on_path: set = set()

    def resolve(self, state: int) -> _Resolution:
        """Distribution over tangible states reached from vanishing *state*."""
        cached = self._memo.get(state)
        if cached is not None:
            return cached
        if state in self._on_path:
            raise ImmediateCycleError(
                f"cycle of immediate transitions through state "
                f"{self.lts.state_info(state)}"
            )
        self._on_path.add(state)
        try:
            transitions = self.lts.outgoing(state)
            total_weight = sum(t.rate.weight for t in transitions)
            aggregated: Dict[int, Tuple[float, Dict[str, float]]] = {}
            for transition in transitions:
                probability = transition.rate.weight / total_weight
                if not self.is_vanishing[transition.target]:
                    self._accumulate(
                        aggregated,
                        transition.target,
                        probability,
                        {transition.label: probability},
                    )
                    continue
                for target, sub_probability, sub_counts in self.resolve(
                    transition.target
                ):
                    counts = {
                        label: probability * count
                        for label, count in sub_counts.items()
                    }
                    counts[transition.label] = (
                        counts.get(transition.label, 0.0)
                        + probability * sub_probability
                    )
                    self._accumulate(
                        aggregated,
                        target,
                        probability * sub_probability,
                        counts,
                    )
            resolution = [
                (target, probability, counts)
                for target, (probability, counts) in aggregated.items()
            ]
        finally:
            self._on_path.discard(state)
        self._memo[state] = resolution
        return resolution

    @staticmethod
    def _accumulate(
        aggregated: Dict[int, Tuple[float, Dict[str, float]]],
        target: int,
        probability: float,
        counts: Dict[str, float],
    ) -> None:
        previous_probability, previous_counts = aggregated.get(
            target, (0.0, {})
        )
        merged = dict(previous_counts)
        for label, count in counts.items():
            merged[label] = merged.get(label, 0.0) + count
        aggregated[target] = (previous_probability + probability, merged)


def build_ctmc(lts: LTS) -> CTMC:
    """Turn the rate-labelled LTS of a Markovian model into a CTMC."""
    tangible, vanishing = classify_states(lts)
    if not tangible:
        raise MarkovianError(
            "the model has no tangible state: every state is vanishing"
        )
    is_vanishing = {state: False for state in lts.states()}
    for state in vanishing:
        is_vanishing[state] = True
    for state in tangible:
        _check_timed(lts, state)
    tangible_index = {state: i for i, state in enumerate(tangible)}
    resolver = _VanishingResolver(lts, is_vanishing)

    # Initial distribution: a vanishing initial state spreads over the
    # tangible states it resolves to.
    initial = np.zeros(len(tangible))
    if is_vanishing[lts.initial]:
        for target, probability, _ in resolver.resolve(lts.initial):
            initial[tangible_index[target]] += probability
    else:
        initial[tangible_index[lts.initial]] = 1.0

    ctmc = CTMC(len(tangible), initial)
    for state in tangible:
        source = tangible_index[state]
        ctmc.set_state_info(source, lts.state_info(state))
        ctmc.set_enabled_labels(
            source,
            frozenset(t.label for t in lts.outgoing(state)),
        )
        for transition in lts.outgoing(state):
            rate: ExpRate = transition.rate  # _check_timed guarantees this
            base_counts = {transition.label: 1.0}
            if not is_vanishing[transition.target]:
                ctmc.add_transition(
                    source,
                    tangible_index[transition.target],
                    rate.rate,
                    base_counts,
                )
                continue
            for target, probability, counts in resolver.resolve(
                transition.target
            ):
                merged = {
                    label: count / probability
                    for label, count in counts.items()
                }
                merged[transition.label] = merged.get(
                    transition.label, 0.0
                ) + 1.0
                ctmc.add_transition(
                    source,
                    tangible_index[target],
                    rate.rate * probability,
                    merged,
                )
    return ctmc

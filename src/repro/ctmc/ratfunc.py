"""Univariate rational-function arithmetic for parametric solving.

Two representations, used at the two ends of the parametric pipeline
(:mod:`repro.ctmc.parametric`, docs/SOLVERS.md):

* **Exact**: :class:`Polynomial` / :class:`RationalFunction` over
  :class:`fractions.Fraction` coefficients.  Used for the *symbolic* layer
  — turning a rate expression like ``exp(1 / awake_period)`` into the
  rational atom ``1/p`` — where degrees stay tiny and exactness means the
  atom analysis (degree, positivity, pole location) is trustworthy.
  Deliberately *not* used for state elimination: coefficients derived
  from floats carry ~2^52 denominators and naive elimination over them
  suffers classic coefficient swell.

* **Stabilized float**: :class:`BarycentricRational` — a rational
  function represented by its values at support nodes with barycentric
  weights.  This is the numerically stable form the per-measure
  steady-state functions are reconstructed into (:func:`aaa_fit`, the
  AAA algorithm of Nakatsukasa-Sete-Trefethen), evaluated in
  microseconds per sweep point.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List, Sequence, Tuple, Union

import numpy as np

from ..errors import ParametricError

Scalar = Union[int, float, Fraction]


def _fraction(value: Scalar) -> Fraction:
    if isinstance(value, Fraction):
        return value
    return Fraction(value)


# ---------------------------------------------------------------------------
# Exact polynomials.
# ---------------------------------------------------------------------------


class Polynomial:
    """A univariate polynomial with exact Fraction coefficients.

    Coefficients are stored low-degree first and trimmed, so the zero
    polynomial has no coefficients and ``degree == -1``.
    """

    __slots__ = ("coeffs",)

    def __init__(self, coeffs: Sequence[Scalar] = ()):
        trimmed = [_fraction(c) for c in coeffs]
        while trimmed and trimmed[-1] == 0:
            trimmed.pop()
        self.coeffs: Tuple[Fraction, ...] = tuple(trimmed)

    # -- constructors ------------------------------------------------------

    @classmethod
    def constant(cls, value: Scalar) -> "Polynomial":
        return cls((value,))

    @classmethod
    def x(cls) -> "Polynomial":
        """The identity polynomial ``p``."""
        return cls((0, 1))

    # -- structure ---------------------------------------------------------

    @property
    def degree(self) -> int:
        return len(self.coeffs) - 1

    @property
    def is_zero(self) -> bool:
        return not self.coeffs

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Polynomial) and self.coeffs == other.coeffs

    def __hash__(self) -> int:
        return hash(self.coeffs)

    # -- arithmetic --------------------------------------------------------

    def __add__(self, other: "Polynomial") -> "Polynomial":
        a, b = self.coeffs, other.coeffs
        if len(a) < len(b):
            a, b = b, a
        out = list(a)
        for i, c in enumerate(b):
            out[i] += c
        return Polynomial(out)

    def __neg__(self) -> "Polynomial":
        return Polynomial([-c for c in self.coeffs])

    def __sub__(self, other: "Polynomial") -> "Polynomial":
        return self + (-other)

    def __mul__(self, other: "Polynomial") -> "Polynomial":
        if self.is_zero or other.is_zero:
            return Polynomial()
        out = [Fraction(0)] * (len(self.coeffs) + len(other.coeffs) - 1)
        for i, a in enumerate(self.coeffs):
            if a == 0:
                continue
            for j, b in enumerate(other.coeffs):
                out[i + j] += a * b
        return Polynomial(out)

    def scale(self, factor: Scalar) -> "Polynomial":
        factor = _fraction(factor)
        return Polynomial([c * factor for c in self.coeffs])

    def pow(self, exponent: int) -> "Polynomial":
        if exponent < 0:
            raise ValueError("Polynomial.pow needs a non-negative exponent")
        result = Polynomial.constant(1)
        for _ in range(exponent):
            result = result * self
        return result

    # -- evaluation --------------------------------------------------------

    def evaluate(self, value: Scalar) -> Fraction:
        """Exact Horner evaluation."""
        value = _fraction(value)
        acc = Fraction(0)
        for coefficient in reversed(self.coeffs):
            acc = acc * value + coefficient
        return acc

    def evaluate_float(self, value: float) -> float:
        acc = 0.0
        for coefficient in reversed(self.coeffs):
            acc = acc * value + float(coefficient)
        return acc

    def __repr__(self) -> str:
        if self.is_zero:
            return "Polynomial(0)"
        terms = [
            f"{c}*p^{i}" if i else f"{c}"
            for i, c in enumerate(self.coeffs)
            if c != 0
        ]
        return f"Polynomial({' + '.join(terms)})"


def _poly_divmod(
    a: Polynomial, b: Polynomial
) -> Tuple[Polynomial, Polynomial]:
    if b.is_zero:
        raise ZeroDivisionError("polynomial division by zero")
    quotient = [Fraction(0)] * max(len(a.coeffs) - len(b.coeffs) + 1, 0)
    remainder = list(a.coeffs)
    lead = b.coeffs[-1]
    while len(remainder) >= len(b.coeffs):
        factor = remainder[-1] / lead
        shift = len(remainder) - len(b.coeffs)
        quotient[shift] = factor
        for i, c in enumerate(b.coeffs):
            remainder[shift + i] -= factor * c
        while remainder and remainder[-1] == 0:
            remainder.pop()
        if not remainder:
            break
    return Polynomial(quotient), Polynomial(remainder)


def _poly_gcd(a: Polynomial, b: Polynomial) -> Polynomial:
    """Monic Euclidean GCD — cheap only for the small degrees of atoms."""
    while not b.is_zero:
        _, r = _poly_divmod(a, b)
        a, b = b, r
    if a.is_zero:
        return a
    lead = a.coeffs[-1]
    return Polynomial([c / lead for c in a.coeffs])


#: Exact cancellation is skipped above this degree: the Euclid remainder
#: sequence over Fractions swells quadratically and the exact layer only
#: ever needs tiny degrees (rate-expression atoms).
GCD_DEGREE_LIMIT = 24


# ---------------------------------------------------------------------------
# Exact rational functions.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RationalFunction:
    """An exact quotient of polynomials ``num / den`` in one parameter.

    Normalised on construction: common polynomial factors are cancelled
    (for degrees within :data:`GCD_DEGREE_LIMIT`) and the denominator is
    made monic, so structurally equal functions compare equal.
    """

    num: Polynomial
    den: Polynomial

    def __post_init__(self):
        if self.den.is_zero:
            raise ZeroDivisionError("rational function with zero denominator")
        num, den = self.num, self.den
        if num.is_zero:
            den = Polynomial.constant(1)
        elif (
            num.degree <= GCD_DEGREE_LIMIT
            and den.degree <= GCD_DEGREE_LIMIT
        ):
            common = _poly_gcd(num, den)
            if common.degree > 0:
                num, _ = _poly_divmod(num, common)
                den, _ = _poly_divmod(den, common)
        lead = den.coeffs[-1]
        if lead != 1:
            num = Polynomial([c / lead for c in num.coeffs])
            den = Polynomial([c / lead for c in den.coeffs])
        object.__setattr__(self, "num", num)
        object.__setattr__(self, "den", den)

    # -- constructors ------------------------------------------------------

    @classmethod
    def constant(cls, value: Scalar) -> "RationalFunction":
        return cls(Polynomial.constant(value), Polynomial.constant(1))

    @classmethod
    def x(cls) -> "RationalFunction":
        """The identity function ``p``."""
        return cls(Polynomial.x(), Polynomial.constant(1))

    # -- structure ---------------------------------------------------------

    @property
    def degree(self) -> int:
        """max(deg num, deg den) — the size guard the budgets use."""
        return max(self.num.degree, self.den.degree)

    @property
    def is_constant(self) -> bool:
        return self.num.degree <= 0 and self.den.degree <= 0

    # -- arithmetic --------------------------------------------------------

    def __add__(self, other: "RationalFunction") -> "RationalFunction":
        return RationalFunction(
            self.num * other.den + other.num * self.den,
            self.den * other.den,
        )

    def __neg__(self) -> "RationalFunction":
        return RationalFunction(-self.num, self.den)

    def __sub__(self, other: "RationalFunction") -> "RationalFunction":
        return self + (-other)

    def __mul__(self, other: "RationalFunction") -> "RationalFunction":
        return RationalFunction(
            self.num * other.num, self.den * other.den
        )

    def __truediv__(self, other: "RationalFunction") -> "RationalFunction":
        if other.num.is_zero:
            raise ZeroDivisionError("division by the zero rational function")
        return RationalFunction(
            self.num * other.den, self.den * other.num
        )

    def compose(self, inner: "RationalFunction") -> "RationalFunction":
        """``self(inner(p))`` — substitute *inner* for the parameter.

        Computed via Horner over the coefficients so numerator and
        denominator are composed against the same inner function.
        """
        num = RationalFunction.constant(0)
        for coefficient in reversed(self.num.coeffs):
            num = num * inner + RationalFunction.constant(coefficient)
        den = RationalFunction.constant(0)
        for coefficient in reversed(self.den.coeffs):
            den = den * inner + RationalFunction.constant(coefficient)
        return num / den

    # -- evaluation --------------------------------------------------------

    def evaluate(self, value: Scalar) -> Fraction:
        """Exact evaluation; raises ZeroDivisionError exactly at poles."""
        value = _fraction(value)
        denominator = self.den.evaluate(value)
        if denominator == 0:
            raise ZeroDivisionError(
                f"rational function has a pole at {value}"
            )
        return self.num.evaluate(value) / denominator

    def evaluate_float(self, value: float) -> float:
        return self.num.evaluate_float(value) / self.den.evaluate_float(
            value
        )

    def evaluate_nodes(self, nodes: np.ndarray) -> np.ndarray:
        """Vectorized float evaluation at many points (the node ring)."""
        num = np.zeros_like(nodes)
        for coefficient in reversed(
            self.num.coeffs or (Fraction(0),)
        ):
            num = num * nodes + float(coefficient)
        den = np.zeros_like(nodes)
        for coefficient in reversed(self.den.coeffs):
            den = den * nodes + float(coefficient)
        # A node sitting on a pole yields inf/nan by design; downstream
        # finiteness checks reject such chains, so no warning is needed.
        with np.errstate(divide="ignore", invalid="ignore"):
            return num / den

    def __repr__(self) -> str:
        return f"RationalFunction({self.num!r} / {self.den!r})"


# ---------------------------------------------------------------------------
# Barycentric rational functions (the stabilized-float representation).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BarycentricRational:
    """A rational interpolant in barycentric form.

    ``r(x) = sum_j w_j f_j / (x - z_j)  /  sum_j w_j / (x - z_j)``

    Exact (by construction) at the support nodes ``z``; smooth and
    numerically stable in between.  Degree is at most ``len(z) - 1``
    over ``len(z) - 1``.  Picklable — plain numpy arrays — so parametric
    solutions can ship to worker processes.
    """

    nodes: np.ndarray
    values: np.ndarray
    weights: np.ndarray

    def __post_init__(self):
        for name in ("nodes", "values", "weights"):
            object.__setattr__(
                self, name, np.asarray(getattr(self, name), float)
            )
        if not (
            self.nodes.shape == self.values.shape == self.weights.shape
        ) or self.nodes.ndim != 1 or self.nodes.size == 0:
            raise ParametricError(
                "barycentric support nodes/values/weights must be "
                "equal-length non-empty vectors",
                reason="fit",
            )
        # Precomputed (z_j, w_j*f_j, w_j, f_j) rows as plain floats: the
        # scalar fast path below runs once per sweep point per measure,
        # and with <= max_support terms a Python loop beats the array
        # machinery's per-call overhead several-fold.
        object.__setattr__(
            self,
            "_support",
            list(
                zip(
                    self.nodes.tolist(),
                    (self.weights * self.values).tolist(),
                    self.weights.tolist(),
                    self.values.tolist(),
                )
            ),
        )

    def __getstate__(self):
        return (self.nodes, self.values, self.weights)

    def __setstate__(self, state):
        nodes, values, weights = state
        object.__setattr__(self, "nodes", nodes)
        object.__setattr__(self, "values", values)
        object.__setattr__(self, "weights", weights)
        self.__post_init__()

    @property
    def degree(self) -> int:
        return int(self.nodes.size) - 1

    def __call__(
        self, x: Union[float, np.ndarray]
    ) -> Union[float, np.ndarray]:
        scalar = np.isscalar(x)
        if scalar:
            # Dedicated scalar path: a dense parametric sweep calls this
            # once per (point, measure), and the generic array path's
            # errstate/atleast_1d overhead would dominate the microsecond
            # evaluation cost it exists to deliver.
            point = float(x)
            numerator = 0.0
            denominator = 0.0
            for node, weighted, weight, value in self._support:
                difference = point - node
                if difference == 0.0:
                    return value
                numerator += weighted / difference
                denominator += weight / difference
            return numerator / denominator
        points = np.atleast_1d(np.asarray(x, float))
        with np.errstate(divide="ignore", invalid="ignore"):
            cauchy = 1.0 / (points[:, None] - self.nodes[None, :])
            numerator = cauchy @ (self.weights * self.values)
            denominator = cauchy @ self.weights
            out = numerator / denominator
        # A point exactly on a support node divides by zero above; the
        # interpolant's value there is the stored support value.
        exact = ~np.isfinite(out)
        if np.any(exact):
            for position in np.nonzero(exact)[0]:
                hits = np.nonzero(points[position] == self.nodes)[0]
                if hits.size:
                    out[position] = self.values[hits[0]]
        return float(out[0]) if scalar else out

    def poles(self) -> np.ndarray:
        """Complex poles of the interpolant (generalized eig pencil)."""
        size = self.nodes.size
        if size < 2:
            return np.empty(0, complex)
        from scipy import linalg as scipy_linalg

        pencil_a = np.zeros((size + 1, size + 1))
        pencil_a[0, 1:] = self.weights
        pencil_a[1:, 0] = 1.0
        pencil_a[1:, 1:] = np.diag(self.nodes)
        pencil_e = np.eye(size + 1)
        pencil_e[0, 0] = 0.0
        eigenvalues = scipy_linalg.eigvals(pencil_a, pencil_e)
        return eigenvalues[np.isfinite(eigenvalues)]

    def real_poles_in(self, low: float, high: float) -> np.ndarray:
        """Real poles inside ``[low, high]`` (spurious-pole detection)."""
        poles = self.poles()
        if poles.size == 0:
            return np.empty(0)
        span = max(high - low, 1.0)
        real = poles[np.abs(poles.imag) <= 1e-10 * span].real
        return real[(real >= low) & (real <= high)]


def aaa_fit(
    nodes: np.ndarray,
    values: np.ndarray,
    relative_tolerance: float = 1e-12,
    max_support: int = 40,
) -> Tuple[BarycentricRational, float]:
    """Fit a barycentric rational to samples by the AAA algorithm.

    Greedily moves the worst-fit sample into the support set and
    recomputes the weights as the smallest singular vector of the
    Loewner matrix.  Returns the interpolant and its worst *relative*
    error over the non-support samples — those samples never constrain
    the fit directly, so the error doubles as holdout validation.

    Raises :class:`~repro.errors.ParametricError` when *max_support*
    terms cannot reach *relative_tolerance* (degree budget exceeded —
    the caller falls back to concrete per-point solving).
    """
    nodes = np.asarray(nodes, float)
    values = np.asarray(values, float)
    if nodes.ndim != 1 or nodes.shape != values.shape or nodes.size < 2:
        raise ParametricError(
            "AAA needs at least two one-dimensional samples", reason="fit"
        )
    if not np.all(np.isfinite(values)):
        raise ParametricError(
            "AAA samples contain non-finite values", reason="fit"
        )
    scale = float(np.abs(values).max(initial=0.0))
    if scale == 0.0:
        support = np.array([nodes[0]])
        return (
            BarycentricRational(support, np.zeros(1), np.ones(1)),
            0.0,
        )
    in_support = np.zeros(nodes.size, bool)
    approximation = np.full(nodes.size, values.mean())
    best: Tuple[float, BarycentricRational] = (float("inf"), None)
    limit = min(max_support, nodes.size - 1)
    for _ in range(limit):
        gap = np.abs(values - approximation)
        gap[in_support] = -1.0
        in_support[int(np.argmax(gap))] = True
        support_nodes = nodes[in_support]
        support_values = values[in_support]
        rest_nodes = nodes[~in_support]
        rest_values = values[~in_support]
        cauchy = 1.0 / (
            rest_nodes[:, None] - support_nodes[None, :]
        )
        loewner = (
            rest_values[:, None] - support_values[None, :]
        ) * cauchy
        _, _, vh = np.linalg.svd(loewner, full_matrices=False)
        weights = vh[-1].conj()
        with np.errstate(divide="ignore", invalid="ignore"):
            rest_fit = (cauchy @ (weights * support_values)) / (
                cauchy @ weights
            )
        approximation = values.copy()
        approximation[~in_support] = rest_fit
        if not np.all(np.isfinite(rest_fit)):
            continue
        error = float(
            np.abs(rest_fit - rest_values).max(initial=0.0)
        ) / scale
        candidate = BarycentricRational(
            support_nodes.copy(), support_values.copy(), weights.real
        )
        if error < best[0]:
            best = (error, candidate)
        if error <= relative_tolerance:
            return candidate, error
    if best[1] is not None and best[0] <= relative_tolerance:
        return best[1], best[0]
    raise ParametricError(
        f"AAA fit did not reach relative tolerance "
        f"{relative_tolerance:.1e} within {limit} support points "
        f"(best {best[0]:.3e})",
        reason="budget",
    )


__all__: List[str] = [
    "BarycentricRational",
    "GCD_DEGREE_LIMIT",
    "Polynomial",
    "RationalFunction",
    "aaa_fit",
]

"""Pluggable sparse steady-state solver backends (docs/SOLVERS.md).

Every backend solves the singular system ``pi Q = 0, sum(pi) = 1`` on the
recurrent class of a CTMC, given the generator submatrix ``Q`` restricted
to that class.  Backends are registered by name:

* ``direct`` — sparse LU on the anchored system: the *most diagonally
  dominant* balance equation (the redundant one whose removal loses the
  least information) is replaced by the unit row ``pi[anchor] = 1``,
  which keeps the matrix fully sparse — no dense normalisation row — and
  the solution is renormalised afterwards;
* ``gmres`` — restarted GMRES with an ILU preconditioner on the same
  anchored system, for chains too large to factorise;
* ``sor`` (alias ``gauss_seidel``) — vectorized Gauss-Seidel/SOR sweeps:
  the lower-triangular part ``D + omega L`` of ``Q^T`` is factorised once
  and each sweep is one compiled triangular solve plus one sparse
  mat-vec, replacing the historical pure-Python per-row loop;
* ``power`` — power iteration on the uniformised DTMC.

``auto`` (the default) selects a backend from the chain's size and
sparsity (:func:`select_method`) and falls back along a deterministic
chain when the preferred backend fails; the environment variable
``REPRO_SOLVER`` overrides the default method for every solve that does
not name one explicitly (this is how the CI solver matrix forces each
backend through the full test suite).

**Matrix-free operands**: ``solve_steady_state`` also accepts a scipy
:class:`~scipy.sparse.linalg.LinearOperator` (e.g. the Kronecker fleet
operator of :mod:`repro.ctmc.kronecker`) exposing ``matvec``,
``rmatvec`` and ``diagonal()``.  ``gmres`` runs unpreconditioned on an
anchored operator and ``power`` iterates with one adjoint matvec per
step; ``direct`` and ``sor`` require a materialized matrix and raise
:class:`~repro.errors.SolverError` with
``reason="matrix_free_unsupported"`` — the ``auto``/fallback chain
*skips* them instead of crashing (docs/SOLVERS.md).

**Convergence contract** (shared by all iterative backends): an iterate
is converged only when *both*

* the per-entry relative change ``|pi_i - old_i| / max(|pi_i|, floor)``
  is below ``tolerance`` for every state — an absolute test would declare
  victory while tiny-probability states (exactly the DPM sleep states the
  paper's energy measures weight) still carry large relative error — and
* the residual ``||pi Q||_inf`` is below ``residual_tolerance`` scaled by
  the magnitude of ``Q`` (``max(1, max|q_ii|)``).

Every solve — direct ones included — reports a
:class:`SolverReport` carrying the final residual, the probability mass
clipped from negative round-off entries, and the iteration count; a
residual above tolerance raises :class:`~repro.errors.SolverError` with
the diagnostics attached instead of silently clipping the solution into
shape.

**Observability** (docs/OBSERVABILITY.md): every solve increments the
``repro_solver_*`` metrics on the default registry (solves, cumulative
iterations, residual and wall-clock histograms, fallbacks — all
labelled by backend).  Per-iteration residual/relative-change *time
series* are opt-in: pass ``track_iterations=True`` to get them attached
to the :class:`SolverReport`, or ``iteration_callback=...`` (any
``(iteration, residual, relative_change)`` callable, e.g.
:class:`repro.obs.IterationSeries`) to watch convergence live.  Neither
hook perturbs the numerics — observers only read values the iteration
already produced.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np
from scipy import sparse
from scipy.sparse import linalg as sparse_linalg

from ..errors import SolverError
from ..obs import metrics as obs_metrics
from ..obs import tracing

#: Environment variable forcing a default backend (see docs/SOLVERS.md).
SOLVER_ENV_VAR = "REPRO_SOLVER"

DEFAULT_TOLERANCE = 1e-12
DEFAULT_RESIDUAL_TOLERANCE = 1e-10
DEFAULT_MAX_ITERATIONS = 200_000

#: Entries below ``peak * _RELATIVE_FLOOR`` are compared on the floor
#: instead: below ~1e-14 of the peak a double holds no relative digits.
_RELATIVE_FLOOR = 1e-14

#: Negative round-off mass above this fraction of the total is an error,
#: not something to clip quietly.
_NEGATIVE_MASS_LIMIT = 1e-8


@dataclass(frozen=True)
class SolverOptions:
    """Shared convergence contract for every backend."""

    tolerance: float = DEFAULT_TOLERANCE
    residual_tolerance: float = DEFAULT_RESIDUAL_TOLERANCE
    max_iterations: int = DEFAULT_MAX_ITERATIONS

    def __post_init__(self):
        if self.tolerance <= 0 or self.residual_tolerance <= 0:
            raise SolverError("solver tolerances must be positive")
        if self.max_iterations < 1:
            raise SolverError("max_iterations must be >= 1")


@dataclass(frozen=True)
class SolverReport:
    """Diagnostics attached to every steady-state solve."""

    method: str
    size: int
    nnz: int
    iterations: int
    #: ``||pi Q||_inf`` of the returned (normalised) distribution.
    residual: float
    #: Probability mass clipped from negative round-off entries,
    #: relative to the total mass — 0.0 for a clean solve.
    mass_defect: float
    #: Backends that failed before this one succeeded (``auto`` only).
    fallbacks: Tuple[str, ...] = ()
    #: Per-iteration convergence series — ``(iteration, residual,
    #: relative_change)`` triples, with ``None`` where a backend does
    #: not expose the quantity (GMRES reports its preconditioned
    #: residual norm and no relative change).  Empty unless the solve
    #: was made with ``track_iterations=True``: the series costs one
    #: tuple per iteration, so it stays opt-in while the aggregate
    #: metrics stay always-on.
    iteration_trace: Tuple[Tuple[int, float, Optional[float]], ...] = ()

    def as_dict(self) -> Dict[str, object]:
        """JSON-serialisable form (sweep records, runtime stats).

        The opt-in iteration trace is included only when present, so
        journals and baselines written without tracking keep their
        historical shape.
        """
        out: Dict[str, object] = {
            "method": self.method,
            "size": self.size,
            "nnz": self.nnz,
            "iterations": self.iterations,
            "residual": self.residual,
            "mass_defect": self.mass_defect,
            "fallbacks": list(self.fallbacks),
        }
        if self.iteration_trace:
            out["iteration_trace"] = [
                {
                    "iteration": iteration,
                    "residual": residual,
                    "relative_change": relative_change,
                }
                for iteration, residual, relative_change
                in self.iteration_trace
            ]
        return out


@dataclass(frozen=True)
class SteadyStateSolution:
    """A steady-state distribution plus the report of how it was solved."""

    pi: np.ndarray
    report: SolverReport


class _Problem:
    """Shared per-solve view of the generator submatrix.

    Also the conduit of the opt-in per-iteration observation: the
    driver attaches ``track``/``callback`` before invoking a backend,
    and iterative backends report each iterate through
    :meth:`observe_iteration` — the observation happens *after* the
    iterate is computed, so it can never perturb the numerics.
    """

    def __init__(self, q):
        if sparse.issparse(q):
            self.matrix_free = False
            self.q = q.tocsr()
            self.a = self.q.transpose().tocsr()  # A x = (pi Q)^T
            self.nnz = int(self.q.nnz)
            self.diagonal = self.q.diagonal()
        else:
            # Matrix-free operand: any LinearOperator-like object with
            # matvec/rmatvec and an exact diagonal() (the contract the
            # KroneckerOperator implements, docs/SOLVERS.md).
            self.matrix_free = True
            self.q = q
            self.a = q.adjoint()
            self.nnz = int(getattr(q, "nnz_equivalent", 0))
            if not hasattr(q, "diagonal"):
                raise SolverError(
                    "matrix-free solves need the operator to expose "
                    "diagonal() (see repro.ctmc.kronecker)",
                    reason="matrix_free_unsupported",
                )
            self.diagonal = np.asarray(q.diagonal(), float)
        self.size = q.shape[0]
        #: Residuals are judged relative to the magnitude of Q.
        self.scale = max(1.0, float(np.abs(self.diagonal).max(initial=0.0)))
        #: Opt-in iteration observation (docs/OBSERVABILITY.md).
        self.track = False
        self.callback: Optional[Callable] = None
        self.iterations: List[Tuple[int, float, Optional[float]]] = []

    def residual(self, x: np.ndarray) -> float:
        """``||x Q||_inf`` for a (normalised) candidate distribution."""
        return float(np.abs(self.a @ x).max(initial=0.0))

    def observe_iteration(
        self,
        iteration: int,
        residual: float,
        relative_change: Optional[float],
    ) -> None:
        """Record one iteration for the trace and/or live callback."""
        if self.track:
            self.iterations.append((iteration, residual, relative_change))
        if self.callback is not None:
            self.callback(iteration, residual, relative_change)

    @property
    def observed(self) -> bool:
        """True when backends should bother reporting iterations."""
        return self.track or self.callback is not None

    def reset_observation(self) -> None:
        """Drop recorded iterations (between ``auto`` fallback tries)."""
        self.iterations = []


def _relative_change(x: np.ndarray, old: np.ndarray) -> float:
    """Worst per-entry relative change between successive iterates."""
    peak = float(np.abs(x).max(initial=0.0))
    if peak <= 0.0:
        return float("inf")
    floor = peak * _RELATIVE_FLOOR
    return float(np.max(np.abs(x - old) / np.maximum(np.abs(x), floor)))


def _converged(
    relative_change: float,
    residual: float,
    problem: _Problem,
    options: SolverOptions,
) -> bool:
    """The shared combined relative-change + residual test."""
    return (
        relative_change <= options.tolerance
        and residual <= options.residual_tolerance * problem.scale
    )


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

#: A backend maps (problem, options) to (raw solution, iterations used).
SolverBackend = Callable[[_Problem, SolverOptions], Tuple[np.ndarray, int]]

_REGISTRY: Dict[str, SolverBackend] = {}
_ALIASES: Dict[str, str] = {"gauss_seidel": "sor"}

#: Tried in order when ``auto``'s preferred backend fails.
_FALLBACK_CHAIN = ("direct", "sor", "power")

#: Backends that factorise or slice the matrix and therefore cannot run
#: on a matrix-free operand; the fallback chain skips them (a *named*
#: request still reaches the backend and gets the typed error).
_MATERIALIZED_ONLY = frozenset({"direct", "sor"})

#: Deterministic fallback order for matrix-free operands.
_MATRIX_FREE_CHAIN = ("gmres", "power")


def _fallback_candidates(problem: "_Problem") -> Tuple[str, ...]:
    """The fallback chain the operand can actually run.

    Matrix-free operands *skip* the materializing backends instead of
    crashing into their typed rejection one by one.
    """
    return (
        _MATRIX_FREE_CHAIN if problem.matrix_free else _FALLBACK_CHAIN
    )


def _require_materialized(problem: "_Problem", method: str) -> None:
    """Typed rejection of matrix-free operands by materializing backends."""
    if problem.matrix_free:
        raise SolverError(
            f"the {method!r} backend requires a materialized sparse "
            f"generator; solve LinearOperator operands with gmres/power",
            method=method,
            reason="matrix_free_unsupported",
        )


def register_solver(name: str) -> Callable[[SolverBackend], SolverBackend]:
    """Decorator registering a steady-state backend under *name*."""

    def decorate(backend: SolverBackend) -> SolverBackend:
        _REGISTRY[name] = backend
        return backend

    return decorate


def unregister_solver(name: str) -> None:
    """Remove a registered backend (used by tests injecting fakes)."""
    _REGISTRY.pop(name, None)


def available_solvers() -> Tuple[str, ...]:
    """Canonical backend names, sorted."""
    return tuple(sorted(_REGISTRY))


def solver_choices() -> Tuple[str, ...]:
    """Every accepted method name: ``auto``, backends, aliases and the
    ``parametric`` sweep mode (docs/SOLVERS.md)."""
    return ("auto", *available_solvers(), *sorted(_ALIASES), "parametric")


def resolve_method(method: Optional[str] = None) -> str:
    """Normalise a method request: None -> $REPRO_SOLVER -> ``auto``.

    Aliases are canonicalised; unknown names raise
    :class:`~repro.errors.SolverError`.  ``parametric`` is accepted even
    though it is not a per-chain backend: sweeps intercept it to build a
    rational-function solution (:mod:`repro.ctmc.parametric`), and any
    concrete solve reached with it falls back along
    :data:`_FALLBACK_CHAIN` deterministically.
    """
    if method is None:
        method = os.environ.get(SOLVER_ENV_VAR) or "auto"
    name = _ALIASES.get(method, method)
    if name not in ("auto", "parametric") and name not in _REGISTRY:
        known = ", ".join(solver_choices())
        raise SolverError(
            f"unknown steady-state method {method!r} (use one of: {known})"
        )
    return name


def select_method(size: int, nnz: int, matrix_free: bool = False) -> str:
    """Automatic backend selection by chain size and sparsity.

    Small chains are factorised directly; mid-sized sparse chains go to
    the ILU-preconditioned Krylov solver; mid-sized chains with dense
    rows stay direct (the factorisation amortises better than Krylov
    iterations over dense mat-vecs); very large chains fall back to the
    low-memory vectorized Gauss-Seidel sweeps.

    With ``matrix_free=True`` (a :class:`LinearOperator` operand) only
    the backends that work from matvecs alone are eligible:
    unpreconditioned GMRES while restarts stay affordable, uniformized
    power iteration beyond.
    """
    if matrix_free:
        return "gmres" if size <= 50_000 else "power"
    if size <= 2_000:
        return "direct"
    average_degree = nnz / max(size, 1)
    if size <= 50_000:
        return "gmres" if average_degree <= 16.0 else "direct"
    return "sor"


# ---------------------------------------------------------------------------
# Backends
# ---------------------------------------------------------------------------


def _anchor_row(problem: _Problem) -> int:
    """Index of the most diagonally dominant row of ``A = Q^T``.

    That balance equation is the safest one to sacrifice for the scale
    anchor: its information is best represented in the rest of the
    system, so replacing it perturbs the conditioning least.

    On a matrix-free operand the absolute row sums are not directly
    readable, but a generator's structure recovers them from one adjoint
    matvec: row ``i`` of ``A`` holds ``q_ii <= 0`` on the diagonal and
    the non-negative incoming rates off it, so ``|row_i|_1 = (A 1)_i -
    2 q_ii`` and the dominance ``2|q_ii| - |row_i|_1`` reduces to
    ``-(A 1)_i``.
    """
    if problem.matrix_free:
        column_sums = np.asarray(
            problem.a @ np.ones(problem.size), float
        ).reshape(-1)
        return int(np.argmax(-column_sums))
    absolute_row_sums = np.asarray(
        abs(problem.a).sum(axis=1)
    ).ravel()
    dominance = 2.0 * np.abs(problem.a.diagonal()) - absolute_row_sums
    return int(np.argmax(dominance))


def _anchored_system(
    problem: _Problem,
) -> Tuple[sparse.csr_matrix, np.ndarray, int]:
    """``A`` with the anchor equation replaced by ``x[anchor] = 1``.

    The replacement row is a *unit* row, not the dense all-ones
    normalisation row of textbook presentations: sparsity is fully
    preserved and the scale is fixed at the anchor state instead
    (renormalisation happens afterwards).  The dropped equation is
    linearly dependent on the remaining ones (the rows of ``Q^T`` sum to
    zero), so no information is lost, and the post-hoc residual check
    covers the ill-conditioned cases where floating point disagrees.
    """
    anchor = _anchor_row(problem)
    coo = problem.a.tocoo()
    keep = coo.row != anchor
    rows = np.append(coo.row[keep], anchor)
    cols = np.append(coo.col[keep], anchor)
    data = np.append(coo.data[keep], problem.scale)
    system = sparse.csr_matrix(
        (data, (rows, cols)), shape=problem.a.shape
    )
    rhs = np.zeros(problem.size)
    rhs[anchor] = problem.scale
    return system, rhs, anchor


def _anchored_operator(
    problem: _Problem,
) -> Tuple[sparse_linalg.LinearOperator, np.ndarray, int]:
    """Matrix-free counterpart of :func:`_anchored_system`.

    The anchored equation differs from the sparse path: the sacrificed
    balance row is replaced by the *normalisation* ``scale * sum(x) =
    scale`` rather than ``x[anchor] = 1``.  A dense row would ruin a
    sparse factorisation but costs nothing inside a matvec, and it pins
    the solution to the distribution itself (norm <= 1) instead of a
    vector normalised at one — typically tiny-probability — state.
    With the single-entry anchor the solution norm can reach ``1 /
    pi[anchor]``, parking the attainable true residual (rounding floor
    ``eps * ||A|| * ||x||``) far above any practical GMRES tolerance,
    so the solver grinds to maxiter on an iterate that was already
    converged; the normalisation row keeps the floor near ``eps *
    scale`` and restores an honest stopping test.
    """
    anchor = _anchor_row(problem)

    def matvec(x: np.ndarray) -> np.ndarray:
        y = np.asarray(problem.a @ x, float).reshape(-1).copy()
        y[anchor] = problem.scale * float(x.sum())
        return y

    system = sparse_linalg.LinearOperator(
        (problem.size, problem.size), matvec=matvec, dtype=float
    )
    rhs = np.zeros(problem.size)
    rhs[anchor] = problem.scale
    return system, rhs, anchor


@register_solver("direct")
def _solve_direct(
    problem: _Problem, options: SolverOptions
) -> Tuple[np.ndarray, int]:
    """Sparse LU factorisation of the anchored balance equations."""
    _require_materialized(problem, "direct")
    system, rhs, _ = _anchored_system(problem)
    try:
        solution = sparse_linalg.spsolve(system, rhs)
    except Exception as error:  # scipy raises various internal types
        raise SolverError(
            f"direct steady-state solve failed: {error}", method="direct"
        ) from error
    return solution, 1


@register_solver("gmres")
def _solve_gmres(
    problem: _Problem, options: SolverOptions
) -> Tuple[np.ndarray, int]:
    """ILU-preconditioned restarted GMRES on the anchored system.

    A matrix-free operand runs Jacobi-preconditioned on the anchored
    *operator* — incomplete factorisation needs the matrix entries, but
    the matrix-free contract guarantees an exact ``diagonal()``, and
    diagonal scaling is what turns the stiff anchored balance system
    into one restarted GMRES actually converges on (unpreconditioned it
    stalls orders of magnitude above tolerance).
    """
    preconditioner = None
    if problem.matrix_free:
        system, rhs, anchor = _anchored_operator(problem)
        jacobi = problem.diagonal.astype(float).copy()
        jacobi[anchor] = problem.scale
        # A generator diagonal is strictly negative off the anchor for
        # any irreducible chain; guard the degenerate zeros anyway.
        jacobi[jacobi == 0.0] = 1.0
        preconditioner = sparse_linalg.LinearOperator(
            system.shape, matvec=lambda x: x / jacobi, dtype=float
        )
    else:
        system, rhs, _ = _anchored_system(problem)
        try:
            ilu = sparse_linalg.spilu(
                system.tocsc(), drop_tol=1e-6, fill_factor=20.0
            )
            preconditioner = sparse_linalg.LinearOperator(
                system.shape, matvec=ilu.solve
            )
        except Exception:
            # Singular/zero pivots in the incomplete factorisation: run
            # unpreconditioned, the post-hoc residual check still
            # guards.
            preconditioner = None
    iterations = 0

    def count(pr_norm):
        nonlocal iterations
        iterations += 1
        if problem.observed:
            # GMRES exposes its preconditioned residual norm only; it
            # has no notion of a per-entry relative change.
            problem.observe_iteration(iterations, float(pr_norm), None)

    try:
        # Krylov depth 200: ILU-preconditioned (sparse) solves converge
        # long before the first restart, while the Jacobi-only
        # matrix-free solves need the deeper subspace — stiff fleet
        # operators stall indefinitely under restart-64 but converge in
        # a few thousand matvecs at 200.
        restart = min(problem.size, 200)
        solution, info = sparse_linalg.gmres(
            system,
            rhs,
            rtol=min(options.tolerance, 1e-10),
            atol=0.0,
            restart=restart,
            # scipy counts restart *cycles* here: divide so the option
            # bounds total inner iterations (matvecs), keeping failing
            # matrix-free solves from burning restart * max_iterations
            # operator applications before falling back.
            maxiter=max(1, -(-options.max_iterations // restart)),
            M=preconditioner,
            callback=count,
            callback_type="pr_norm",
        )
    except Exception as error:
        raise SolverError(
            f"GMRES steady-state solve failed: {error}", method="gmres"
        ) from error
    if info < 0:
        raise SolverError(
            f"GMRES received an illegal input (info={info})",
            method="gmres",
        )
    if info > 0:
        # The inner stopping rule works on the *anchored* system, whose
        # solution norm can dwarf the normalised distribution (the
        # anchor may be a tiny-probability state), making the requested
        # rtol unattainable in absolute terms.  What matters is the
        # residual of the normalised pi — accept the stalled iterate if
        # it passes that gate, otherwise report the failure.
        total = solution.sum()
        normalised = solution / total if total > 0.0 else solution
        residual = problem.residual(normalised)
        if not (
            total > 0.0
            and np.all(np.isfinite(solution))
            and residual <= options.residual_tolerance * problem.scale
        ):
            raise SolverError(
                f"GMRES did not converge within {info} iterations",
                method="gmres",
                residual=residual,
                iterations=iterations,
            )
    return solution, max(iterations, 1)


def _sor_sweep_operator(
    problem: _Problem, omega: float
) -> Tuple[sparse_linalg.SuperLU, sparse.csr_matrix, Optional[np.ndarray]]:
    """Factorise the SOR sweep ``(D/omega + L) x_new = rhs(x_old)``.

    The sweep matrix is lower triangular and constant across iterations,
    so it is factorised once (with natural ordering the LU of a
    triangular matrix is itself) and every sweep costs one sparse
    mat-vec plus one compiled triangular solve — the vectorized
    replacement of the historical O(iterations x nnz) pure-Python loop.
    """
    diagonal = problem.a.diagonal()
    if np.any(diagonal == 0.0):
        raise SolverError(
            "Gauss-Seidel needs non-zero diagonal entries "
            "(absorbing state?)",
            method="sor",
        )
    lower = sparse.tril(problem.a, k=0, format="csc")
    if omega != 1.0:
        lower = (
            lower + sparse.diags(diagonal * (1.0 / omega - 1.0))
        ).tocsc()
    upper = sparse.triu(problem.a, k=1, format="csr")
    relaxation = (
        diagonal * (1.0 / omega - 1.0) if omega != 1.0 else None
    )
    try:
        factor = sparse_linalg.splu(lower, permc_spec="NATURAL")
    except Exception as error:
        raise SolverError(
            f"Gauss-Seidel sweep factorisation failed: {error}",
            method="sor",
        ) from error
    return factor, upper, relaxation


@register_solver("sor")
def _solve_sor(
    problem: _Problem, options: SolverOptions, omega: float = 1.0
) -> Tuple[np.ndarray, int]:
    """Vectorized Gauss-Seidel (``omega=1``) / SOR sweeps on ``Q^T``.

    Sweeps in state order with in-place updates, exactly like the
    classic per-row formulation — the fixed point is identical — but
    each sweep runs in compiled sparse kernels.
    """
    _require_materialized(problem, "sor")
    factor, upper, relaxation = _sor_sweep_operator(problem, omega)
    x = np.full(problem.size, 1.0 / problem.size)
    for iteration in range(1, options.max_iterations + 1):
        old = x
        rhs = -(upper @ x)
        if relaxation is not None:
            rhs += relaxation * x
        x = factor.solve(rhs)
        total = x.sum()
        if not np.isfinite(total) or total <= 0.0:
            raise SolverError(
                "Gauss-Seidel diverged to a non-positive vector",
                method="sor",
                iterations=iteration,
            )
        x /= total
        residual = problem.residual(x)
        change = _relative_change(x, old)
        if problem.observed:
            problem.observe_iteration(iteration, residual, change)
        if _converged(change, residual, problem, options):
            return x, iteration
    raise SolverError(
        f"Gauss-Seidel did not converge within "
        f"{options.max_iterations} iterations",
        method="sor",
        iterations=options.max_iterations,
        residual=problem.residual(x),
    )


@register_solver("power")
def _solve_power(
    problem: _Problem, options: SolverOptions
) -> Tuple[np.ndarray, int]:
    """Power iteration on the uniformised DTMC of the recurrent class.

    On a matrix-free operand each step is ``x + (Q^T x) / Lambda`` — the
    same uniformised update (``P^T = I + Q^T / Lambda``) written as one
    adjoint matvec, since the off-diagonal cannot be sliced out of an
    operator.
    """
    exit_rates = -problem.diagonal
    uniformization_rate = float(exit_rates.max(initial=0.0)) * 1.02
    if uniformization_rate <= 0:
        raise SolverError(
            "power iteration needs a positive exit rate", method="power"
        )
    transition_t = stay = None
    if not problem.matrix_free:
        off_diagonal = problem.q - sparse.diags(problem.diagonal)
        transition_t = (
            (off_diagonal / uniformization_rate).transpose().tocsr()
        )
        stay = 1.0 - exit_rates / uniformization_rate
    x = np.full(problem.size, 1.0 / problem.size)
    for iteration in range(1, options.max_iterations + 1):
        if transition_t is None:
            updated = x + np.asarray(
                problem.a @ x, float
            ).reshape(-1) / uniformization_rate
        else:
            updated = transition_t @ x + stay * x
        total = updated.sum()
        if not np.isfinite(total) or total <= 0.0:
            raise SolverError(
                "power iteration diverged to a non-positive vector",
                method="power",
                iterations=iteration,
            )
        updated /= total
        residual = problem.residual(updated)
        change = _relative_change(updated, x)
        if problem.observed:
            problem.observe_iteration(iteration, residual, change)
        if _converged(change, residual, problem, options):
            return updated, iteration
        x = updated
    raise SolverError(
        f"power iteration did not converge within "
        f"{options.max_iterations} iterations",
        method="power",
        iterations=options.max_iterations,
        residual=problem.residual(x),
    )


# ---------------------------------------------------------------------------
# Reference implementation (kept for regression tests and benchmarks)
# ---------------------------------------------------------------------------


def gauss_seidel_reference(
    q: sparse.csr_matrix,
    tolerance: float = DEFAULT_TOLERANCE,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
) -> np.ndarray:
    """The historical pure-Python Gauss-Seidel sweep, verbatim.

    Not registered as a backend: it exists so tests can pin that the
    vectorized ``sor`` backend reaches the identical fixed point, and so
    ``benchmarks/bench_solvers.py`` can quantify the speedup.  Note it
    retains the historical *absolute* convergence test.
    """
    size = q.shape[0]
    qt = q.transpose().tocsr()
    diag = qt.diagonal()
    if np.any(diag == 0):
        raise SolverError(
            "Gauss-Seidel needs non-zero diagonal entries (absorbing state?)"
        )
    pi = np.full(size, 1.0 / size)
    indptr, indices, data = qt.indptr, qt.indices, qt.data
    for _ in range(max_iterations):
        old = pi.copy()
        for row in range(size):
            acc = 0.0
            for position in range(indptr[row], indptr[row + 1]):
                column = indices[position]
                if column != row:
                    acc += data[position] * pi[column]
            pi[row] = -acc / diag[row]
        total = pi.sum()
        if total <= 0:
            raise SolverError("Gauss-Seidel diverged to a non-positive vector")
        pi /= total
        if np.max(np.abs(pi - old)) < tolerance:
            return pi
    raise SolverError(
        f"Gauss-Seidel did not converge within {max_iterations} iterations"
    )


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def _finalize(
    raw: np.ndarray,
    iterations: int,
    method: str,
    problem: _Problem,
    options: SolverOptions,
    fallbacks: Tuple[str, ...],
) -> SteadyStateSolution:
    """Validate a backend's raw output and attach its report.

    Raises :class:`~repro.errors.SolverError` (with diagnostics) on
    non-finite values, significant negative mass, a zero vector, or a
    final residual above tolerance — nothing is clipped silently.
    """
    raw = np.asarray(raw, float)
    if raw.shape != (problem.size,) or np.any(~np.isfinite(raw)):
        raise SolverError(
            "steady-state solve produced non-finite values",
            method=method,
            iterations=iterations,
        )
    magnitude = float(np.abs(raw).sum())
    if magnitude <= 0.0:
        raise SolverError(
            "steady-state solve produced a zero vector",
            method=method,
            iterations=iterations,
        )
    negative_mass = float(-raw[raw < 0.0].sum())
    if negative_mass > _NEGATIVE_MASS_LIMIT * magnitude:
        raise SolverError(
            f"steady-state solve produced significant negative "
            f"probability mass ({negative_mass / magnitude:.3e} of the "
            f"total); the chain is too ill-conditioned for this backend",
            method=method,
            iterations=iterations,
        )
    pi = np.maximum(raw, 0.0)
    total = pi.sum()
    if total <= 0.0:
        raise SolverError(
            "steady-state solve produced a zero vector",
            method=method,
            iterations=iterations,
        )
    pi = pi / total
    residual = problem.residual(pi)
    if residual > options.residual_tolerance * problem.scale:
        raise SolverError(
            f"steady-state residual ||pi Q||_inf = {residual:.3e} exceeds "
            f"tolerance {options.residual_tolerance:.1e} * "
            f"{problem.scale:.3g}",
            method=method,
            residual=residual,
            iterations=iterations,
        )
    report = SolverReport(
        method=method,
        size=problem.size,
        nnz=problem.nnz,
        iterations=iterations,
        residual=residual,
        mass_defect=negative_mass / magnitude,
        fallbacks=fallbacks,
        iteration_trace=tuple(problem.iterations) if problem.track else (),
    )
    return SteadyStateSolution(pi, report)


def _record_solve_metrics(
    report: SolverReport, elapsed: float
) -> None:
    """Always-on aggregate metrics (and a trace span) per solve.

    Every successful solve funnels through here regardless of which
    entry point initiated it, so this is also where the causal trace
    gets its ``solve`` span — nested under whatever span is current
    (a worker's execute span, or the phase span on the serial path).
    """
    tracing.record_span(
        "solve",
        elapsed,
        method=report.method,
        iterations=report.iterations,
        residual=report.residual,
        fallbacks=list(report.fallbacks),
    )
    registry = obs_metrics.get_registry()
    if not registry.enabled:
        return
    labels = {"method": report.method}
    obs_metrics.SOLVER_SOLVES.on(registry).labels(**labels).inc()
    obs_metrics.SOLVER_ITERATIONS.on(registry).labels(**labels).inc(
        report.iterations
    )
    obs_metrics.SOLVER_RESIDUAL.on(registry).labels(**labels).observe(
        report.residual
    )
    obs_metrics.SOLVER_SECONDS.on(registry).labels(**labels).observe(
        elapsed
    )
    for fallback in report.fallbacks:
        obs_metrics.SOLVER_FALLBACKS.on(registry).labels(
            method=fallback
        ).inc()


def solve_steady_state(
    q,
    method: Optional[str] = None,
    tolerance: float = DEFAULT_TOLERANCE,
    residual_tolerance: float = DEFAULT_RESIDUAL_TOLERANCE,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    track_iterations: bool = False,
    iteration_callback: Optional[Callable] = None,
) -> SteadyStateSolution:
    """Solve ``pi Q = 0, sum(pi) = 1`` on an irreducible generator.

    *q* is a sparse generator submatrix, or a matrix-free
    :class:`~scipy.sparse.linalg.LinearOperator` with ``rmatvec`` and
    ``diagonal()`` (e.g. :class:`repro.ctmc.kronecker.KroneckerOperator`
    — the flat matrix is never formed).

    *method* is a registry name, an alias, ``auto`` or ``None``
    (= ``$REPRO_SOLVER`` or ``auto``).  ``auto`` selects by size and
    sparsity and falls back along :data:`_FALLBACK_CHAIN` when the
    preferred backend fails (matrix-free operands skip the
    materializing ``direct``/``sor`` backends); a named method never
    falls back.

    With ``track_iterations=True`` the per-iteration convergence series
    is attached to the report (``SolverReport.iteration_trace``);
    *iteration_callback* — any ``(iteration, residual,
    relative_change)`` callable — is invoked live instead/as well.
    Neither affects the computed distribution.
    """
    name = resolve_method(method)
    options = SolverOptions(tolerance, residual_tolerance, max_iterations)
    problem = _Problem(q)
    problem.track = track_iterations
    problem.callback = iteration_callback
    started = time.perf_counter()
    if name == "parametric":
        # A concrete per-chain solve was requested with the parametric
        # method: this chain has no prebuilt parametric solution (no
        # cached rate provenance, a structural parameter, or the
        # elimination fell back).  Solve along the deterministic
        # fallback chain and record the parametric miss in the report,
        # so results stay reproducible point by point.
        registry = obs_metrics.get_registry()
        if registry.enabled:
            obs_metrics.PARAMETRIC_FALLBACKS.on(registry).labels(
                reason="concrete"
            ).inc()
        failed = ["parametric"]
        last_error: Optional[SolverError] = None
        for candidate in _fallback_candidates(problem):
            problem.reset_observation()
            try:
                raw, iterations = _REGISTRY[candidate](problem, options)
                solution = _finalize(
                    raw, iterations, candidate, problem, options,
                    tuple(failed),
                )
                _record_solve_metrics(
                    solution.report, time.perf_counter() - started
                )
                return solution
            except SolverError as error:
                failed.append(candidate)
                last_error = error
        raise SolverError(
            f"every backend failed on this chain "
            f"(tried {', '.join(failed)}); last error: {last_error}"
        ) from last_error
    if name != "auto":
        raw, iterations = _REGISTRY[name](problem, options)
        solution = _finalize(raw, iterations, name, problem, options, ())
        _record_solve_metrics(
            solution.report, time.perf_counter() - started
        )
        return solution
    preferred = select_method(
        problem.size, problem.nnz, matrix_free=problem.matrix_free
    )
    candidates = [preferred]
    candidates.extend(
        fallback
        for fallback in _fallback_candidates(problem)
        if fallback not in candidates
    )
    failed: list = []
    last_error: Optional[SolverError] = None
    for candidate in candidates:
        problem.reset_observation()
        try:
            raw, iterations = _REGISTRY[candidate](problem, options)
            solution = _finalize(
                raw, iterations, candidate, problem, options,
                tuple(failed),
            )
            _record_solve_metrics(
                solution.report, time.perf_counter() - started
            )
            return solution
        except SolverError as error:
            failed.append(candidate)
            last_error = error
    raise SolverError(
        f"every backend failed on this chain "
        f"(tried {', '.join(failed)}); last error: {last_error}"
    ) from last_error

"""Continuous-time Markov chain representation.

A :class:`CTMC` holds the *tangible* states of a Markovian model after
vanishing-state elimination.  Each transition carries, besides its rate, the
expected number of times every original action label is crossed when the
transition fires (immediate actions traversed inside an eliminated vanishing
path contribute fractional expected counts).  This keeps throughput-style
measures of immediate actions exactly computable:

    throughput(a) = sum over transitions  pi(source) * rate * counts[a]

State-level information records which labels are *enabled* in each state,
supporting the measure language's ``ENABLED(pattern) -> STATE_REWARD(r)``
conditions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Set, Tuple

import numpy as np
from scipy import sparse

from ..errors import MarkovianError


@dataclass
class CTMCTransition:
    """One rate transition between tangible states."""

    source: int
    target: int
    rate: float
    label_counts: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self):
        if self.rate <= 0:
            raise MarkovianError(
                f"CTMC transition rate must be positive, got {self.rate}"
            )


class CTMC:
    """A finite CTMC with label bookkeeping for reward measures."""

    def __init__(self, num_states: int, initial_distribution=None):
        if num_states <= 0:
            raise MarkovianError("a CTMC needs at least one state")
        self.num_states = num_states
        if initial_distribution is None:
            initial_distribution = np.zeros(num_states)
            initial_distribution[0] = 1.0
        self.initial_distribution = np.asarray(initial_distribution, float)
        if self.initial_distribution.shape != (num_states,):
            raise MarkovianError("initial distribution has wrong length")
        if not np.isclose(self.initial_distribution.sum(), 1.0):
            raise MarkovianError("initial distribution must sum to one")
        self.transitions: List[CTMCTransition] = []
        self._outgoing: Dict[int, List[CTMCTransition]] = {}
        self._enabled_labels: Dict[int, FrozenSet[str]] = {}
        self._state_info: Dict[int, str] = {}

    # -- construction -------------------------------------------------------

    def add_transition(
        self,
        source: int,
        target: int,
        rate: float,
        label_counts: Optional[Mapping[str, float]] = None,
    ) -> None:
        """Add (or merge into) a transition between tangible states.

        Parallel transitions between the same pair of states are merged:
        rates add, and label counts merge weighted by rate so that
        ``rate * counts`` (the throughput contribution) is preserved.
        """
        for state in (source, target):
            if not 0 <= state < self.num_states:
                raise MarkovianError(f"state {state} out of range")
        counts = dict(label_counts or {})
        for existing in self._outgoing.get(source, ()):
            if existing.target == target:
                merged_rate = existing.rate + rate
                merged_counts: Dict[str, float] = {}
                for label, count in existing.label_counts.items():
                    merged_counts[label] = count * existing.rate / merged_rate
                for label, count in counts.items():
                    merged_counts[label] = (
                        merged_counts.get(label, 0.0)
                        + count * rate / merged_rate
                    )
                existing.rate = merged_rate
                existing.label_counts = merged_counts
                return
        transition = CTMCTransition(source, target, rate, counts)
        self.transitions.append(transition)
        self._outgoing.setdefault(source, []).append(transition)

    def set_enabled_labels(self, state: int, labels: FrozenSet[str]) -> None:
        """Record which original labels are enabled in *state*."""
        self._enabled_labels[state] = labels

    def set_state_info(self, state: int, info: str) -> None:
        """Attach a human-readable description to *state*."""
        self._state_info[state] = info

    # -- accessors -----------------------------------------------------------

    def outgoing(self, state: int) -> List[CTMCTransition]:
        """Transitions leaving *state*."""
        return self._outgoing.get(state, [])

    def enabled_labels(self, state: int) -> FrozenSet[str]:
        """Original labels enabled in *state*."""
        return self._enabled_labels.get(state, frozenset())

    def state_info(self, state: int) -> str:
        """Human-readable description of *state*."""
        return self._state_info.get(state, f"state {state}")

    def exit_rate(self, state: int) -> float:
        """Total rate leaving *state* (self-loops excluded)."""
        return sum(
            t.rate for t in self.outgoing(state) if t.target != state
        )

    def max_exit_rate(self) -> float:
        """Largest exit rate over all states (uniformisation constant)."""
        return max(
            (self.exit_rate(state) for state in range(self.num_states)),
            default=0.0,
        )

    # -- matrices -------------------------------------------------------------

    def generator_matrix(self) -> sparse.csr_matrix:
        """The infinitesimal generator ``Q`` (self-loops cancel out)."""
        rows: List[int] = []
        cols: List[int] = []
        data: List[float] = []
        diagonal = np.zeros(self.num_states)
        for transition in self.transitions:
            if transition.source == transition.target:
                continue
            rows.append(transition.source)
            cols.append(transition.target)
            data.append(transition.rate)
            diagonal[transition.source] -= transition.rate
        for state in range(self.num_states):
            rows.append(state)
            cols.append(state)
            data.append(diagonal[state])
        return sparse.csr_matrix(
            (data, (rows, cols)), shape=(self.num_states, self.num_states)
        )

    def uniformized_matrix(
        self, uniformization_rate: Optional[float] = None
    ) -> Tuple[sparse.csr_matrix, float]:
        """The DTMC ``P = I + Q / Lambda`` used by uniformisation."""
        rate = uniformization_rate
        if rate is None:
            rate = self.max_exit_rate() * 1.02
        if rate <= 0:
            raise MarkovianError(
                "cannot uniformise a chain with no positive exit rate"
            )
        identity = sparse.identity(self.num_states, format="csr")
        return identity + self.generator_matrix() / rate, rate

    # -- structure ---------------------------------------------------------------

    def bottom_strongly_connected_components(self) -> List[Set[int]]:
        """BSCCs of the transition graph (Tarjan, iterative)."""
        successors: Dict[int, List[int]] = {
            s: [t.target for t in self.outgoing(s) if t.target != s]
            for s in range(self.num_states)
        }
        index_counter = [0]
        stack: List[int] = []
        lowlink: Dict[int, int] = {}
        index: Dict[int, int] = {}
        on_stack: Dict[int, bool] = {}
        components: List[Set[int]] = []

        for root in range(self.num_states):
            if root in index:
                continue
            work = [(root, iter(successors[root]))]
            index[root] = lowlink[root] = index_counter[0]
            index_counter[0] += 1
            stack.append(root)
            on_stack[root] = True
            while work:
                node, successor_iter = work[-1]
                advanced = False
                for successor in successor_iter:
                    if successor not in index:
                        index[successor] = lowlink[successor] = index_counter[0]
                        index_counter[0] += 1
                        stack.append(successor)
                        on_stack[successor] = True
                        work.append((successor, iter(successors[successor])))
                        advanced = True
                        break
                    if on_stack.get(successor):
                        lowlink[node] = min(lowlink[node], index[successor])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index[node]:
                    component: Set[int] = set()
                    while True:
                        member = stack.pop()
                        on_stack[member] = False
                        component.add(member)
                        if member == node:
                            break
                    components.append(component)
        bottom: List[Set[int]] = []
        for component in components:
            is_bottom = all(
                target in component
                for state in component
                for target in successors[state]
            )
            if is_bottom:
                bottom.append(component)
        return bottom

    def __str__(self) -> str:
        return (
            f"CTMC({self.num_states} states, {len(self.transitions)} "
            f"transitions)"
        )

"""Steady-state solution of CTMCs.

Three solvers are provided (benchmarked against each other in the ablation
benches):

* ``direct`` — sparse LU factorisation of the normalised balance equations;
  exact up to floating point, the default for the case-study chains;
* ``gauss_seidel`` — classic iterative sweep, low memory;
* ``power`` — power iteration on the uniformised DTMC.

All solvers operate on the recurrent class of the chain: the steady-state
distribution assigns probability zero to transient states.  Chains with
several bottom strongly connected components have no unique steady state
and are rejected with a descriptive error.
"""

from __future__ import annotations


import numpy as np
from scipy import sparse
from scipy.sparse import linalg as sparse_linalg

from ..errors import SolverError
from .chain import CTMC


def steady_state(
    ctmc: CTMC,
    method: str = "direct",
    tolerance: float = 1e-12,
    max_iterations: int = 200_000,
) -> np.ndarray:
    """Compute the steady-state distribution of *ctmc*.

    Returns a probability vector over all states; transient states get
    probability zero.
    """
    bsccs = ctmc.bottom_strongly_connected_components()
    if len(bsccs) == 0:
        raise SolverError("chain has no bottom strongly connected component")
    if len(bsccs) > 1:
        sizes = ", ".join(str(len(b)) for b in bsccs)
        raise SolverError(
            f"chain has {len(bsccs)} bottom strongly connected components "
            f"(sizes {sizes}); the steady state depends on the initial "
            f"distribution and is not unique"
        )
    recurrent = sorted(bsccs[0])
    if len(recurrent) == 1:
        pi = np.zeros(ctmc.num_states)
        pi[recurrent[0]] = 1.0
        return pi
    index = {state: i for i, state in enumerate(recurrent)}
    sub_q = _submatrix(ctmc, recurrent, index)
    if method == "direct":
        sub_pi = _solve_direct(sub_q)
    elif method == "gauss_seidel":
        sub_pi = _solve_gauss_seidel(sub_q, tolerance, max_iterations)
    elif method == "power":
        sub_pi = _solve_power(ctmc, recurrent, index, tolerance, max_iterations)
    else:
        raise SolverError(
            f"unknown steady-state method {method!r} "
            f"(use direct, gauss_seidel or power)"
        )
    pi = np.zeros(ctmc.num_states)
    for state, position in index.items():
        pi[state] = sub_pi[position]
    return pi


def _submatrix(ctmc: CTMC, recurrent, index) -> sparse.csr_matrix:
    size = len(recurrent)
    rows, cols, data = [], [], []
    diagonal = np.zeros(size)
    for state in recurrent:
        for transition in ctmc.outgoing(state):
            if transition.target == state:
                continue
            rows.append(index[state])
            cols.append(index[transition.target])
            data.append(transition.rate)
            diagonal[index[state]] -= transition.rate
    for position in range(size):
        rows.append(position)
        cols.append(position)
        data.append(diagonal[position])
    return sparse.csr_matrix((data, (rows, cols)), shape=(size, size))


def _solve_direct(q: sparse.csr_matrix) -> np.ndarray:
    """Solve ``pi Q = 0, sum(pi) = 1`` by replacing one balance equation."""
    size = q.shape[0]
    system = q.transpose().tolil()
    system[size - 1, :] = np.ones(size)
    rhs = np.zeros(size)
    rhs[size - 1] = 1.0
    try:
        solution = sparse_linalg.spsolve(system.tocsr(), rhs)
    except Exception as error:  # scipy raises various internal types
        raise SolverError(f"direct steady-state solve failed: {error}") from error
    if np.any(~np.isfinite(solution)):
        raise SolverError("direct steady-state solve produced non-finite values")
    solution = np.maximum(solution, 0.0)
    total = solution.sum()
    if total <= 0:
        raise SolverError("direct steady-state solve produced a zero vector")
    return solution / total


def _solve_gauss_seidel(
    q: sparse.csr_matrix, tolerance: float, max_iterations: int
) -> np.ndarray:
    """Gauss-Seidel sweeps on ``Q^T pi^T = 0`` with renormalisation."""
    size = q.shape[0]
    qt = q.transpose().tocsr()
    diag = qt.diagonal()
    if np.any(diag == 0):
        raise SolverError(
            "Gauss-Seidel needs non-zero diagonal entries (absorbing state?)"
        )
    pi = np.full(size, 1.0 / size)
    indptr, indices, data = qt.indptr, qt.indices, qt.data
    for iteration in range(max_iterations):
        old = pi.copy()
        for row in range(size):
            acc = 0.0
            for position in range(indptr[row], indptr[row + 1]):
                column = indices[position]
                if column != row:
                    acc += data[position] * pi[column]
            pi[row] = -acc / diag[row]
        total = pi.sum()
        if total <= 0:
            raise SolverError("Gauss-Seidel diverged to a non-positive vector")
        pi /= total
        if np.max(np.abs(pi - old)) < tolerance:
            return pi
    raise SolverError(
        f"Gauss-Seidel did not converge within {max_iterations} iterations"
    )


def _solve_power(
    ctmc: CTMC, recurrent, index, tolerance: float, max_iterations: int
) -> np.ndarray:
    """Power iteration on the uniformised DTMC restricted to the BSCC."""
    size = len(recurrent)
    exit_rates = np.zeros(size)
    rows, cols, data = [], [], []
    for state in recurrent:
        for transition in ctmc.outgoing(state):
            if transition.target == state:
                continue
            exit_rates[index[state]] += transition.rate
            rows.append(index[state])
            cols.append(index[transition.target])
            data.append(transition.rate)
    uniformization_rate = float(exit_rates.max()) * 1.02
    if uniformization_rate <= 0:
        raise SolverError("power iteration needs a positive exit rate")
    probability_matrix = sparse.csr_matrix(
        ([d / uniformization_rate for d in data], (rows, cols)),
        shape=(size, size),
    )
    stay = 1.0 - exit_rates / uniformization_rate
    pi = np.full(size, 1.0 / size)
    for iteration in range(max_iterations):
        updated = pi @ probability_matrix + pi * stay
        updated /= updated.sum()
        if np.max(np.abs(updated - pi)) < tolerance:
            return updated
        pi = updated
    raise SolverError(
        f"power iteration did not converge within {max_iterations} iterations"
    )

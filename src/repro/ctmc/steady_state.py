"""Steady-state solution of CTMCs.

The numerical work lives in the pluggable backend registry of
:mod:`repro.ctmc.solvers` (``direct``, ``gmres``, ``sor``/
``gauss_seidel``, ``power``, or ``auto`` selection by chain size and
sparsity — see docs/SOLVERS.md).  This module handles the chain
structure: all solvers operate on the recurrent class of the chain, the
steady-state distribution assigns probability zero to transient states,
and chains with several bottom strongly connected components have no
unique steady state and are rejected with a descriptive error.

:func:`steady_state` returns the bare distribution;
:func:`steady_state_solution` additionally returns the
:class:`~repro.ctmc.solvers.SolverReport` — which backend solved the
chain, at what residual ``||pi Q||_inf``, in how many iterations — that
the sweep runtime records per point.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy import sparse

from ..errors import SolverError
from .chain import CTMC
from .solvers import (
    DEFAULT_MAX_ITERATIONS,
    DEFAULT_RESIDUAL_TOLERANCE,
    DEFAULT_TOLERANCE,
    SolverReport,
    SteadyStateSolution,
    solve_steady_state,
)


def steady_state_solution(
    ctmc: CTMC,
    method: Optional[str] = None,
    tolerance: float = DEFAULT_TOLERANCE,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    residual_tolerance: float = DEFAULT_RESIDUAL_TOLERANCE,
    track_iterations: bool = False,
    iteration_callback=None,
) -> SteadyStateSolution:
    """Steady-state distribution of *ctmc* plus solver diagnostics.

    ``method=None`` resolves through ``$REPRO_SOLVER`` to ``auto``.  The
    returned distribution covers all states (transient states get
    probability zero); the report's residual is measured on the
    recurrent class.  ``track_iterations`` / ``iteration_callback``
    enable the opt-in per-iteration convergence observation of
    :func:`repro.ctmc.solvers.solve_steady_state` (no-ops for the
    single-state closed form).
    """
    bsccs = ctmc.bottom_strongly_connected_components()
    if len(bsccs) == 0:
        raise SolverError("chain has no bottom strongly connected component")
    if len(bsccs) > 1:
        sizes = ", ".join(str(len(b)) for b in bsccs)
        raise SolverError(
            f"chain has {len(bsccs)} bottom strongly connected components "
            f"(sizes {sizes}); the steady state depends on the initial "
            f"distribution and is not unique"
        )
    recurrent = sorted(bsccs[0])
    if len(recurrent) == 1:
        pi = np.zeros(ctmc.num_states)
        pi[recurrent[0]] = 1.0
        report = SolverReport(
            method="closed_form",
            size=1,
            nnz=0,
            iterations=0,
            residual=0.0,
            mass_defect=0.0,
        )
        return SteadyStateSolution(pi, report)
    index = {state: i for i, state in enumerate(recurrent)}
    sub_q = _submatrix(ctmc, recurrent, index)
    solution = solve_steady_state(
        sub_q,
        method=method,
        tolerance=tolerance,
        residual_tolerance=residual_tolerance,
        max_iterations=max_iterations,
        track_iterations=track_iterations,
        iteration_callback=iteration_callback,
    )
    pi = np.zeros(ctmc.num_states)
    for state, position in index.items():
        pi[state] = solution.pi[position]
    return SteadyStateSolution(pi, solution.report)


def steady_state(
    ctmc: CTMC,
    method: Optional[str] = None,
    tolerance: float = DEFAULT_TOLERANCE,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    residual_tolerance: float = DEFAULT_RESIDUAL_TOLERANCE,
) -> np.ndarray:
    """Compute the steady-state distribution of *ctmc*.

    Returns a probability vector over all states; transient states get
    probability zero.  Use :func:`steady_state_solution` to also obtain
    the solver report (backend, residual, iterations).
    """
    return steady_state_solution(
        ctmc,
        method=method,
        tolerance=tolerance,
        max_iterations=max_iterations,
        residual_tolerance=residual_tolerance,
    ).pi


def _submatrix(ctmc: CTMC, recurrent, index) -> sparse.csr_matrix:
    size = len(recurrent)
    rows, cols, data = [], [], []
    diagonal = np.zeros(size)
    for state in recurrent:
        for transition in ctmc.outgoing(state):
            if transition.target == state:
                continue
            rows.append(index[state])
            cols.append(index[transition.target])
            data.append(transition.rate)
            diagonal[index[state]] -= transition.rate
    for position in range(size):
        rows.append(position)
        cols.append(position)
        data.append(diagonal[position])
    return sparse.csr_matrix((data, (rows, cols)), shape=(size, size))

"""Extension experiments beyond the paper's evaluation.

* ``ext-battery`` — expected battery lifetime of the rpc server with and
  without DPM (first-passage analysis on the battery-extended model), the
  quantity the paper's steady-state energy rates ultimately stand for.
* ``ext-sensitivity`` — how the DPM's energy benefit responds to the
  workload parameters (client processing time and channel loss), the kind
  of what-if exploration the paper's Sect. 6 motivates ("guide the system
  designer in deciding whether it is worth introducing the DPM in a
  certain realistic scenario").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence


from ..aemilia.semantics import generate_lts
from ..casestudies import rpc
from ..casestudies.rpc import battery
from ..core.methodology import IncrementalMethodology
from ..core.reporting import ascii_chart, format_table
from ..ctmc.build import build_ctmc
from ..ctmc.transient import transient_distribution


@dataclass
class BatteryLifetimeResult:
    """Lifetime table for several DPM timeouts plus the baseline."""

    timeouts: List[float]
    lifetimes: Dict[float, float]
    nodpm_lifetime: float
    capacity: int

    def extension_factor(self, timeout: float) -> float:
        """Lifetime gain of the DPM at the given timeout."""
        return self.lifetimes[timeout] / self.nodpm_lifetime

    def report(self) -> str:
        rows = [
            [
                timeout,
                self.lifetimes[timeout],
                self.extension_factor(timeout),
            ]
            for timeout in self.timeouts
        ]
        rows.append(["NO-DPM", self.nodpm_lifetime, 1.0])
        table = format_table(
            ["shutdown timeout [ms]", "expected lifetime [ms]", "vs NO-DPM"],
            rows,
            f"=== ext-battery: rpc battery lifetime "
            f"(capacity {self.capacity} units) ===",
        )
        return table + (
            "\nexpected shape: shorter DPM timeouts extend the battery "
            "lifetime, mirroring the steady-state energy savings of fig3"
        )


def battery_lifetime(
    timeouts: Sequence[float] = (1.0, 5.0, 15.0),
    capacity: int = 25,
) -> BatteryLifetimeResult:
    """Run the first-passage lifetime analysis."""
    dpm_archi = battery.dpm_architecture()
    lifetimes = {
        timeout: battery.expected_lifetime(
            dpm_archi,
            {"shutdown_timeout": timeout, "battery_capacity": capacity},
        )
        for timeout in timeouts
    }
    nodpm = battery.expected_lifetime(
        battery.nodpm_architecture(), {"battery_capacity": capacity}
    )
    return BatteryLifetimeResult(list(timeouts), lifetimes, nodpm, capacity)


@dataclass
class SurvivalResult:
    """Battery survival curves: P(battery still alive at t)."""

    times: List[float]
    dpm_survival: List[float]
    nodpm_survival: List[float]
    capacity: int

    def report(self) -> str:
        rows = [
            [t, dpm, nodpm]
            for t, dpm, nodpm in zip(
                self.times, self.dpm_survival, self.nodpm_survival
            )
        ]
        table = format_table(
            ["time [ms]", "P(alive) DPM", "P(alive) NO-DPM"],
            rows,
            f"=== ext-survival: battery survival curves "
            f"(capacity {self.capacity} units, transient analysis) ===",
        )
        chart = ascii_chart(
            self.times,
            {"DPM": self.dpm_survival, "NO-DPM": self.nodpm_survival},
            title="battery survival probability over time",
            x_label="time [ms]",
            y_label="P(alive)",
        )
        return table + "\n\n" + chart


def battery_survival(
    times: Sequence[float] = (50.0, 100.0, 200.0, 300.0, 450.0, 600.0),
    capacity: int = 12,
    shutdown_timeout: float = 2.0,
) -> SurvivalResult:
    """P(battery not yet empty at t), DPM vs NO-DPM, by uniformisation.

    The empty-battery states are not absorbing in the model (the system
    idles on), but 'the battery has been empty at some point' equals
    'the battery is empty now' because the charge never increases — so the
    transient mass outside the empty states is exactly the survival
    probability.
    """
    def survival(archi, overrides):
        lts = generate_lts(archi, overrides)
        ctmc = build_ctmc(lts)
        empty = set(battery.empty_battery_states(ctmc))
        values = []
        for t in times:
            pi = transient_distribution(ctmc, t)
            values.append(
                float(sum(pi[s] for s in range(ctmc.num_states)
                          if s not in empty))
            )
        return values

    dpm = survival(
        battery.dpm_architecture(),
        {"battery_capacity": capacity, "shutdown_timeout": shutdown_timeout},
    )
    nodpm = survival(
        battery.nodpm_architecture(), {"battery_capacity": capacity}
    )
    return SurvivalResult(list(times), dpm, nodpm, capacity)


@dataclass
class SensitivityResult:
    """DPM energy saving across a workload-parameter grid."""

    parameter: str
    values: List[float]
    savings: Dict[float, float]
    throughput_costs: Dict[float, float]

    def report(self) -> str:
        rows = [
            [value, self.savings[value], self.throughput_costs[value]]
            for value in self.values
        ]
        return format_table(
            [self.parameter, "energy saving", "throughput cost"],
            rows,
            f"=== ext-sensitivity: DPM benefit vs {self.parameter} "
            f"(rpc Markovian, 5 ms timeout) ===",
        )


def sensitivity(
    parameter: str = "proc_time",
    values: Sequence[float] = (3.0, 6.0, 9.7, 20.0, 40.0),
    timeout: float = 5.0,
) -> SensitivityResult:
    """Sweep a workload parameter; report the DPM's benefit at each point.

    Longer client processing times mean longer server idle periods, hence
    more DPM opportunity; higher loss probabilities mean more
    retransmissions and less idle time.
    """
    methodology = IncrementalMethodology(rpc.family())
    savings: Dict[float, float] = {}
    costs: Dict[float, float] = {}
    for value in values:
        overrides = {parameter: value, "shutdown_timeout": timeout}
        baseline_overrides = {parameter: value}
        dpm = methodology.solve_markovian("dpm", overrides)
        nodpm = methodology.solve_markovian("nodpm", baseline_overrides)
        dpm_epr = dpm["energy"] / dpm["throughput"]
        nodpm_epr = nodpm["energy"] / nodpm["throughput"]
        savings[value] = 1.0 - dpm_epr / nodpm_epr
        costs[value] = 1.0 - dpm["throughput"] / nodpm["throughput"]
    return SensitivityResult(parameter, list(values), savings, costs)

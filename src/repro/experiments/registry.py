"""Registry mapping experiment ids to their regeneration functions.

The ids follow DESIGN.md's per-experiment index.  Every entry returns an
object with a ``report()`` method; ``quick`` selects a reduced sweep /
simulation effort suitable for CI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from ..casestudies import rpc, streaming
from ..core.reporting import format_table
from . import extensions, fleet_figures, rpc_figures, streaming_figures
from .results import RunOptions


@dataclass(frozen=True)
class Experiment:
    """One regenerable artifact of the paper."""

    id: str
    paper_artifact: str
    #: (quick, options) -> result with .report(); the RunOptions carry
    #: workers / retry / fault-injection / tracing and are ignored by
    #: experiments with no sweep or replication phase.
    run: Callable[[bool, RunOptions], object]


class _ParamsTable:
    """The in-text parameter 'tables' of Sect. 4.1/4.2."""

    def report(self) -> str:
        rpc_params = rpc.DEFAULT_PARAMETERS
        streaming_params = streaming.DEFAULT_PARAMETERS
        lines = ["=== tab-params: case-study parameters (paper Sect. 4) ==="]
        lines.append(
            format_table(
                ["rpc parameter", "value [ms]"],
                [
                    ["service time", rpc_params.service_time],
                    ["awaking time", rpc_params.awake_time],
                    ["propagation time", rpc_params.propagation_time],
                    ["loss probability", rpc_params.loss_probability],
                    ["client processing time", rpc_params.processing_time],
                    ["client timeout", rpc_params.timeout_time],
                    ["mean idle period", rpc_params.mean_idle_period],
                ],
            )
        )
        lines.append("")
        lines.append(
            format_table(
                ["streaming parameter", "value"],
                [
                    ["AP buffer size", streaming_params.ap_capacity],
                    ["client buffer size", streaming_params.b_capacity],
                    ["frame period [ms]", streaming_params.frame_period],
                    ["propagation time [ms]", streaming_params.propagation_time],
                    ["loss probability", streaming_params.loss_probability],
                    ["NIC checking time [ms]", streaming_params.check_time],
                    ["NIC awaking time [ms]", streaming_params.nic_awake_time],
                    ["initial client delay [ms]", streaming_params.initial_delay],
                    ["rendering time [ms]", streaming_params.render_period],
                    ["shutdown period [ms]", streaming_params.shutdown_period],
                ],
            )
        )
        return "\n".join(lines)


def _experiments() -> List[Experiment]:
    return [
        Experiment(
            "sec3-rpc",
            "Sect. 3.1 noninterference check + distinguishing formula",
            lambda quick, options=None: rpc_figures.sec3_noninterference(),
        ),
        Experiment(
            "sec3-streaming",
            "Sect. 3.2 noninterference check (streaming)",
            lambda quick, options=None: streaming_figures.sec3_noninterference(),
        ),
        Experiment(
            "fig3-markov",
            "Fig. 3 left: rpc Markovian sweep",
            lambda quick, options=None: rpc_figures.fig3_markov(
                rpc_figures.QUICK_TIMEOUTS if quick else None,
                options=options,
            ),
        ),
        Experiment(
            "fig3-general",
            "Fig. 3 right: rpc general-model sweep",
            lambda quick, options=None: rpc_figures.fig3_general(
                rpc_figures.QUICK_TIMEOUTS if quick else None,
                runs=4 if quick else 8,
                run_length=10_000.0 if quick else 20_000.0,
                options=options,
            ),
        ),
        Experiment(
            "fig4",
            "Fig. 4: streaming Markovian sweep",
            lambda quick, options=None: streaming_figures.fig4_markov(
                streaming_figures.QUICK_AWAKE_PERIODS if quick else None,
                options=options,
            ),
        ),
        Experiment(
            "fig4-dense",
            "Fig. 4 on a dense 1000-point grid (parametric fast path)",
            lambda quick, options=None: streaming_figures.fig4_dense(
                streaming_figures.QUICK_DENSE_POINTS
                if quick
                else streaming_figures.DENSE_POINTS,
                options=options,
            ),
        ),
        Experiment(
            "fig5",
            "Fig. 5: validation of the rpc general model",
            lambda quick, options=None: rpc_figures.fig5_validation(
                [5.0, 15.0] if quick else None,
                runs=8 if quick else 30,
                run_length=10_000.0 if quick else 20_000.0,
                options=options,
            ),
        ),
        Experiment(
            "fig6",
            "Fig. 6: streaming general-model sweep",
            lambda quick, options=None: streaming_figures.fig6_general(
                streaming_figures.QUICK_AWAKE_PERIODS if quick else None,
                runs=3 if quick else 6,
                run_length=30_000.0 if quick else 60_000.0,
                options=options,
            ),
        ),
        Experiment(
            "fig7",
            "Fig. 7: rpc energy/waiting trade-off",
            lambda quick, options=None: rpc_figures.fig7_tradeoff(
                runs=4 if quick else 8,
                run_length=10_000.0 if quick else 20_000.0,
                options=options,
            ),
        ),
        Experiment(
            "fig7-workloads",
            "Fig. 7 extension: rpc trade-off under Poisson / MMPP / "
            "Pareto workloads",
            lambda quick, options=None: rpc_figures.fig7_workloads(
                rpc_figures.QUICK_TIMEOUTS if quick else None,
                runs=3 if quick else 8,
                run_length=6_000.0 if quick else 20_000.0,
                trace_events=1500 if quick else 4000,
                options=options,
            ),
        ),
        Experiment(
            "fig8",
            "Fig. 8: streaming energy/miss trade-off",
            lambda quick, options=None: streaming_figures.fig8_tradeoff(
                runs=3 if quick else 6,
                run_length=30_000.0 if quick else 60_000.0,
                options=options,
            ),
        ),
        Experiment(
            "streaming-validation",
            "Sect. 5.1 protocol applied to the streaming model",
            lambda quick, options=None: streaming_figures.streaming_validation(
                [50.0] if quick else None,
                runs=6 if quick else 10,
                run_length=20_000.0 if quick else 30_000.0,
                options=options,
            ),
        ),
        Experiment(
            "tab-params",
            "Sect. 4.1/4.2 parameter sets",
            lambda quick, options=None: _ParamsTable(),
        ),
        Experiment(
            "ext-battery",
            "extension: battery lifetime by first-passage analysis",
            lambda quick, options=None: extensions.battery_lifetime(
                timeouts=(1.0, 5.0) if quick else (1.0, 5.0, 15.0),
                capacity=15 if quick else 25,
            ),
        ),
        Experiment(
            "ext-survival",
            "extension: battery survival curves by transient analysis",
            lambda quick, options=None: extensions.battery_survival(
                times=(
                    (50.0, 150.0, 300.0)
                    if quick
                    else (50.0, 100.0, 200.0, 300.0, 450.0, 600.0)
                ),
                capacity=8 if quick else 12,
            ),
        ),
        Experiment(
            "ext-fleet",
            "extension: N-device fleet coordinator policies "
            "(Kronecker/lumped matrix-free solves)",
            lambda quick, options=None: fleet_figures.fleet_policies(
                rates=fleet_figures.QUICK_RATES if quick else None,
                n=3 if quick else 4,
                options=options,
            ),
        ),
        Experiment(
            "ext-sensitivity",
            "extension: DPM benefit vs workload parameters",
            lambda quick, options=None: extensions.sensitivity(
                values=(6.0, 9.7, 20.0) if quick else (3.0, 6.0, 9.7, 20.0, 40.0),
            ),
        ),
    ]


def all_experiments() -> Dict[str, Experiment]:
    """Registry keyed by experiment id."""
    return {experiment.id: experiment for experiment in _experiments()}

"""Regeneration of the paper's rpc artifacts (Sect. 3.1, Figs. 3, 5, 7).

Each function returns a :class:`~repro.experiments.results.FigureResult`
(or a richer object) whose ``report()`` prints the same rows/series the
paper plots.  ``quick=True`` shrinks simulation effort for test/benchmark
runs; the shapes are stable either way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..casestudies import rpc
from ..core.methodology import IncrementalMethodology
from ..core.noninterference import NoninterferenceResult, check_noninterference
from ..core.tradeoff import TradeoffCurve
from ..core.validation import ValidationReport
from ..distributions import Distribution, Exponential, Pareto
from ..workload import MMPPGenerator, TraceReplay, workload_fingerprint
from .results import (
    FigureResult,
    RunOptions,
    RuntimeStats,
    constant_series,
    ratio_series,
)

#: Paper sweep: DPM shutdown timeout in ms (0..25 in the paper; exactly 0
#: would be an infinite exponential rate).
DEFAULT_TIMEOUTS = rpc.SHUTDOWN_TIMEOUT_SWEEP
QUICK_TIMEOUTS = [0.5, 2.0, 5.0, 9.0, 11.0, 12.5, 15.0, 25.0]


@dataclass
class NoninterferenceFigure:
    """The Sect. 3.1 experiment: simplified fails, revised passes."""

    simplified: NoninterferenceResult
    revised: NoninterferenceResult

    def report(self) -> str:
        lines = ["=== sec3-rpc: noninterference analysis of rpc ==="]
        lines.append("-- simplified model (Sect. 2.3, trivial DPM):")
        lines.append(self.simplified.diagnostic())
        lines.append("")
        lines.append("-- revised model (Sect. 3.1, state-aware DPM + timeout):")
        lines.append(self.revised.diagnostic())
        return "\n".join(lines)


def sec3_noninterference() -> NoninterferenceFigure:
    """Run the two functional checks of Sect. 3.1."""
    simplified = check_noninterference(
        rpc.functional.simplified_architecture(),
        rpc.functional.HIGH_PATTERNS,
        rpc.functional.LOW_PATTERNS,
    )
    revised = check_noninterference(
        rpc.functional.revised_architecture(),
        rpc.functional.HIGH_PATTERNS,
        rpc.functional.LOW_PATTERNS,
    )
    return NoninterferenceFigure(simplified, revised)


def _derive_rpc(series: Dict[str, List[float]]) -> Dict[str, List[float]]:
    """Add the paper's derived indices to raw measure series."""
    derived = dict(series)
    derived["energy_per_request"] = ratio_series(
        series["energy"], series["throughput"]
    )
    # Little's law: average waiting time = P(waiting) / throughput.
    derived["avg_waiting_time"] = ratio_series(
        series["waiting_time"], series["throughput"]
    )
    return derived


def fig3_markov(
    timeouts: Optional[Sequence[float]] = None,
    methodology: Optional[IncrementalMethodology] = None,
    workers: Optional[int] = None,
    options: Optional[RunOptions] = None,
) -> FigureResult:
    """Fig. 3 (left): rpc Markovian comparison, DPM vs NO-DPM."""
    timeouts = list(timeouts if timeouts is not None else DEFAULT_TIMEOUTS)
    options = RunOptions.resolve(options, workers)
    methodology = methodology or IncrementalMethodology(
        rpc.family(), **options.methodology_kwargs()
    )
    dpm = methodology.sweep_markovian(
        "shutdown_timeout", timeouts, "dpm", workers=workers
    )
    nodpm_point = methodology.solve_markovian("nodpm")
    dpm = _derive_rpc(dpm)
    nodpm = _derive_rpc(
        {name: [value] for name, value in nodpm_point.items()}
    )
    nodpm = {
        name: constant_series(values[0], len(timeouts))
        for name, values in nodpm.items()
    }
    return FigureResult(
        figure_id="fig3-left",
        title="rpc Markovian model: throughput / waiting time / energy "
        "per request vs DPM shutdown timeout",
        parameter_name="shutdown timeout [ms]",
        parameter_values=timeouts,
        dpm_series={
            "throughput": dpm["throughput"],
            "waiting_time": dpm["waiting_time"],
            "energy_per_request": dpm["energy_per_request"],
        },
        nodpm_series={
            "throughput": nodpm["throughput"],
            "waiting_time": nodpm["waiting_time"],
            "energy_per_request": nodpm["energy_per_request"],
        },
        notes=[
            "expected shape: the shorter the timeout, the larger the DPM "
            "impact; energy/request below NO-DPM everywhere (the DPM is "
            "never counterproductive in the Markovian model); all curves "
            "converge to NO-DPM as the timeout grows",
        ],
        runtime=RuntimeStats.from_methodology(methodology),
    )


def fig3_general(
    timeouts: Optional[Sequence[float]] = None,
    methodology: Optional[IncrementalMethodology] = None,
    run_length: float = 20_000.0,
    runs: int = 8,
    warmup: float = 500.0,
    seed: int = 20040628,
    workers: Optional[int] = None,
    options: Optional[RunOptions] = None,
) -> FigureResult:
    """Fig. 3 (right): rpc general model (deterministic + Gaussian delays)."""
    timeouts = list(timeouts if timeouts is not None else DEFAULT_TIMEOUTS)
    options = RunOptions.resolve(options, workers)
    methodology = methodology or IncrementalMethodology(
        rpc.family(), **options.methodology_kwargs()
    )
    dpm = methodology.sweep_general(
        "shutdown_timeout",
        timeouts,
        "dpm",
        run_length=run_length,
        runs=runs,
        warmup=warmup,
        seed=seed,
        workers=workers,
    )
    nodpm_rep = methodology.simulate_general(
        "nodpm",
        run_length=run_length,
        runs=runs,
        warmup=warmup,
        seed=seed,
        workers=workers,
    )
    nodpm_point = {
        name: nodpm_rep[name].mean for name in nodpm_rep.estimates
    }
    dpm = _derive_rpc(dpm)
    nodpm_derived = _derive_rpc(
        {name: [value] for name, value in nodpm_point.items()}
    )
    nodpm = {
        name: constant_series(values[0], len(timeouts))
        for name, values in nodpm_derived.items()
    }
    mean_idle = rpc.DEFAULT_PARAMETERS.mean_idle_period
    return FigureResult(
        figure_id="fig3-right",
        title="rpc general model: deterministic timings, Gaussian channel",
        parameter_name="shutdown timeout [ms]",
        parameter_values=timeouts,
        dpm_series={
            "throughput": dpm["throughput"],
            "waiting_time": dpm["waiting_time"],
            "energy_per_request": dpm["energy_per_request"],
        },
        nodpm_series={
            "throughput": nodpm["throughput"],
            "waiting_time": nodpm["waiting_time"],
            "energy_per_request": nodpm["energy_per_request"],
        },
        notes=[
            f"expected shape: bimodal with the knee at the mean idle "
            f"period ({mean_idle:.1f} ms); below it energy grows linearly "
            f"with the timeout while throughput/waiting stay flat; above "
            f"it the DPM has no effect; the DPM is counterproductive "
            f"(energy/request above NO-DPM) for timeouts just below the "
            f"idle period",
        ],
        runtime=RuntimeStats.from_methodology(methodology),
    )


@dataclass
class ValidationFigure:
    """Fig. 5: general(exp) simulation vs Markovian analytic solution."""

    timeouts: List[float]
    reports: Dict[float, ValidationReport]
    runtime: Optional[RuntimeStats] = None

    @property
    def passed(self) -> bool:
        return all(report.passed for report in self.reports.values())

    def report(self) -> str:
        lines = [
            "=== fig5: validation of the rpc general model "
            "(exponential plug-in vs Markovian analytic) ==="
        ]
        for timeout in self.timeouts:
            lines.append(f"-- shutdown timeout {timeout} ms:")
            lines.append(str(self.reports[timeout]))
        lines.append(
            "overall: " + ("PASSED" if self.passed else "FAILED")
        )
        if self.runtime is not None:
            lines.append(self.runtime.describe())
        return "\n".join(lines)


def fig5_validation(
    timeouts: Optional[Sequence[float]] = None,
    methodology: Optional[IncrementalMethodology] = None,
    run_length: float = 20_000.0,
    runs: int = 30,
    warmup: float = 500.0,
    seed: int = 20040628,
    workers: Optional[int] = None,
    options: Optional[RunOptions] = None,
) -> ValidationFigure:
    """Fig. 5: cross-validation at several shutdown timeouts (30 runs,
    90% confidence intervals, as in the paper)."""
    timeouts = list(timeouts if timeouts is not None else [5.0, 15.0, 25.0])
    options = RunOptions.resolve(options, workers)
    methodology = methodology or IncrementalMethodology(
        rpc.family(), **options.methodology_kwargs()
    )
    reports = {}
    for timeout in timeouts:
        reports[timeout] = methodology.validate(
            {"shutdown_timeout": timeout},
            run_length=run_length,
            runs=runs,
            warmup=warmup,
            seed=seed,
            workers=workers,
        )
    return ValidationFigure(
        list(timeouts),
        reports,
        runtime=RuntimeStats.from_methodology(methodology),
    )


@dataclass
class TradeoffFigure:
    """Fig. 7: energy/waiting-time trade-off, Markov + general curves."""

    markov: TradeoffCurve
    general: TradeoffCurve

    def report(self) -> str:
        lines = [
            "=== fig7: rpc energy-per-request vs waiting-time trade-off ==="
        ]
        for curve in (self.markov, self.general):
            lines.append(curve.describe())
        lines.append(
            "expected: the general curve contains Pareto-dominated points "
            "(timeouts near the 11.3 ms idle period); the Markovian curve "
            "does not"
        )
        return "\n".join(lines)


def fig7_tradeoff(
    markov_figure: Optional[FigureResult] = None,
    general_figure: Optional[FigureResult] = None,
    workers: Optional[int] = None,
    options: Optional[RunOptions] = None,
    **general_kwargs,
) -> TradeoffFigure:
    """Fig. 7 from the fig3 sweeps (recomputing them if not supplied)."""
    options = RunOptions.resolve(options, workers)
    methodology = IncrementalMethodology(
        rpc.family(), **options.methodology_kwargs()
    )
    if markov_figure is None:
        markov_figure = fig3_markov(methodology=methodology)
    if general_figure is None:
        general_figure = fig3_general(
            methodology=methodology, **general_kwargs
        )
    markov = TradeoffCurve.from_sweep(
        "rpc Markov",
        markov_figure.parameter_values,
        markov_figure.dpm_series["waiting_time"],
        markov_figure.dpm_series["energy_per_request"],
    )
    general = TradeoffCurve.from_sweep(
        "rpc general",
        general_figure.parameter_values,
        general_figure.dpm_series["waiting_time"],
        general_figure.dpm_series["energy_per_request"],
    )
    return TradeoffFigure(markov, general)


def workload_classes(
    mean: float, seed: int = 20040628, trace_events: int = 4000
) -> Dict[str, Distribution]:
    """The three workload classes of the fig7 extension, mean-matched.

    All three have the same mean interarrival *mean* (the rpc client's
    processing time), so only the *shape* of the workload differs:

    * ``poisson`` — the Markovian assumption (cv2 = 1);
    * ``mmpp`` — a cycle-mode replay of a generated 2-state MMPP trace
      rescaled to the target mean (bursty, cv2 > 4, positively
      correlated — the kind of process Q-DPM measures on real devices);
    * ``pareto`` — Pareto(1.5, mean/3) heavy-tail (infinite variance).
    """
    trace = MMPPGenerator(2.0, 0.05, 5.0, 50.0).generate(
        trace_events, seed
    ).rescaled(mean)
    return {
        "poisson": Exponential(1.0 / mean),
        "mmpp": TraceReplay(trace, "cycle"),
        "pareto": Pareto(1.5, mean / 3.0),
    }


@dataclass
class WorkloadTradeoffFigure:
    """Fig. 7 extension: one trade-off curve per workload class."""

    curves: Dict[str, TradeoffCurve]
    workloads: Dict[str, str]
    parameter_values: List[float]
    runtime: Optional[RuntimeStats] = None

    def report(self) -> str:
        lines = [
            "=== fig7-workloads: rpc energy/waiting trade-off under "
            "Poisson vs MMPP-bursty vs Pareto heavy-tail workloads ==="
        ]
        for name, curve in self.curves.items():
            lines.append(f"-- workload {name} ({self.workloads[name]}):")
            lines.append(curve.describe())
        lines.append(
            "expected: all classes share the mean processing time, so "
            "differences are pure workload shape; the bursty and "
            "heavy-tail curves shift the counterproductive-timeout "
            "region relative to Poisson (cf. Q-DPM's trace-driven DPM "
            "evaluation)"
        )
        if self.runtime is not None:
            lines.append(self.runtime.describe())
        return "\n".join(lines)


def fig7_workloads(
    timeouts: Optional[Sequence[float]] = None,
    methodology: Optional[IncrementalMethodology] = None,
    run_length: float = 20_000.0,
    runs: int = 8,
    warmup: float = 500.0,
    seed: int = 20040628,
    trace_events: int = 4000,
    workers: Optional[int] = None,
    options: Optional[RunOptions] = None,
    checkpoint: Optional[str] = None,
) -> WorkloadTradeoffFigure:
    """The fig7 trade-off swept over three workload classes.

    One :meth:`~repro.core.methodology.IncrementalMethodology.sweep_workloads`
    grid (every (class, timeout) pair is one task, so ``--workers``
    parallelises across classes too); *checkpoint* enables bit-identical
    resume of the whole grid.
    """
    timeouts = list(timeouts if timeouts is not None else DEFAULT_TIMEOUTS)
    options = RunOptions.resolve(options, workers)
    methodology = methodology or IncrementalMethodology(
        rpc.family(), **options.methodology_kwargs()
    )
    classes = workload_classes(
        rpc.DEFAULT_PARAMETERS.processing_time, seed, trace_events
    )
    grid = methodology.sweep_workloads(
        classes,
        "shutdown_timeout",
        timeouts,
        run_length=run_length,
        runs=runs,
        warmup=warmup,
        seed=seed,
        workers=workers,
        checkpoint=checkpoint,
    )
    curves = {}
    for name, series in grid.items():
        derived = _derive_rpc(series)
        curves[name] = TradeoffCurve.from_sweep(
            f"rpc {name}",
            timeouts,
            derived["waiting_time"],
            derived["energy_per_request"],
        )
    return WorkloadTradeoffFigure(
        curves,
        {name: workload_fingerprint(dist) for name, dist in classes.items()},
        timeouts,
        runtime=RuntimeStats.from_methodology(methodology),
    )

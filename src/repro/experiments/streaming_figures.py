"""Regeneration of the paper's streaming artifacts (Sect. 3.2, Figs. 4, 6, 8).

The streaming indices (Sect. 4.2) are derived from the base reward
measures:

* ``energy_per_frame`` = NIC power / frames-received rate  [mJ/frame],
* ``loss``  = buffer-overflow drops / frames produced,
* ``miss``  = real-time violations / frame fetches,
* ``quality`` = 1 - miss  (probability of delivering a frame in time).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..casestudies import streaming
from ..core.methodology import IncrementalMethodology
from ..core.noninterference import NoninterferenceResult, check_noninterference
from ..core.tradeoff import TradeoffCurve
from ..core.validation import ValidationReport
from .results import (
    FigureResult,
    RunOptions,
    RuntimeStats,
    constant_series,
    ratio_series,
)

DEFAULT_AWAKE_PERIODS = streaming.AWAKE_PERIOD_SWEEP
QUICK_AWAKE_PERIODS = [10.0, 50.0, 100.0, 200.0, 400.0, 800.0]

#: Grid sizes of the dense fig4 variant (parametric fast path).
DENSE_POINTS = 1000
QUICK_DENSE_POINTS = 250


def dense_awake_periods(points: int) -> List[float]:
    """Uniform *points*-point grid over the paper's awake-period range."""
    low = min(DEFAULT_AWAKE_PERIODS)
    high = max(DEFAULT_AWAKE_PERIODS)
    step = (high - low) / (points - 1)
    return [low + index * step for index in range(points)]


def derive_streaming(series: Dict[str, List[float]]) -> Dict[str, List[float]]:
    """Compute the paper's four indices from the base measures."""
    energy_per_frame = ratio_series(
        series["nic_power"], series["frames_received"]
    )
    loss = ratio_series(series["frames_lost"], series["frames_produced"])
    miss = ratio_series(series["frame_misses"], series["frame_gets"])
    quality = [1.0 - value for value in miss]
    return {
        "energy_per_frame": energy_per_frame,
        "loss": loss,
        "miss": miss,
        "quality": quality,
    }


@dataclass
class StreamingNoninterference:
    """Sect. 3.2: the streaming model satisfies noninterference."""

    result: NoninterferenceResult

    def report(self) -> str:
        lines = [
            "=== sec3-streaming: noninterference analysis of the "
            "PSP-managed NIC ==="
        ]
        lines.append(self.result.diagnostic())
        return "\n".join(lines)


def sec3_noninterference() -> StreamingNoninterference:
    """Run the functional check of Sect. 3.2 (reduced buffer capacities)."""
    result = check_noninterference(
        streaming.functional.functional_architecture(),
        streaming.functional.HIGH_PATTERNS,
        streaming.functional.LOW_PATTERNS,
        const_overrides=streaming.functional.FUNCTIONAL_CAPACITIES,
    )
    return StreamingNoninterference(result)


def _figure(
    figure_id: str,
    title: str,
    awake_periods: List[float],
    dpm_raw: Dict[str, List[float]],
    nodpm_raw: Dict[str, float],
    notes: List[str],
    runtime: Optional[RuntimeStats] = None,
) -> FigureResult:
    dpm = derive_streaming(dpm_raw)
    nodpm_derived = derive_streaming(
        {name: [value] for name, value in nodpm_raw.items()}
    )
    nodpm = {
        name: constant_series(values[0], len(awake_periods))
        for name, values in nodpm_derived.items()
    }
    return FigureResult(
        figure_id=figure_id,
        title=title,
        parameter_name="awake period [ms]",
        parameter_values=awake_periods,
        dpm_series=dpm,
        nodpm_series=nodpm,
        notes=notes,
        runtime=runtime,
    )


def fig4_markov(
    awake_periods: Optional[Sequence[float]] = None,
    methodology: Optional[IncrementalMethodology] = None,
    workers: Optional[int] = None,
    options: Optional[RunOptions] = None,
) -> FigureResult:
    """Fig. 4: streaming Markovian comparison, DPM vs NO-DPM."""
    awake_periods = list(
        awake_periods if awake_periods is not None else DEFAULT_AWAKE_PERIODS
    )
    options = RunOptions.resolve(options, workers)
    methodology = methodology or IncrementalMethodology(
        streaming.family(), **options.methodology_kwargs()
    )
    dpm_raw = methodology.sweep_markovian(
        "awake_period", awake_periods, "dpm", workers=workers
    )
    nodpm_raw = methodology.solve_markovian("nodpm")
    return _figure(
        "fig4",
        "streaming Markovian model: energy per frame / loss / miss / "
        "quality vs PSP awake period",
        awake_periods,
        dpm_raw,
        nodpm_raw,
        notes=[
            "expected shape: energy per frame falls steeply then "
            "flattens; miss grows and quality falls with the awake "
            "period; loss is non-monotonic (client-side relief vs AP "
            "pressure); around 50 ms the DPM saves ~70% energy at small "
            "quality cost",
        ],
        runtime=RuntimeStats.from_methodology(methodology),
    )


def fig4_dense(
    points: int = DENSE_POINTS,
    methodology: Optional[IncrementalMethodology] = None,
    workers: Optional[int] = None,
    options: Optional[RunOptions] = None,
) -> FigureResult:
    """Fig. 4 on a dense uniform grid via the parametric fast path.

    Forces ``method="parametric"``: the chain is eliminated once into
    per-measure rational functions and every grid point evaluates in
    microseconds, so 1000+ points cost less than the classic 11-point
    sweep — the smooth-curve mode the coarse grid of the paper could
    not afford (falls back to per-point solves if elimination fails).
    """
    awake_periods = dense_awake_periods(points)
    options = RunOptions.resolve(options, workers)
    methodology = methodology or IncrementalMethodology(
        streaming.family(), **options.methodology_kwargs()
    )
    dpm_raw = methodology.sweep_markovian(
        "awake_period",
        awake_periods,
        "dpm",
        method="parametric",
        workers=workers,
    )
    nodpm_raw = methodology.solve_markovian("nodpm")
    return _figure(
        "fig4-dense",
        f"streaming Markovian model on a dense {len(awake_periods)}-point "
        f"awake-period grid (parametric steady state)",
        awake_periods,
        dpm_raw,
        nodpm_raw,
        notes=[
            "same model and measures as fig4, evaluated on a dense "
            "uniform grid through the one-time rational-function "
            "elimination: the smooth curves resolve the knee of the "
            "energy/quality trade-off between the coarse grid's points",
        ],
        runtime=RuntimeStats.from_methodology(methodology),
    )


def fig6_general(
    awake_periods: Optional[Sequence[float]] = None,
    methodology: Optional[IncrementalMethodology] = None,
    run_length: float = 60_000.0,
    runs: int = 6,
    warmup: float = 2_000.0,
    seed: int = 20040628,
    workers: Optional[int] = None,
    options: Optional[RunOptions] = None,
) -> FigureResult:
    """Fig. 6: streaming general model (deterministic CBR video)."""
    awake_periods = list(
        awake_periods if awake_periods is not None else DEFAULT_AWAKE_PERIODS
    )
    options = RunOptions.resolve(options, workers)
    methodology = methodology or IncrementalMethodology(
        streaming.family(), **options.methodology_kwargs()
    )
    dpm_raw = methodology.sweep_general(
        "awake_period",
        awake_periods,
        "dpm",
        run_length=run_length,
        runs=runs,
        warmup=warmup,
        seed=seed,
        workers=workers,
    )
    nodpm_rep = methodology.simulate_general(
        "nodpm",
        run_length=run_length,
        runs=runs,
        warmup=warmup,
        seed=seed,
        workers=workers,
    )
    nodpm_raw = {name: nodpm_rep[name].mean for name in nodpm_rep.estimates}
    return _figure(
        "fig6",
        "streaming general model: deterministic CBR video, Gaussian "
        "channel, PSP NIC",
        awake_periods,
        dpm_raw,
        nodpm_raw,
        notes=[
            "expected shape (Sect. 5.3): no loss up to ~400 ms and no "
            "miss up to ~100 ms awake periods; quality unaffected below "
            "100 ms while energy saving exceeds 70% — the DPM is "
            "transparent at the Aironet 350's 100 ms setting; doubling "
            "to 200 ms degrades quality for negligible marginal saving",
        ],
        runtime=RuntimeStats.from_methodology(methodology),
    )


@dataclass
class StreamingValidationFigure:
    """Validation of the streaming general model (Sect. 5.1 protocol)."""

    awake_periods: List[float]
    reports: Dict[float, ValidationReport]
    runtime: Optional[RuntimeStats] = None

    @property
    def passed(self) -> bool:
        return all(report.passed for report in self.reports.values())

    def report(self) -> str:
        lines = [
            "=== streaming validation (exponential plug-in vs Markovian "
            "analytic) ==="
        ]
        for period in self.awake_periods:
            lines.append(f"-- awake period {period} ms:")
            lines.append(str(self.reports[period]))
        lines.append("overall: " + ("PASSED" if self.passed else "FAILED"))
        if self.runtime is not None:
            lines.append(self.runtime.describe())
        return "\n".join(lines)


def streaming_validation(
    awake_periods: Optional[Sequence[float]] = None,
    methodology: Optional[IncrementalMethodology] = None,
    run_length: float = 30_000.0,
    runs: int = 10,
    warmup: float = 1_000.0,
    seed: int = 20040628,
    workers: Optional[int] = None,
    options: Optional[RunOptions] = None,
) -> StreamingValidationFigure:
    """Cross-validate the streaming general model at several periods."""
    awake_periods = list(
        awake_periods if awake_periods is not None else [50.0, 200.0]
    )
    options = RunOptions.resolve(options, workers)
    methodology = methodology or IncrementalMethodology(
        streaming.family(), **options.methodology_kwargs()
    )
    reports = {}
    for period in awake_periods:
        reports[period] = methodology.validate(
            {"awake_period": period},
            run_length=run_length,
            runs=runs,
            warmup=warmup,
            seed=seed,
            relative_tolerance=0.15,
            workers=workers,
        )
    return StreamingValidationFigure(
        list(awake_periods),
        reports,
        runtime=RuntimeStats.from_methodology(methodology),
    )


@dataclass
class StreamingTradeoffFigure:
    """Fig. 8: energy-per-frame vs miss-rate trade-off."""

    markov: TradeoffCurve
    general: TradeoffCurve

    def report(self) -> str:
        lines = [
            "=== fig8: streaming energy-per-frame vs miss-rate trade-off ==="
        ]
        for curve in (self.markov, self.general):
            lines.append(curve.describe())
        lines.append(
            "expected: both curves share the qualitative shape; the "
            "general model offers sizeable energy savings at zero miss "
            "cost (DPM completely transparent for small awake periods)"
        )
        return "\n".join(lines)


def fig8_tradeoff(
    markov_figure: Optional[FigureResult] = None,
    general_figure: Optional[FigureResult] = None,
    workers: Optional[int] = None,
    options: Optional[RunOptions] = None,
    **general_kwargs,
) -> StreamingTradeoffFigure:
    """Fig. 8 from the fig4/fig6 sweeps (recomputing if not supplied)."""
    options = RunOptions.resolve(options, workers)
    methodology = IncrementalMethodology(
        streaming.family(), **options.methodology_kwargs()
    )
    if markov_figure is None:
        markov_figure = fig4_markov(methodology=methodology)
    if general_figure is None:
        general_figure = fig6_general(
            methodology=methodology, **general_kwargs
        )
    markov = TradeoffCurve.from_sweep(
        "streaming Markov",
        markov_figure.parameter_values,
        markov_figure.dpm_series["miss"],
        markov_figure.dpm_series["energy_per_frame"],
    )
    general = TradeoffCurve.from_sweep(
        "streaming general",
        general_figure.parameter_values,
        general_figure.dpm_series["miss"],
        general_figure.dpm_series["energy_per_frame"],
    )
    return StreamingTradeoffFigure(markov, general)

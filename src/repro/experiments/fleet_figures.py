"""Fleet-scale extension experiments (docs/FLEET.md).

``ext-fleet`` compares the coordinator policies of the N-device fleet
case study across an arrival-rate sweep, solved on the
exchangeability-lumped matrix-free operator, and shows the state-space
collapse the compositional engine buys: the flat product space grows as
``|C| * |S|^N`` while the lumped operator grows polynomially.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..casestudies.fleet import (
    ARRIVAL_RATE_SWEEP,
    POLICIES,
    build_model,
)
from ..core.reporting import format_table
from ..fleet import FleetAssessment
from .results import RunOptions

#: Reduced sweep for --quick / CI runs.
QUICK_RATES = (0.5, 1.5, 3.0)
#: Columns worth comparing across policies in the report.
REPORT_MEASURES = (
    "power",
    "throughput",
    "queue_length",
    "job_loss",
    "sleeping_devices",
    "wakeups",
    "handoffs",
)


@dataclass
class FleetPoliciesResult:
    """Per-policy sweep series plus the state-space scaling table."""

    n: int
    rates: List[float]
    series: Dict[str, Dict[str, List[float]]]
    sizes: List[List[object]]

    def report(self) -> str:
        lines = [
            f"=== ext-fleet: {self.n}-device fleet, coordinator "
            "policies (lumped matrix-free solves) ==="
        ]
        for policy in sorted(self.series):
            rows = []
            for index, rate in enumerate(self.rates):
                rows.append(
                    [rate]
                    + [
                        round(self.series[policy][name][index], 6)
                        for name in REPORT_MEASURES
                    ]
                )
            lines.append(
                format_table(
                    ["arrival rate", *REPORT_MEASURES],
                    rows,
                    f"policy: {policy}",
                )
            )
            lines.append("")
        lines.append(
            format_table(
                ["devices", "product states", "lumped states", "ratio"],
                self.sizes,
                "state-space collapse (balanced policy topology)",
            )
        )
        lines.append(
            "expected shape: staggered wake-ups trade throughput for "
            "smoother power draw; the emergency policy's handoffs keep "
            "low-battery devices out of the busy states"
        )
        return "\n".join(lines)


def fleet_policies(
    rates: Optional[Sequence[float]] = None,
    n: int = 4,
    scaling_sizes: Sequence[int] = (2, 4, 7, 10, 16),
    options: Optional[RunOptions] = None,
) -> FleetPoliciesResult:
    """Sweep every coordinator policy over the arrival rate."""
    options = RunOptions.resolve(options)
    rates = list(rates if rates is not None else ARRIVAL_RATE_SWEEP)
    series: Dict[str, Dict[str, List[float]]] = {}
    for policy in sorted(POLICIES):
        assessment = FleetAssessment(
            n,
            policy=policy,
            workers=options.workers,
            retry=options.retry,
            faults=options.faults,
            tracer=options.tracer,
            solver=options.solver,
        )
        series[policy] = assessment.sweep("arrival_rate", rates)
    sizes = []
    for size in scaling_sizes:
        topology = build_model(size, "balanced").topology
        sizes.append(
            [
                size,
                topology.product_states,
                topology.lumped_states,
                f"{topology.product_states / topology.lumped_states:.1f}x",
            ]
        )
    return FleetPoliciesResult(n=n, rates=rates, series=series, sizes=sizes)

"""Command-line entry point: regenerate the paper's figures.

Usage::

    python -m repro.experiments list
    python -m repro.experiments fig3-markov
    python -m repro.experiments all --quick
    repro-experiments fig6            # console script

Reliability tooling (docs/RELIABILITY.md)::

    repro-experiments fig4 --workers 4 --chaos seed=7,poison=0.2 --retry 3
    repro-experiments run-sweep --case rpc --phase markovian \
        --parameter shutdown_timeout --values 0.5,2,11,25 \
        --checkpoint journal.jsonl --output series.json
    repro-experiments trace-summary trace.jsonl

Observability tooling (docs/OBSERVABILITY.md)::

    repro-experiments fig4 --metrics-out out/fig4   # + out/fig4.{prom,json}
    repro-experiments metrics                       # metric catalog
    repro-experiments metrics out/fig4.json         # inspect an export
    repro-experiments fig4 -vv                      # debug logging (stderr)
    repro-experiments run-sweep ... --trace-out trace.jsonl --ledger
    repro-experiments trace-summary trace.jsonl --check
    repro-experiments runs list                     # the run ledger
    repro-experiments runs diff last~1 last         # phase/metric deltas

Simulation engine tooling (docs/SIMULATION.md)::

    repro-experiments fig3 --engine fast --workers 4
    repro-experiments run-sweep --case rpc --phase general --paired \
        --parameter shutdown_timeout --values 0.5,5,15 --engine fast

Workload tooling (docs/WORKLOADS.md)::

    repro-experiments workload generate --generator mmpp:2,0.05,5,50 \
        --events 5000 --rescale-mean 9.7 --out trace.jsonl
    repro-experiments workload fit trace.jsonl --out fit.json
    repro-experiments workload replay trace.jsonl --case rpc --mode cycle
    repro-experiments fig7 --workload trace:trace.jsonl:cycle
    repro-experiments fig7 --workload pareto:1.5,3.23

*Product* output (reports, JSON series, tables) goes to stdout;
diagnostics go through the ``repro.*`` logger on stderr
(``--verbose`` / ``$REPRO_LOG``), so piped output stays clean.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

from ..casestudies import rpc, streaming
from ..casestudies.fleet import DEFAULT_FLEET_SIZE, POLICIES
from ..core.methodology import IncrementalMethodology
from ..fleet import REPRESENTATIONS, FleetAssessment
from ..core.reporting import format_table
from ..ctmc.solvers import solver_choices
from ..errors import CheckpointError
from ..obs import (
    CATALOG,
    configure_logging,
    emit,
    get_logger,
    get_registry,
    load_json_export,
    write_exports,
)
from ..obs import tracing
from ..obs.ledger import (
    LedgerError,
    RunLedger,
    condense_metrics,
    default_ledger_path,
    diff_entries,
    render_diff,
    render_entries_table,
    render_entry,
)
from ..runtime import (
    FaultInjector,
    RetryPolicy,
    TraceRecorder,
    read_trace,
    render_summary,
    summarize_events,
)
from ..errors import WorkloadError
from ..workload import (
    TraceReplay,
    fit_trace,
    parse_generator_spec,
    parse_workload,
)
from ..workload import read_trace as read_workload_trace
from ..workload import write_trace as write_workload_trace
from .registry import all_experiments
from .results import RunOptions

_CASES = {"rpc": rpc.family, "streaming": streaming.family}

_LOG = get_logger("cli")


def _add_runtime_arguments(parser: argparse.ArgumentParser) -> None:
    """Options shared by experiment runs and ``run-sweep``."""
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help=(
            "worker processes for sweeps/replications (0 = auto-detect; "
            "results are identical to --workers 1)"
        ),
    )
    parser.add_argument(
        "--retry",
        type=int,
        default=None,
        metavar="N",
        help=(
            "max attempts per sweep point / replication before raising "
            "RetryBudgetExceededError (enables the fault-tolerant path)"
        ),
    )
    parser.add_argument(
        "--chaos",
        default=None,
        metavar="SPEC",
        help=(
            "deterministic fault injection, e.g. "
            "'seed=7,kill=0.1,poison=0.2,delay=0.5,delay-seconds=0.05' "
            "(see FaultInjector.parse)"
        ),
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help=(
            "stream flat JSONL attempt records to FILE (legacy "
            "TraceRecorder view; see trace-summary)"
        ),
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help=(
            "record a hierarchical span trace to FILE (JSONL), plus "
            "FILE.perfetto.json and FILE.otlp.json when the run "
            "finishes (docs/OBSERVABILITY.md)"
        ),
    )
    parser.add_argument(
        "--ledger",
        nargs="?",
        const="",
        default=None,
        metavar="FILE",
        help=(
            "append a run-ledger entry when done, to FILE or (with no "
            "FILE) to $REPRO_LEDGER / .repro-runs.jsonl; inspect with "
            "'repro-experiments runs'"
        ),
    )
    parser.add_argument(
        "--solver",
        default=None,
        choices=solver_choices(),
        help=(
            "steady-state backend for Markovian solves (default: "
            "$REPRO_SOLVER or 'auto' size/sparsity selection; every "
            "solve records its backend and residual — docs/SOLVERS.md)"
        ),
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="PREFIX",
        help=(
            "export the run's metrics as PREFIX.prom (Prometheus text) "
            "and PREFIX.json when done (docs/OBSERVABILITY.md)"
        ),
    )
    parser.add_argument(
        "--workload",
        default=None,
        metavar="SPEC",
        help=(
            "workload injected at the case study's hook in the general "
            "phase: a distribution spec ('pareto:1.5,3.23', "
            "'exp:0.103') or a trace replay ('trace:FILE[:MODE]', mode "
            "bootstrap or cycle — docs/WORKLOADS.md)"
        ),
    )
    parser.add_argument(
        "--engine",
        default=None,
        choices=["reference", "fast"],
        help=(
            "simulation engine for the general phase: the pure-Python "
            "'reference' engine (default) or the vectorized 'fast' "
            "kernel — bit-identical under shared streams, and part of "
            "checkpoint fingerprints (docs/SIMULATION.md)"
        ),
    )
    parser.add_argument(
        "-v", "--verbose",
        action="count",
        default=0,
        help=(
            "diagnostic logging on stderr (-v info, -vv debug; "
            "baseline via $REPRO_LOG)"
        ),
    )


def _run_options(args: argparse.Namespace) -> RunOptions:
    """Build the RunOptions an argparse namespace describes.

    Also installs the logging configuration the namespace asks for —
    every command path funnels through here before doing work.
    """
    configure_logging(args.verbose)
    retry = None
    if args.retry is not None:
        retry = RetryPolicy(max_attempts=args.retry)
    faults = FaultInjector.parse(args.chaos) if args.chaos else None
    tracer = None
    if args.trace or retry is not None or faults is not None:
        tracer = TraceRecorder(args.trace)
    workload = None
    if getattr(args, "workload", None):
        try:
            workload = parse_workload(args.workload)
        except WorkloadError as error:
            raise SystemExit(f"--workload: {error}") from None
    span_tracer = None
    if getattr(args, "trace_out", None):
        span_tracer = tracing.Tracer(args.trace_out)
        tracing.set_tracer(span_tracer)
    ledger = getattr(args, "ledger", None)
    if ledger is not None:
        ledger = ledger or default_ledger_path()
    return RunOptions(
        workers=args.workers,
        retry=retry,
        faults=faults,
        tracer=tracer,
        solver=args.solver,
        metrics_out=args.metrics_out,
        verbose=args.verbose,
        workload=workload,
        engine=getattr(args, "engine", None),
        trace_out=getattr(args, "trace_out", None),
        ledger=ledger,
        span_tracer=span_tracer,
    )


def _export_metrics(options: RunOptions) -> None:
    """Write the ``--metrics-out`` exports from the default registry."""
    if options.metrics_out is None:
        return
    prom_path, json_path = write_exports(
        get_registry(), options.metrics_out
    )
    emit(f"[metrics written to {prom_path} and {json_path}]")


def _finish_observability(
    options: RunOptions,
    command: str,
    started: float,
    cpu_started: float,
    **fields: object,
) -> None:
    """Finalise the ``--trace-out`` / ``--ledger`` side of a run.

    Closes the hierarchical tracer, writes the Perfetto and OTLP views
    next to the span JSONL, and appends one run-ledger entry carrying
    the run's identity (command, configuration, trace id, checkpoint
    link) plus its wall/cpu time, phase timings and condensed metrics.
    """
    trace_id = None
    resumed_from = None
    if options.span_tracer is not None:
        tracer = options.span_tracer
        tracing.set_tracer(None)
        tracer.close()
        records = tracer.records()
        trace_id = tracer.trace_id
        for record in records:
            link = record.get("attrs", {}).get("resumed_from")
            if link:
                resumed_from = link
                break
        if options.trace_out:
            tracing.write_perfetto(
                records, options.trace_out + ".perfetto.json"
            )
            tracing.write_otlp(records, options.trace_out + ".otlp.json")
            emit(
                f"[trace written to {options.trace_out} "
                "(+ .perfetto.json, .otlp.json)]"
            )
    if options.ledger is None:
        return
    registry = get_registry()
    entry = {
        "command": command,
        "workers": options.workers,
        "solver": options.solver,
        "engine": options.engine,
        "workload": (
            repr(options.workload) if options.workload is not None else None
        ),
        "wall": round(time.time() - started, 6),
        "cpu": round(time.process_time() - cpu_started, 6),
        "trace": options.trace_out,
        "trace_id": trace_id,
        "resumed_from": resumed_from,
        "metrics": condense_metrics(registry.snapshot())
        if registry.enabled
        else {},
    }
    entry.update(fields)
    ledger = RunLedger(options.ledger)
    record = ledger.append(entry)
    ledger.close()
    emit(f"[run {record['run_id']} recorded in {ledger.path}]")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the tables and figures of 'Assessing the Impact "
            "of Dynamic Power Management...' (DSN 2004)"
        ),
    )
    parser.add_argument(
        "experiment",
        help="experiment id, 'list', or 'all'",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced sweeps / simulation effort (CI mode)",
    )
    parser.add_argument(
        "--no-charts",
        action="store_true",
        help="omit ASCII charts from figure reports",
    )
    _add_runtime_arguments(parser)
    return parser


def build_sweep_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments run-sweep",
        description=(
            "Run one checkpointable sweep of a case-study model; an "
            "interrupted sweep rerun with the same --checkpoint resumes "
            "from the last completed point, bit-identically"
        ),
    )
    parser.add_argument(
        "--case", choices=sorted([*_CASES, "fleet"]), required=True,
        help="case-study model family",
    )
    parser.add_argument(
        "--phase", choices=["markovian", "general"], default="markovian",
        help="analytic (markovian) or simulated (general) sweep",
    )
    parser.add_argument(
        "--fleet-size", type=int, default=DEFAULT_FLEET_SIZE, metavar="N",
        help=(
            "--case fleet: number of devices (the product space is "
            "|C|*|S|^N but the solve never materializes it; "
            "docs/FLEET.md)"
        ),
    )
    parser.add_argument(
        "--policy", choices=sorted(POLICIES), default="balanced",
        help="--case fleet: coordinator wake-up/handoff policy",
    )
    parser.add_argument(
        "--representation", choices=list(REPRESENTATIONS), default="lumped",
        help=(
            "--case fleet: solve the exchangeability-lumped operator "
            "(default) or the full Kronecker product operator"
        ),
    )
    parser.add_argument(
        "--parameter", required=True, metavar="NAME",
        help="const parameter to sweep",
    )
    parser.add_argument(
        "--values", required=True, metavar="V1,V2,...",
        help="comma-separated sweep values",
    )
    parser.add_argument(
        "--points", type=int, default=None, metavar="N",
        help=(
            "densify: sweep N uniform points spanning --values' range "
            "instead of the listed values (dense markovian grids "
            "auto-engage the parametric fast path, docs/SOLVERS.md)"
        ),
    )
    parser.add_argument(
        "--variant", default="dpm", help="model variant (default: dpm)"
    )
    parser.add_argument(
        "--paired", action="store_true",
        help=(
            "general phase only: simulate the DPM and NO-DPM variants "
            "together under common random numbers and report the "
            "dpm/nodpm/delta series with paired-t delta half-widths "
            "(--variant is ignored; docs/SIMULATION.md)"
        ),
    )
    parser.add_argument(
        "--independent", action="store_true",
        help=(
            "with --paired: decorrelate the two variants' streams "
            "(baseline for measuring the CRN interval shrinkage)"
        ),
    )
    parser.add_argument(
        "--rare", action="store_true",
        help=(
            "general phase only: estimate each point by rare-event "
            "importance splitting (RESTART) instead of naive "
            "replication, adding rare_probability/rare_low/rare_high "
            "series with near-zero-safe intervals (docs/SIMULATION.md)"
        ),
    )
    parser.add_argument(
        "--levels", type=int, default=4, metavar="N",
        help="with --rare: importance levels between base and rare set",
    )
    parser.add_argument(
        "--splits", type=int, default=4, metavar="N",
        help="with --rare: fixed effort (trajectories) per rare level",
    )
    parser.add_argument(
        "--segments", type=int, default=32, metavar="N",
        help="with --rare: resampling boundaries per replication",
    )
    parser.add_argument(
        "--rare-measure", default=None, metavar="NAME",
        help=(
            "with --rare: measure whose reward support defines the "
            "importance function (default: the family's first measure)"
        ),
    )
    parser.add_argument(
        "--checkpoint", default=None, metavar="FILE",
        help="JSONL journal of completed points (enables resume)",
    )
    parser.add_argument(
        "--output", default=None, metavar="FILE",
        help="write the series as JSON to FILE instead of only stdout",
    )
    parser.add_argument(
        "--method", default=None,
        help=(
            "steady-state solver for markovian sweeps (overrides "
            "--solver; default: --solver, then $REPRO_SOLVER, then auto)"
        ),
    )
    parser.add_argument(
        "--runs", type=int, default=10,
        help="replications per point (general phase)",
    )
    parser.add_argument(
        "--run-length", type=float, default=20_000.0,
        help="simulated time per replication (general phase)",
    )
    parser.add_argument(
        "--warmup", type=float, default=0.0,
        help="warm-up deletion per replication (general phase)",
    )
    parser.add_argument(
        "--seed", type=int, default=20040628,
        help="master seed (general phase)",
    )
    parser.add_argument(
        "--max-states", type=int, default=200_000,
        help="state-space generation cap",
    )
    _add_runtime_arguments(parser)
    return parser


def _list_report() -> str:
    experiments = all_experiments()
    rows = [[e.id, e.paper_artifact] for e in experiments.values()]
    return format_table(["id", "paper artifact"], rows, "available experiments")


def run_experiment(
    identifier: str,
    quick: bool,
    charts: bool = True,
    workers: int = 1,
    options: Optional[RunOptions] = None,
) -> str:
    """Run one experiment and return its rendered report."""
    experiments = all_experiments()
    if identifier not in experiments:
        known = ", ".join(experiments)
        raise SystemExit(
            f"unknown experiment {identifier!r}; known: {known}"
        )
    options = RunOptions.resolve(options, workers)
    result = experiments[identifier].run(quick, options)
    if hasattr(result, "report"):
        try:
            return result.report(charts=charts)
        except TypeError:
            return result.report()
    return str(result)


def run_sweep(argv: List[str]) -> int:
    """``run-sweep``: one resumable sweep, series printed as JSON."""
    args = build_sweep_parser().parse_args(argv)
    values = [float(v) for v in args.values.split(",") if v.strip()]
    if not values:
        raise SystemExit("--values must name at least one sweep value")
    if args.points is not None:
        if args.points < 2 or len(values) < 2:
            raise SystemExit(
                "--points needs N >= 2 and at least two --values to span"
            )
        low, high = min(values), max(values)
        step = (high - low) / (args.points - 1)
        values = [low + index * step for index in range(args.points)]
    if args.paired and args.phase != "general":
        raise SystemExit("--paired requires --phase general")
    if args.independent and not args.paired:
        raise SystemExit("--independent only makes sense with --paired")
    if args.rare and args.phase != "general":
        raise SystemExit("--rare requires --phase general")
    if args.rare and args.paired:
        raise SystemExit(
            "--rare and --paired are mutually exclusive: splitting "
            "trees cannot share the CRN stream discipline"
        )
    if args.case == "fleet" and args.phase != "markovian":
        raise SystemExit(
            "--case fleet is analytic: only --phase markovian applies"
        )
    options = _run_options(args)
    if args.case == "fleet":
        methodology = FleetAssessment(
            args.fleet_size,
            policy=args.policy,
            representation=args.representation,
            workers=options.workers,
            retry=options.retry,
            faults=options.faults,
            tracer=options.tracer,
            solver=options.solver,
        )
    else:
        methodology = IncrementalMethodology(
            _CASES[args.case](),
            max_states=args.max_states,
            **options.methodology_kwargs(),
        )
    started = time.time()
    cpu_started = time.process_time()
    try:
        with tracing.span(
            "run-sweep",
            case=args.case,
            phase=args.phase,
            parameter=args.parameter,
            points=len(values),
            workers=args.workers,
        ):
            if args.case == "fleet":
                series = methodology.sweep(
                    args.parameter,
                    values,
                    method=args.method,
                    checkpoint=args.checkpoint,
                )
            elif args.phase == "markovian":
                series = methodology.sweep_markovian(
                    args.parameter,
                    values,
                    variant=args.variant,
                    method=args.method,
                    checkpoint=args.checkpoint,
                )
            elif args.paired:
                series = methodology.sweep_general_paired(
                    args.parameter,
                    values,
                    run_length=args.run_length,
                    runs=args.runs,
                    warmup=args.warmup,
                    seed=args.seed,
                    checkpoint=args.checkpoint,
                    crn=not args.independent,
                )
            elif args.rare:
                series = methodology.sweep_rare(
                    args.parameter,
                    values,
                    variant=args.variant,
                    run_length=args.run_length,
                    levels=args.levels,
                    splits=args.splits,
                    segments=args.segments,
                    rare_measure=args.rare_measure,
                    runs=args.runs,
                    warmup=args.warmup,
                    seed=args.seed,
                    checkpoint=args.checkpoint,
                )
            else:
                series = methodology.sweep_general(
                    args.parameter,
                    values,
                    variant=args.variant,
                    run_length=args.run_length,
                    runs=args.runs,
                    warmup=args.warmup,
                    seed=args.seed,
                    checkpoint=args.checkpoint,
                )
    except CheckpointError as error:
        _LOG.error("checkpoint rejected: %s", error)
        return 1
    payload = {
        "case": args.case,
        "phase": args.phase,
        "parameter": args.parameter,
        "values": values,
        "series": series,
    }
    if args.case == "fleet":
        fleet_info = {
            "size": args.fleet_size,
            "policy": args.policy,
            "representation": args.representation,
        }
        if methodology.operator_records:
            last = methodology.operator_records[-1]
            fleet_info["product_states"] = last["product_states"]
            fleet_info["lumped_states"] = last["lumped_states"]
            fleet_info["operator_states"] = last["states"]
        payload["fleet"] = fleet_info
    if args.paired:
        payload["paired"] = {"crn": not args.independent}
    if args.rare:
        payload["rare"] = {
            "levels": args.levels,
            "splits": args.splits,
            "segments": args.segments,
            "measure": args.rare_measure,
        }
    # json round-trips floats exactly (repr-based), so two runs are
    # bit-identical iff their series are.
    rendered = json.dumps(payload, sort_keys=True, indent=2)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
    emit(rendered)
    stats = methodology.runtime_stats()
    summary = (
        f"run-sweep done in {time.time() - started:.1f}s; "
        f"workers={stats['workers']}"
    )
    if "solver" in stats:
        solver_stats = stats["solver"]
        backends = "+".join(
            f"{name}x{count}"
            for name, count in sorted(solver_stats["backends"].items())
        )
        summary += (
            f", solver {backends} "
            f"max residual={solver_stats['max_residual']:.2e}"
        )
    if methodology.tracer is not None:
        summary += (
            f", retries={methodology.tracer.retries}"
            f", checkpoint hits={methodology.tracer.checkpoint_hits}"
        )
        methodology.tracer.close()
    _LOG.info("%s", summary)
    _export_metrics(options)
    timings = methodology.runtime_stats().get("timings", {})
    _finish_observability(
        options,
        "run-sweep",
        started,
        cpu_started,
        case=args.case,
        phase=args.phase,
        parameter=args.parameter,
        checkpoint=args.checkpoint,
        phases={
            name: info["seconds"] for name, info in timings.items()
        },
    )
    return 0


def trace_summary(argv: List[str]) -> int:
    """``trace-summary``: aggregate a JSONL trace file into tables.

    Reads both trace formats: flat per-attempt records written by the
    legacy ``--trace`` recorder (phase table with retries and wall/cpu
    time) and hierarchical span records written by ``--trace-out``
    (per-span self-time vs cumulative-time).  A file may mix both; each
    format present gets its own table.

    Exit codes: 0 for a valid (possibly empty) trace, 1 for a missing
    file or malformed JSONL (a torn final line — a crash mid-write — is
    tolerated, corruption anywhere else is not), and 1 when ``--check``
    finds a malformed span tree.
    """
    parser = argparse.ArgumentParser(
        prog="repro-experiments trace-summary",
        description=(
            "Summarise a JSONL trace file: flat --trace records "
            "(spans by phase/status) and/or hierarchical --trace-out "
            "span trees (self vs cumulative time)"
        ),
    )
    parser.add_argument(
        "trace_file", help="JSONL file written by --trace or --trace-out"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help=(
            "validate the span tree (single root, no orphans, one "
            "trace id, sane timestamps); exit 1 if malformed"
        ),
    )
    args = parser.parse_args(argv)
    configure_logging()
    try:
        records = read_trace(args.trace_file)
    except OSError as error:
        _LOG.error("cannot read trace file: %s", error)
        return 1
    except json.JSONDecodeError as error:
        _LOG.error(
            "%s is not a valid JSONL trace: %s", args.trace_file, error
        )
        return 1
    spans = [
        record
        for record in records
        if record.get("kind") == tracing.RECORD_KIND
    ]
    flat = [
        record
        for record in records
        if record.get("kind") != tracing.RECORD_KIND
    ]
    if flat or not spans:
        emit(render_summary(summarize_events(flat), title=args.trace_file))
    if spans:
        if flat:
            emit()
        emit(
            tracing.render_span_summary(
                tracing.summarize_spans(spans), title=args.trace_file
            )
        )
    if args.check:
        if not spans:
            _LOG.error(
                "%s has no span records to check", args.trace_file
            )
            return 1
        problems = tracing.validate_tree(spans)
        for problem in problems:
            _LOG.error("span tree: %s", problem)
        if problems:
            return 1
        emit(f"[span tree OK: {len(spans)} spans, one root]")
    return 0


def runs_command(argv: List[str]) -> int:
    """``runs list|show|diff``: inspect the persistent run ledger.

    Refs are ``last``, ``last~N`` or a unique ``run_id`` prefix.
    Exit codes: 0 on success, 1 for an unknown/ambiguous ref or an
    unreadable ledger.
    """
    parser = argparse.ArgumentParser(
        prog="repro-experiments runs",
        description=(
            "Inspect the persistent run ledger written by --ledger "
            "(docs/OBSERVABILITY.md)"
        ),
    )
    parser.add_argument(
        "--ledger",
        default=None,
        metavar="FILE",
        help="ledger file (default: $REPRO_LEDGER or .repro-runs.jsonl)",
    )
    commands = parser.add_subparsers(dest="action", required=True)
    commands.add_parser("list", help="one line per recorded run")
    show = commands.add_parser("show", help="full JSON of one run")
    show.add_argument("ref", help="run ref: last, last~N, or id prefix")
    diff = commands.add_parser(
        "diff",
        help="config, wall-time, phase-timing and metric deltas",
    )
    diff.add_argument("ref_a", help="baseline run ref")
    diff.add_argument("ref_b", help="comparison run ref")
    args = parser.parse_args(argv)
    configure_logging()
    ledger = RunLedger(args.ledger)
    try:
        if args.action == "list":
            emit(render_entries_table(ledger.entries()))
        elif args.action == "show":
            emit(render_entry(ledger.get(args.ref)))
        else:
            emit(
                render_diff(
                    diff_entries(
                        ledger.get(args.ref_a), ledger.get(args.ref_b)
                    )
                )
            )
    except LedgerError as error:
        _LOG.error("runs: %s", error)
        return 1
    except json.JSONDecodeError as error:
        _LOG.error("%s is not a valid ledger: %s", ledger.path, error)
        return 1
    return 0


def _catalog_report() -> str:
    """The metric catalog as a table (``metrics`` with no file)."""
    rows = [
        [
            spec.name,
            spec.kind,
            ",".join(spec.labelnames) or "-",
            spec.help,
        ]
        for spec in CATALOG
    ]
    return format_table(
        ["metric", "type", "labels", "help"], rows,
        "metric catalog (docs/OBSERVABILITY.md)",
    )


def metrics_command(argv: List[str]) -> int:
    """``metrics``: show the catalog, or inspect a ``--metrics-out`` JSON.

    Exit codes: 0 on success, 1 for a missing, corrupt or empty export.
    """
    parser = argparse.ArgumentParser(
        prog="repro-experiments metrics",
        description=(
            "With no argument: the catalog of every metric the stack "
            "emits.  With a FILE.json written by --metrics-out: the "
            "exported series and values"
        ),
    )
    parser.add_argument(
        "export_file", nargs="?", default=None,
        help="JSON export written by --metrics-out (optional)",
    )
    args = parser.parse_args(argv)
    configure_logging()
    if args.export_file is None:
        emit(_catalog_report())
        return 0
    try:
        snapshot = load_json_export(args.export_file)
    except OSError as error:
        _LOG.error("cannot read metrics export: %s", error)
        return 1
    except (ValueError, json.JSONDecodeError) as error:
        _LOG.error(
            "%s is not a metrics export: %s", args.export_file, error
        )
        return 1
    rows = []
    for name in sorted(snapshot):
        family = snapshot[name]
        for entry in family.get("series", ()):
            labels = ",".join(
                f"{k}={v}"
                for k, v in sorted(dict(entry.get("labels", {})).items())
            )
            if family.get("type") == "histogram":
                value = (
                    f"count={entry.get('count', 0)} "
                    f"sum={entry.get('sum', 0.0):.6g}"
                )
            else:
                value = f"{entry.get('value', 0.0):.6g}"
            rows.append([name, labels or "-", value])
    emit(format_table(["metric", "labels", "value"], rows, args.export_file))
    return 0


def build_workload_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments workload",
        description=(
            "Generate synthetic workload traces, fit them to closed-form "
            "distributions, and replay them through a case study's "
            "general phase (docs/WORKLOADS.md)"
        ),
    )
    commands = parser.add_subparsers(dest="action", required=True)

    generate = commands.add_parser(
        "generate", help="generate a synthetic trace from a seeded spec"
    )
    generate.add_argument(
        "--generator", required=True, metavar="SPEC",
        help=(
            "generator spec: poisson:RATE | mmpp:RH,RL,BURST,IDLE | "
            "pareto:ALPHA,XM | diurnal:RATE,AMPL,PERIOD"
        ),
    )
    generate.add_argument(
        "--events", type=int, default=5000, help="trace length"
    )
    generate.add_argument(
        "--seed", type=int, default=20040628, help="generator seed"
    )
    generate.add_argument(
        "--rescale-mean", type=float, default=None, metavar="M",
        help="rescale the trace to mean interarrival M after generation",
    )
    generate.add_argument(
        "--out", required=True, metavar="FILE",
        help="output trace file (.jsonl or .csv)",
    )

    fit = commands.add_parser(
        "fit", help="fit a trace to the closed-form distribution families"
    )
    fit.add_argument("trace_file", help="trace file (.jsonl or .csv)")
    fit.add_argument(
        "--families", default=None, metavar="F1,F2,...",
        help="candidate families to try (default: all)",
    )
    fit.add_argument(
        "--out", default=None, metavar="FILE",
        help="also write the fit report as JSON to FILE",
    )

    replay = commands.add_parser(
        "replay",
        help="replay a trace through a case study's general phase",
    )
    replay.add_argument("trace_file", help="trace file (.jsonl or .csv)")
    replay.add_argument(
        "--case", choices=sorted(_CASES), required=True,
        help="case-study model family",
    )
    replay.add_argument(
        "--mode", choices=["bootstrap", "cycle"], default="bootstrap",
        help="replay mode (default: bootstrap)",
    )
    replay.add_argument(
        "--variant", default="dpm", help="model variant (default: dpm)"
    )
    replay.add_argument(
        "--runs", type=int, default=10, help="replications"
    )
    replay.add_argument(
        "--run-length", type=float, default=20_000.0,
        help="simulated time per replication",
    )
    replay.add_argument(
        "--warmup", type=float, default=0.0,
        help="warm-up deletion per replication",
    )
    replay.add_argument(
        "--seed", type=int, default=20040628, help="master seed"
    )
    replay.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (results identical to --workers 1)",
    )
    replay.add_argument(
        "--output", default=None, metavar="FILE",
        help="write the estimates as JSON to FILE as well",
    )
    return parser


def workload_command(argv: List[str]) -> int:
    """``workload generate|fit|replay``: the trace workflow end to end.

    Exit codes: 0 on success, 1 for a workload error (unreadable or
    malformed trace, unknown generator, hook mismatch).
    """
    args = build_workload_parser().parse_args(argv)
    configure_logging()
    try:
        if args.action == "generate":
            generator = parse_generator_spec(args.generator)
            trace = generator.generate(args.events, args.seed)
            if args.rescale_mean is not None:
                trace = trace.rescaled(args.rescale_mean)
            path = write_workload_trace(trace, args.out)
            emit(json.dumps(trace.summary(), sort_keys=True, indent=2))
            emit(f"[trace written to {path}]")
            return 0
        if args.action == "fit":
            trace = read_workload_trace(args.trace_file)
            families = None
            if args.families:
                families = [
                    f.strip() for f in args.families.split(",") if f.strip()
                ]
            report = fit_trace(trace, families)
            rendered = json.dumps(report.as_dict(), sort_keys=True, indent=2)
            if args.out:
                with open(args.out, "w", encoding="utf-8") as handle:
                    handle.write(rendered + "\n")
            emit(rendered)
            best = report.best
            emit(
                f"[best fit: {best.spec} "
                f"(KS {best.ks:.4f}, p {best.pvalue:.3f})]"
            )
            return 0
        # replay
        trace = read_workload_trace(args.trace_file)
        replay_distribution = TraceReplay(trace, args.mode)
        methodology = IncrementalMethodology(
            _CASES[args.case](),
            workers=args.workers,
            workload=replay_distribution,
        )
        replication = methodology.simulate_general(
            args.variant,
            run_length=args.run_length,
            runs=args.runs,
            warmup=args.warmup,
            seed=args.seed,
        )
        payload = {
            "case": args.case,
            "variant": args.variant,
            "mode": args.mode,
            "trace": trace.summary(),
            "estimates": {
                name: {
                    "mean": estimate.mean,
                    "half_width": estimate.half_width,
                }
                for name, estimate in replication.estimates.items()
            },
        }
        rendered = json.dumps(payload, sort_keys=True, indent=2)
        if args.output:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(rendered + "\n")
        emit(rendered)
        return 0
    except WorkloadError as error:
        _LOG.error("workload: %s", error)
        return 1


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "run-sweep":
        return run_sweep(argv[1:])
    if argv and argv[0] == "trace-summary":
        return trace_summary(argv[1:])
    if argv and argv[0] == "metrics":
        return metrics_command(argv[1:])
    if argv and argv[0] == "runs":
        return runs_command(argv[1:])
    if argv and argv[0] == "workload":
        return workload_command(argv[1:])
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        configure_logging(args.verbose)
        emit(_list_report())
        return 0
    targets = (
        list(all_experiments())
        if args.experiment == "all"
        else [args.experiment]
    )
    options = _run_options(args)
    run_started = time.time()
    cpu_started = time.process_time()
    with tracing.span(
        "experiments",
        targets=",".join(targets),
        quick=args.quick,
        workers=args.workers,
    ):
        for target in targets:
            started = time.time()
            _LOG.info("running %s (quick=%s)", target, args.quick)
            with tracing.span("experiment", experiment=target):
                report = run_experiment(
                    target,
                    args.quick,
                    charts=not args.no_charts,
                    options=options,
                )
            emit(report)
            emit(f"[{target} done in {time.time() - started:.1f}s]")
            emit()
    if options.tracer is not None:
        options.tracer.close()
        if args.trace:
            emit(f"[trace written to {args.trace}]")
    _export_metrics(options)
    _finish_observability(
        options,
        args.experiment,
        run_started,
        cpu_started,
        case=None,
        phase=None,
        parameter=None,
        checkpoint=None,
        phases={},
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

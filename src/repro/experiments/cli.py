"""Command-line entry point: regenerate the paper's figures.

Usage::

    python -m repro.experiments list
    python -m repro.experiments fig3-markov
    python -m repro.experiments all --quick
    repro-experiments fig6            # console script
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from ..core.reporting import format_table
from .registry import all_experiments


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the tables and figures of 'Assessing the Impact "
            "of Dynamic Power Management...' (DSN 2004)"
        ),
    )
    parser.add_argument(
        "experiment",
        help="experiment id, 'list', or 'all'",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced sweeps / simulation effort (CI mode)",
    )
    parser.add_argument(
        "--no-charts",
        action="store_true",
        help="omit ASCII charts from figure reports",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help=(
            "worker processes for sweeps/replications (0 = auto-detect; "
            "results are identical to --workers 1)"
        ),
    )
    return parser


def _list_report() -> str:
    experiments = all_experiments()
    rows = [[e.id, e.paper_artifact] for e in experiments.values()]
    return format_table(["id", "paper artifact"], rows, "available experiments")


def run_experiment(
    identifier: str, quick: bool, charts: bool = True, workers: int = 1
) -> str:
    """Run one experiment and return its rendered report."""
    experiments = all_experiments()
    if identifier not in experiments:
        known = ", ".join(experiments)
        raise SystemExit(
            f"unknown experiment {identifier!r}; known: {known}"
        )
    result = experiments[identifier].run(quick, workers)
    if hasattr(result, "report"):
        try:
            return result.report(charts=charts)
        except TypeError:
            return result.report()
    return str(result)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        print(_list_report())
        return 0
    targets = (
        list(all_experiments())
        if args.experiment == "all"
        else [args.experiment]
    )
    for target in targets:
        started = time.time()
        print(
            run_experiment(
                target,
                args.quick,
                charts=not args.no_charts,
                workers=args.workers,
            )
        )
        print(f"[{target} done in {time.time() - started:.1f}s]")
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

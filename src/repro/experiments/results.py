"""Result containers for the experiment harness.

Every figure of the paper is regenerated as a :class:`FigureResult`: the
swept parameter, the per-measure series with and without DPM, and a
rendered plain-text report (tables + ASCII charts).  Benchmarks print the
report; tests assert on the data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.reporting import ascii_chart, format_table
from ..runtime import FaultInjector, RetryPolicy, TraceRecorder


@dataclass
class RunOptions:
    """Execution options threaded from the CLI into figure regeneration.

    Bundles everything the reliability layer can vary — worker count,
    retry policy, fault injection (chaos runs) and the trace recorder —
    so the registry only ever forwards one object.  The defaults are the
    plain fast path: serial, no retries, no faults, no trace file.
    """

    workers: int = 1
    retry: Optional[RetryPolicy] = None
    faults: Optional[FaultInjector] = None
    tracer: Optional[TraceRecorder] = None
    #: Steady-state backend for Markovian solves (``--solver``); ``None``
    #: resolves through ``$REPRO_SOLVER`` to automatic selection.
    solver: Optional[str] = None
    #: Path prefix for metric exports (``--metrics-out``): the run writes
    #: ``<prefix>.prom`` + ``<prefix>.json`` from the default registry
    #: when it finishes (docs/OBSERVABILITY.md).  ``None`` skips export;
    #: the aggregate metrics are collected either way.
    metrics_out: Optional[str] = None
    #: ``--verbose`` count forwarded to the logging setup.
    verbose: int = 0
    #: Workload distribution injected at the case study's workload hook
    #: in the general phase (``--workload``, docs/WORKLOADS.md); a
    #: :class:`~repro.distributions.Distribution`, often a
    #: :class:`~repro.workload.replay.TraceReplay`.
    workload: Optional[object] = None
    #: Simulation engine for the general phase (``--engine``): the
    #: pure-Python ``reference`` engine or the vectorized ``fast``
    #: kernel (docs/SIMULATION.md).  ``None`` means ``reference``.
    engine: Optional[str] = None
    #: Path for the hierarchical span trace (``--trace-out``); the run
    #: streams span records there as JSONL and writes Perfetto / OTLP
    #: views next to it when it finishes (docs/OBSERVABILITY.md).
    trace_out: Optional[str] = None
    #: Path of the persistent run ledger (``--ledger``): the finished
    #: run appends one entry there (``repro-experiments runs``).
    ledger: Optional[str] = None
    #: The installed :class:`repro.obs.tracing.Tracer` when
    #: ``--trace-out`` was given (internal; owned by the CLI).
    span_tracer: Optional[object] = None

    @classmethod
    def resolve(
        cls,
        options: Optional["RunOptions"],
        workers: Optional[int] = None,
    ) -> "RunOptions":
        """Normalise the (options, legacy workers argument) pair."""
        if options is not None:
            return options
        return cls(workers=workers if workers is not None else 1)

    def methodology_kwargs(self) -> Dict[str, object]:
        """Constructor kwargs for :class:`IncrementalMethodology`."""
        return {
            "workers": self.workers,
            "retry": self.retry,
            "faults": self.faults,
            "tracer": self.tracer,
            "solver": self.solver,
            "workload": self.workload,
            "engine": self.engine,
        }


@dataclass
class RuntimeStats:
    """How an experiment executed: workers, cache effectiveness, phases.

    Snapshot of :meth:`IncrementalMethodology.runtime_stats` taken when
    the figure finished; attached to result objects so reports (and the
    runtime-scaling benchmark) can show where the time went.  When the
    reliability layer was engaged the snapshot also carries retry /
    checkpoint counters and the aggregated trace.
    """

    workers: int = 1
    cache_hits: int = 0
    cache_misses: int = 0
    cache_relabels: int = 0
    timings: Dict[str, Dict[str, float]] = field(default_factory=dict)
    retries: int = 0
    checkpoint_hits: int = 0
    trace: Optional[Dict[str, object]] = None
    #: Aggregated steady-state solver reports (backend counts, residual
    #: maxima) when the experiment had a Markovian phase.
    solver: Optional[Dict[str, object]] = None
    #: Snapshot of the default metric registry taken when the figure
    #: finished (:meth:`repro.obs.MetricRegistry.snapshot` shape).  Not
    #: part of :meth:`as_dict` — exports go through ``--metrics-out``.
    metrics: Optional[Dict[str, object]] = None

    @classmethod
    def from_methodology(cls, methodology) -> "RuntimeStats":
        from ..obs import get_registry

        snapshot = methodology.runtime_stats()
        cache = snapshot["cache"]
        registry = get_registry()
        return cls(
            workers=snapshot["workers"],
            cache_hits=cache["hits"],
            cache_misses=cache["misses"],
            cache_relabels=cache["relabels"],
            timings=snapshot["timings"],
            retries=snapshot.get("retries", 0),
            checkpoint_hits=snapshot.get("checkpoint_hits", 0),
            trace=snapshot.get("trace"),
            solver=snapshot.get("solver"),
            metrics=registry.snapshot() if registry.enabled else None,
        )

    def as_dict(self) -> Dict[str, object]:
        result: Dict[str, object] = {
            "workers": self.workers,
            "cache": {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "relabels": self.cache_relabels,
            },
            "timings": self.timings,
            "retries": self.retries,
            "checkpoint_hits": self.checkpoint_hits,
        }
        if self.trace is not None:
            result["trace"] = self.trace
        if self.solver is not None:
            result["solver"] = self.solver
        return result

    def describe(self) -> str:
        phases = ", ".join(
            f"{name} {info['seconds']:.2f}s"
            for name, info in sorted(self.timings.items())
        )
        reliability = ""
        if self.retries or self.checkpoint_hits:
            reliability = (
                f", retries={self.retries} "
                f"checkpoint hits={self.checkpoint_hits}"
            )
        solver = ""
        if self.solver:
            backends = "+".join(
                f"{name}x{count}"
                for name, count in sorted(self.solver["backends"].items())
            )
            solver = (
                f", solver {backends} "
                f"max residual={self.solver['max_residual']:.2e}"
            )
        return (
            f"runtime: workers={self.workers}, state-space cache "
            f"hits={self.cache_hits} misses={self.cache_misses} "
            f"relabels={self.cache_relabels}"
            + reliability
            + solver
            + (f"; {phases}" if phases else "")
        )


@dataclass
class FigureResult:
    """Data regenerating one figure of the paper."""

    figure_id: str
    title: str
    parameter_name: str
    parameter_values: List[float]
    dpm_series: Dict[str, List[float]]
    nodpm_series: Dict[str, List[float]] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)
    runtime: Optional[RuntimeStats] = None

    def series(self, measure: str, variant: str = "dpm") -> List[float]:
        """One plotted series."""
        source = self.dpm_series if variant == "dpm" else self.nodpm_series
        return source[measure]

    def report(self, charts: bool = True) -> str:
        """Render tables (and optionally ASCII charts) for the figure."""
        lines = [f"=== {self.figure_id}: {self.title} ==="]
        headers = [self.parameter_name]
        columns: List[List[float]] = []
        for name, values in self.dpm_series.items():
            headers.append(f"{name} (DPM)")
            columns.append(values)
            if name in self.nodpm_series:
                headers.append(f"{name} (NO-DPM)")
                columns.append(self.nodpm_series[name])
        rows = []
        for position, value in enumerate(self.parameter_values):
            row: List[object] = [value]
            row.extend(column[position] for column in columns)
            rows.append(row)
        lines.append(format_table(headers, rows))
        if charts:
            for name, values in self.dpm_series.items():
                series = {f"{name} DPM": values}
                if name in self.nodpm_series:
                    series[f"{name} NO-DPM"] = self.nodpm_series[name]
                lines.append("")
                lines.append(
                    ascii_chart(
                        self.parameter_values,
                        series,
                        title=f"{self.figure_id} — {name}",
                        x_label=self.parameter_name,
                        y_label=name,
                    )
                )
        if self.notes:
            lines.append("")
            lines.extend(f"note: {note}" for note in self.notes)
        if self.runtime is not None:
            lines.append("")
            lines.append(self.runtime.describe())
        return "\n".join(lines)


def constant_series(value: float, length: int) -> List[float]:
    """Replicate a parameter-independent baseline across a sweep."""
    return [value] * length


def ratio_series(
    numerators: Sequence[float], denominators: Sequence[float]
) -> List[float]:
    """Element-wise ratio with 0/0 treated as 0."""
    result = []
    for numerator, denominator in zip(numerators, denominators):
        result.append(numerator / denominator if denominator else 0.0)
    return result

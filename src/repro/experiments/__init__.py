"""Regeneration of every table and figure of the paper's evaluation."""

from . import rpc_figures, streaming_figures
from .cli import main, run_experiment
from .registry import Experiment, all_experiments
from .results import FigureResult, constant_series, ratio_series

__all__ = [
    "rpc_figures",
    "streaming_figures",
    "main",
    "run_experiment",
    "Experiment",
    "all_experiments",
    "FigureResult",
    "constant_series",
    "ratio_series",
]

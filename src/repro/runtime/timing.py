"""Phase timing instrumentation for the experiment runtime.

A :class:`Timer` accumulates named wall-clock spans (``generate``,
``relabel``, ``solve``, ``simulate``...) so every experiment can report
where its time went and the scaling benchmark can emit machine-readable
per-phase timings.  Spans nest and re-enter freely; re-entering a span
already on the stack only counts the outermost occurrence.  Every
recorded span also bumps the ``repro_phase_seconds_total`` counter on
the default metric registry (docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, Mapping

from ..obs import metrics as obs_metrics


class Timer:
    """Accumulator of named wall-clock spans."""

    def __init__(self):
        self._seconds: Dict[str, float] = {}
        self._counts: Dict[str, int] = {}
        self._active: Dict[str, int] = {}

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Time the enclosed block under *name* (re-entrant)."""
        depth = self._active.get(name, 0)
        self._active[name] = depth + 1
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            self._active[name] = depth
            if depth == 0:
                self.add(name, elapsed)

    def add(self, name: str, seconds: float, count: int = 1) -> None:
        """Record *seconds* of elapsed time under *name*."""
        self._seconds[name] = self._seconds.get(name, 0.0) + seconds
        self._counts[name] = self._counts.get(name, 0) + count
        registry = obs_metrics.get_registry()
        if registry.enabled:
            obs_metrics.PHASE_SECONDS.on(registry).labels(
                phase=name
            ).inc(seconds)

    def merge(self, other: "Timer") -> None:
        """Fold another timer's spans into this one (worker results)."""
        for name, seconds in other._seconds.items():
            self.add(name, seconds, other._counts.get(name, 1))

    def merge_dict(self, spans: Mapping[str, float]) -> None:
        """Fold a plain ``{name: seconds}`` mapping into this timer."""
        for name, seconds in spans.items():
            self.add(name, seconds)

    def seconds(self, name: str) -> float:
        """Accumulated seconds of one span (0.0 when never entered)."""
        return self._seconds.get(name, 0.0)

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """Machine-readable view: ``{span: {seconds, count}}``."""
        return {
            name: {
                "seconds": self._seconds[name],
                "count": self._counts.get(name, 0),
            }
            for name in sorted(self._seconds)
        }

    def total(self) -> float:
        """Sum of all span times (spans may overlap when nested)."""
        return sum(self._seconds.values())

    def reset(self) -> None:
        """Drop all recorded spans."""
        self._seconds.clear()
        self._counts.clear()
        self._active.clear()

    def __str__(self) -> str:
        parts = [
            f"{name}={self._seconds[name]:.3f}s"
            for name in sorted(self._seconds)
        ]
        return "Timer(" + ", ".join(parts) + ")"

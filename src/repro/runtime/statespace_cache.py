"""Structural state-space caching for parameter sweeps.

Every figure of the paper sweeps a DPM operation parameter (shutdown
timeout, awake period) that appears **only in rate expressions** of the
architectural description.  Varying such a parameter cannot change which
states are reachable, which transitions exist, how synchronisations branch
or which immediate actions preempt — only the numeric rates on the
transitions.  The state space is therefore *structurally invariant* across
the sweep and should be derived once, not once per point (the fast
parametric model checking observation).

:func:`structural_params` classifies an architecture's ``const`` parameters:
a parameter is **structural** when it (or a constant whose default derives
from it) is read by a guard, a data argument, a passive/immediate
priority or weight, an instance argument or a formal default.  Everything
else is **rate-only**.

:class:`StructuralStateSpaceCache` keys generated skeletons by a content
fingerprint of the architecture *modulo rate values* — the pretty-printed
description (rate *expressions* included, their numeric values excluded)
plus the values of the structural parameters.  A cache hit replays the
recorded rate provenance under the new constant environment
(:class:`~repro.aemilia.semantics.RateProvenance`), which is bit-identical
to a fresh generation.
"""

from __future__ import annotations

import hashlib
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from ..aemilia.architecture import ArchiType
from ..aemilia.ast import (
    ActionPrefix,
    Behavior,
    Choice,
    Guarded,
    ProcessCall,
    Stop,
)
from ..aemilia.expressions import Value
from ..aemilia.pretty import print_architecture
from ..aemilia.rates import ExpSpec, GeneralSpec, ImmediateSpec, PassiveSpec
from ..aemilia.semantics import (
    RateProvenance,
    StateSpaceGenerator,
    apply_branch_fraction,
)
from ..errors import SemanticsError
from ..lts.lts import LTS
from ..obs import metrics as obs_metrics
from .timing import Timer


# ---------------------------------------------------------------------------
# Parameter classification.
# ---------------------------------------------------------------------------

def _const_roots(archi: ArchiType) -> Dict[str, frozenset]:
    """Map each const parameter to the overridable parameters feeding it.

    A constant's default may reference earlier constants; overriding any of
    those changes its value, so a structural use of the constant makes all
    of them structural.
    """
    roots: Dict[str, frozenset] = {}
    for param in archi.const_params:
        derived = frozenset({param.name})
        for name in param.default.free_variables():
            derived |= roots.get(name, frozenset({name}))
        roots[param.name] = derived
    return roots


def _collect_structural_names(term: Behavior, out: set) -> None:
    """Gather every variable name whose value shapes the state space."""
    if isinstance(term, Stop):
        return
    if isinstance(term, ActionPrefix):
        spec = term.rate
        if isinstance(spec, (PassiveSpec, ImmediateSpec)):
            # Passive weights drive branch probabilities; immediate
            # priorities drive preemption: both are structural.
            out |= spec.priority.free_variables()
            out |= spec.weight.free_variables()
        elif not isinstance(spec, (ExpSpec, GeneralSpec)):
            # Unknown rate kind: assume everything it reads is structural.
            out |= spec.free_variables()
        _collect_structural_names(term.continuation, out)
        return
    if isinstance(term, Choice):
        for alternative in term.alternatives:
            _collect_structural_names(alternative, out)
        return
    if isinstance(term, Guarded):
        out |= term.condition.free_variables()
        _collect_structural_names(term.behavior, out)
        return
    if isinstance(term, ProcessCall):
        for arg in term.args:
            out |= arg.free_variables()
        return
    raise SemanticsError(f"unknown behaviour node {term!r}")


def structural_params(archi: ArchiType) -> frozenset:
    """Const parameters whose value can change the state-space *structure*.

    The complement — the rate-only parameters — can be swept on a cached
    skeleton by relabeling rates.
    """
    const_names = frozenset(p.name for p in archi.const_params)
    roots = _const_roots(archi)
    names: set = set()
    for elem_type in archi.elem_types.values():
        for definition in elem_type.definitions:
            for formal in definition.formals:
                if formal.default is not None:
                    names |= formal.default.free_variables()
            _collect_structural_names(definition.body, names)
    for instance in archi.instances:
        for arg in instance.args:
            names |= arg.free_variables()
    structural: frozenset = frozenset()
    # Formals may shadow a const name; treating every use as a const use
    # anyway only errs toward less caching, never toward wrong reuse.
    for name in names & const_names:
        structural |= roots[name]
    return structural


# ---------------------------------------------------------------------------
# Parametric skeletons.
# ---------------------------------------------------------------------------

@dataclass
class ParametricLTS:
    """A generated state space plus per-transition rate provenance.

    ``relabel`` replays the provenance under a new constant environment:
    states, labels, events, branch weights and targets are reused verbatim;
    only rates whose spec reads a changed constant are re-evaluated.
    """

    lts: LTS
    provenance: List[Optional[RateProvenance]]
    const_env: Dict[str, Value]

    def relabel(self, const_env: Mapping[str, Value]) -> LTS:
        """State space under *const_env*, bit-identical to regeneration."""
        changed = {
            name
            for name in set(self.const_env) | set(const_env)
            if self.const_env.get(name) != const_env.get(name)
        }
        if not changed:
            return self.lts
        out = self.lts.copy_structure()
        # Many transitions share one (spec, local env): evaluate each
        # distinct pair once per relabel.
        memo: Dict[tuple, object] = {}
        for transition, prov in zip(self.lts.transitions, self.provenance):
            rate = transition.rate
            if prov is not None and not changed.isdisjoint(prov.free_consts):
                key = (id(prov.spec), prov.env)
                base = memo.get(key)
                if base is None:
                    env = dict(const_env)
                    env.update(prov.env)
                    base = prov.spec.evaluate(env)
                    memo[key] = base
                rate = apply_branch_fraction(base, prov.fraction)
            out.add_transition(
                transition.source,
                transition.label,
                transition.target,
                rate,
                transition.event,
                transition.weight,
            )
        return out


def generate_parametric(
    archi: ArchiType,
    const_overrides: Optional[Mapping[str, Value]] = None,
    max_states: int = 200_000,
    apply_preemption: bool = True,
) -> ParametricLTS:
    """Generate a state space recording rate provenance for relabeling."""
    generator = StateSpaceGenerator(
        archi,
        const_overrides,
        max_states,
        apply_preemption,
        record_provenance=True,
    )
    lts = generator.generate()
    return ParametricLTS(lts, generator.provenance, dict(generator.const_env))


# ---------------------------------------------------------------------------
# The cache.
# ---------------------------------------------------------------------------

@dataclass
class CacheStats:
    """Effectiveness counters of one structural cache.

    The ``hit``/``miss``/``relabel`` methods are the instrumented way to
    count: they mirror each event onto the ``repro_cache_events_total``
    metric (docs/OBSERVABILITY.md) besides bumping the local counter.
    """

    hits: int = 0
    misses: int = 0
    relabels: int = 0
    parametric_hits: int = 0
    parametric_builds: int = 0

    def _emit(self, kind: str, count: int = 1) -> None:
        registry = obs_metrics.get_registry()
        if registry.enabled:
            obs_metrics.CACHE_EVENTS.on(registry).labels(kind=kind).inc(
                count
            )

    def hit(self) -> None:
        self.hits += 1
        self._emit("hit")

    def miss(self) -> None:
        self.misses += 1
        self._emit("miss")

    def relabel(self, count: int = 1) -> None:
        if count:
            self.relabels += count
            self._emit("relabel", count)

    def parametric_hit(self) -> None:
        self.parametric_hits += 1
        self._emit("parametric_hit")

    def parametric_build(self) -> None:
        self.parametric_builds += 1
        self._emit("parametric_build")

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "relabels": self.relabels,
            "parametric_hits": self.parametric_hits,
            "parametric_builds": self.parametric_builds,
        }


class StructuralStateSpaceCache:
    """Cache of state-space skeletons keyed modulo rate values.

    ``enabled=False`` turns the cache into a pass-through that regenerates
    every request (the ablation baseline); counters keep ticking either
    way so benchmarks can report effectiveness.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.stats = CacheStats()
        self._skeletons: Dict[tuple, ParametricLTS] = {}
        #: Parametric (rational-function) solutions, keyed by skeleton
        #: key + sweep definition (see :meth:`parametric_solution`).
        self._parametric: Dict[tuple, object] = {}
        # id-keyed memos hold a reference to the archi so ids stay valid.
        self._structural: Dict[int, Tuple[ArchiType, frozenset]] = {}
        self._fingerprints: Dict[int, Tuple[ArchiType, str]] = {}

    # -- per-architecture memos -------------------------------------------

    def structural_params(self, archi: ArchiType) -> frozenset:
        """Memoised :func:`structural_params`."""
        cached = self._structural.get(id(archi))
        if cached is None or cached[0] is not archi:
            cached = (archi, structural_params(archi))
            self._structural[id(archi)] = cached
        return cached[1]

    def fingerprint(self, archi: ArchiType) -> str:
        """Content hash of the architecture modulo rate values."""
        cached = self._fingerprints.get(id(archi))
        if cached is None or cached[0] is not archi:
            digest = hashlib.sha256(
                print_architecture(archi).encode()
            ).hexdigest()
            cached = (archi, digest)
            self._fingerprints[id(archi)] = cached
        return cached[1]

    def is_rate_only(self, archi: ArchiType, parameter: str) -> bool:
        """True when sweeping *parameter* cannot change the structure."""
        return parameter not in self.structural_params(archi)

    # -- lookups -----------------------------------------------------------

    def _key(
        self,
        archi: ArchiType,
        env: Mapping[str, Value],
        max_states: int,
        apply_preemption: bool,
    ) -> tuple:
        structural = self.structural_params(archi)
        signature = tuple(
            (name, env[name]) for name in sorted(structural)
        )
        return (
            self.fingerprint(archi),
            max_states,
            apply_preemption,
            signature,
        )

    def skeleton(
        self,
        archi: ArchiType,
        const_overrides: Optional[Mapping[str, Value]] = None,
        max_states: int = 200_000,
        apply_preemption: bool = True,
        timer: Optional[Timer] = None,
    ) -> ParametricLTS:
        """Get (or generate and cache) the skeleton for this structure."""
        env = archi.bind_constants(const_overrides)
        key = self._key(archi, env, max_states, apply_preemption)
        skeleton = self._skeletons.get(key) if self.enabled else None
        if skeleton is None:
            self.stats.miss()
            with timer.span("statespace") if timer else nullcontext():
                skeleton = generate_parametric(
                    archi, const_overrides, max_states, apply_preemption
                )
            if self.enabled:
                self._skeletons[key] = skeleton
        else:
            self.stats.hit()
        return skeleton

    def lts(
        self,
        archi: ArchiType,
        const_overrides: Optional[Mapping[str, Value]] = None,
        max_states: int = 200_000,
        apply_preemption: bool = True,
        timer: Optional[Timer] = None,
    ) -> LTS:
        """Concrete state space under *const_overrides*, cache-aware."""
        env = archi.bind_constants(const_overrides)
        skeleton = self.skeleton(
            archi, const_overrides, max_states, apply_preemption, timer
        )
        if env == skeleton.const_env:
            return skeleton.lts
        self.stats.relabel()
        with timer.span("relabel") if timer else nullcontext():
            return skeleton.relabel(env)

    def parametric_solution(
        self,
        archi: ArchiType,
        parameter: str,
        measures,
        domain: Tuple[float, float],
        const_overrides: Optional[Mapping[str, Value]] = None,
        max_states: int = 200_000,
        apply_preemption: bool = True,
        timer: Optional[Timer] = None,
    ):
        """Get (or build and cache) the rational-function solution of a
        rate-only sweep over *parameter* on *domain*.

        The key covers the skeleton identity, the swept parameter and
        domain, the measures (their printed form is content-complete)
        and every *other* constant's bound value — the swept parameter's
        own base value is irrelevant, since the solution treats it
        symbolically.  Raises
        :class:`~repro.errors.ParametricError` when the chain cannot be
        eliminated; callers fall back to per-point solves.
        """
        from ..ctmc.parametric import build_parametric_solution

        env = archi.bind_constants(const_overrides)
        skeleton = self.skeleton(
            archi, const_overrides, max_states, apply_preemption, timer
        )
        key = (
            self._key(archi, env, max_states, apply_preemption),
            parameter,
            tuple(str(m) for m in measures),
            (float(domain[0]), float(domain[1])),
            tuple(
                (name, env[name])
                for name in sorted(env)
                if name != parameter
            ),
        )
        solution = self._parametric.get(key) if self.enabled else None
        if solution is None:
            self.stats.parametric_build()
            with timer.span("parametric") if timer else nullcontext():
                solution = build_parametric_solution(
                    archi, skeleton, parameter, measures, domain, env
                )
            if self.enabled:
                self._parametric[key] = solution
        else:
            self.stats.parametric_hit()
        return solution

    def clear(self) -> None:
        """Drop all cached skeletons and reset the counters."""
        self._skeletons.clear()
        self._parametric.clear()
        self._structural.clear()
        self._fingerprints.clear()
        self.stats = CacheStats()

"""Sweep checkpointing: a crash-safe journal of completed points.

Long sweeps (the paper's figures at full resolution, or million-point
parameter studies) must survive interruption — a SIGKILL mid-sweep, a
dead container, an exhausted retry budget.  :class:`SweepCheckpoint`
journals every completed point to an append-only JSONL file; a resumed
sweep replays the journal, skips the completed points and recomputes only
the rest.  Because every point's result is a pure function of the sweep
definition, and JSON round-trips Python floats exactly (``repr``-based
shortest representation), a resumed sweep is **bit-identical** to an
uninterrupted one.

Journal format (one JSON object per line)::

    {"kind": "header", "version": 1, "fingerprint": "<sha256>"}
    {"kind": "point", "index": 0, "result": {...}, "elapsed": 0.12}
    {"kind": "point", "index": 1, "result": {...}, "elapsed": 0.11}

The ``fingerprint`` hashes the full sweep definition (case study, phase,
parameter, values, overrides, simulation parameters, seed, and — for
general-phase sweeps — the simulation engine and CRN pairing mode, since
the ``reference`` and ``fast`` engines follow different RNG disciplines:
everything that determines the results, and nothing that doesn't, so a
journal written with ``--workers 4`` resumes fine under ``--workers 1``
but refuses to resume under a different ``--engine``).
Opening a journal whose fingerprint does not match raises
:class:`~repro.errors.CheckpointError` instead of silently mixing two
different sweeps.  A torn final line (the crash happened mid-write) is
discarded; corruption anywhere else is an error.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, Optional

from ..errors import CheckpointError
from ..obs import metrics as obs_metrics
from ..obs import tracing

JOURNAL_VERSION = 1


def _emit_checkpoint_event(kind: str, count: int = 1) -> None:
    registry = obs_metrics.get_registry()
    if registry.enabled and count:
        obs_metrics.CHECKPOINT_EVENTS.on(registry).labels(kind=kind).inc(
            count
        )


def sweep_fingerprint(**fields: Any) -> str:
    """Content hash of a sweep definition (order-insensitive keys)."""
    canonical = json.dumps(fields, sort_keys=True, default=repr)
    return hashlib.sha256(canonical.encode()).hexdigest()


class SweepCheckpoint:
    """Append-only journal of completed sweep points.

    ``completed`` maps point index to its recorded result after
    :meth:`load`; :meth:`record` appends (and fsyncs) one finished point.
    The journal is created lazily on the first record so that a fully
    cached/instant sweep never touches the disk.
    """

    def __init__(self, path: str, fingerprint: str):
        self.path = path
        self.fingerprint = fingerprint
        self.completed: Dict[int, Any] = {}
        self._handle = None
        self.load()

    # -- reading -----------------------------------------------------------

    def load(self) -> Dict[int, Any]:
        """Replay the journal (if present) into :attr:`completed`."""
        self.completed = {}
        if not os.path.exists(self.path):
            return self.completed
        with open(self.path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        if not lines:
            return self.completed
        header = self._parse(lines[0], line_number=1, torn_ok=False)
        if header.get("kind") != "header":
            raise CheckpointError(
                f"{self.path}: first journal line is not a header"
            )
        if header.get("version") != JOURNAL_VERSION:
            raise CheckpointError(
                f"{self.path}: journal version {header.get('version')!r} "
                f"!= {JOURNAL_VERSION}"
            )
        if header.get("fingerprint") != self.fingerprint:
            raise CheckpointError(
                f"{self.path}: journal belongs to a different sweep "
                f"(fingerprint {header.get('fingerprint')!r:.20} != "
                f"{self.fingerprint!r:.20}); delete it or pass a fresh "
                f"checkpoint path"
            )
        for line_number, line in enumerate(lines[1:], start=2):
            record = self._parse(
                line,
                line_number,
                torn_ok=(line_number == len(lines)),
            )
            if record is None:
                continue  # torn tail from a crash mid-write
            if record.get("kind") != "point":
                raise CheckpointError(
                    f"{self.path}:{line_number}: unexpected record kind "
                    f"{record.get('kind')!r}"
                )
            self.completed[int(record["index"])] = record["result"]
        _emit_checkpoint_event("replayed", len(self.completed))
        if self.completed:
            # A resumed sweep links its new trace to the original run:
            # the journal fingerprint is the stable join key (the ledger
            # records it per run), and the replayed count tells a reader
            # how much of the sweep came from the journal.
            tracing.add_attributes(
                resumed_from=self.fingerprint,
                resumed_points=len(self.completed),
            )
        return self.completed

    def _parse(
        self, line: str, line_number: int, torn_ok: bool
    ) -> Optional[Dict[str, Any]]:
        try:
            return json.loads(line)
        except json.JSONDecodeError:
            if torn_ok:
                return None
            raise CheckpointError(
                f"{self.path}:{line_number}: corrupt journal line"
            )

    # -- writing -----------------------------------------------------------

    def _open(self):
        if self._handle is None:
            fresh = not os.path.exists(self.path) or (
                os.path.getsize(self.path) == 0
            )
            self._handle = open(self.path, "a", encoding="utf-8")
            if fresh:
                self._write(
                    {
                        "kind": "header",
                        "version": JOURNAL_VERSION,
                        "fingerprint": self.fingerprint,
                    }
                )
        return self._handle

    def _write(self, record: Dict[str, Any]) -> None:
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def record(self, index: int, result: Any, elapsed: float = 0.0) -> None:
        """Durably journal one completed point (flushed + fsynced)."""
        if index in self.completed:
            return
        self._open()
        self._write(
            {
                "kind": "point",
                "index": index,
                "result": result,
                "elapsed": round(elapsed, 6),
            }
        )
        self.completed[index] = result
        _emit_checkpoint_event("recorded")

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "SweepCheckpoint":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

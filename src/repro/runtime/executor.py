"""Deterministic parallel task execution for sweeps and replications.

:class:`ParallelExecutor` wraps :class:`concurrent.futures.ProcessPoolExecutor`
with the conventions the experiment stack needs:

* **Serial fallback** — ``workers=1`` runs tasks inline with zero process
  overhead and is the CI-deterministic default everywhere; any parallel
  result is required (and tested) to be identical to the serial one.
* **Shared payload** — large read-only inputs (a cached state-space
  skeleton, the measure set) are shipped to each worker process *once* via
  the pool initializer instead of being pickled per task.
* **Deterministic ordering** — results always come back in input order
  regardless of completion order.
* **Chunked submission** — tasks are submitted in chunks so thousands of
  tiny tasks (replication runs) don't drown in IPC overhead.

Worker functions must be module-level callables of the form
``fn(shared, item)`` so they can be pickled by reference.
"""

from __future__ import annotations

import os
from functools import partial
from typing import Any, Callable, List, Optional, Sequence

#: Upper bound on auto-detected workers (sweeps rarely scale past this).
_MAX_AUTO_WORKERS = 8

_SHARED: Any = None


def _init_shared(shared: Any) -> None:
    global _SHARED
    _SHARED = shared


def _call_with_shared(fn: Callable[[Any, Any], Any], item: Any) -> Any:
    return fn(_SHARED, item)


def resolve_workers(workers: Optional[int]) -> int:
    """Normalise a worker-count request.

    ``None``/``0`` auto-detect (``os.cpu_count()`` capped at
    ``_MAX_AUTO_WORKERS``); explicit values pass through; anything below 1
    falls back to serial.
    """
    if workers is None or workers == 0:
        detected = os.cpu_count() or 1
        return max(1, min(detected, _MAX_AUTO_WORKERS))
    return max(1, int(workers))


class ParallelExecutor:
    """Process-pool map with serial fallback and shared payloads."""

    def __init__(self, workers: Optional[int] = 1):
        self.workers = resolve_workers(workers)

    @property
    def is_serial(self) -> bool:
        """True when tasks run inline in this process."""
        return self.workers == 1

    def map(
        self,
        fn: Callable[[Any, Any], Any],
        items: Sequence[Any],
        shared: Any = None,
        chunksize: Optional[int] = None,
    ) -> List[Any]:
        """Run ``fn(shared, item)`` over *items*, preserving input order.

        The serial path calls *fn* inline; the parallel path ships *shared*
        to each worker once and distributes *items* in chunks.  If the
        platform refuses to fork worker processes the call degrades to the
        serial path rather than failing.
        """
        items = list(items)
        if not items:
            return []
        if self.is_serial or len(items) == 1:
            return [fn(shared, item) for item in items]
        if chunksize is None:
            chunksize = max(1, len(items) // (self.workers * 4))
        # Imported lazily: merely importing the pool machinery is useless
        # on the serial path, and some sandboxes forbid process creation.
        from concurrent.futures import ProcessPoolExecutor

        try:
            with ProcessPoolExecutor(
                max_workers=min(self.workers, len(items)),
                initializer=_init_shared,
                initargs=(shared,),
            ) as pool:
                return list(
                    pool.map(
                        partial(_call_with_shared, fn),
                        items,
                        chunksize=chunksize,
                    )
                )
        except (OSError, PermissionError):
            # Process creation unavailable (restricted sandbox): degrade
            # to the serial path, which is always result-identical.
            return [fn(shared, item) for item in items]

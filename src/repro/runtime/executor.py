"""Deterministic, fault-tolerant parallel task execution.

:class:`ParallelExecutor` wraps :class:`concurrent.futures.ProcessPoolExecutor`
with the conventions the experiment stack needs:

* **Serial fallback** — ``workers=1`` runs tasks inline with zero process
  overhead and is the CI-deterministic default everywhere; any parallel
  result is required (and tested) to be identical to the serial one.
* **Shared payload** — large read-only inputs (a cached state-space
  skeleton, the measure set) are shipped to each worker process *once* via
  the pool initializer instead of being pickled per task.
* **Deterministic ordering** — results always come back in input order
  regardless of completion order.
* **Chunked submission** — tasks are submitted in chunks so thousands of
  tiny tasks (replication runs) don't drown in IPC overhead.
* **Fault tolerance** — with a :class:`RetryPolicy`, each task gets a
  bounded number of attempts with exponential backoff; a broken process
  pool (a worker died) is rebuilt, and after ``max_pool_restarts``
  breakages the executor degrades gracefully to the serial path, which is
  always result-identical.  Typed failures come from
  :mod:`repro.errors` (:class:`~repro.errors.RetryBudgetExceededError`).
* **Checkpoint / trace hooks** — completed tasks can be journaled to a
  :class:`~repro.runtime.checkpoint.SweepCheckpoint` (so an interrupted
  sweep resumes bit-identically) and every attempt can emit a span on a
  :class:`~repro.runtime.trace.TraceRecorder`.

Worker functions must be module-level callables of the form
``fn(shared, item)`` so they can be pickled by reference.  Tasks must be
pure functions of ``(shared, item)``: that is what makes retries, pool
rebuilds and serial degradation invisible in the results.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from functools import partial
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..errors import RetryBudgetExceededError
from ..obs import metrics as obs_metrics
from ..obs import tracing
from . import trace as trace_mod
from .faults import KILL, FaultInjector


def _count_tasks(mode: str, count: int) -> None:
    """Bump ``repro_executor_tasks_total`` for one dispatched batch."""
    registry = obs_metrics.get_registry()
    if registry.enabled and count:
        obs_metrics.EXECUTOR_TASKS.on(registry).labels(mode=mode).inc(
            count
        )

#: Upper bound on auto-detected workers (sweeps rarely scale past this).
_MAX_AUTO_WORKERS = 8

_SHARED: Any = None


def _init_shared(shared: Any) -> None:
    global _SHARED
    _SHARED = shared


def _call_with_shared(fn: Callable[[Any, Any], Any], item: Any) -> Any:
    return fn(_SHARED, item)


def _resilient_call(
    fn: Callable[[Any, Any], Any],
    faults: Optional[FaultInjector],
    index: int,
    attempt: int,
    item: Any,
    ctx: Optional[tracing.TraceContext] = None,
):
    """Worker-side wrapper: apply planned faults, run, report metrics.

    When the parent ships a :class:`~repro.obs.tracing.TraceContext`,
    the task runs under a fresh in-memory collector tracer seeded with
    that identity — shadowing whatever tracer the fork inherited, so a
    worker never writes to the parent's trace sink — and the collected
    span records travel back in ``meta["spans"]`` for the parent to
    attach under the execute span it pre-allocated at submit time.
    """
    started = time.time()
    wall_started = time.perf_counter()
    cpu_started = time.process_time()
    if faults is not None:
        faults.apply(index, attempt, in_worker=True)
    spans: List[Dict[str, Any]] = []
    if ctx is not None:
        collector = tracing.Tracer(trace_id=ctx.trace_id)
        with tracing.use_tracer(collector, context=ctx):
            value = fn(_SHARED, item)
        spans = collector.records()
    else:
        value = fn(_SHARED, item)
    wall = time.perf_counter() - wall_started
    meta = {
        "worker": os.getpid(),
        "wall": wall,
        "cpu": time.process_time() - cpu_started,
        "started": started,
        "ended": started + wall,
        "spans": spans,
    }
    return value, meta


class _PointSpans:
    """Parent-side span bookkeeping for the resilient pool path.

    The pool path cannot use :func:`repro.obs.tracing.span` context
    managers — a point's attempts interleave with other points across
    rounds — so it *pre-allocates* span ids instead: one point span per
    index (materialised when the point completes) and one execute span
    per submission, whose id travels to the worker inside the
    :class:`~repro.obs.tracing.TraceContext` so worker-side spans parent
    correctly.  Queue wait (submit → worker start) and execution are
    emitted as separate child spans of the point.
    """

    def __init__(self, phase: str):
        self.tracer = tracing.get_tracer()
        self.active = self.tracer is not None
        self.phase = phase
        if not self.active:
            return
        context = tracing.current_context()
        self.trace_id = context.trace_id if context else self.tracer.trace_id
        self.parent_id = tracing.current_span_id()
        self._points: Dict[int, tuple] = {}  # index -> (span_id, start)
        self._finished: set = set()

    def point_id(self, index: int) -> str:
        point = self._points.get(index)
        if point is None:
            point = (tracing.new_span_id(), time.time())
            self._points[index] = point
        return point[0]

    def submit(self, index: int) -> Optional[tracing.TraceContext]:
        """Allocate the execute-span identity for one submission."""
        if not self.active:
            return None
        self.point_id(index)
        return tracing.TraceContext(self.trace_id, tracing.new_span_id())

    def executed(
        self,
        index: int,
        ctx: tracing.TraceContext,
        submitted: float,
        meta: Dict[str, Any],
        attempt: int,
    ) -> None:
        """Record a completed submission: queue-wait + execute + worker spans."""
        if not self.active:
            return
        point_id = self.point_id(index)
        started = max(meta["started"], submitted)
        self.tracer.add_span(
            "queue-wait",
            parent_id=point_id,
            start=submitted,
            end=started,
            trace_id=self.trace_id,
        )
        self.tracer.add_span(
            "execute",
            parent_id=point_id,
            start=started,
            end=max(meta["ended"], started),
            span_id=ctx.span_id,
            trace_id=self.trace_id,
            worker=meta["worker"],
            attempt=attempt,
            cpu=round(meta["cpu"], 6),
        )
        self.tracer.ingest(meta["spans"])

    def failed(
        self,
        index: int,
        ctx: tracing.TraceContext,
        submitted: float,
        attempt: int,
        status: str,
        error: str,
    ) -> None:
        """Record a submission that died without shipping metadata back."""
        if not self.active:
            return
        self.tracer.add_span(
            "execute",
            parent_id=self.point_id(index),
            start=submitted,
            end=time.time(),
            status=status,
            span_id=ctx.span_id,
            trace_id=self.trace_id,
            attempt=attempt,
            error=error,
        )

    def checkpoint_hit(self, index: int) -> None:
        """A point answered from the journal: zero-duration point span."""
        if not self.active:
            return
        now = time.time()
        span_id = self.point_id(index)
        self._finished.add(index)
        self.tracer.add_span(
            "point",
            parent_id=self.parent_id,
            start=now,
            end=now,
            status=trace_mod.STATUS_CHECKPOINT_HIT,
            span_id=span_id,
            trace_id=self.trace_id,
            phase=self.phase,
            index=index,
        )

    def finish(self, index: int, status: str = trace_mod.STATUS_OK) -> None:
        """Materialise the point span once the point has a result."""
        if not self.active or index in self._finished:
            return
        point = self._points.get(index)
        if point is None:
            return
        self._finished.add(index)
        self.tracer.add_span(
            "point",
            parent_id=self.parent_id,
            start=point[1],
            end=time.time(),
            status=status,
            span_id=point[0],
            trace_id=self.trace_id,
            phase=self.phase,
            index=index,
        )

    def finish_abandoned(self) -> None:
        """Materialise points left open by an aborted run (failed tasks),
        so even a crashed sweep leaves a well-formed tree behind."""
        if not self.active:
            return
        for index in list(self._points):
            self.finish(index, status=trace_mod.STATUS_FAILED)

    def reparent(self, index: int):
        """Context for serial-degrade attempts: nest under the point span."""
        return tracing.use_tracer(
            self.tracer,
            context=tracing.TraceContext(self.trace_id, self.point_id(index)),
        )


def resolve_workers(workers: Optional[int]) -> int:
    """Normalise a worker-count request.

    ``None``/``0`` auto-detect (``os.cpu_count()`` capped at
    ``_MAX_AUTO_WORKERS``); explicit values pass through; anything below 1
    falls back to serial.
    """
    if workers is None or workers == 0:
        detected = os.cpu_count() or 1
        return max(1, min(detected, _MAX_AUTO_WORKERS))
    return max(1, int(workers))


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff.

    ``max_attempts`` counts every execution of a task, so ``1`` means "no
    retries".  The backoff before retry attempt *k* (1-based) is
    ``backoff * backoff_factor**(k-1)`` capped at ``max_backoff`` — kept
    small by default because our tasks are compute-bound, not remote.
    """

    max_attempts: int = 3
    backoff: float = 0.01
    backoff_factor: float = 2.0
    max_backoff: float = 1.0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")

    def delay_before(self, attempt: int) -> float:
        """Seconds to wait before (1-based retry) *attempt*."""
        if attempt <= 0:
            return 0.0
        return min(
            self.backoff * self.backoff_factor ** (attempt - 1),
            self.max_backoff,
        )


#: Retrying is the default as soon as the resilient path is engaged.
DEFAULT_RETRY = RetryPolicy()
#: Fail fast: a single attempt per task.
NO_RETRY = RetryPolicy(max_attempts=1)


class ParallelExecutor:
    """Process-pool map with serial fallback, retries and shared payloads."""

    def __init__(
        self,
        workers: Optional[int] = 1,
        max_pool_restarts: int = 2,
    ):
        self.workers = resolve_workers(workers)
        self.max_pool_restarts = max_pool_restarts

    @property
    def is_serial(self) -> bool:
        """True when tasks run inline in this process."""
        return self.workers == 1

    def map(
        self,
        fn: Callable[[Any, Any], Any],
        items: Sequence[Any],
        shared: Any = None,
        chunksize: Optional[int] = None,
        retry: Optional[RetryPolicy] = None,
        faults: Optional[FaultInjector] = None,
        checkpoint: Optional[Any] = None,
        tracer: Optional[trace_mod.TraceRecorder] = None,
        phase: str = "task",
    ) -> List[Any]:
        """Run ``fn(shared, item)`` over *items*, preserving input order.

        With none of *retry*/*faults*/*checkpoint*/*tracer* set this is the
        zero-overhead fast path (chunked ``pool.map`` or an inline loop).
        Setting any of them engages the resilient path: per-task attempts
        under *retry* (default :data:`DEFAULT_RETRY`), planned faults from
        *faults*, completed tasks journaled to *checkpoint* (and replayed
        from it instead of recomputed), spans recorded on *tracer*.

        Either way the results are bit-identical to the plain serial
        ``[fn(shared, item) for item in items]`` — tasks are pure, retries
        recompute the same value, and checkpoints replay exact values.
        If the platform refuses to fork worker processes the call degrades
        to the serial path rather than failing.
        """
        items = list(items)
        if not items:
            return []
        resilient = (
            retry is not None
            or faults is not None
            or checkpoint is not None
            or tracer is not None
            or tracing.active()
        )
        if not resilient:
            _count_tasks(
                "serial" if self.is_serial else "pool", len(items)
            )
            return self._map_fast(fn, items, shared, chunksize)
        retry = retry or DEFAULT_RETRY
        tracer = tracer or trace_mod.TraceRecorder()
        if self.is_serial or len(items) == 1:
            _count_tasks("resilient-serial", len(items))
            return self._map_serial(
                fn, items, shared, retry, faults, checkpoint, tracer, phase
            )
        _count_tasks("resilient-pool", len(items))
        return self._map_parallel(
            fn, items, shared, retry, faults, checkpoint, tracer, phase
        )

    # -- fast path (no retry/trace/checkpoint machinery) -------------------

    def _map_fast(
        self,
        fn: Callable[[Any, Any], Any],
        items: List[Any],
        shared: Any,
        chunksize: Optional[int],
    ) -> List[Any]:
        if self.is_serial or len(items) == 1:
            return [fn(shared, item) for item in items]
        if chunksize is None:
            chunksize = max(1, len(items) // (self.workers * 4))
        # Imported lazily: merely importing the pool machinery is useless
        # on the serial path, and some sandboxes forbid process creation.
        from concurrent.futures import ProcessPoolExecutor

        try:
            with ProcessPoolExecutor(
                max_workers=min(self.workers, len(items)),
                initializer=_init_shared,
                initargs=(shared,),
            ) as pool:
                return list(
                    pool.map(
                        partial(_call_with_shared, fn),
                        items,
                        chunksize=chunksize,
                    )
                )
        except (OSError, PermissionError):
            # Process creation unavailable (restricted sandbox): degrade
            # to the serial path, which is always result-identical.
            return [fn(shared, item) for item in items]

    # -- resilient serial path ---------------------------------------------

    def _map_serial(
        self,
        fn: Callable[[Any, Any], Any],
        items: List[Any],
        shared: Any,
        retry: RetryPolicy,
        faults: Optional[FaultInjector],
        checkpoint: Optional[Any],
        tracer: trace_mod.TraceRecorder,
        phase: str,
    ) -> List[Any]:
        results: List[Any] = [None] * len(items)
        for index, item in enumerate(items):
            if checkpoint is not None and index in checkpoint.completed:
                results[index] = checkpoint.completed[index]
                tracer.record(
                    phase, index=index,
                    status=trace_mod.STATUS_CHECKPOINT_HIT,
                )
                tracing.record_span(
                    "point", 0.0,
                    status=trace_mod.STATUS_CHECKPOINT_HIT,
                    phase=phase, index=index,
                )
                continue
            with tracing.span("point", phase=phase, index=index):
                results[index] = self._attempt_serial(
                    fn, shared, item, index, retry, faults, tracer, phase,
                    checkpoint,
                )
        return results

    def _attempt_serial(
        self,
        fn: Callable[[Any, Any], Any],
        shared: Any,
        item: Any,
        index: int,
        retry: RetryPolicy,
        faults: Optional[FaultInjector],
        tracer: trace_mod.TraceRecorder,
        phase: str,
        checkpoint: Optional[Any],
        first_attempt: int = 0,
    ) -> Any:
        last_error: Optional[Exception] = None
        for attempt in range(first_attempt, retry.max_attempts):
            if attempt > first_attempt:
                time.sleep(retry.delay_before(attempt - first_attempt))
            wall_started = time.perf_counter()
            cpu_started = time.process_time()
            with tracing.span(
                "execute", phase=phase, index=index, attempt=attempt
            ) as exec_span:
                try:
                    if faults is not None:
                        faults.apply(index, attempt, in_worker=False)
                    value = fn(shared, item)
                except Exception as error:  # noqa: BLE001 — retry task errors
                    last_error = error
                    exhausted = attempt + 1 >= retry.max_attempts
                    status = (
                        trace_mod.STATUS_FAILED
                        if exhausted
                        else trace_mod.STATUS_RETRY
                    )
                    exec_span.status = status
                    exec_span.set_attributes(error=repr(error))
                    tracer.record(
                        phase,
                        index=index,
                        attempt=attempt,
                        status=status,
                        wall=time.perf_counter() - wall_started,
                        cpu=time.process_time() - cpu_started,
                        error=repr(error),
                    )
                    continue
            wall = time.perf_counter() - wall_started
            tracer.record(
                phase,
                index=index,
                attempt=attempt,
                status=trace_mod.STATUS_OK,
                wall=wall,
                cpu=time.process_time() - cpu_started,
            )
            if checkpoint is not None:
                checkpoint.record(index, value, elapsed=wall)
            return value
        raise RetryBudgetExceededError(
            index, retry.max_attempts - first_attempt, last_error
        )

    # -- resilient parallel path -------------------------------------------

    def _map_parallel(
        self,
        fn: Callable[[Any, Any], Any],
        items: List[Any],
        shared: Any,
        retry: RetryPolicy,
        faults: Optional[FaultInjector],
        checkpoint: Optional[Any],
        tracer: trace_mod.TraceRecorder,
        phase: str,
    ) -> List[Any]:
        """Submit-per-task pool execution in rounds.

        Each round submits every still-pending task to a fresh pool; task
        failures consume one attempt of that task's budget, a broken pool
        (worker death) consumes one pool restart — and one attempt for
        exactly the tasks whose fault plan called for a kill, which the
        parent recomputes from the (deterministic) injector instead of
        waiting for a report from a dead process.  After
        ``max_pool_restarts`` breakages the remaining tasks run serially.
        """
        from concurrent.futures import as_completed
        from concurrent.futures.process import BrokenProcessPool

        point_spans = _PointSpans(phase)
        results: Dict[int, Any] = {}
        attempts: Dict[int, int] = {}
        pending: List[int] = []
        for index in range(len(items)):
            if checkpoint is not None and index in checkpoint.completed:
                results[index] = checkpoint.completed[index]
                tracer.record(
                    phase, index=index,
                    status=trace_mod.STATUS_CHECKPOINT_HIT,
                )
                point_spans.checkpoint_hit(index)
            else:
                attempts[index] = 0
                pending.append(index)

        try:
            return self._run_parallel_rounds(
                fn, items, shared, retry, faults, checkpoint, tracer,
                phase, point_spans, results, attempts, pending,
                as_completed, BrokenProcessPool,
            )
        finally:
            point_spans.finish_abandoned()

    def _run_parallel_rounds(
        self,
        fn: Callable[[Any, Any], Any],
        items: List[Any],
        shared: Any,
        retry: RetryPolicy,
        faults: Optional[FaultInjector],
        checkpoint: Optional[Any],
        tracer: trace_mod.TraceRecorder,
        phase: str,
        point_spans: _PointSpans,
        results: Dict[int, Any],
        attempts: Dict[int, int],
        pending: List[int],
        as_completed,
        BrokenProcessPool,
    ) -> List[Any]:
        pool_restarts = 0
        while pending:
            if pool_restarts > self.max_pool_restarts:
                tracer.record(
                    phase,
                    event="pool",
                    status=trace_mod.STATUS_DEGRADED,
                    pool_restarts=pool_restarts,
                )
                for index in pending:
                    if point_spans.active:
                        # Execute spans already reference this point's
                        # pre-allocated id: nest the serial attempts
                        # under it, then materialise it as degraded.
                        with point_spans.reparent(index):
                            results[index] = self._attempt_serial(
                                fn, shared, items[index], index, retry,
                                faults, tracer, phase, checkpoint,
                                first_attempt=attempts[index],
                            )
                        point_spans.finish(
                            index, status=trace_mod.STATUS_DEGRADED
                        )
                    else:
                        results[index] = self._attempt_serial(
                            fn, shared, items[index], index, retry, faults,
                            tracer, phase, checkpoint,
                            first_attempt=attempts[index],
                        )
                pending = []
                break
            backoff = max(
                (
                    retry.delay_before(attempts[index])
                    for index in pending
                ),
                default=0.0,
            )
            if backoff > 0.0:
                time.sleep(backoff)
            pool_broken = False
            try:
                from concurrent.futures import ProcessPoolExecutor

                pool = ProcessPoolExecutor(
                    max_workers=min(self.workers, len(pending)),
                    initializer=_init_shared,
                    initargs=(shared,),
                )
            except (OSError, PermissionError):
                # Process creation unavailable: finish serially.
                pool_restarts = self.max_pool_restarts + 1
                continue
            try:
                futures = {}
                for index in pending:
                    ctx = point_spans.submit(index)
                    futures[
                        pool.submit(
                            _resilient_call,
                            fn, faults, index, attempts[index],
                            items[index], ctx,
                        )
                    ] = (index, ctx, time.time())
                still_pending: List[int] = []
                for future in as_completed(futures):
                    index, ctx, submitted = futures[future]
                    try:
                        value, meta = future.result()
                    except BrokenProcessPool:
                        pool_broken = True
                        if (
                            faults is not None
                            and faults.plan(index, attempts[index]) == KILL
                        ):
                            # The kill consumed this task's attempt; tasks
                            # merely caught in the pool collapse retry for
                            # free.
                            tracer.record(
                                phase,
                                index=index,
                                attempt=attempts[index],
                                status=trace_mod.STATUS_RETRY,
                                error="worker killed",
                            )
                            point_spans.failed(
                                index, ctx, submitted, attempts[index],
                                trace_mod.STATUS_RETRY, "worker killed",
                            )
                            attempts[index] += 1
                            if attempts[index] >= retry.max_attempts:
                                raise RetryBudgetExceededError(
                                    index,
                                    retry.max_attempts,
                                    BrokenProcessPool(
                                        "worker killed repeatedly"
                                    ),
                                )
                        still_pending.append(index)
                        continue
                    except Exception as error:  # noqa: BLE001
                        attempts[index] += 1
                        exhausted = attempts[index] >= retry.max_attempts
                        status = (
                            trace_mod.STATUS_FAILED
                            if exhausted
                            else trace_mod.STATUS_RETRY
                        )
                        tracer.record(
                            phase,
                            index=index,
                            attempt=attempts[index] - 1,
                            status=status,
                            error=repr(error),
                        )
                        point_spans.failed(
                            index, ctx, submitted, attempts[index] - 1,
                            status, repr(error),
                        )
                        if exhausted:
                            raise RetryBudgetExceededError(
                                index, retry.max_attempts, error
                            )
                        still_pending.append(index)
                        continue
                    results[index] = value
                    tracer.record(
                        phase,
                        index=index,
                        attempt=attempts[index],
                        status=trace_mod.STATUS_OK,
                        worker=meta["worker"],
                        wall=meta["wall"],
                        cpu=meta["cpu"],
                    )
                    point_spans.executed(
                        index, ctx, submitted, meta, attempts[index]
                    )
                    if checkpoint is not None:
                        checkpoint.record(
                            index, value, elapsed=meta["wall"]
                        )
                    point_spans.finish(index)
                pending = still_pending
            finally:
                pool.shutdown(wait=not pool_broken)
            if pool_broken:
                pool_restarts += 1
        return [results[index] for index in range(len(items))]
